// E4 — Fig. 5 analogue: parallel construction speedup vs thread count.
//
// Speedups are over the fastest sequential method (hashing + parameterized
// transposition), exactly as the paper defines them: "the depicted speedups
// are solely from parallelization".  Paper maxima: 108.9x at 64 threads
// (AMD), 46.1x at 88 threads (Intel); medians 4.9x / 4.6x.
//
// NOTE on this host: with a single hardware thread the full parallel code
// path (global queue, work-stealing, lock-free table) executes and is
// measured, but wall-clock speedup cannot exceed ~1x; the table below
// reports the honest numbers (see EXPERIMENTS.md).
//
// Usage: bench_fig5_parallel [num_patterns] [max_sfa_states] [max_threads]
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

int main(int argc, char** argv) {
  const unsigned num_patterns = bench::arg_or(argc, argv, 1, 8);
  const unsigned max_states = bench::arg_or(argc, argv, 2, 60000);
  const unsigned max_threads =
      bench::arg_or(argc, argv, 3, std::max(8u, hardware_threads()));

  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::printf("== E4 / Fig. 5: parallel speedup over best sequential ==\n");
  std::printf("host hardware threads: %u\n\n", hardware_threads());

  const auto workloads =
      bench::tractable_workloads(num_patterns, 500, max_states);

  std::vector<std::vector<std::string>> table;
  {
    std::vector<std::string> header = {"pattern", "SFA states", "seq(s)"};
    for (unsigned t : thread_counts)
      header.push_back("t" + std::to_string(t) + " x");
    table.push_back(std::move(header));
  }

  bench::JsonReport report("fig5_parallel");
  report.meta("num_patterns", workloads.size())
      .meta("max_threads", max_threads);

  std::vector<std::vector<double>> speedups_per_threadcount(
      thread_counts.size());
  for (const auto& w : workloads) {
    BuildOptions seq_opt;
    seq_opt.keep_mappings = false;
    const WallTimer seq_timer;
    build_sfa_transposed(w.dfa, seq_opt);
    const double t_seq = seq_timer.seconds();

    std::vector<std::string> row = {w.id, with_commas(w.sfa_states),
                                    fixed(t_seq, 4)};
    for (std::size_t i = 0; i < thread_counts.size(); ++i) {
      BuildOptions par_opt;
      par_opt.keep_mappings = false;
      par_opt.num_threads = thread_counts[i];
      const WallTimer par_timer;
      build_sfa_parallel(w.dfa, par_opt);
      const double t_par = par_timer.seconds();
      const double speedup = t_seq / t_par;
      speedups_per_threadcount[i].push_back(speedup);
      row.push_back(fixed(speedup, 2));
      report.add_row()
          .set("pattern", w.id)
          .set("sfa_states", w.sfa_states)
          .set("threads", thread_counts[i])
          .set("seq_seconds", t_seq)
          .set("par_seconds", t_par)
          .set("speedup", speedup);
    }
    table.push_back(std::move(row));
  }
  std::printf("%s\n", render_table(table).c_str());

  std::printf("summary (speedup over transposed-sequential):\n");
  for (std::size_t i = 0; i < thread_counts.size(); ++i) {
    auto& v = speedups_per_threadcount[i];
    const auto mm = std::minmax_element(v.begin(), v.end());
    std::printf("  %3u threads: min %.2fx  median %.2fx  max %.2fx\n",
                thread_counts[i], *mm.first, median_of(v), *mm.second);
    report.meta("median_speedup_t" + std::to_string(thread_counts[i]),
                median_of(v));
  }
  std::printf("(paper, Fig. 5: median 4.6-4.9x, max 46.1x @88t Intel / "
              "108.9x @64t AMD)\n");
  report.write();
  return 0;
}
