// E7 — §III-C Squash-style codec survey on real SFA states.
//
// The paper sampled 10 SFA states (equidistant in construction order) from
// three PROSITE SFAs and the r500 SFA, ran 43 Squash codecs on them, and
// found LZ77-class codecs (deflate) best: 17x-30x on PROSITE, 95x on r500.
// This harness repeats the experiment with the library's from-scratch
// codecs: store (memcpy baseline), rle, lz77, huffman, deflate-like.
//
// Usage: bench_compression_codecs [r_length]
#include <cstdio>

#include "bench_util.hpp"
#include "sfa/compress/registry.hpp"
#include "sfa/support/format.hpp"

using namespace sfa;

namespace {

/// Extract `count` equidistant SFA state payloads (cell-width packed).
std::vector<Bytes> sample_states(const Sfa& sfa, std::size_t count) {
  std::vector<Bytes> samples;
  std::vector<std::uint32_t> mapping;
  for (std::size_t i = 0; i < count; ++i) {
    const Sfa::StateId s = static_cast<Sfa::StateId>(
        static_cast<std::uint64_t>(i) * (sfa.num_states() - 1) /
        std::max<std::size_t>(count - 1, 1));
    sfa.mapping(s, mapping);
    Bytes raw(mapping.size() * sfa.cell_width());
    for (std::size_t q = 0; q < mapping.size(); ++q) {
      if (sfa.cell_width() == 2) {
        raw[q * 2] = static_cast<std::uint8_t>(mapping[q]);
        raw[q * 2 + 1] = static_cast<std::uint8_t>(mapping[q] >> 8);
      } else {
        for (int b = 0; b < 4; ++b)
          raw[q * 4 + static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(mapping[q] >> (8 * b));
      }
    }
    samples.push_back(std::move(raw));
  }
  return samples;
}

void survey(const char* label, const Dfa& dfa) {
  const Sfa sfa = build_sfa_transposed(dfa);
  const auto samples = sample_states(sfa, 10);
  std::size_t total = 0;
  for (const auto& s : samples) total += s.size();
  std::printf("%s: 10 states sampled, %s raw\n", label,
              human_bytes(total).c_str());

  std::vector<std::vector<std::string>> table;
  table.push_back({"codec", "ratio", "compress MiB/s", "decompress MiB/s",
                   "roundtrip"});
  for (const auto& ev : evaluate_all(samples)) {
    table.push_back({ev.name, fixed(ev.ratio, 2) + "x",
                     fixed(ev.compress_mb_s, 1), fixed(ev.decompress_mb_s, 1),
                     ev.roundtrip_ok ? "ok" : "FAIL"});
  }
  std::printf("%s\n", render_table(table).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned r_length = bench::arg_or(argc, argv, 1, 400);

  std::printf("== E7 / §III-C: codec survey on sampled SFA states ==\n\n");
  const char* patterns[] = {"C-x-[DN]-x(4)-[FY]-x-C-x-C.",
                            "[RK]-x(2,3)-[DE]-x(2,3)-Y.",
                            "C-x(2,4)-C-x(3)-H."};
  for (const char* p : patterns) survey(p, compile_prosite(p));

  const std::string r_label = "r" + std::to_string(r_length) +
                              " (synthetic, sink-dominated, no catenation)";
  survey(r_label.c_str(), make_r_benchmark_dfa(r_length, 500));

  std::printf(
      "(paper: deflate-class best at 17x-30x on PROSITE states, 95x on r500;\n"
      " RLE competitive only on the sink-dominated r-pattern; memcpy-baseline\n"
      " about an order of magnitude faster than deflate)\n");
  return 0;
}
