// Scheduler scaling: static-stripe vs work-stealing vs guided dispatch on
// the persistent WorkerPool, across thread counts and task-cost shapes.
//
// The pool is driven DIRECTLY (not through PooledExecutor) so every
// configuration dispatches exactly the task vector it claims to: the
// executor's ensure_workers(chunks) would grow the team past `threads` and
// oversubscription would blur the comparison.  Each task walks a dependent
// 64-state transition table over a slice of shared random text — the
// memory access shape of a real chunk scan without matcher noise.
//
// Task-cost classes (per {threads} configuration, tasks = 8 * threads):
//   uniform      every slice the same length — static-stripe's best case
//   heavy-tail   ~10% of slices 8x longer, positions shuffled by seed
//   adversarial  every task with (task % threads == 0) is 8x longer, i.e.
//                all the heavy work lands on ONE worker's stripe — the
//                shape where a static binding serializes on worker 0
//
// Speedup is against a serial walk of the same task vector, so schedulers
// are compared on identical work.  Results go to BENCH_scaling.json
// (schema sfa-scaling-bench/1).
//
// Usage: bench_scaling [bytes_per_task] [max_threads] [repeats]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sfa/concurrent/scheduler.hpp"
#include "sfa/concurrent/worker_pool.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

namespace {

constexpr unsigned kStates = 64;
constexpr unsigned kTasksPerThread = 8;

/// Dense [kStates][256] next-state table plus shared text to walk.
struct ScanFixture {
  std::vector<std::uint8_t> table;  // kStates * 256
  std::vector<std::uint8_t> text;

  explicit ScanFixture(std::size_t text_bytes, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    table.resize(static_cast<std::size_t>(kStates) * 256);
    for (auto& t : table) t = static_cast<std::uint8_t>(rng.below(kStates));
    text.resize(text_bytes);
    for (auto& c : text) c = static_cast<std::uint8_t>(rng.below(256));
  }

  /// Walk `len` symbols starting at a task-specific offset (wrapping).
  /// Dependent loads through the table — one chunk scan's memory shape.
  std::uint8_t scan(unsigned task, std::size_t len) const {
    std::size_t pos = (static_cast<std::size_t>(task) * 7919) % text.size();
    std::uint8_t s = 0;
    for (std::size_t i = 0; i < len; ++i) {
      s = table[static_cast<std::size_t>(s) * 256 + text[pos]];
      if (++pos == text.size()) pos = 0;
    }
    return s;
  }
};

/// Per-task slice lengths for one (class, threads) configuration.
std::vector<std::size_t> task_lengths(const std::string& cls, unsigned threads,
                                      std::size_t base) {
  const unsigned tasks = kTasksPerThread * threads;
  std::vector<std::size_t> len(tasks, base);
  if (cls == "heavy-tail") {
    Xoshiro256 rng(99);
    for (auto& l : len)
      if (rng.below(10) == 0) l = base * 8;
  } else if (cls == "adversarial") {
    for (unsigned t = 0; t < tasks; ++t)
      if (t % threads == 0) len[t] = base * 8;
  }
  return len;
}

struct RunResult {
  double seconds = 0;
  std::uint64_t steals = 0;
};

RunResult run_pool(const ScanFixture& fix, const std::vector<std::size_t>& len,
                   sched::Policy policy, unsigned threads, unsigned repeats) {
  WorkerPool pool(threads);
  pool.set_policy(policy);
  std::atomic<std::uint64_t> sink{0};
  const auto fn = [&](unsigned task, unsigned) {
    sink.fetch_add(fix.scan(task, len[task]), std::memory_order_relaxed);
  };
  RunResult best;
  for (unsigned r = 0; r < repeats; ++r) {
    const WallTimer timer;
    pool.run(static_cast<unsigned>(len.size()), fn);
    const double s = timer.seconds();
    if (r == 0 || s < best.seconds) best.seconds = s;
  }
  best.steals = pool.stats().steals;
  return best;
}

double run_serial(const ScanFixture& fix, const std::vector<std::size_t>& len,
                  unsigned repeats) {
  std::uint64_t sink = 0;
  double best = 0;
  for (unsigned r = 0; r < repeats; ++r) {
    const WallTimer timer;
    for (unsigned t = 0; t < len.size(); ++t) sink += fix.scan(t, len[t]);
    const double s = timer.seconds();
    if (r == 0 || s < best) best = s;
  }
  // Keep the compiler honest about the scans.
  if (sink == ~0ull) std::printf("impossible\n");
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t bytes_per_task = bench::arg_or(argc, argv, 1, 1u << 15);
  const unsigned max_threads =
      bench::arg_or(argc, argv, 2, std::min(8u, hardware_threads()));
  const unsigned repeats = bench::arg_or(argc, argv, 3, 3);

  std::printf("== scheduler scaling: dispatch policies on the worker pool ==\n\n");
  std::printf("%u tasks/thread, %zu base bytes/task, best of %u runs\n\n",
              kTasksPerThread, bytes_per_task, repeats);

  const ScanFixture fix(4u << 20, 2017);
  static const char* kClasses[] = {"uniform", "heavy-tail", "adversarial"};

  bench::JsonReport report("scaling");
  report.schema("sfa-scaling-bench/1");
  report.meta("bytes_per_task", bytes_per_task)
      .meta("tasks_per_thread", std::uint64_t{kTasksPerThread})
      .meta("repeats", repeats)
      .meta("max_threads", max_threads);

  // Adversarial speedup of stealing over stripe at the top thread count —
  // the headline number (printed at the end, checked by the CI smoke).
  double adversarial_gain = 0;

  for (const char* cls : kClasses) {
    std::vector<std::vector<std::string>> table;
    table.push_back({"threads", "serial(s)", "static-stripe", "work-stealing",
                     "guided", "ws-speedup", "steals"});
    for (unsigned t = 1; t <= max_threads; t *= 2) {
      const std::vector<std::size_t> len = task_lengths(cls, t, bytes_per_task);
      const double serial = run_serial(fix, len, repeats);
      double policy_seconds[sched::kNumPolicies] = {};
      std::uint64_t steals = 0;
      for (unsigned p = 0; p < sched::kNumPolicies; ++p) {
        const auto policy = static_cast<sched::Policy>(p);
        const RunResult r = run_pool(fix, len, policy, t, repeats);
        policy_seconds[p] = r.seconds;
        if (policy == sched::Policy::kWorkStealing) steals = r.steals;
        auto& row = report.add_row();
        row.set("class", cls)
            .set("scheduler", sched::policy_name(policy))
            .set("threads", t)
            .set("tasks", std::uint64_t{kTasksPerThread} * t)
            .set("seconds", r.seconds)
            .set("serial_seconds", serial)
            .set("speedup", r.seconds > 0 ? serial / r.seconds : 0.0)
            .set("steals", r.steals);
      }
      const double ws_speedup =
          policy_seconds[1] > 0 ? policy_seconds[0] / policy_seconds[1] : 0.0;
      if (std::string(cls) == "adversarial" && t >= 4 && t == max_threads)
        adversarial_gain = ws_speedup;
      table.push_back({std::to_string(t), fixed(serial, 3),
                       fixed(policy_seconds[0], 3), fixed(policy_seconds[1], 3),
                       fixed(policy_seconds[2], 3), fixed(ws_speedup, 2) + "x",
                       with_commas(steals)});
    }
    std::printf("-- %s --\n%s\n", cls, render_table(table).c_str());
  }

  if (adversarial_gain > 0)
    std::printf("adversarial @ %u threads: work-stealing %.2fx over "
                "static-stripe\n",
                max_threads, adversarial_gain);
  report.meta("adversarial_ws_over_stripe", adversarial_gain);
  report.write();
  return 0;
}
