// E2 + E3 — Fig. 4 analogue: sequential optimization speedups.
//
// For each tractable benchmark pattern, construct the SFA with the three
// sequential methods of §IV-A:
//   baseline    — Algorithm 1 over a std::map (red-black tree)
//   hashing     — + fingerprints & chained hash table
//   transposed  — + parameterized transposition (SIMD kernels)
// and report per-pattern speedups over the baseline plus the min / median /
// max summary the paper's Fig. 4 scatter conveys (paper medians: hashing
// 2.0x/1.7x, transposed 2.9x/2.8x; maxima 4.1x/3.1x and 6.8x/5.2x).
//
// Usage: bench_fig4_sequential [num_patterns] [max_sfa_states] [r_length]
// The final section reproduces the §IV-A r500-style absolute-time series
// (paper: 36.6 s / 10.6 s / 6.4 s on Intel; ours is scaled by r_length).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

namespace {

struct Row {
  std::string id;
  std::uint32_t dfa, sfa;
  double t_base, t_hash, t_trans;
};

Row measure(const bench::Workload& w) {
  Row row{w.id, w.dfa.size(), w.sfa_states, 0, 0, 0};
  BuildOptions opt;
  opt.keep_mappings = false;
  BuildStats stats;
  // Untimed warmup (allocator / page-fault effects dominate sub-ms builds).
  build_sfa_hashed(w.dfa, opt, &stats);
  {
    const WallTimer t;
    build_sfa_baseline(w.dfa, opt, &stats);
    row.t_base = t.seconds();
  }
  {
    const WallTimer t;
    build_sfa_hashed(w.dfa, opt, &stats);
    row.t_hash = t.seconds();
  }
  {
    const WallTimer t;
    build_sfa_transposed(w.dfa, opt, &stats);
    row.t_trans = t.seconds();
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned num_patterns = bench::arg_or(argc, argv, 1, 14);
  const unsigned max_states = bench::arg_or(argc, argv, 2, 60000);
  const unsigned r_length = bench::arg_or(argc, argv, 3, 400);

  std::printf("== E2 / Fig. 4: sequential optimization speedups ==\n\n");
  const auto workloads =
      bench::tractable_workloads(num_patterns, 50, max_states);

  bench::JsonReport report("fig4_sequential");
  report.meta("num_patterns", workloads.size()).meta("r_length", r_length);

  std::vector<std::vector<std::string>> table;
  table.push_back({"pattern", "DFA", "SFA states", "base(s)", "hash(s)",
                   "trans(s)", "hash x", "trans x"});
  std::vector<double> hash_speedups, trans_speedups;
  for (const auto& w : workloads) {
    const Row r = measure(w);
    const double sh = r.t_base / r.t_hash;
    const double st = r.t_base / r.t_trans;
    hash_speedups.push_back(sh);
    trans_speedups.push_back(st);
    table.push_back({r.id, std::to_string(r.dfa), with_commas(r.sfa),
                     fixed(r.t_base, 4), fixed(r.t_hash, 4),
                     fixed(r.t_trans, 4), fixed(sh, 2), fixed(st, 2)});
    report.add_row()
        .set("pattern", r.id)
        .set("dfa_states", r.dfa)
        .set("sfa_states", r.sfa)
        .set("baseline_seconds", r.t_base)
        .set("hashed_seconds", r.t_hash)
        .set("transposed_seconds", r.t_trans)
        .set("hashed_speedup", sh)
        .set("transposed_speedup", st);
  }
  std::printf("%s\n", render_table(table).c_str());

  const auto minmax_h =
      std::minmax_element(hash_speedups.begin(), hash_speedups.end());
  const auto minmax_t =
      std::minmax_element(trans_speedups.begin(), trans_speedups.end());
  std::printf("hashing     speedup over baseline: min %.2fx  median %.2fx  max %.2fx\n",
              *minmax_h.first, median_of(hash_speedups), *minmax_h.second);
  std::printf("transposed  speedup over baseline: min %.2fx  median %.2fx  max %.2fx\n",
              *minmax_t.first, median_of(trans_speedups), *minmax_t.second);
  std::printf("(paper, Fig. 4: hashing median 1.7-2.0x max 3.1-4.1x; "
              "hashing+transposition median 2.8-2.9x max 5.2-6.8x)\n\n");

  std::printf("== E3 / §IV-A: r%u synthetic pattern, absolute times ==\n\n",
              r_length);
  const Dfa r_dfa = make_r_benchmark_dfa(r_length, 500);
  BuildOptions opt;
  opt.keep_mappings = false;
  BuildStats stats;
  double tb, th, tt;
  {
    const WallTimer t;
    build_sfa_baseline(r_dfa, opt, &stats);
    tb = t.seconds();
  }
  {
    const WallTimer t;
    build_sfa_hashed(r_dfa, opt, &stats);
    th = t.seconds();
  }
  {
    const WallTimer t;
    build_sfa_transposed(r_dfa, opt, &stats);
    tt = t.seconds();
  }
  std::printf("r%-5u (DFA %u states, SFA %s states)\n", r_length, r_dfa.size(),
              with_commas(stats.sfa_states).c_str());
  std::printf("  baseline    %8.3f s\n", tb);
  std::printf("  hashing     %8.3f s   (%.2fx)\n", th, tb / th);
  std::printf("  transposed  %8.3f s   (%.2fx)\n", tt, tb / tt);
  std::printf("(paper, r500 on Intel: 36.6 s / 10.6 s / 6.4 s — same ordering)\n");
  report.meta("median_hashed_speedup", median_of(hash_speedups))
      .meta("median_transposed_speedup", median_of(trans_speedups))
      .meta("r_series_baseline_seconds", tb)
      .meta("r_series_hashed_seconds", th)
      .meta("r_series_transposed_seconds", tt);
  report.write();
  return 0;
}
