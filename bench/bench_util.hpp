// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/obs/json.hpp"
#include "sfa/obs/stats_export.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"

namespace sfa::bench {

/// A compiled benchmark workload.
struct Workload {
  std::string id;
  std::string pattern;
  Dfa dfa;
  std::uint32_t sfa_states = 0;  // filled after a sizing pass
};

/// Compile the benchmark pattern set, keeping only workloads whose SFA has
/// between `min_states` and `max_states` states (sized with the fast
/// transposed builder).  Mirrors the paper's "exclude patterns that take
/// more than several hours" methodology at laptop scale.
inline std::vector<Workload> tractable_workloads(std::size_t want,
                                                 std::uint32_t min_states,
                                                 std::uint32_t max_states,
                                                 std::uint64_t seed = 2017) {
  std::vector<Workload> out;
  const auto patterns = benchmark_patterns(want * 6, seed);
  for (const auto& p : patterns) {
    if (out.size() >= want) break;
    Dfa dfa = [&]() -> Dfa {
      try {
        return compile_prosite(p.pattern);
      } catch (const std::exception&) {
        return Dfa(1);
      }
    }();
    if (dfa.size() < 2 || dfa.size() > 4000) continue;
    BuildOptions sizing;
    sizing.keep_mappings = false;
    sizing.max_states = max_states;
    try {
      BuildStats stats;
      build_sfa_transposed(dfa, sizing, &stats);
      if (stats.sfa_states < min_states) continue;
      out.push_back({p.id, p.pattern, std::move(dfa),
                     static_cast<std::uint32_t>(stats.sfa_states)});
    } catch (const std::exception&) {
      continue;  // state explosion beyond budget: excluded
    }
  }
  return out;
}

/// Random symbol text over a k-symbol alphabet.
inline std::vector<Symbol> random_text(std::size_t len, unsigned k,
                                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> v(len);
  for (auto& s : v) s = static_cast<Symbol>(rng.below(k));
  return v;
}

inline unsigned arg_or(int argc, char** argv, int index, unsigned fallback) {
  return argc > index
             ? static_cast<unsigned>(std::strtoul(argv[index], nullptr, 10))
             : fallback;
}

/// One key -> scalar field of a bench result row (string, integer, or
/// floating point).
struct Field {
  enum class Kind { kString, kUint, kDouble };
  std::string key;
  Kind kind = Kind::kString;
  std::string s;
  std::uint64_t u = 0;
  double d = 0;
};

/// An ordered bag of fields; `set` dispatches on the value type.
class Fields {
 public:
  template <typename T>
  Fields& set(const std::string& key, T&& value) {
    Field f;
    f.key = key;
    using U = std::decay_t<T>;
    if constexpr (std::is_floating_point_v<U>) {
      f.kind = Field::Kind::kDouble;
      f.d = static_cast<double>(value);
    } else if constexpr (std::is_integral_v<U>) {
      f.kind = Field::Kind::kUint;
      f.u = static_cast<std::uint64_t>(value);
    } else {
      f.kind = Field::Kind::kString;
      f.s = std::string(std::forward<T>(value));
    }
    fields_.push_back(std::move(f));
    return *this;
  }

  const std::vector<Field>& items() const { return fields_; }

 private:
  std::vector<Field> fields_;
};

/// Machine-readable benchmark results (schema sfa-bench/1), written as
/// BENCH_<name>.json into $SFA_BENCH_JSON_DIR (or the working directory).
/// The human-readable tables on stdout stay the primary interface; this is
/// the artifact CI archives so runs can be compared across commits.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Override the schema tag (default sfa-bench/1).  Benches whose row
  /// shape is its own contract — e.g. bench_serve's sfa-serve-bench/1 —
  /// stamp themselves so consumers can dispatch on it.
  JsonReport& schema(std::string schema_tag) {
    schema_ = std::move(schema_tag);
    return *this;
  }

  /// Top-level metadata (args, workload sizes, summary statistics).
  template <typename T>
  JsonReport& meta(const std::string& key, T&& value) {
    meta_.set(key, std::forward<T>(value));
    return *this;
  }

  /// Append a result row; fill it via the returned reference.
  Fields& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Write BENCH_<name>.json.  Never throws: benches should still print
  /// their tables when the artifact directory is unwritable.
  bool write() const {
    const char* dir = std::getenv("SFA_BENCH_JSON_DIR");
    const std::string path = (dir != nullptr && *dir != '\0')
                                 ? std::string(dir) + "/BENCH_" + name_ + ".json"
                                 : "BENCH_" + name_ + ".json";
    std::ofstream os(path, std::ios::binary);
    if (!os) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", schema_);
    w.kv("bench", name_);
    w.kv("cpu", cpu_model_name());
    w.kv("hardware_threads", hardware_threads());
    // Additive sfa-bench/1 host block: sfa_bench_compare warns when two
    // results being diffed came from different hosts/compilers/governors.
    w.key("host");
    obs::write_host_info_json(w);
    write_fields(w, meta_);
    w.key("rows").begin_array();
    for (const Fields& row : rows_) {
      w.begin_object();
      write_fields(w, row);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << '\n';
    if (!os.good()) return false;
    std::printf("bench json: %s\n", path.c_str());
    return true;
  }

 private:
  static void write_fields(obs::JsonWriter& w, const Fields& fields) {
    for (const Field& f : fields.items()) {
      w.key(f.key);
      switch (f.kind) {
        case Field::Kind::kString: w.value(std::string_view(f.s)); break;
        case Field::Kind::kUint: w.value(f.u); break;
        case Field::Kind::kDouble: w.value(f.d); break;
      }
    }
  }

  std::string name_;
  std::string schema_ = "sfa-bench/1";
  Fields meta_;
  std::vector<Fields> rows_;
};

}  // namespace sfa::bench
