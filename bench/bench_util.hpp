// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa::bench {

/// A compiled benchmark workload.
struct Workload {
  std::string id;
  std::string pattern;
  Dfa dfa;
  std::uint32_t sfa_states = 0;  // filled after a sizing pass
};

/// Compile the benchmark pattern set, keeping only workloads whose SFA has
/// between `min_states` and `max_states` states (sized with the fast
/// transposed builder).  Mirrors the paper's "exclude patterns that take
/// more than several hours" methodology at laptop scale.
inline std::vector<Workload> tractable_workloads(std::size_t want,
                                                 std::uint32_t min_states,
                                                 std::uint32_t max_states,
                                                 std::uint64_t seed = 2017) {
  std::vector<Workload> out;
  const auto patterns = benchmark_patterns(want * 6, seed);
  for (const auto& p : patterns) {
    if (out.size() >= want) break;
    Dfa dfa = [&]() -> Dfa {
      try {
        return compile_prosite(p.pattern);
      } catch (const std::exception&) {
        return Dfa(1);
      }
    }();
    if (dfa.size() < 2 || dfa.size() > 4000) continue;
    BuildOptions sizing;
    sizing.keep_mappings = false;
    sizing.max_states = max_states;
    try {
      BuildStats stats;
      build_sfa_transposed(dfa, sizing, &stats);
      if (stats.sfa_states < min_states) continue;
      out.push_back({p.id, p.pattern, std::move(dfa),
                     static_cast<std::uint32_t>(stats.sfa_states)});
    } catch (const std::exception&) {
      continue;  // state explosion beyond budget: excluded
    }
  }
  return out;
}

/// Random symbol text over a k-symbol alphabet.
inline std::vector<Symbol> random_text(std::size_t len, unsigned k,
                                       std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> v(len);
  for (auto& s : v) s = static_cast<Symbol>(rng.below(k));
  return v;
}

inline unsigned arg_or(int argc, char** argv, int index, unsigned fallback) {
  return argc > index
             ? static_cast<unsigned>(std::strtoul(argv[index], nullptr, 10))
             : fallback;
}

}  // namespace sfa::bench
