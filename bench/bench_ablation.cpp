// Ablations for the design choices DESIGN.md §5 calls out:
//   (a) global-queue capacity — the static->work-stealing handoff threshold
//       (§III-B2: too small starves the start phase, too large serializes);
//   (b) hash-table bucket count — chain length vs memory (§III-A);
//   (c) cell width — 16-bit vs 32-bit cells on the same automaton.
//
// Usage: bench_ablation [threads] [r_length]
#include <cstdio>

#include "bench_util.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

namespace {

double timed_build(const Dfa& dfa, BuildOptions opt, BuildStats* stats) {
  opt.keep_mappings = false;
  const WallTimer t;
  build_sfa_parallel(dfa, opt, stats);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bench::arg_or(argc, argv, 1, hardware_threads());
  const unsigned r_length = bench::arg_or(argc, argv, 2, 300);
  const Dfa r_dfa = make_r_benchmark_dfa(r_length, 500);
  const Dfa prosite_dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");

  std::printf("== ablations (r%u + PROSITE PS00010, %u thread(s)) ==\n\n",
              r_length, threads);

  bench::JsonReport report("ablation");
  report.meta("threads", threads).meta("r_length", r_length);

  std::printf("(a) global-queue capacity (static start phase size):\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"capacity", "time r(s)", "global states", "steals"});
    for (std::size_t cap : {1u, 16u, 256u, 4096u, 65536u}) {
      BuildOptions opt;
      opt.num_threads = threads;
      opt.global_queue_capacity = cap;
      BuildStats stats;
      const double secs = timed_build(r_dfa, opt, &stats);
      table.push_back({with_commas(cap), fixed(secs, 3),
                       with_commas(stats.global_queue_states),
                       with_commas(stats.steals)});
      report.add_row()
          .set("section", "global_queue_capacity")
          .set("capacity", cap)
          .set("seconds", secs)
          .set("global_states", stats.global_queue_states)
          .set("steals", stats.steals);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(b) hash-table bucket count (chain length trade-off):\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"buckets", "time r(s)", "chain traversals",
                     "fp collisions"});
    for (std::size_t buckets : {1u << 8, 1u << 12, 1u << 16, 1u << 20}) {
      BuildOptions opt;
      opt.num_threads = threads;
      opt.hash_buckets = buckets;
      BuildStats stats;
      const double secs = timed_build(r_dfa, opt, &stats);
      table.push_back({with_commas(buckets), fixed(secs, 3),
                       with_commas(stats.chain_traversals),
                       with_commas(stats.fingerprint_collisions)});
      report.add_row()
          .set("section", "hash_buckets")
          .set("buckets", buckets)
          .set("seconds", secs)
          .set("chain_traversals", stats.chain_traversals)
          .set("fp_collisions", stats.fingerprint_collisions);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(c) transpose method on the PROSITE workload (sequential):\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"method", "time(s)"});
    for (const auto& [name, method] :
         {std::pair<const char*, TransposeMethod>{"scalar",
                                                  TransposeMethod::kScalar},
          {"simd 8x8", TransposeMethod::kSimd8},
          {"simd 16x16", TransposeMethod::kSimd16x16}}) {
      BuildOptions opt;
      opt.keep_mappings = false;
      opt.transpose = method;
      // Warm, then measure the median of three.
      build_sfa_transposed(prosite_dfa, opt);
      std::vector<double> runs;
      for (int i = 0; i < 3; ++i) {
        const WallTimer t;
        build_sfa_transposed(prosite_dfa, opt);
        runs.push_back(t.seconds());
      }
      table.push_back({name, fixed(median_of(runs), 4)});
      report.add_row()
          .set("section", "transpose_method")
          .set("method", name)
          .set("seconds", median_of(runs));
    }
    std::printf("%s\n", render_table(table).c_str());
  }
  std::printf("(d) probabilistic (fingerprint-only) vs exact construction:\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"builder", "time(s)", "states", "resident store",
                     "peak frontier"});
    BuildOptions opt;
    opt.keep_mappings = false;
    {
      BuildStats stats;
      const WallTimer t;
      build_sfa_transposed(r_dfa, opt, &stats);
      table.push_back({"exact (transposed)", fixed(t.seconds(), 3),
                       with_commas(stats.sfa_states),
                       human_bytes(stats.mapping_bytes_uncompressed), "-"});
      report.add_row()
          .set("section", "probabilistic")
          .set("builder", "exact_transposed")
          .set("seconds", t.seconds())
          .set("sfa_states", stats.sfa_states);
    }
    {
      BuildStats stats;
      const WallTimer t;
      build_sfa_probabilistic(r_dfa, opt, &stats);
      table.push_back({"probabilistic", fixed(t.seconds(), 3),
                       with_commas(stats.sfa_states),
                       human_bytes(stats.mapping_bytes_stored),
                       human_bytes(stats.peak_frontier_bytes)});
      report.add_row()
          .set("section", "probabilistic")
          .set("builder", "probabilistic")
          .set("seconds", t.seconds())
          .set("sfa_states", stats.sfa_states)
          .set("peak_frontier_bytes", stats.peak_frontier_bytes);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(paper §III-B2: the global queue exists because all-thieves\n"
              " contention at the start is worse than brief static service;\n"
              " §III-A: chained table sized to keep expected chain ~1;\n"
              " (d) is the fingerprint-only variant of §III-A, implemented)\n");
  report.write();
  return 0;
}
