// Ablations for the design choices DESIGN.md §5 calls out:
//   (a) global-queue capacity — the static->work-stealing handoff threshold
//       (§III-B2: too small starves the start phase, too large serializes);
//   (b) hash-table bucket count — chain length vs memory (§III-A);
//   (c) cell width — 16-bit vs 32-bit cells on the same automaton;
//   (d) probabilistic (fingerprint-only) vs exact construction;
//   (e) the construction-substrate policy axes (intern / successor /
//       frontier / store, docs/ARCHITECTURE.md) — one JSON row per policy.
//
// Usage: bench_ablation [threads] [r_length]
#include <cstdio>
#include <string_view>

#include "bench_util.hpp"
#include "sfa/concurrent/arena.hpp"
#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/core/state.hpp"
#include "sfa/hash/city64.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

namespace {

double timed_build(const Dfa& dfa, BuildOptions opt, BuildStats* stats) {
  opt.keep_mappings = false;
  const WallTimer t;
  build_sfa_parallel(dfa, opt, stats);
  return t.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned threads = bench::arg_or(argc, argv, 1, hardware_threads());
  const unsigned r_length = bench::arg_or(argc, argv, 2, 300);
  const Dfa r_dfa = make_r_benchmark_dfa(r_length, 500);
  const Dfa prosite_dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");

  std::printf("== ablations (r%u + PROSITE PS00010, %u thread(s)) ==\n\n",
              r_length, threads);

  bench::JsonReport report("ablation");
  report.meta("threads", threads).meta("r_length", r_length);

  std::printf("(a) global-queue capacity (static start phase size):\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"capacity", "time r(s)", "global states", "steals"});
    for (std::size_t cap : {1u, 16u, 256u, 4096u, 65536u}) {
      BuildOptions opt;
      opt.num_threads = threads;
      opt.global_queue_capacity = cap;
      BuildStats stats;
      const double secs = timed_build(r_dfa, opt, &stats);
      table.push_back({with_commas(cap), fixed(secs, 3),
                       with_commas(stats.global_queue_states),
                       with_commas(stats.steals)});
      report.add_row()
          .set("section", "global_queue_capacity")
          .set("capacity", cap)
          .set("seconds", secs)
          .set("global_states", stats.global_queue_states)
          .set("steals", stats.steals);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(b) hash-table bucket count (chain length trade-off):\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"buckets", "time r(s)", "chain traversals",
                     "fp collisions"});
    for (std::size_t buckets : {1u << 8, 1u << 12, 1u << 16, 1u << 20}) {
      BuildOptions opt;
      opt.num_threads = threads;
      opt.hash_buckets = buckets;
      BuildStats stats;
      const double secs = timed_build(r_dfa, opt, &stats);
      table.push_back({with_commas(buckets), fixed(secs, 3),
                       with_commas(stats.chain_traversals),
                       with_commas(stats.fingerprint_collisions)});
      report.add_row()
          .set("section", "hash_buckets")
          .set("buckets", buckets)
          .set("seconds", secs)
          .set("chain_traversals", stats.chain_traversals)
          .set("fp_collisions", stats.fingerprint_collisions);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(c) transpose method on the PROSITE workload (sequential):\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"method", "time(s)"});
    for (const auto& [name, method] :
         {std::pair<const char*, TransposeMethod>{"scalar",
                                                  TransposeMethod::kScalar},
          {"simd 8x8", TransposeMethod::kSimd8},
          {"simd 16x16", TransposeMethod::kSimd16x16}}) {
      BuildOptions opt;
      opt.keep_mappings = false;
      opt.transpose = method;
      // Warm, then measure the median of three.
      build_sfa_transposed(prosite_dfa, opt);
      std::vector<double> runs;
      for (int i = 0; i < 3; ++i) {
        const WallTimer t;
        build_sfa_transposed(prosite_dfa, opt);
        runs.push_back(t.seconds());
      }
      table.push_back({name, fixed(median_of(runs), 4)});
      report.add_row()
          .set("section", "transpose_method")
          .set("method", name)
          .set("seconds", median_of(runs));
    }
    std::printf("%s\n", render_table(table).c_str());
  }
  std::printf("(d) probabilistic (fingerprint-only) vs exact construction:\n");
  {
    std::vector<std::vector<std::string>> table;
    table.push_back({"builder", "time(s)", "states", "resident store",
                     "peak frontier"});
    BuildOptions opt;
    opt.keep_mappings = false;
    {
      BuildStats stats;
      const WallTimer t;
      build_sfa_transposed(r_dfa, opt, &stats);
      table.push_back({"exact (transposed)", fixed(t.seconds(), 3),
                       with_commas(stats.sfa_states),
                       human_bytes(stats.mapping_bytes_uncompressed), "-"});
      report.add_row()
          .set("section", "probabilistic")
          .set("builder", "exact_transposed")
          .set("seconds", t.seconds())
          .set("sfa_states", stats.sfa_states);
    }
    {
      BuildStats stats;
      const WallTimer t;
      build_sfa_probabilistic(r_dfa, opt, &stats);
      table.push_back({"probabilistic", fixed(t.seconds(), 3),
                       with_commas(stats.sfa_states),
                       human_bytes(stats.mapping_bytes_stored),
                       human_bytes(stats.peak_frontier_bytes)});
      report.add_row()
          .set("section", "probabilistic")
          .set("builder", "probabilistic")
          .set("seconds", t.seconds())
          .set("sfa_states", stats.sfa_states)
          .set("peak_frontier_bytes", stats.peak_frontier_bytes);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(e) construction-substrate policy axes (docs/ARCHITECTURE.md):\n");
  {
    // One row per policy choice, varying a single axis at a time against the
    // substrate's reference point (chained intern, transposed successors,
    // FIFO frontier, raw store == the kTransposed builder).
    struct PolicyRun {
      const char* axis;
      const char* policy;
      BuildMethod method;
      BuildOptions options;
    };
    std::vector<PolicyRun> runs;
    {
      BuildOptions base;
      runs.push_back({"intern", "tree", BuildMethod::kBaseline, base});
      runs.push_back({"intern", "chained", BuildMethod::kHashed, base});
      runs.push_back({"intern", "fingerprint", BuildMethod::kProbabilistic, base});
      runs.push_back({"successor", "scalar", BuildMethod::kHashed, base});
      runs.push_back({"successor", "transposed", BuildMethod::kTransposed, base});
      runs.push_back({"frontier", "fifo", BuildMethod::kTransposed, base});
      BuildOptions stealing = base;
      stealing.num_threads = threads;
      runs.push_back({"frontier", "work-stealing", BuildMethod::kParallel,
                      stealing});
      runs.push_back({"store", "raw", BuildMethod::kTransposed, base});
      BuildOptions compressed = base;
      compressed.memory_threshold_bytes = 1u << 12;
      runs.push_back({"store", "compressed", BuildMethod::kTransposed,
                      compressed});
      runs.push_back({"store", "drop", BuildMethod::kProbabilistic, base});
    }
    std::vector<std::vector<std::string>> table;
    table.push_back({"axis", "policy", "time r(s)", "states", "store bytes"});
    for (const PolicyRun& run : runs) {
      BuildOptions opt = run.options;
      // The store axis needs the mappings retained to measure the stores
      // (except "drop", whose whole point is freeing payloads after
      // expansion); the other axes compare pure construction speed.
      opt.keep_mappings = std::string_view(run.axis) == "store" &&
                          std::string_view(run.policy) != "drop";
      build_sfa(r_dfa, run.method, opt);  // warm
      std::vector<double> times;
      BuildStats stats;
      for (int i = 0; i < 3; ++i) {
        const WallTimer t;
        build_sfa(r_dfa, run.method, opt, &stats);
        times.push_back(t.seconds());
      }
      const double secs = median_of(times);
      const bool store_axis = std::string_view(run.axis) == "store";
      table.push_back({run.axis, run.policy, fixed(secs, 3),
                       with_commas(stats.sfa_states),
                       store_axis ? human_bytes(stats.mapping_bytes_stored)
                                  : std::string("-")});
      report.add_row()
          .set("section", "substrate_policy")
          .set("axis", run.axis)
          .set("policy", run.policy)
          .set("seconds", secs)
          .set("sfa_states", stats.sfa_states)
          .set("mapping_bytes_stored",
               store_axis ? stats.mapping_bytes_stored : 0)
          .set("compression_triggered", stats.compression_triggered);
    }
    std::printf("%s\n", render_table(table).c_str());
  }

  std::printf("(f) find() vs find_counted() lookup overhead (SFA_TRACE-independent):\n");
  {
    // The sequential builders use find_counted() so BuildStats sees lookup
    // work; the parallel intern loop and the lazy matcher use the uncounted
    // find().  This measures what the counters actually cost per probe —
    // counting is plain atomics, so the number is the same whether the
    // binary was built with SFA_TRACE=ON or OFF.
    using Node = StateNode<std::uint16_t>;
    using Traits = StateNodeTraits<std::uint16_t>;
    constexpr std::uint32_t kCells = 8;
    constexpr std::size_t kNodes = 1u << 16;
    constexpr std::size_t kLookups = 1u << 22;

    Arena headers, payloads;
    LockFreeHashSet<Node, Traits> set(1u << 17);
    Traits::set_compare_context(nullptr, sizeof(std::uint16_t) * kCells);
    std::vector<std::uint64_t> fps(kNodes);
    std::vector<Node*> nodes(kNodes);
    Xoshiro256 rng(0xAB1A7E);
    for (std::size_t i = 0; i < kNodes; ++i) {
      std::uint16_t cells[kCells];
      for (auto& c : cells) c = static_cast<std::uint16_t>(rng.next());
      cells[0] = static_cast<std::uint16_t>(i);  // force distinctness
      fps[i] = city_hash64(cells, sizeof(cells));
      nodes[i] = make_state_node<std::uint16_t>(headers, payloads, cells,
                                                kCells, fps[i]);
      set.insert_if_absent(nodes[i]);
    }

    const auto sweep = [&](auto&& lookup) {
      std::uint64_t found = 0;
      const WallTimer t;
      for (std::size_t i = 0; i < kLookups; ++i) {
        const std::size_t j = i & (kNodes - 1);
        found += lookup(fps[j], *nodes[j]) != nullptr;
      }
      const double ns = t.seconds() * 1e9 / static_cast<double>(kLookups);
      if (found != kLookups) std::printf("LOOKUP MISSES?!\n");
      return ns;
    };
    // Warm both paths, then take the median of three sweeps each.
    sweep([&](std::uint64_t fp, const Node& p) { return set.find(fp, p); });
    sweep([&](std::uint64_t fp, const Node& p) { return set.find_counted(fp, p); });
    std::vector<double> plain_runs, counted_runs;
    for (int i = 0; i < 3; ++i) {
      plain_runs.push_back(sweep(
          [&](std::uint64_t fp, const Node& p) { return set.find(fp, p); }));
      counted_runs.push_back(sweep([&](std::uint64_t fp, const Node& p) {
        return set.find_counted(fp, p);
      }));
    }
    const double plain_ns = median_of(plain_runs);
    const double counted_ns = median_of(counted_runs);
    const double overhead_pct = (counted_ns / plain_ns - 1.0) * 100.0;
    std::vector<std::vector<std::string>> table;
    table.push_back({"lookup", "ns/lookup", "overhead"});
    table.push_back({"find (uncounted)", fixed(plain_ns, 1), "-"});
    table.push_back({"find_counted", fixed(counted_ns, 1),
                     fixed(overhead_pct, 1) + "%"});
    std::printf("%s\n", render_table(table).c_str());
    report.add_row()
        .set("section", "find_counted_overhead")
        .set("lookup", "find")
        .set("ns_per_lookup", plain_ns);
    report.add_row()
        .set("section", "find_counted_overhead")
        .set("lookup", "find_counted")
        .set("ns_per_lookup", counted_ns)
        .set("overhead_pct", overhead_pct);
  }

  std::printf("(paper §III-B2: the global queue exists because all-thieves\n"
              " contention at the start is worse than brief static service;\n"
              " §III-A: chained table sized to keep expected chain ~1;\n"
              " (d) is the fingerprint-only variant of §III-A, implemented)\n");
  report.write();
  return 0;
}
