// bench_serve — heavy-traffic service benchmark (ISSUE: service layer).
//
// Drives MatchService through the shared open-loop simulator across three
// sections:
//
//   1. engine × input-class matrix: every request engine against the
//      harness input-class generators (low entropy / high entropy /
//      adversarial-for-narrowing), closed loop, reporting p50/p99 latency
//      and throughput per cell;
//   2. churn: a tight cache budget with more live pattern sets than fit,
//      so requests continuously rebuild + evict (lazy construction and
//      LRU under pressure are IN the measured path);
//   3. dispatch amortization: the same request stream served batched
//      (max_batch=16) vs one-at-a-time, with pool dispatches per request —
//      the number the batched-submit design exists to shrink.
//
// Emits BENCH_serve.json (schema sfa-serve-bench/1) for sfa_bench_compare;
// latency fields are *_latency_ms (lower is better), throughput fields are
// *_per_sec (higher is better).
//
//   bench_serve [requests-per-cell] [input-symbols] [open-loop-rate/s]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/input_classes.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/serve/match_service.hpp"
#include "sfa/serve/simulator.hpp"

namespace {

using namespace sfa;
using serve::EngineChoice;
using serve::MatchRequest;
using serve::MatchService;
using serve::PatternSpec;
using serve::PatternSyntax;
using serve::TaskKind;

PatternSpec literal(const std::string& text) {
  return PatternSpec{"lit:" + text, PatternSyntax::kLiteral, text};
}

std::vector<std::vector<PatternSpec>> bench_sets() {
  return {
      {literal("RGD"), literal("WKY"), literal("HDEL")},
      {literal("KDEL"), PatternSpec{"re", PatternSyntax::kRegex, "W.{2}K"}},
      {literal("ACDC"), literal("GHRG")},
  };
}

struct Cell {
  std::string engine;
  std::string input_class;
  serve::SimResult result;
};

constexpr TaskKind kTaskMix[] = {TaskKind::kAccept, TaskKind::kCount,
                                 TaskKind::kFindFirst, TaskKind::kFindAll};

}  // namespace

int main(int argc, char** argv) {
  const unsigned requests = bench::arg_or(argc, argv, 1, 96);
  const unsigned input_symbols = bench::arg_or(argc, argv, 2, 6144);
  const unsigned open_rate = bench::arg_or(argc, argv, 3, 4000);

  serve::ServiceOptions options;
  options.default_chunks = 4;
  options.max_batch_workers = 4;  // fixed fan-out: comparable across hosts
  MatchService service(options);
  std::vector<std::uint64_t> handles;
  for (const auto& set : bench_sets())
    handles.push_back(service.register_set(set));
  const auto first_entry = service.resolve(handles.front());
  if (first_entry == nullptr) {
    std::fprintf(stderr, "bench_serve: could not resolve the seed set\n");
    return 1;
  }
  const unsigned k = service.registry().alphabet().size();

  bench::JsonReport report("serve");
  report.schema("sfa-serve-bench/1");
  report.meta("requests_per_cell", requests)
      .meta("input_symbols", input_symbols)
      .meta("pattern_sets", handles.size())
      .meta("open_loop_rate_per_sec", open_rate);

  // --- Section 1: engine × input-class matrix (closed loop) --------------
  struct InputClass {
    const char* name;
    std::vector<std::vector<Symbol>> inputs;
  };
  std::vector<InputClass> classes;
  {
    std::vector<std::vector<Symbol>> low, high, adv;
    for (std::uint64_t i = 0; i < 8; ++i) {
      low.push_back(testing::low_entropy_input(2017 + i, k, input_symbols));
      high.push_back(testing::high_entropy_input(4034 + i, k, input_symbols));
      adv.push_back(
          testing::adversarial_input(first_entry->dfa, 6051 + i, input_symbols));
    }
    classes.push_back({"low_entropy", std::move(low)});
    classes.push_back({"high_entropy", std::move(high)});
    classes.push_back({"adversarial", std::move(adv)});
  }

  const std::pair<const char*, EngineChoice> engines[] = {
      {"eager", EngineChoice::kEager},
      {"lazy", EngineChoice::kLazy},
      {"speculative", EngineChoice::kSpeculative},
      {"narrowed", EngineChoice::kNarrowed},
  };

  std::printf("== engine x input-class (closed loop, %u requests/cell) ==\n",
              requests);
  std::printf("%-12s %-13s %10s %10s %14s\n", "engine", "input", "p50 ms",
              "p99 ms", "matches/s");
  std::vector<Cell> cells;
  for (const auto& [engine_name, engine] : engines) {
    for (const InputClass& cls : classes) {
      serve::SimOptions sim;
      sim.seed = 2017;
      sim.requests = requests;
      sim.max_batch = 16;
      const auto result = serve::run_simulation(
          service, sim, [&](std::size_t i) {
            MatchRequest r;
            r.set = handles[i % handles.size()];
            r.engine = engine;
            r.task = kTaskMix[i % 4];
            const std::vector<Symbol>& input = cls.inputs[i % cls.inputs.size()];
            r.data = input.data();
            r.len = input.size();
            return r;
          });
      std::printf("%-12s %-13s %10.3f %10.3f %14.0f\n", engine_name, cls.name,
                  result.run.p50_ms, result.run.p99_ms,
                  result.run.matches_per_sec);
      cells.push_back({engine_name, cls.name, result});
    }
  }
  for (const Cell& cell : cells) {
    report.add_row()
        .set("section", "engine_matrix")
        .set("engine", cell.engine)
        .set("input_class", cell.input_class)
        .set("requests", static_cast<std::uint64_t>(requests))
        .set("failed", cell.result.failed)
        .set("p50_latency_ms", cell.result.run.p50_ms)
        .set("p99_latency_ms", cell.result.run.p99_ms)
        .set("mean_latency_ms", cell.result.run.mean_ms)
        .set("requests_per_sec", cell.result.run.requests_per_sec)
        .set("matches_per_sec", cell.result.run.matches_per_sec)
        .set("symbols_per_sec", cell.result.run.symbols_per_sec);
  }

  // --- Section 2: open-loop arrivals -------------------------------------
  {
    serve::SimOptions sim;
    sim.seed = 99;
    sim.requests = requests;
    sim.max_batch = 16;
    sim.arrival_rate_per_sec = open_rate;
    const auto& inputs = classes[1].inputs;  // high entropy
    const auto result =
        serve::run_simulation(service, sim, [&](std::size_t i) {
          MatchRequest r;
          r.set = handles[i % handles.size()];
          r.engine = engines[i % 4].second;
          r.task = kTaskMix[i % 4];
          const std::vector<Symbol>& input = inputs[i % inputs.size()];
          r.data = input.data();
          r.len = input.size();
          return r;
        });
    std::printf("== open loop @ %u req/s: p50 %.3f ms  p99 %.3f ms ==\n",
                open_rate, result.run.p50_ms, result.run.p99_ms);
    report.add_row()
        .set("section", "open_loop")
        .set("engine", "mixed")
        .set("input_class", "high_entropy")
        .set("requests", static_cast<std::uint64_t>(requests))
        .set("failed", result.failed)
        .set("p50_latency_ms", result.run.p50_ms)
        .set("p99_latency_ms", result.run.p99_ms)
        .set("matches_per_sec", result.run.matches_per_sec);
  }

  // --- Section 3: pattern-set churn under a tight cache budget -----------
  {
    serve::ServiceOptions churn_options;
    churn_options.default_chunks = 4;
    churn_options.max_batch_workers = 4;
    // Size the budget off one entry so roughly two of the twelve live sets
    // fit: every set rotation evicts and rebuilds.
    churn_options.cache.memory_budget_bytes = first_entry->bytes * 5 / 2;
    MatchService churn_service(churn_options);
    std::vector<std::uint64_t> churn_handles;
    const char* words[] = {"RGD", "WKY", "HDEL", "KDEL", "ACDC", "GHRG",
                           "MAP", "PHD", "CHIP", "DISK", "NET", "GRID"};
    for (const char* w : words)
      churn_handles.push_back(churn_service.register_set({literal(w)}));

    serve::SimOptions sim;
    sim.seed = 7;
    sim.requests = requests;
    sim.max_batch = 8;
    const auto& inputs = classes[0].inputs;
    const auto result =
        serve::run_simulation(churn_service, sim, [&](std::size_t i) {
          MatchRequest r;
          r.set = churn_handles[i % churn_handles.size()];
          r.engine = EngineChoice::kEager;
          r.task = kTaskMix[i % 4];
          const std::vector<Symbol>& input = inputs[i % inputs.size()];
          r.data = input.data();
          r.len = input.size();
          return r;
        });
    const auto stats = churn_service.stats();
    std::printf(
        "== churn (%zu sets, %llu-byte budget): %llu misses %llu evictions "
        "p99 %.3f ms ==\n",
        churn_handles.size(),
        static_cast<unsigned long long>(churn_options.cache.memory_budget_bytes),
        static_cast<unsigned long long>(stats.cache.misses),
        static_cast<unsigned long long>(stats.cache.evictions),
        result.run.p99_ms);
    report.add_row()
        .set("section", "churn")
        .set("engine", "eager")
        .set("input_class", "low_entropy")
        .set("requests", static_cast<std::uint64_t>(requests))
        .set("failed", result.failed)
        .set("cache_hits", stats.cache.hits)
        .set("cache_misses", stats.cache.misses)
        .set("cache_evictions", stats.cache.evictions)
        .set("p50_latency_ms", result.run.p50_ms)
        .set("p99_latency_ms", result.run.p99_ms)
        .set("requests_per_sec", result.run.requests_per_sec);
  }

  // --- Section 4: dispatch amortization, batched vs single submit --------
  for (const std::size_t max_batch : {std::size_t{16}, std::size_t{1}}) {
    const std::uint64_t before =
        scan::default_executor().stats().pool_dispatches;
    serve::SimOptions sim;
    sim.seed = 11;
    sim.requests = requests;
    sim.max_batch = max_batch;
    const auto& inputs = classes[1].inputs;
    const auto result =
        serve::run_simulation(service, sim, [&](std::size_t i) {
          MatchRequest r;
          r.set = handles[i % handles.size()];
          r.engine = EngineChoice::kEager;
          r.task = TaskKind::kCount;
          const std::vector<Symbol>& input = inputs[i % inputs.size()];
          r.data = input.data();
          r.len = input.size();
          return r;
        });
    const std::uint64_t dispatches =
        scan::default_executor().stats().pool_dispatches - before;
    const double per_request =
        static_cast<double>(dispatches) / static_cast<double>(requests);
    const char* mode = max_batch > 1 ? "batched" : "single";
    std::printf(
        "== %s submit: %.3f dispatches/request, %.0f requests/s ==\n", mode,
        per_request, result.run.requests_per_sec);
    report.add_row()
        .set("section", "dispatch_amortization")
        .set("mode", mode)
        .set("requests", static_cast<std::uint64_t>(requests))
        .set("pool_dispatches", dispatches)
        .set("dispatches_per_request", per_request)
        .set("requests_per_sec", result.run.requests_per_sec);
  }

  report.write();
  return 0;
}
