// E5 — §IV-B queue comparison: thread-local work-stealing queues vs a
// multi-producer/multi-consumer queue (Michael-Scott, standing in for the
// TBB concurrent_queue the paper measured).
//
// The paper's evidence was (a) wall time on r500 construction (0.16 s WS vs
// 1.00 s TBB at 88 threads) and (b) perf-c2c HITM counts (2630 vs 5637).
// We reproduce both signals with a work-distribution driver that replays
// construction-shaped traffic (each item spawns children until N items have
// flowed) through either queue discipline, reporting wall time and CAS
// failures — the software proxy for coherence traffic (DESIGN.md §4).
//
// Usage: bench_queue_compare [items] [max_threads] [r_length]
#include <atomic>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "sfa/concurrent/barrier.hpp"
#include "sfa/concurrent/mpmc_queue.hpp"
#include "sfa/concurrent/ws_queue.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

namespace {

/// Construction-shaped traffic: start with one item; each processed item
/// enqueues `kFanout` children while the global budget lasts.  "Processing"
/// does a small amount of hashing work to mimic successor generation.
constexpr unsigned kFanout = 4;

std::uint64_t fake_work(std::uint64_t x) {
  // ~20 multiply-xor rounds, stands in for fingerprinting one state.
  for (int i = 0; i < 20; ++i) x = (x ^ (x >> 29)) * 0x9E3779B97F4A7C15ull;
  return x;
}

struct DriverResult {
  double seconds;
  std::uint64_t processed;
  std::uint64_t cas_failures;
  std::uint64_t steals;
};

DriverResult drive_ws(std::uint64_t budget, unsigned threads) {
  std::vector<std::unique_ptr<WorkStealingQueue>> queues;
  for (unsigned t = 0; t < threads; ++t)
    queues.push_back(std::make_unique<WorkStealingQueue>());
  std::atomic<std::uint64_t> spawned{1}, pending{1}, processed{0};
  std::atomic<std::uint64_t> sink{0};
  queues[0]->push(1);

  const WallTimer timer;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < threads; ++t) {
    team.emplace_back([&, t] {
      for (;;) {
        std::optional<std::uint64_t> item = queues[t]->pop();
        for (unsigned i = 1; !item && i < threads; ++i)
          item = queues[(t + i) % threads]->steal();
        if (!item) {
          if (pending.load(std::memory_order_acquire) == 0) return;
          cpu_pause();
          continue;
        }
        sink.fetch_add(fake_work(*item), std::memory_order_relaxed);
        processed.fetch_add(1, std::memory_order_relaxed);
        for (unsigned c = 0; c < kFanout; ++c) {
          if (spawned.fetch_add(1, std::memory_order_relaxed) < budget) {
            pending.fetch_add(1, std::memory_order_acq_rel);
            queues[t]->push(*item * kFanout + c + 1);
          }
        }
        pending.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& th : team) th.join();

  DriverResult r{timer.seconds(), processed.load(), 0, 0};
  for (const auto& q : queues) {
    r.cas_failures += q->counters.cas_failures.load();
    r.steals += q->counters.steals.load();
  }
  return r;
}

DriverResult drive_mpmc(std::uint64_t budget, unsigned threads) {
  MpmcQueue queue;
  std::atomic<std::uint64_t> spawned{1}, pending{1}, processed{0};
  std::atomic<std::uint64_t> sink{0};
  queue.enqueue(1);

  const WallTimer timer;
  std::vector<std::thread> team;
  for (unsigned t = 0; t < threads; ++t) {
    team.emplace_back([&] {
      for (;;) {
        const auto item = queue.dequeue();
        if (!item) {
          if (pending.load(std::memory_order_acquire) == 0) return;
          cpu_pause();
          continue;
        }
        sink.fetch_add(fake_work(*item), std::memory_order_relaxed);
        processed.fetch_add(1, std::memory_order_relaxed);
        for (unsigned c = 0; c < kFanout; ++c) {
          if (spawned.fetch_add(1, std::memory_order_relaxed) < budget) {
            pending.fetch_add(1, std::memory_order_acq_rel);
            queue.enqueue(*item * kFanout + c + 1);
          }
        }
        pending.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (auto& th : team) th.join();
  return {timer.seconds(), processed.load(),
          queue.counters.cas_failures.load(), 0};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t items = bench::arg_or(argc, argv, 1, 200000);
  const unsigned max_threads =
      bench::arg_or(argc, argv, 2, std::max(8u, hardware_threads()));
  const unsigned r_length = bench::arg_or(argc, argv, 3, 300);

  std::printf("== E5 / §IV-B: work-stealing queues vs MPMC queue ==\n\n");
  std::printf("driver: %llu construction-shaped work items\n\n",
              static_cast<unsigned long long>(items));

  std::vector<std::vector<std::string>> table;
  table.push_back({"threads", "WS time(s)", "MPMC time(s)", "WS CAS-fail",
                   "MPMC CAS-fail", "WS steals"});
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    const DriverResult ws = drive_ws(items, t);
    const DriverResult mp = drive_mpmc(items, t);
    table.push_back({std::to_string(t), fixed(ws.seconds, 3),
                     fixed(mp.seconds, 3), with_commas(ws.cas_failures),
                     with_commas(mp.cas_failures), with_commas(ws.steals)});
  }
  std::printf("%s\n", render_table(table).c_str());
  std::printf("(paper: WS 0.16 s vs TBB 1.00 s at 88 threads on r500; HITM "
              "2630 vs 5637.\n CAS failures on the shared MPMC head/tail are "
              "the coherence-traffic proxy.)\n\n");

  // Context: actual r-benchmark construction time with the WS-based builder.
  const Dfa r_dfa = make_r_benchmark_dfa(r_length, 500);
  std::printf("r%u SFA construction (full parallel builder, WS queues):\n",
              r_length);
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    BuildOptions opt;
    opt.keep_mappings = false;
    opt.num_threads = t;
    BuildStats stats;
    const WallTimer timer;
    build_sfa_parallel(r_dfa, opt, &stats);
    std::printf("  %3u threads: %7.3f s  (steals %llu, steal-fail %llu)\n", t,
                timer.seconds(),
                static_cast<unsigned long long>(stats.steals),
                static_cast<unsigned long long>(stats.steal_failures));
  }
  return 0;
}
