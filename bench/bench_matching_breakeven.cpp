// E10 — §IV-D: SFA matching and the construction break-even point.
//
// The paper measures a 7.94 s/GB sequential matcher on the Intel host and
// r500 parallel construction at 0.16 s with 88 threads, concluding that for
// inputs over ~20 MB it already pays to build the SFA and match in parallel.
// This harness measures (a) the sequential DFA matcher rate, (b) the
// parallel SFA matching rate per thread count, (c) SFA construction time,
// and derives the same break-even size for this host.
//
// Usage: bench_matching_breakeven [input_mib] [max_threads] [r_length]
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "harness/input_classes.hpp"
#include "sfa/automata/random_dfa.hpp"
#include "sfa/core/lazy_matcher.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

namespace {

/// The legacy dispatch policy, reconstructed for contrast: a fresh
/// std::thread per chunk on every call (what every parallel matcher did
/// before the persistent pool).
class SpawnExecutor final : public scan::Executor {
 public:
  void for_chunks(unsigned chunks, const scan::ChunkBody& body) override {
    if (chunks <= 1) {
      for (unsigned c = 0; c < chunks; ++c) body(c);
      return;
    }
    std::vector<std::thread> team;
    team.reserve(chunks);
    for (unsigned c = 0; c < chunks; ++c)
      team.emplace_back([&body, c] { body(c); });
    for (auto& th : team) th.join();
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t input_mib = bench::arg_or(argc, argv, 1, 64);
  const unsigned max_threads =
      bench::arg_or(argc, argv, 2, std::max(8u, hardware_threads()));
  const unsigned r_length = bench::arg_or(argc, argv, 3, 400);

  std::printf("== E10 / §IV-D: matching break-even ==\n\n");

  const Dfa dfa = make_r_benchmark_dfa(r_length, 500);
  BuildOptions opt;
  opt.num_threads = hardware_threads();
  const WallTimer build_timer;
  const Sfa sfa = build_sfa_parallel(dfa, opt);
  const double t_build = build_timer.seconds();
  std::printf("r%u SFA: %s states, construction %.3f s (%u threads)\n\n",
              r_length, with_commas(sfa.num_states()).c_str(), t_build,
              opt.num_threads);

  const std::size_t len = input_mib << 20;
  const auto input = bench::random_text(len, dfa.num_symbols(), 99);

  // (a) Sequential DFA matcher rate.
  const WallTimer seq_timer;
  const MatchResult seq = match_sequential(dfa, input);
  const double t_seq = seq_timer.seconds();
  const double seq_gb_s = static_cast<double>(len) / t_seq / 1e9;
  std::printf("sequential DFA matcher: %.3f s for %zu MiB  (%.2f s/GB; "
              "paper: 7.94 s/GB)\n\n",
              t_seq, input_mib, 1.0 / seq_gb_s);

  // (b) Parallel SFA matching per thread count.
  std::vector<std::vector<std::string>> table;
  table.push_back({"threads", "match(s)", "speedup", "break-even input"});
  for (unsigned t = 1; t <= max_threads; t *= 2) {
    const WallTimer par_timer;
    const MatchResult par = match_sfa_parallel(sfa, input, t);
    const double t_par = par_timer.seconds();
    if (par.accepted != seq.accepted) {
      std::printf("MISMATCH at %u threads!\n", t);
      return 1;
    }
    // Break-even: smallest size where t_build + size*par_rate <=
    // size*seq_rate.  Rates are per byte.
    const double seq_rate = t_seq / static_cast<double>(len);
    const double par_rate = t_par / static_cast<double>(len);
    std::string breakeven = "never (no parallel gain)";
    if (par_rate < seq_rate) {
      breakeven =
          human_bytes(static_cast<std::uint64_t>(t_build / (seq_rate - par_rate)));
    }
    table.push_back({std::to_string(t), fixed(t_par, 3),
                     fixed(t_seq / t_par, 2) + "x", breakeven});
  }
  std::printf("%s\n", render_table(table).c_str());
  std::printf("(paper: 20 MB break-even at 88 threads; on a single-core host\n"
              " parallel matching cannot beat the sequential matcher, so the\n"
              " break-even degenerates — the full code path still runs)\n\n");

  // Related-work contrast (§V): speculative parallel DFA matching re-matches
  // every chunk whose entry-state guess was wrong; SFA matching is
  // failure-free.  The r-pattern (no catenation) is the speculation-friendly
  // extreme (the DFA parks in the sink), a mid-prefix guess the adversarial
  // one.
  std::printf("speculative DFA matching (Holub/Stekr-style baseline):\n");
  std::vector<std::vector<std::string>> spec_table;
  spec_table.push_back({"threads", "guess", "rematched/chunks", "time(s)"});
  for (unsigned t : {4u, 8u}) {
    const SpeculativeResult sampled = match_speculative(dfa, input, t);
    const WallTimer t1;
    match_speculative(dfa, input, t);
    const double sampled_s = t1.seconds();
    spec_table.push_back({std::to_string(t), "sampled hot state",
                          std::to_string(sampled.rematched_chunks) + "/" +
                              std::to_string(sampled.chunks),
                          fixed(sampled_s, 3)});
    const Dfa::StateId bad_guess = dfa.size() / 2;  // mid-prefix state
    const SpeculativeResult adversarial =
        match_speculative(dfa, input, t, bad_guess);
    const WallTimer t2;
    match_speculative(dfa, input, t, bad_guess);
    spec_table.push_back({std::to_string(t), "mid-prefix state",
                          std::to_string(adversarial.rematched_chunks) + "/" +
                              std::to_string(adversarial.chunks),
                          fixed(t2.seconds(), 3)});
  }
  std::printf("%s", render_table(spec_table).c_str());
  std::printf("(SFA matching never re-matches — the failure-free property\n"
              " Sin'ya et al. introduced SFAs for)\n\n");

  // (c') Executor contrast: the persistent worker pool vs the legacy
  // spawn-per-call policy, same EagerEngine work either way.  One-shot
  // calls amortize thread creation over a whole input; a streaming session
  // pays it per *block*, which is where the pool is the headline.
  std::printf("pooled vs spawn executor (same scan work, dispatch only):\n");
  {
    SpawnExecutor spawn;
    scan::Executor& pooled = scan::default_executor();
    const std::size_t call_len = std::min(len, std::size_t{256} << 10);
    constexpr int kCalls = 100;
    std::vector<std::vector<std::string>> exec_table;
    exec_table.push_back(
        {"threads", "pooled/call(us)", "spawn/call(us)", "dispatch saved"});
    for (unsigned t : {1u, 4u, 8u}) {
      {  // warm the pool to this team size outside the timed region
        scan::EagerEngine warm(sfa);
        scan::run_accept(warm, pooled, input.data(), call_len, t);
      }
      const WallTimer pt;
      for (int i = 0; i < kCalls; ++i) {
        scan::EagerEngine engine(sfa);
        scan::run_accept(engine, pooled, input.data(), call_len, t);
      }
      const double pooled_us = pt.seconds() / kCalls * 1e6;
      const WallTimer st;
      for (int i = 0; i < kCalls; ++i) {
        scan::EagerEngine engine(sfa);
        scan::run_accept(engine, spawn, input.data(), call_len, t);
      }
      const double spawn_us = st.seconds() / kCalls * 1e6;
      exec_table.push_back(
          {std::to_string(t), fixed(pooled_us, 1), fixed(spawn_us, 1),
           fixed(spawn_us - pooled_us, 1) + " us"});
    }
    std::printf("%s", render_table(exec_table).c_str());

    // Streaming session: 1000 blocks of 8 KiB carried through run_advance —
    // exactly StreamMatcher::feed's parallel branch.  Spawn pays thread
    // creation 1000 times; the pool parks one warm team for the session.
    const unsigned stream_threads = 4;
    const std::size_t block = 8 << 10;
    const std::size_t blocks = std::min<std::size_t>(1000, len / block);
    std::uint32_t q_pool = sfa.dfa_start();
    const WallTimer spt;
    for (std::size_t b = 0; b < blocks; ++b) {
      scan::EagerEngine engine(sfa);
      q_pool = scan::run_advance(engine, pooled, input.data() + b * block,
                                 block, stream_threads, q_pool);
    }
    const double pool_block_us = spt.seconds() / static_cast<double>(blocks) * 1e6;
    std::uint32_t q_spawn = sfa.dfa_start();
    const WallTimer sst;
    for (std::size_t b = 0; b < blocks; ++b) {
      scan::EagerEngine engine(sfa);
      q_spawn = scan::run_advance(engine, spawn, input.data() + b * block,
                                  block, stream_threads, q_spawn);
    }
    const double spawn_block_us = sst.seconds() / static_cast<double>(blocks) * 1e6;
    if (q_pool != q_spawn) {
      std::printf("EXECUTOR MISMATCH in stream session!\n");
      return 1;
    }
    std::printf("stream session, %zu blocks x %s, %u threads/block:\n"
                "  pooled %.1f us/block, spawn %.1f us/block (%.2fx)\n\n",
                blocks, human_bytes(block).c_str(), stream_threads,
                pool_block_us, spawn_block_us, spawn_block_us / pool_block_us);
  }

  // (d) Lazy on-demand construction fused into the scan.  Two regimes:
  //
  //   1. The r-pattern DFA, where the eager SFA fits: lazy interns only the
  //      input-reachable subset, paying per-miss successor generation but
  //      zero up-front construction — compare against eager matching whose
  //      cost includes t_build.
  //   2. A random DFA whose eager SFA exceeds max_states: eager construction
  //      ABORTS, speculative matching still works, and lazy matching serves
  //      the pattern exactly — the case the lazy matcher exists for.
  std::printf("lazy on-demand SFA matching (construction fused into scan):\n");
  std::vector<std::vector<std::string>> lazy_table;
  lazy_table.push_back(
      {"threads", "lazy(s)", "eager(s)+build", "interned", "hit rate"});
  for (unsigned t : {4u, 8u}) {
    LazyMatchOptions lopt;
    lopt.num_threads = t;
    LazyMatchStats lstats;
    const WallTimer lt;
    const MatchResult lazy = match_sfa_lazy(dfa, input, lopt, &lstats);
    const double t_lazy = lt.seconds();
    if (lazy.accepted != seq.accepted) {
      std::printf("LAZY MISMATCH at %u threads!\n", t);
      return 1;
    }
    const WallTimer et;
    match_sfa_parallel(sfa, input, t);
    const double t_eager = et.seconds();
    const double probes =
        static_cast<double>(lstats.cache_hits + lstats.cache_misses);
    lazy_table.push_back(
        {std::to_string(t), fixed(t_lazy, 3),
         fixed(t_eager, 3) + "+" + fixed(t_build, 3),
         with_commas(lstats.interned_states) + "/" +
             with_commas(sfa.num_states()),
         probes > 0
             ? fixed(100.0 * static_cast<double>(lstats.cache_hits) / probes, 1) + "%"
             : "n/a"});
  }
  std::printf("%s\n", render_table(lazy_table).c_str());

  // Regime 2: an eager-infeasible DFA (max_states caps the build).
  RandomDfaOptions ropt;
  ropt.num_states = 12;
  ropt.num_symbols = 6;
  BuildOptions capped;
  capped.max_states = 1u << 16;
  Dfa hard{1};
  bool exploded = false;
  for (std::uint64_t seed = 1; seed <= 64 && !exploded; ++seed) {
    ropt.seed = seed;
    Dfa candidate = random_dfa(ropt);
    try {
      build_sfa_transposed(candidate, capped);
    } catch (const std::exception&) {
      hard = std::move(candidate);
      exploded = true;
    }
  }
  if (exploded) {
    const std::size_t hard_len = std::min(len, std::size_t{8} << 20);
    const auto hard_input = bench::random_text(hard_len, ropt.num_symbols, 7);
    const WallTimer hs;
    const MatchResult hard_seq = match_sequential(hard, hard_input);
    const double t_hard_seq = hs.seconds();
    std::printf("eager-infeasible DFA (eager build aborts at %u states):\n",
                capped.max_states);
    std::vector<std::vector<std::string>> hard_table;
    hard_table.push_back({"matcher", "threads", "time(s)", "notes"});
    hard_table.push_back({"sequential DFA", "1", fixed(t_hard_seq, 3), "-"});
    for (unsigned t : {4u, 8u}) {
      LazyMatchOptions lopt;
      lopt.num_threads = t;
      LazyMatchStats lstats;
      const WallTimer lt;
      const MatchResult lazy = match_sfa_lazy(hard, hard_input, lopt, &lstats);
      if (lazy.accepted != hard_seq.accepted ||
          lazy.final_dfa_state != hard_seq.final_dfa_state) {
        std::printf("LAZY MISMATCH on eager-infeasible DFA!\n");
        return 1;
      }
      hard_table.push_back(
          {"lazy SFA", std::to_string(t), fixed(lt.seconds(), 3),
           with_commas(lstats.interned_states) + " states interned"});
      const WallTimer st;
      const SpeculativeResult spec = match_speculative(hard, hard_input, t);
      hard_table.push_back(
          {"speculative DFA", std::to_string(t), fixed(st.seconds(), 3),
           std::to_string(spec.rematched_chunks) + "/" +
               std::to_string(spec.chunks) + " rematched"});
    }
    std::printf("%s", render_table(hard_table).c_str());
    std::printf("(eager SFA construction is impossible here; lazy interning\n"
                " makes failure-free parallel matching available anyway)\n");
  } else {
    std::printf("(no eager-infeasible random DFA found in 64 seeds — "
                "lazy regime-2 section skipped)\n");
  }

  // (e) Engine × input-class narrowing matrix (the PaREM-hybrid
  // NarrowedEngine, PAPERS.md).  Chunk-entry narrowing simulates only the
  // states reachable under the symbol preceding each chunk; the r-pattern
  // DFA has near-singleton per-symbol reachable sets, so the narrowed
  // matcher does O(|feasible|) DFA walks per chunk against the eager
  // engine's one SFA walk over a much larger transition table.  Input
  // classes stress the feasible-set geometry: low-entropy (few effective
  // symbols), high-entropy (uniform), adversarial (widest-reach symbols
  // only).  Emits BENCH_narrowing.json.
  std::printf("\nnarrowed matching (engine x input-class matrix):\n");
  {
    bench::JsonReport report("narrowing");
    const unsigned t = std::min(8u, max_threads);
    const std::size_t nlen = std::min(len, std::size_t{8} << 20);
    struct InputCase {
      const char* name;
      std::vector<Symbol> data;
    };
    std::vector<InputCase> classes;
    classes.push_back(
        {"low-entropy", testing::low_entropy_input(42, dfa.num_symbols(), nlen)});
    classes.push_back(
        {"high-entropy", testing::high_entropy_input(43, dfa.num_symbols(), nlen)});
    classes.push_back({"adversarial", testing::adversarial_input(dfa, 44, nlen)});
    // The per-symbol reachable sets are a per-DFA precompute (like the SFA
    // build, only cheaper); share one table across the narrowed configs and
    // bill it once up front, not per timed run.
    const WallTimer reach_timer;
    const ReachTable reach = compute_reach_table(dfa);
    const double t_reach = reach_timer.seconds();
    std::printf("reach table: %zu max set / %u states, precompute %.4f s\n",
                reach.max_set_size(), dfa.size(), t_reach);
    report.meta("threads", t)
        .meta("input_bytes", nlen)
        .meta("dfa_states", dfa.size())
        .meta("sfa_states", sfa.num_states())
        .meta("reach_precompute_s", t_reach)
        .meta("reach_max_set", reach.max_set_size())
        .meta("r_length", r_length);
    std::vector<std::vector<std::string>> ntable;
    ntable.push_back({"input", "engine", "time(s)", "vs eager",
                      "narrowed/fallback", "entry states"});
    // One warm run (the narrowed path's reach-table precompute and the
    // pool's team resize must not be billed to the timed runs), then
    // best-of-3 — the matrix compares engines within a few percent.
    const auto best_of = [](const auto& fn) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const WallTimer w;
        fn();
        const double s = w.seconds();
        if (rep == 0 || s < best) best = s;
      }
      return best;
    };
    for (const InputCase& c : classes) {
      const MatchResult ref = match_sequential(dfa, c.data);
      double eager_s = 0;
      {
        match_sfa_parallel(sfa, c.data, t);  // warm
        const MatchResult r = match_sfa_parallel(sfa, c.data, t);
        eager_s = best_of([&] { match_sfa_parallel(sfa, c.data, t); });
        if (r.accepted != ref.accepted) {
          std::printf("NARROWING MATRIX MISMATCH (eager, %s)!\n", c.name);
          return 1;
        }
        ntable.push_back({c.name, "eager", fixed(eager_s, 3), "1.00x", "-", "-"});
        report.add_row()
            .set("input_class", c.name)
            .set("engine", "eager")
            .set("time_s", eager_s)
            .set("speedup_vs_eager", 1.0);
      }
      {
        const SpeculativeResult r = match_speculative(dfa, c.data, t);
        const double s = best_of([&] { match_speculative(dfa, c.data, t); });
        if (r.result.accepted != ref.accepted) {
          std::printf("NARROWING MATRIX MISMATCH (speculative, %s)!\n", c.name);
          return 1;
        }
        ntable.push_back({c.name, "speculative", fixed(s, 3),
                          fixed(eager_s / s, 2) + "x",
                          std::to_string(r.rematched_chunks) + " rematched", "-"});
        report.add_row()
            .set("input_class", c.name)
            .set("engine", "speculative")
            .set("time_s", s)
            .set("speedup_vs_eager", eager_s / s)
            .set("rematched_chunks", r.rematched_chunks);
      }
      for (const unsigned peek : {0u, 2u, 8u}) {
        scan::NarrowedOptions nopt;
        nopt.peek_k = peek;
        scan::NarrowedEngine narrowed(dfa, nopt, &sfa, &reach);
        scan::Executor& exec = scan::default_executor();
        const MatchResult r =
            scan::run_accept(narrowed, exec, c.data.data(), c.data.size(), t);
        const double s = best_of([&] {
          scan::run_accept(narrowed, exec, c.data.data(), c.data.size(), t);
        });
        if (r.accepted != ref.accepted ||
            r.final_dfa_state != ref.final_dfa_state) {
          std::printf("NARROWING MATRIX MISMATCH (narrowed-k%u, %s)!\n", peek,
                      c.name);
          return 1;
        }
        const std::string engine = "narrowed-k" + std::to_string(peek);
        ntable.push_back({c.name, engine, fixed(s, 3),
                          fixed(eager_s / s, 2) + "x",
                          std::to_string(narrowed.narrowed_chunks()) + "/" +
                              std::to_string(narrowed.fallback_chunks()),
                          std::to_string(narrowed.entry_states_simulated())});
        report.add_row()
            .set("input_class", c.name)
            .set("engine", engine)
            .set("time_s", s)
            .set("speedup_vs_eager", eager_s / s)
            .set("narrowed_chunks", narrowed.narrowed_chunks())
            .set("fallback_chunks", narrowed.fallback_chunks())
            .set("entry_states", narrowed.entry_states_simulated());
      }
    }
    std::printf("%s", render_table(ntable).c_str());
    std::printf("(narrowed engines simulate only chunk-entry states feasible\n"
                " under the preceding symbol — speedup vs eager comes from the\n"
                " DFA table being far smaller than the SFA table)\n");
    report.write();
  }

  // (f) δ-table layout axis (engine × layout × input-class): the same SFA
  // re-encoded dense / row-dedup / d2fa, matched sequentially (the raw
  // table.next() walk — the purest lookup-cost probe) and through the
  // parallel eager engine.  Resident table bytes shrink going right, lookup
  // cost grows; this matrix is where that trade lives on this host.  Emits
  // BENCH_table_layout.json (sfa_bench_compare gates time_s drift).
  std::printf("\ntable-layout matrix (engine x layout x input-class):\n");
  {
    bench::JsonReport report("table_layout");
    const unsigned t = std::min(8u, max_threads);
    const std::size_t tlen = std::min(len, std::size_t{8} << 20);
    struct InputCase {
      const char* name;
      std::vector<Symbol> data;
    };
    std::vector<InputCase> classes;
    classes.push_back(
        {"low-entropy", testing::low_entropy_input(52, dfa.num_symbols(), tlen)});
    classes.push_back(
        {"high-entropy", testing::high_entropy_input(53, dfa.num_symbols(), tlen)});
    classes.push_back({"adversarial", testing::adversarial_input(dfa, 54, tlen)});

    struct LayoutCase {
      const char* name;
      Sfa sfa;
    };
    std::vector<LayoutCase> layouts;
    layouts.push_back({"dense", sfa});
    for (const auto target : {table::TableLayout::kRowDedup,
                              table::TableLayout::kD2fa}) {
      Sfa converted = sfa;
      converted.convert_table_layout(target);
      layouts.push_back({table::layout_name(target), std::move(converted)});
    }
    report.meta("threads", t)
        .meta("input_bytes", tlen)
        .meta("sfa_states", sfa.num_states())
        .meta("r_length", r_length)
        .meta("dense_table_bytes", sfa.table_bytes());
    std::printf("table bytes: dense %s, dedup %s, d2fa %s (max chase %u)\n",
                human_bytes(layouts[0].sfa.table_bytes()).c_str(),
                human_bytes(layouts[1].sfa.table_bytes()).c_str(),
                human_bytes(layouts[2].sfa.table_bytes()).c_str(),
                layouts[2].sfa.table().max_chase_depth());
    const auto best_of = [](const auto& fn) {
      double best = 0;
      for (int rep = 0; rep < 3; ++rep) {
        const WallTimer w;
        fn();
        const double s = w.seconds();
        if (rep == 0 || s < best) best = s;
      }
      return best;
    };
    std::vector<std::vector<std::string>> ltable;
    ltable.push_back({"input", "engine", "layout", "table", "time(s)",
                      "ns/sym", "vs dense"});
    scan::Executor& exec = scan::default_executor();
    for (const InputCase& c : classes) {
      const MatchResult ref = match_sequential(dfa, c.data);
      const double syms = static_cast<double>(c.data.size());
      for (const char* engine : {"sequential", "eager"}) {
        double dense_s = 0;
        for (const LayoutCase& lc : layouts) {
          double s = 0;
          if (std::string(engine) == "sequential") {
            const Sfa::StateId fin =
                lc.sfa.run(lc.sfa.start(), c.data.data(), c.data.size());
            if (lc.sfa.accepting(fin) != ref.accepted) {
              std::printf("LAYOUT MATRIX MISMATCH (sequential, %s, %s)!\n",
                          lc.name, c.name);
              return 1;
            }
            // The run result feeds the acceptance check above; repeats are
            // identical walks, so the optimizer cannot drop the loads.
            s = best_of([&] {
              volatile Sfa::StateId sink =
                  lc.sfa.run(lc.sfa.start(), c.data.data(), c.data.size());
              (void)sink;
            });
          } else {
            scan::EagerEngine warm(lc.sfa);
            const MatchResult r =
                scan::run_accept(warm, exec, c.data.data(), c.data.size(), t);
            if (r.accepted != ref.accepted) {
              std::printf("LAYOUT MATRIX MISMATCH (eager, %s, %s)!\n",
                          lc.name, c.name);
              return 1;
            }
            s = best_of([&] {
              scan::EagerEngine engine_obj(lc.sfa);
              scan::run_accept(engine_obj, exec, c.data.data(), c.data.size(),
                               t);
            });
          }
          if (std::string(lc.name) == "dense") dense_s = s;
          const double ns_per_sym = s / syms * 1e9;
          ltable.push_back({c.name, engine, lc.name,
                            human_bytes(lc.sfa.table_bytes()),
                            fixed(s, 3), fixed(ns_per_sym, 2),
                            fixed(dense_s > 0 ? s / dense_s : 1.0, 2) + "x"});
          report.add_row()
              .set("input_class", c.name)
              .set("engine", engine)
              .set("layout", lc.name)
              .set("table_bytes", lc.sfa.table_bytes())
              .set("time_s", s)
              .set("ns_per_symbol", ns_per_sym)
              .set("slowdown_vs_dense", dense_s > 0 ? s / dense_s : 1.0);
        }
      }
    }
    std::printf("%s", render_table(ltable).c_str());
    std::printf("(dense is one load per symbol; dedup adds a row indirection;\n"
                " d2fa adds a bounded default chase — bytes shrink, loads grow)\n");
    report.write();
  }
  return 0;
}
