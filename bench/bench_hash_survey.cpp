// E8 — §III-A fingerprint-function survey.
//
// The paper measured candidate fingerprint functions on SFA-state-sized
// inputs: CityHash 5.1 bytes/cycle, Rabin/PCLMULQDQ 1.1 bytes/cycle, with
// indistinguishable collision behaviour — hence CityHash became the
// fingerprint and Rabin remains the choice for a probabilistic variant
// (tunable collision bounds via the polynomial degree).
//
// Usage: bench_hash_survey [state_bytes] [reps] [corpus]
#include <cstdio>

#include "bench_util.hpp"
#include "sfa/hash/survey.hpp"
#include "sfa/support/format.hpp"

using namespace sfa;

int main(int argc, char** argv) {
  // Default message size: an SFA state of a ~7000-state DFA at 16-bit cells,
  // the top of the paper's PROSITE range.
  const unsigned state_bytes = bench::arg_or(argc, argv, 1, 14336);
  const unsigned reps = bench::arg_or(argc, argv, 2, 20000);
  const unsigned corpus = bench::arg_or(argc, argv, 3, 200000);

  std::printf("== E8 / §III-A: fingerprint survey ==\n");
  std::printf("message: %u B (one SFA state), %u reps; collision corpus: %u "
              "x 64 B inputs\n\n",
              state_bytes, reps, corpus);

  std::vector<std::vector<std::string>> table;
  table.push_back({"function", "bytes/cycle", "GiB/s", "collisions"});
  for (const auto& r : survey_all(state_bytes, reps, corpus, 64, 2017)) {
    table.push_back({r.name, fixed(r.bytes_per_cycle, 2),
                     fixed(r.gib_per_second, 2),
                     std::to_string(r.collisions) + "/" +
                         with_commas(r.inputs)});
  }
  std::printf("%s\n", render_table(table).c_str());
  std::printf("(paper: CityHash 5.1 B/cycle, Rabin/PCLMUL 1.1 B/cycle, no\n"
              " significant collision difference -> CityHash chosen)\n");
  return 0;
}
