// E9 — §III-A SIMD kernel microbenchmarks (google-benchmark).
//
// Measures the raw transpose kernels and the end-to-end parameterized
// successor generation per method, reproducing the paper's two findings:
// the kernels beat scalar gathering, and four 8x8 kernels slightly beat one
// 16x16 kernel (which is why the paper ships 8x8).
#include <benchmark/benchmark.h>

#include <vector>

#include "sfa/simd/transpose.hpp"
#include "sfa/support/rng.hpp"

namespace {

using sfa::TransposeMethod;

template <typename Cell>
std::vector<Cell> random_cells(std::size_t n, std::uint64_t seed) {
  sfa::Xoshiro256 rng(seed);
  std::vector<Cell> v(n);
  for (auto& c : v) c = static_cast<Cell>(rng.next());
  return v;
}

// ---- Raw block kernels -------------------------------------------------------

void BM_Kernel8x8U16_Scalar(benchmark::State& state) {
  const auto data = random_cells<std::uint16_t>(64, 1);
  const std::uint16_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 8;
  std::vector<std::uint16_t> out(64);
  for (auto _ : state) {
    sfa::transpose8x8_u16_scalar(rows, out.data(), 8);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Kernel8x8U16_Scalar);

void BM_Kernel8x8U16_SSE(benchmark::State& state) {
  const auto data = random_cells<std::uint16_t>(64, 2);
  const std::uint16_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 8;
  std::vector<std::uint16_t> out(64);
  for (auto _ : state) {
    sfa::transpose8x8_u16_sse(rows, out.data(), 8);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 128);
}
BENCHMARK(BM_Kernel8x8U16_SSE);

void BM_Kernel8x8U32_AVX2(benchmark::State& state) {
  const auto data = random_cells<std::uint32_t>(64, 3);
  const std::uint32_t* rows[8];
  for (int r = 0; r < 8; ++r) rows[r] = data.data() + r * 8;
  std::vector<std::uint32_t> out(64);
  for (auto _ : state) {
    sfa::transpose8x8_u32_avx2(rows, out.data(), 8);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 256);
}
BENCHMARK(BM_Kernel8x8U32_AVX2);

void BM_Kernel16x16U16_AVX2(benchmark::State& state) {
  const auto data = random_cells<std::uint16_t>(256, 4);
  const std::uint16_t* rows[16];
  for (int r = 0; r < 16; ++r) rows[r] = data.data() + r * 16;
  std::vector<std::uint16_t> out(256);
  for (auto _ : state) {
    sfa::transpose16x16_u16_avx2(rows, out.data(), 16);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Kernel16x16U16_AVX2);

// Four 8x8 tiles vs one 16x16 tile over the same 16x16 block — the paper's
// ablation ("four 8x8 kernels showed slightly higher speedup than one
// 16x16 kernel").
void BM_Tile16x16_As_Four8x8(benchmark::State& state) {
  const auto data = random_cells<std::uint16_t>(256, 5);
  const std::uint16_t* rows[16];
  for (int r = 0; r < 16; ++r) rows[r] = data.data() + r * 16;
  std::vector<std::uint16_t> out(256);
  for (auto _ : state) {
    const std::uint16_t* sub[8];
    for (int half_r = 0; half_r < 2; ++half_r) {
      for (int half_c = 0; half_c < 2; ++half_c) {
        for (int r = 0; r < 8; ++r) sub[r] = rows[half_r * 8 + r] + half_c * 8;
        sfa::transpose8x8_u16_sse(sub, out.data() + half_c * 8 * 16 + half_r * 8,
                                  16);
      }
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * 512);
}
BENCHMARK(BM_Tile16x16_As_Four8x8);

// ---- End-to-end parameterized successor generation ----------------------------

template <typename Cell>
void successors_bench(benchmark::State& state, TransposeMethod method) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const unsigned k = 20;  // amino alphabet
  sfa::Xoshiro256 rng(6);
  std::vector<Cell> delta(static_cast<std::size_t>(n) * k);
  for (auto& c : delta) c = static_cast<Cell>(rng.below(n));
  std::vector<Cell> src(n);
  for (auto& c : src) c = static_cast<Cell>(rng.below(n));
  std::vector<Cell> out(static_cast<std::size_t>(k) * n);

  for (auto _ : state) {
    sfa::successors_transposed<Cell>(delta.data(), k, src.data(), n,
                                     out.data(), method);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(k) * n * sizeof(Cell));
}

void BM_Successors_U16_Scalar(benchmark::State& state) {
  successors_bench<std::uint16_t>(state, TransposeMethod::kScalar);
}
void BM_Successors_U16_Simd8(benchmark::State& state) {
  successors_bench<std::uint16_t>(state, TransposeMethod::kSimd8);
}
void BM_Successors_U16_Simd16(benchmark::State& state) {
  successors_bench<std::uint16_t>(state, TransposeMethod::kSimd16x16);
}
void BM_Successors_U32_Scalar(benchmark::State& state) {
  successors_bench<std::uint32_t>(state, TransposeMethod::kScalar);
}
void BM_Successors_U32_Simd8(benchmark::State& state) {
  successors_bench<std::uint32_t>(state, TransposeMethod::kSimd8);
}

BENCHMARK(BM_Successors_U16_Scalar)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Successors_U16_Simd8)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Successors_U16_Simd16)->Arg(64)->Arg(512)->Arg(4096);
BENCHMARK(BM_Successors_U32_Scalar)->Arg(512)->Arg(4096);
BENCHMARK(BM_Successors_U32_Simd8)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
