// Related-work baselines (paper §V): Aho–Corasick, Boyer–Moore, Rabin–Karp
// vs the library's DFA scan and parallel SFA matching, on literal-pattern
// workloads (the only workloads the classic algorithms handle — regular
// expressions are exactly where the DFA/SFA machinery earns its keep).
//
// Usage: bench_classic_matchers [input_mib] [num_patterns] [threads]
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "sfa/automata/ops.hpp"
#include "sfa/classic/aho_corasick.hpp"
#include "sfa/classic/boyer_moore.hpp"
#include "sfa/classic/rabin_karp.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

int main(int argc, char** argv) {
  const std::size_t mib = bench::arg_or(argc, argv, 1, 32);
  const unsigned num_patterns = bench::arg_or(argc, argv, 2, 8);
  const unsigned threads =
      bench::arg_or(argc, argv, 3, std::max(4u, hardware_threads()));
  const Alphabet& amino = Alphabet::amino();

  std::printf("== related-work baselines: classic matchers vs DFA/SFA ==\n\n");

  // Fixed-length random literals (Rabin-Karp's restriction) + one planted.
  Xoshiro256 rng(2017);
  std::vector<std::string> patterns;
  for (unsigned p = 0; p < num_patterns; ++p) {
    std::string s;
    for (int i = 0; i < 8; ++i)
      s.push_back("ACDEFGHIKLMNPQRSTVWY"[rng.below(20)]);
    patterns.push_back(s);
  }
  auto text = bench::random_text(mib << 20, 20, 7);
  {
    const auto planted = amino.encode(patterns.front());
    std::copy(planted.begin(), planted.end(), text.begin() + static_cast<std::ptrdiff_t>(text.size() / 2));
  }
  std::printf("%u random 8-mer literals over %zu MiB of protein-like text\n\n",
              num_patterns, mib);

  std::vector<std::vector<std::string>> table;
  table.push_back({"matcher", "build(s)", "scan(s)", "GiB/s", "hit"});
  const double gib = static_cast<double>(text.size()) / (1u << 30);

  {  // Aho-Corasick (all patterns at once)
    const WallTimer build;
    const AhoCorasick ac = AhoCorasick::from_strings(patterns, amino);
    const double tb = build.seconds();
    const WallTimer scan;
    const bool hit = ac.contains_any(text.data(), text.size());
    const double ts = scan.seconds();
    table.push_back({"aho-corasick (all)", fixed(tb, 4), fixed(ts, 3),
                     fixed(gib / ts, 2), hit ? "YES" : "no"});
  }
  {  // Boyer-Moore, one pass per pattern
    const WallTimer build;
    std::vector<BoyerMoore> bms;
    for (const auto& p : patterns) bms.push_back(BoyerMoore::from_string(p, amino));
    const double tb = build.seconds();
    const WallTimer scan;
    bool hit = false;
    for (const auto& bm : bms)
      hit |= bm.find(text.data(), text.size()) != BoyerMoore::npos;
    const double ts = scan.seconds();
    table.push_back({"boyer-moore (xN)", fixed(tb, 4), fixed(ts, 3),
                     fixed(gib * num_patterns / ts, 2), hit ? "YES" : "no"});
  }
  {  // Rabin-Karp (all patterns at once, same length)
    const WallTimer build;
    const RabinKarp rk = RabinKarp::from_strings(patterns, amino);
    const double tb = build.seconds();
    const WallTimer scan;
    const bool hit = rk.contains_any(text.data(), text.size());
    const double ts = scan.seconds();
    table.push_back({"rabin-karp (all)", fixed(tb, 4), fixed(ts, 3),
                     fixed(gib / ts, 2), hit ? "YES" : "no"});
  }
  {  // DFA of the union regex, sequential scan
    std::string alternation;
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (i) alternation += "|";
      alternation += patterns[i];
    }
    const WallTimer build;
    const Dfa dfa = compile_pattern(alternation, amino);
    const double tb = build.seconds();
    const WallTimer scan;
    const bool hit = match_sequential(dfa, text).accepted;
    const double ts = scan.seconds();
    table.push_back({"union DFA (seq)", fixed(tb, 4), fixed(ts, 3),
                     fixed(gib / ts, 2), hit ? "YES" : "no"});

    // SFA on top of the same DFA, parallel matching.
    const WallTimer sfa_build;
    BuildOptions opt;
    opt.num_threads = threads;
    const Sfa sfa = build_sfa_parallel(dfa, opt);
    const double tsb = sfa_build.seconds();
    const WallTimer sfa_scan;
    const bool sfa_hit = match_sfa_parallel(sfa, text, threads).accepted;
    const double tss = sfa_scan.seconds();
    table.push_back({"union SFA (t" + std::to_string(threads) + ")",
                     fixed(tb + tsb, 4), fixed(tss, 3), fixed(gib / tss, 2),
                     sfa_hit ? "YES" : "no"});
    if (hit != sfa_hit) {
      std::printf("MISMATCH between DFA and SFA!\n");
      return 1;
    }
  }
  std::printf("%s\n", render_table(table).c_str());
  std::printf(
      "(classic matchers only handle literals; the DFA/SFA column also\n"
      " covers full regular expressions, and SFA matching parallelizes —\n"
      " the trade the paper's introduction describes)\n");
  return 0;
}
