// E1 — Table I analogue: characterize the evaluation platform.
//
// The paper's Table I lists the two evaluation systems (4-CPU 64-core AMD
// Opteron, 2-CPU 44-core Intel Broadwell).  This binary prints the same
// characterization for the host the experiments actually run on, so every
// results file is reproducible-with-context.
#include <cstdio>

#include "sfa/simd/transpose.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

int main() {
  std::printf("== E1 / Table I: evaluation platform ==\n\n");
  std::printf("%s\n\n", sfa::platform_summary().c_str());
  std::printf("TSC frequency:    %.2f GHz (calibrated)\n",
              sfa::tsc_hz() / 1e9);
  std::printf("SIMD kernels:     8x8/16-bit %s, 8x8/32-bit & 16x16/16-bit %s\n",
              sfa::simd_transpose_available() ? "available" : "scalar fallback",
              sfa::simd16_transpose_available() ? "available"
                                                : "scalar fallback");
  std::printf(
      "\nPaper reference platforms: 4x AMD Opteron 6380 (64 cores, 2.4 GHz,\n"
      "512 GB) and 2x Intel Xeon E5-2699 v4 (44 cores / 88 threads,\n"
      "2.2-3.6 GHz, 512 GB).  Speedup *shapes* transfer; absolute numbers\n"
      "scale with the host above.\n");
  return 0;
}
