// E6 — Table II analogue: in-memory compression makes otherwise-intractable
// SFAs tractable.
//
// The paper's Table II rows: DFA states | SFA states | size & time without
// compression | size & time with compression | compression ratio, where
// "n/a" marks benchmarks whose uncompressed representation exceeds the
// machine's 512 GB (their sizes are computed theoretically, since SFA
// states have constant size).
//
// At laptop scale we simulate the memory wall with a configurable budget
// (default 24 MiB): workloads whose uncompressed mapping store would exceed
// it are treated as intractable-without-compression (n/a), exactly like the
// paper's four large rows; tractable rows run both ways to show the
// compression overhead.
//
// Usage: bench_table2_compression [memory_budget_mib] [num_patterns]
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

using namespace sfa;

int main(int argc, char** argv) {
  const std::uint64_t budget_bytes =
      static_cast<std::uint64_t>(bench::arg_or(argc, argv, 1, 24)) << 20;
  const unsigned num_patterns = bench::arg_or(argc, argv, 2, 6);

  std::printf("== E6 / Table II: three-phase in-memory compression ==\n");
  std::printf("simulated memory budget: %s (paper: 512 GB w/ 200 GB forced "
              "threshold)\n\n",
              human_bytes(budget_bytes).c_str());

  // Prefer larger workloads so at least some rows cross the budget.
  auto workloads = bench::tractable_workloads(num_patterns, 4000, 400000);
  std::sort(workloads.begin(), workloads.end(),
            [](const auto& a, const auto& b) {
              return a.sfa_states > b.sfa_states;
            });

  bench::JsonReport report("table2_compression");
  report.meta("memory_budget_bytes", budget_bytes)
      .meta("num_patterns", workloads.size());

  std::vector<std::vector<std::string>> table;
  table.push_back({"pattern", "DFA", "SFA states", "size w/o", "time w/o(s)",
                   "size with", "time with(s)", "ratio"});

  for (const auto& w : workloads) {
    const std::uint64_t uncompressed_bytes =
        static_cast<std::uint64_t>(w.sfa_states) * w.dfa.size() *
        (w.dfa.size() <= 0xFFFEu ? 2 : 4);
    const bool tractable = uncompressed_bytes <= budget_bytes;

    std::string size_wo = human_bytes(uncompressed_bytes);
    std::string time_wo = "n/a";
    if (tractable) {
      BuildOptions plain;
      plain.num_threads = hardware_threads();
      const WallTimer t;
      build_sfa_parallel(w.dfa, plain);
      time_wo = fixed(t.seconds(), 3);
    } else {
      size_wo += " (theoretical)";
    }

    // With compression: force the threshold low enough to trigger early
    // (paper methodology for the tractable rows; required for the rest).
    BuildOptions comp;
    comp.num_threads = hardware_threads();
    comp.memory_threshold_bytes =
        std::min<std::size_t>(budget_bytes / 4, 1u << 20);
    BuildStats stats;
    const WallTimer t;
    build_sfa_parallel(w.dfa, comp, &stats);
    const double time_with = t.seconds();

    table.push_back(
        {w.id, std::to_string(w.dfa.size()), with_commas(w.sfa_states),
         size_wo, time_wo, human_bytes(stats.mapping_bytes_stored),
         fixed(time_with, 3),
         fixed(stats.compression_ratio(), 1) + "x"});
    report.add_row()
        .set("pattern", w.id)
        .set("dfa_states", w.dfa.size())
        .set("sfa_states", w.sfa_states)
        .set("uncompressed_bytes", uncompressed_bytes)
        .set("tractable_without", tractable)
        .set("stored_bytes", stats.mapping_bytes_stored)
        .set("seconds_with_compression", time_with)
        .set("compression_ratio", stats.compression_ratio());
  }
  std::printf("%s\n", render_table(table).c_str());
  std::printf(
      "(paper, Table II: ratios 17x-30x; compression costs time but turns\n"
      " n/a rows into finishable builds — same structure as above)\n");
  report.write();
  return 0;
}
