// protein_scan: scan synthetic protein sequences for a panel of real
// PROSITE motifs — the workload class the paper evaluates on (§IV).
//
//   $ ./protein_scan [sequence_kb] [threads]
//
// Builds one SFA per motif (parallel builder), generates a protein-like
// sequence with planted motif instances, and reports which motifs hit,
// comparing sequential DFA scanning against parallel SFA matching.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sfa/core/api.hpp"
#include "sfa/core/match.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

namespace {

/// Motifs with known positive example fragments to plant.
struct Probe {
  const char* id;
  const char* pattern;
  const char* planted;  // fragment containing the motif
};

const Probe kProbes[] = {
    {"PS00016 RGD cell attachment", "R-G-D.", "AVTGRGDSPAS"},
    {"PS00001 N-glycosylation", "N-{P}-[ST]-{P}.", "KLNGSGAA"},
    {"PS00017 P-loop (ATP/GTP)", "[AG]-x(4)-G-K-[ST].", "MGSSSSGKTLL"},
    {"PS00005 PKC phosphorylation", "[ST]-x-[RK].", "AASARAA"},
    {"PS00009 amidation", "x-G-[RK]-[RK].", "YAGRKAA"},
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : sfa::hardware_threads();

  // Synthetic protein with every probe's fragment planted once.
  sfa::Xoshiro256 rng(2017);
  std::string sequence;
  sequence.reserve(kb * 1024);
  for (std::size_t i = 0; i < kb * 1024; ++i)
    sequence.push_back("ACDEFGHIKLMNPQRSTVWY"[rng.below(20)]);
  std::size_t pos = sequence.size() / 10;
  for (const Probe& probe : kProbes) {
    sequence.replace(pos, std::string(probe.planted).size(), probe.planted);
    pos += sequence.size() / 6;
  }

  std::printf("sequence: %zu KiB synthetic protein, %u threads\n\n", kb,
              threads);
  std::printf("%-32s %10s %12s %12s %8s\n", "motif", "SFA states", "t_build(s)",
              "t_match(ms)", "hit");

  for (const Probe& probe : kProbes) {
    sfa::BuildOptions options;
    options.num_threads = threads;
    const sfa::WallTimer build_timer;
    const sfa::Engine engine = sfa::Engine::from_prosite(
        probe.pattern, sfa::BuildMethod::kParallel, options);
    const double build_s = build_timer.seconds();

    const sfa::WallTimer match_timer;
    const bool hit = engine.contains(sequence, threads);
    const double match_ms = match_timer.millis();

    // Cross-check with the sequential DFA matcher.
    const auto input = engine.alphabet().encode(sequence);
    const bool seq_hit = sfa::match_sequential(engine.dfa(), input).accepted;
    std::printf("%-32s %10u %12.4f %12.3f %8s%s\n", probe.id,
                engine.sfa().num_states(), build_s, match_ms,
                hit ? "YES" : "no", hit == seq_hit ? "" : "  MISMATCH!");
    if (hit != seq_hit) return 2;
    if (!hit) return 1;  // every probe was planted; all must hit
  }
  std::printf("\nall motifs found; parallel SFA agrees with sequential DFA\n");
  return 0;
}
