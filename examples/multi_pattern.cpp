// multi_pattern: combine a signature set into ONE automaton with the DFA
// union product, build a single SFA, and answer "does ANY signature match?"
// with one parallel pass — instead of one scan per signature.
//
//   $ ./multi_pattern [sequence_kb] [threads]
//
// Prints the per-signature automata sizes, the union automaton size, and
// cross-checks the union verdict against per-signature scans.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sfa/automata/minimize.hpp"
#include "sfa/automata/product.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

int main(int argc, char** argv) {
  const std::size_t kb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 512;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : sfa::hardware_threads();

  const char* motifs[] = {"R-G-D.", "N-{P}-[ST]-{P}.", "[AG]-x(4)-G-K-[ST].",
                          "x-G-[RK]-[RK]."};

  // Per-signature DFAs, then the union.
  std::vector<sfa::Dfa> dfas;
  std::printf("signatures:\n");
  for (const char* m : motifs) {
    dfas.push_back(sfa::compile_prosite(m));
    std::printf("  %-24s DFA %3u states\n", m, dfas.back().size());
  }
  const sfa::Dfa all = sfa::minimize(sfa::dfa_union_all(dfas));
  std::printf("union automaton:           DFA %3u states\n\n", all.size());

  sfa::BuildOptions opt;
  opt.num_threads = threads;
  sfa::BuildStats stats;
  const sfa::WallTimer build_timer;
  const sfa::Sfa sfa_all = sfa::build_sfa_parallel(all, opt, &stats);
  std::printf("union SFA: %s (built in %.3f s)\n\n", sfa_all.summary().c_str(),
              build_timer.seconds());

  // A synthetic protein with exactly one planted motif (the P-loop).
  sfa::Xoshiro256 rng(99);
  std::vector<sfa::Symbol> text(kb * 1024);
  for (auto& s : text) s = static_cast<sfa::Symbol>(rng.below(20));
  const auto planted = sfa::Alphabet::amino().encode("GAAAAGKT");
  std::copy(planted.begin(), planted.end(),
            text.begin() + static_cast<std::ptrdiff_t>(text.size() / 2));

  const sfa::WallTimer match_timer;
  const bool any = sfa::match_sfa_parallel(sfa_all, text, threads).accepted;
  std::printf("union scan: %-3s in %.3f ms (one pass, %u threads)\n",
              any ? "HIT" : "no", match_timer.millis(), threads);

  // Cross-check: OR of the individual signature scans.
  bool any_individual = false;
  const sfa::WallTimer each_timer;
  for (const auto& d : dfas)
    any_individual |= sfa::match_sequential(d, text).accepted;
  std::printf("per-signature scans: %-3s in %.3f ms (%zu passes)\n",
              any_individual ? "HIT" : "no", each_timer.millis(),
              dfas.size());

  if (any != any_individual) {
    std::printf("MISMATCH between union and per-signature scans!\n");
    return 2;
  }
  std::printf("\nverdicts agree; union automaton needs %zux fewer passes\n",
              dfas.size());
  return any ? 0 : 1;
}
