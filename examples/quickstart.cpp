// Quickstart: pattern -> DFA -> SFA -> parallel matching in ~30 lines.
//
//   $ ./quickstart
//
// Compiles the PROSITE RGD cell-attachment motif (PS00016), builds its SFA
// with the parallel builder, and scans a synthetic protein sequence with
// several threads.
#include <cstdio>
#include <string>

#include "sfa/core/api.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"

int main() {
  // 1. Compile a pattern into an Engine.  PROSITE motifs and plain regexes
  //    both work; match-anywhere catenation is applied automatically.
  sfa::BuildOptions options;
  options.num_threads = sfa::hardware_threads();
  const sfa::Engine engine = sfa::Engine::from_prosite(
      "R-G-D.", sfa::BuildMethod::kParallel, options);

  std::printf("pattern  : R-G-D. (PROSITE PS00016)\n");
  std::printf("DFA      : %u states over %u symbols\n", engine.dfa().size(),
              engine.dfa().num_symbols());
  std::printf("SFA      : %s\n", engine.sfa().summary().c_str());

  // 2. Make a 1 MB synthetic protein with one planted motif occurrence.
  sfa::Xoshiro256 rng(42);
  std::string protein;
  protein.reserve(1 << 20);
  for (int i = 0; i < (1 << 20); ++i)
    protein.push_back("ACDEFGHIKLMNPQRSTVWY"[rng.below(20)]);
  protein.replace(700000, 3, "RGD");

  // 3. Parallel SFA matching: each thread scans one chunk, the chunk
  //    mappings compose in O(threads).
  const unsigned threads = sfa::hardware_threads();
  const bool found = engine.contains(protein, threads);
  std::printf("match    : %s (with %u threads)\n", found ? "YES" : "no",
              threads);

  // 4. Count match end-positions (two-pass parallel count).
  std::printf("count    : %zu accepting positions\n",
              engine.count(protein, threads));
  return found ? 0 : 1;
}
