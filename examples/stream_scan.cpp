// stream_scan: incremental matching over a block stream — the IDS-style
// "payload arrives in packets" scenario.  Also demonstrates build-once /
// serialize / reload: the SFA is saved to disk on first run and loaded on
// subsequent runs (construction is the expensive step; reuse is the point).
//
//   $ ./stream_scan [blocks] [block_kb] [threads]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sfa/core/build.hpp"
#include "sfa/core/serialize.hpp"
#include "sfa/core/stream_matcher.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

int main(int argc, char** argv) {
  const unsigned blocks = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 64;
  const std::size_t block_kb =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 64;
  const unsigned threads =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : sfa::hardware_threads();

  const char* pattern = "C-x(2,4)-C-x(3)-H.";  // zinc-finger-ish motif
  const std::string cache_path = "/tmp/sfa_stream_scan.sfa";

  // Build-or-load the SFA.
  sfa::Sfa automaton;
  try {
    const sfa::WallTimer t;
    automaton = sfa::load_sfa_file(cache_path);
    std::printf("loaded cached SFA from %s (%.3f ms)\n", cache_path.c_str(),
                t.millis());
  } catch (const std::exception&) {
    const sfa::WallTimer t;
    const sfa::Dfa dfa = sfa::compile_prosite(pattern);
    sfa::BuildOptions opt;
    opt.num_threads = threads;
    automaton = sfa::build_sfa_parallel(dfa, opt);
    std::printf("built SFA in %.3f s, caching to %s\n", t.seconds(),
                cache_path.c_str());
    sfa::save_sfa_file(automaton, cache_path);
  }
  std::printf("pattern %s -> %s\n\n", pattern, automaton.summary().c_str());

  // Stream blocks through the matcher; plant the motif mid-stream, split
  // across a block boundary.
  sfa::StreamMatcher matcher(automaton, threads);
  sfa::Xoshiro256 rng(11);
  // Background noise avoids C and H entirely, so ONLY the planted motif can
  // match (the pattern needs two Cs and an H).
  const auto noise_pool = sfa::Alphabet::amino().encode("ADEFGIKLMNPQRSTVWY");
  const auto motif = sfa::Alphabet::amino().encode("CAACAAAH");
  bool planted = false;
  unsigned matched_at = 0;

  const sfa::WallTimer scan_timer;
  for (unsigned b = 0; b < blocks; ++b) {
    std::vector<sfa::Symbol> block(block_kb * 1024);
    for (auto& s : block) s = noise_pool[rng.below(noise_pool.size())];
    if (b == blocks / 2) {
      // First half of the motif at the very end of this block...
      std::copy(motif.begin(), motif.begin() + 4,
                block.end() - 4);
      planted = true;
    } else if (planted && matched_at == 0 && b == blocks / 2 + 1) {
      // ...second half at the start of the next: the match straddles blocks.
      std::copy(motif.begin() + 4, motif.end(), block.begin());
    }
    matcher.feed(block);
    if (matcher.matched() && matched_at == 0) matched_at = b + 1;
  }
  const double secs = scan_timer.seconds();
  const double mib =
      static_cast<double>(matcher.symbols_consumed()) / (1 << 20);

  std::printf("streamed %u blocks (%.1f MiB) in %.3f s (%.1f MiB/s, %u "
              "thread(s))\n",
              blocks, mib, secs, mib / secs, threads);
  if (matched_at) {
    std::printf("motif matched during block %u (planted across the "
                "boundary after block %u)\n",
                matched_at, blocks / 2);
    return 0;
  }
  std::printf("motif not found — unexpected!\n");
  return 1;
}
