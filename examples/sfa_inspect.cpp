// sfa_inspect: construct an SFA and dump its structure — the paper's Fig. 2
// state-mapping table, builder statistics, and a Grail+ dump of the DFA.
//
//   $ ./sfa_inspect                 # the paper's RG example (Figs. 1-2)
//   $ ./sfa_inspect 'N-{P}-[ST]-{P}.'
//
// The argument is a PROSITE pattern over the amino-acid alphabet.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/format.hpp"

int main(int argc, char** argv) {
  const std::string pattern = argc > 1 ? argv[1] : "R-G.";
  std::printf("pattern: %s\n\n", pattern.c_str());

  const sfa::Dfa dfa = sfa::compile_prosite(pattern);
  std::printf("== minimal DFA (Grail+ format) ==\n");
  if (dfa.size() <= 8) {
    std::printf("%s\n", dfa.to_grail(sfa::Alphabet::amino()).c_str());
  } else {
    std::printf("(%u states — too large to dump; showing summary only)\n\n",
                dfa.size());
  }

  sfa::BuildStats stats;
  const sfa::Sfa sfa = sfa::build_sfa_transposed(dfa, {}, &stats);

  std::printf("== SFA ==\n%s\n\n", sfa.summary().c_str());

  if (sfa.num_states() <= 16 && dfa.size() <= 12) {
    // The paper's Fig. 2 state-mapping table: f_i(q) per SFA state.
    std::printf("state-mapping table (rows f_i, columns q):\n      ");
    for (std::uint32_t q = 0; q < dfa.size(); ++q) std::printf("%4u", q);
    std::printf("   accepting\n");
    std::vector<std::uint32_t> mapping;
    for (sfa::Sfa::StateId s = 0; s < sfa.num_states(); ++s) {
      sfa.mapping(s, mapping);
      std::printf("f_%-4u", s);
      for (std::uint32_t q = 0; q < dfa.size(); ++q)
        std::printf("%4u", mapping[q]);
      std::printf("   %s\n", sfa.accepting(s) ? "yes" : "");
    }
    std::printf("\n");
  }

  std::printf("== construction statistics (transposed builder) ==\n");
  std::printf("SFA states:            %s\n",
              sfa::with_commas(stats.sfa_states).c_str());
  std::printf("build time:            %.4f s\n", stats.seconds);
  std::printf("mapping store:         %s\n",
              sfa::human_bytes(stats.mapping_bytes_stored).c_str());
  std::printf("fingerprint collisions:%llu\n",
              static_cast<unsigned long long>(stats.fingerprint_collisions));
  std::printf("chain traversals:      %s\n",
              sfa::with_commas(stats.chain_traversals).c_str());

  // Cell-value distribution across all mappings — the structural skew that
  // makes SFA states compressible (paper §III-C).
  {
    std::vector<std::uint64_t> histogram(dfa.size(), 0);
    std::vector<std::uint32_t> mapping;
    std::uint64_t total = 0;
    for (sfa::Sfa::StateId s = 0; s < sfa.num_states(); ++s) {
      sfa.mapping(s, mapping);
      for (auto v : mapping) ++histogram[v];
      total += mapping.size();
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> top;
    for (std::uint32_t q = 0; q < dfa.size(); ++q)
      top.emplace_back(histogram[q], q);
    std::sort(top.rbegin(), top.rend());
    std::printf("\n== mapping cell-value distribution (top 5) ==\n");
    for (std::size_t i = 0; i < top.size() && i < 5; ++i) {
      std::printf("DFA state %4u: %5.1f%% of all cells\n", top[i].second,
                  100.0 * static_cast<double>(top[i].first) /
                      static_cast<double>(total));
    }
  }

  const sfa::VerifyReport report = sfa::verify_sfa(sfa, dfa);
  std::printf("\nverification: %s\n",
              report.ok ? "OK (SFA simulates DFA)"
                        : report.first_failure.c_str());
  return report.ok ? 0 : 1;
}
