// signature_scan: intrusion-detection-style signature matching over an
// ASCII byte stream — one of the application domains the paper's
// introduction motivates (virus signatures in intrusion prevention systems).
//
//   $ ./signature_scan [stream_kb] [threads]
//
// Compiles a handful of regex "signatures" over printable ASCII, builds
// their SFAs, and scans a synthetic HTTP-like stream containing two planted
// attacks.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sfa/core/api.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

namespace {

struct Signature {
  const char* name;
  const char* regex;
};

// Metacharacters are escaped per the library's regex syntax ('.', '{', etc.).
const Signature kSignatures[] = {
    {"path-traversal", "\\.\\./\\.\\./"},
    {"sql-injection", "UNION +SELECT"},
    {"admin-probe", "GET /(admin|manager|console)/"},
    {"shellshock", "\\(\\) ?\\{ ?:;\\};"},
};

std::string make_stream(std::size_t kb, std::uint64_t seed) {
  // Plausible HTTP-ish noise: request lines with random paths.
  static const char* kVerbs[] = {"GET", "POST", "HEAD"};
  sfa::Xoshiro256 rng(seed);
  std::string out;
  out.reserve(kb * 1024);
  while (out.size() < kb * 1024) {
    out += kVerbs[rng.below(3)];
    out += " /";
    const unsigned segs = 1 + static_cast<unsigned>(rng.below(3));
    for (unsigned s = 0; s < segs; ++s) {
      for (int i = 0; i < 6; ++i)
        out.push_back("abcdefghijklmnopqrstuvwxyz0123456789"[rng.below(36)]);
      out.push_back('/');
    }
    out += " HTTP/1.1 ";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t kb = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  const unsigned threads =
      argc > 2 ? static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10))
               : sfa::hardware_threads();

  std::string stream = make_stream(kb, 7);
  // Plant two attacks.
  stream.replace(stream.size() / 3, 24, "GET /admin/panel HTTP/1.1");
  stream.replace(2 * stream.size() / 3, 22, "x=1 UNION  SELECT pass");

  std::printf("stream: %zu KiB HTTP-like traffic, %u threads\n\n", kb, threads);
  std::printf("%-16s %12s %12s %8s\n", "signature", "SFA states",
              "t_scan(ms)", "hit");

  int hits = 0;
  for (const Signature& sig : kSignatures) {
    sfa::BuildOptions options;
    options.num_threads = threads;
    const sfa::Engine engine =
        sfa::Engine::from_regex(sig.regex, sfa::Alphabet::ascii_printable(),
                                sfa::BuildMethod::kParallel, options);
    const sfa::WallTimer t;
    const bool hit = engine.contains(stream, threads);
    std::printf("%-16s %12u %12.3f %8s\n", sig.name,
                engine.sfa().num_states(), t.millis(), hit ? "YES" : "no");
    hits += hit;
  }
  std::printf("\n%d signature(s) fired (expected 2: admin-probe + "
              "sql-injection)\n", hits);
  return hits == 2 ? 0 : 1;
}
