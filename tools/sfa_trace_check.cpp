// sfa_trace_check — validate a Chrome-tracing JSON file produced by
// `sfa ... --trace out.json` (or any tool using sfa::obs::TraceCollector).
//
//   sfa_trace_check trace.json [--expect-workers N] [--expect-engine ID]
//                              [--expect-scheduler ID]
//
// Checks: the JSON is well formed, required event fields are present,
// per-thread completion timestamps are monotone, and spans nest without
// partial overlap.  With --expect-workers N, additionally requires at least
// N distinct threads carrying "build"-category spans (the acceptance
// criterion for a traced parallel construction).  With --expect-engine ID,
// requires at least one match-chunk span stamped with that ScanEngine id
// (0 direct, 1 eager, 2 lazy, 3 speculative, 4 narrowed) — the acceptance
// criterion for a traced parallel match on a specific chunk policy.
//
// Stripe distinctness: by default (and with --expect-scheduler 0) any
// stripe violation — a thread running two different task residues mod one
// dispatch stride — fails the check, because static-stripe dispatch never
// produces one.  --expect-scheduler 1 (work-stealing) or 2 (guided) relaxes
// exactly that invariant (dynamic dispatch legitimately migrates tasks) and
// instead requires at least one match-chunk span stamped with the given
// scheduler id.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sfa/obs/trace_check.hpp"

namespace {

void usage() {
  std::fprintf(stderr, "usage: sfa_trace_check <trace.json> "
                       "[--expect-workers N] [--expect-engine ID] "
                       "[--expect-scheduler ID]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  unsigned expect_workers = 0;
  long expect_engine = -1;
  long expect_scheduler = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-workers") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --expect-workers needs a value\n");
        return 2;
      }
      expect_workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--expect-engine") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --expect-engine needs a value\n");
        return 2;
      }
      expect_engine = std::strtol(argv[++i], nullptr, 10);
      if (expect_engine < 0 ||
          expect_engine >=
              static_cast<long>(sfa::obs::TraceCheckResult::kEngineIds)) {
        std::fprintf(stderr, "error: --expect-engine takes an id in [0, %zu]\n",
                     sfa::obs::TraceCheckResult::kEngineIds - 1);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--expect-scheduler") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --expect-scheduler needs a value\n");
        return 2;
      }
      expect_scheduler = std::strtol(argv[++i], nullptr, 10);
      if (expect_scheduler < 0 ||
          expect_scheduler >=
              static_cast<long>(sfa::obs::TraceCheckResult::kSchedulerIds)) {
        std::fprintf(stderr,
                     "error: --expect-scheduler takes an id in [0, %zu]\n",
                     sfa::obs::TraceCheckResult::kSchedulerIds - 1);
        return 2;
      }
    } else if (path.empty()) {
      path = argv[i];
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  const sfa::obs::TraceCheckResult r = sfa::obs::check_trace_file(path);
  if (!r.ok) {
    std::fprintf(stderr, "INVALID %s: %s\n", path.c_str(), r.error.c_str());
    return 1;
  }
  std::printf("OK %s: %zu events, %zu spans, %zu threads, %zu worker tracks, "
              "%zu match-chunk spans, %zu stripe violations\n",
              path.c_str(), r.events, r.spans, r.threads, r.worker_tracks,
              r.match_chunk_spans, r.stripe_violations);
  if (expect_workers != 0 && r.worker_tracks < expect_workers) {
    std::fprintf(stderr,
                 "INVALID %s: expected >= %u worker tracks with build spans, "
                 "found %zu\n",
                 path.c_str(), expect_workers, r.worker_tracks);
    return 1;
  }
  if (expect_engine >= 0 &&
      r.match_chunk_spans_by_engine[static_cast<std::size_t>(expect_engine)] ==
          0) {
    std::fprintf(stderr,
                 "INVALID %s: expected match-chunk spans with engine id %ld, "
                 "found none\n",
                 path.c_str(), expect_engine);
    return 1;
  }
  // Dynamic schedulers (1 work-stealing, 2 guided) are the only licence for
  // stripe violations; everything else treats them as a broken binding.
  const bool dynamic_ok = expect_scheduler == 1 || expect_scheduler == 2;
  if (!dynamic_ok && r.stripe_violations != 0) {
    std::fprintf(stderr,
                 "INVALID %s: %zu stripe violations (%s) — rerun with "
                 "--expect-scheduler 1|2 if dynamic dispatch was intended\n",
                 path.c_str(), r.stripe_violations, r.stripe_error.c_str());
    return 1;
  }
  if (expect_scheduler >= 0 &&
      r.match_chunk_spans_by_scheduler[static_cast<std::size_t>(
          expect_scheduler)] == 0) {
    std::fprintf(stderr,
                 "INVALID %s: expected pooled chunk spans with scheduler id "
                 "%ld, found none\n",
                 path.c_str(), expect_scheduler);
    return 1;
  }
  return 0;
}
