// sfa_trace_check — validate a Chrome-tracing JSON file produced by
// `sfa ... --trace out.json` (or any tool using sfa::obs::TraceCollector).
//
//   sfa_trace_check trace.json [--expect-workers N]
//
// Checks: the JSON is well formed, required event fields are present,
// per-thread completion timestamps are monotone, and spans nest without
// partial overlap.  With --expect-workers N, additionally requires at least
// N distinct threads carrying "build"-category spans (the acceptance
// criterion for a traced parallel construction).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sfa/obs/trace_check.hpp"

int main(int argc, char** argv) {
  std::string path;
  unsigned expect_workers = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--expect-workers") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --expect-workers needs a value\n");
        return 2;
      }
      expect_workers = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (path.empty()) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: sfa_trace_check <trace.json> "
                           "[--expect-workers N]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: sfa_trace_check <trace.json> "
                         "[--expect-workers N]\n");
    return 2;
  }

  const sfa::obs::TraceCheckResult r = sfa::obs::check_trace_file(path);
  if (!r.ok) {
    std::fprintf(stderr, "INVALID %s: %s\n", path.c_str(), r.error.c_str());
    return 1;
  }
  std::printf("OK %s: %zu events, %zu spans, %zu threads, %zu worker tracks, "
              "%zu match-chunk spans\n",
              path.c_str(), r.events, r.spans, r.threads, r.worker_tracks,
              r.match_chunk_spans);
  if (expect_workers != 0 && r.worker_tracks < expect_workers) {
    std::fprintf(stderr,
                 "INVALID %s: expected >= %u worker tracks with build spans, "
                 "found %zu\n",
                 path.c_str(), expect_workers, r.worker_tracks);
    return 1;
  }
  return 0;
}
