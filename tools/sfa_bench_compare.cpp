// sfa_bench_compare — regression gate over sfa-bench/1 result files.
//
//   sfa_bench_compare <base> <candidate> [--threshold F] [--json FILE]
//
// <base> and <candidate> are either two BENCH_*.json files or two
// directories (compared pairwise over the BENCH_*.json names present in
// both).  Rows are keyed by their string-valued fields (engine, workload,
// ...) so reordering does not misalign them; numeric fields are classified
// by name into higher-is-better (speedup, throughput, *_per_sec, hit_rate),
// lower-is-better (seconds, latency, *_ns/_ms/_s/_cycles, overhead), or
// informational (everything else — never gates).  A field that moved in the
// bad direction by more than --threshold (default 0.30, i.e. 30%) is a
// regression.
//
// Exit codes: 0 ok, 1 regressions found, 2 usage / I/O / parse error.
// --json writes a machine-readable sfa-bench-compare/1 verdict; CI archives
// it next to the bench artifacts it judged.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sfa/obs/json.hpp"
#include "sfa/obs/json_parse.hpp"

namespace {

using sfa::obs::JsonValue;

enum class Direction { kHigherBetter, kLowerBetter, kInfo };

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// Classify a numeric field by name.  The suffix checks use an explicit "_"
/// so "states" / "threads" (ending in plain "s") stay informational.
Direction classify(const std::string& key) {
  if (contains(key, "speedup") || contains(key, "throughput") ||
      contains(key, "per_sec") || contains(key, "hit_rate"))
    return Direction::kHigherBetter;
  if (contains(key, "seconds") || contains(key, "latency") ||
      contains(key, "overhead") || contains(key, "ns_per") ||
      ends_with(key, "_ns") || ends_with(key, "_ms") || ends_with(key, "_s") ||
      ends_with(key, "_cycles"))
    return Direction::kLowerBetter;
  return Direction::kInfo;
}

struct FieldDelta {
  std::string row_key;
  std::string field;
  double base = 0;
  double cand = 0;
  double ratio = 1.0;  // cand / base
  bool regression = false;
  bool improvement = false;
};

struct CompareTotals {
  std::size_t files = 0;
  std::size_t rows = 0;
  std::size_t fields = 0;
  std::vector<FieldDelta> regressions;
  std::vector<FieldDelta> improvements;
};

bool load_json(const std::string& path, JsonValue& out, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open: " + path;
    return false;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return sfa::obs::parse_json(os.str(), out, error);
}

/// Stable identity of a row inside one bench document: the bench name plus
/// every string-valued field, plus an ordinal to disambiguate repeats.
std::string row_key(const std::string& bench, const JsonValue& row,
                    std::map<std::string, unsigned>& ordinals) {
  std::string key = bench;
  if (row.is_object()) {
    for (const auto& [k, v] : *row.obj)
      if (v.is_string()) key += " " + k + "=" + v.str;
  }
  const unsigned ordinal = ordinals[key]++;
  if (ordinal != 0) key += " #" + std::to_string(ordinal);
  return key;
}

void compare_documents(const JsonValue& base, const JsonValue& cand,
                       double threshold, CompareTotals& totals) {
  ++totals.files;
  const std::string bench = base.string_or("bench", "?");
  const JsonValue* base_rows = base.get("rows");
  const JsonValue* cand_rows = cand.get("rows");
  if (base_rows == nullptr || !base_rows->is_array() || cand_rows == nullptr ||
      !cand_rows->is_array())
    return;

  std::map<std::string, const JsonValue*> cand_by_key;
  {
    std::map<std::string, unsigned> ordinals;
    for (const JsonValue& row : *cand_rows->arr)
      cand_by_key[row_key(bench, row, ordinals)] = &row;
  }

  std::map<std::string, unsigned> ordinals;
  for (const JsonValue& brow : *base_rows->arr) {
    const std::string key = row_key(bench, brow, ordinals);
    const auto it = cand_by_key.find(key);
    if (it == cand_by_key.end() || !brow.is_object()) continue;
    const JsonValue& crow = *it->second;
    ++totals.rows;
    for (const auto& [field, bval] : *brow.obj) {
      if (!bval.is_number()) continue;
      const JsonValue* cval = crow.get(field);
      if (cval == nullptr || !cval->is_number()) continue;
      const Direction dir = classify(field);
      if (dir == Direction::kInfo) continue;
      // Ratios need strictly positive values on both sides; zero/negative
      // readings (timer underflow, empty run) cannot be judged.
      if (bval.num <= 0 || cval->num <= 0) continue;
      ++totals.fields;
      FieldDelta d;
      d.row_key = key;
      d.field = field;
      d.base = bval.num;
      d.cand = cval->num;
      d.ratio = cval->num / bval.num;
      const double worse =
          dir == Direction::kLowerBetter ? d.ratio : 1.0 / d.ratio;
      if (worse > 1.0 + threshold) {
        d.regression = true;
        totals.regressions.push_back(d);
      } else if (worse < 1.0 / (1.0 + threshold)) {
        d.improvement = true;
        totals.improvements.push_back(d);
      }
    }
  }
}

void write_verdict_json(const std::string& path, double threshold,
                        const CompareTotals& t) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  sfa::obs::JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sfa-bench-compare/1");
  w.kv("threshold", threshold);
  w.kv("files_compared", std::uint64_t{t.files});
  w.kv("rows_compared", std::uint64_t{t.rows});
  w.kv("fields_compared", std::uint64_t{t.fields});
  const auto write_deltas = [&w](const std::vector<FieldDelta>& ds) {
    w.begin_array();
    for (const FieldDelta& d : ds) {
      w.begin_object();
      w.kv("row", d.row_key);
      w.kv("field", d.field);
      w.kv("base", d.base);
      w.kv("candidate", d.cand);
      w.kv("ratio", d.ratio);
      w.end_object();
    }
    w.end_array();
  };
  w.key("regressions");
  write_deltas(t.regressions);
  w.key("improvements");
  write_deltas(t.improvements);
  w.kv("ok", t.regressions.empty());
  w.end_object();
  os << '\n';
}

[[noreturn]] void usage(const char* error) {
  if (error) std::fprintf(stderr, "error: %s\n", error);
  std::fprintf(stderr,
               "usage: sfa_bench_compare <base.json|dir> <candidate.json|dir>"
               " [--threshold F] [--json verdict.json]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  double threshold = 0.30;
  std::string verdict_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (arg == "--threshold")
      threshold = std::stod(next());
    else if (arg == "--json")
      verdict_path = next();
    else if (!arg.empty() && arg[0] == '-')
      usage(("unknown option: " + arg).c_str());
    else
      positional.push_back(arg);
  }
  if (positional.size() != 2) usage("need <base> and <candidate>");
  if (threshold <= 0) usage("--threshold must be > 0");

  namespace fs = std::filesystem;
  std::vector<std::pair<std::string, std::string>> pairs;
  std::error_code ec;
  const bool base_dir = fs::is_directory(positional[0], ec);
  const bool cand_dir = fs::is_directory(positional[1], ec);
  if (base_dir != cand_dir)
    usage("base and candidate must both be files or both be directories");
  if (base_dir) {
    // Pairwise over the BENCH_*.json names present on both sides; names on
    // one side only are reported but never gate (a bench added or removed
    // is a review question, not a perf regression).
    std::vector<std::string> names;
    for (const auto& entry : fs::directory_iterator(positional[0], ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("BENCH_", 0) == 0 && ends_with(name, ".json"))
        names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      const fs::path cand = fs::path(positional[1]) / name;
      if (fs::exists(cand, ec))
        pairs.emplace_back((fs::path(positional[0]) / name).string(),
                           cand.string());
      else
        std::printf("skipped %s: only in base\n", name.c_str());
    }
    if (pairs.empty()) usage("no common BENCH_*.json files to compare");
  } else {
    pairs.emplace_back(positional[0], positional[1]);
  }

  CompareTotals totals;
  for (const auto& [base_path, cand_path] : pairs) {
    JsonValue base, cand;
    std::string error;
    if (!load_json(base_path, base, error) ||
        !load_json(cand_path, cand, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    compare_documents(base, cand, threshold, totals);
  }

  for (const FieldDelta& d : totals.regressions)
    std::printf("REGRESSION %s :: %s %.6g -> %.6g (%.2fx)\n",
                d.row_key.c_str(), d.field.c_str(), d.base, d.cand, d.ratio);
  for (const FieldDelta& d : totals.improvements)
    std::printf("improved %s :: %s %.6g -> %.6g (%.2fx)\n", d.row_key.c_str(),
                d.field.c_str(), d.base, d.cand, d.ratio);
  std::printf("compared %zu file(s), %zu row(s), %zu gated field(s): "
              "%zu regression(s), %zu improvement(s) at %.0f%% threshold\n",
              totals.files, totals.rows, totals.fields,
              totals.regressions.size(), totals.improvements.size(),
              100.0 * threshold);

  if (!verdict_path.empty())
    write_verdict_json(verdict_path, threshold, totals);
  return totals.regressions.empty() ? 0 : 1;
}
