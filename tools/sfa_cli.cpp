// sfa — command-line front end for the library.
//
//   sfa build  <pattern> -o out.sfa [options]   compile + construct + save
//   sfa match  <file.sfa> <textfile> [options]  parallel SFA matching
//   sfa inspect <file.sfa>                      summary + statistics
//   sfa grail  <pattern> [options]              dump the minimal DFA
//
// Common options:
//   --prosite | --regex      pattern syntax        (default: --prosite)
//   --alphabet amino|dna|ascii                     (default: amino;
//                                                   --prosite implies amino)
//   --method baseline|hashed|transposed|parallel|probabilistic
//                                                  (default: parallel)
//   --threads N                                    (default: hardware)
//   --compress-threshold BYTES                     enable 3-phase compression
//   --count                  match: count accepting positions, not just test
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sfa/automata/ops.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/serialize.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

namespace {

using namespace sfa;

struct Options {
  std::string command;
  std::vector<std::string> positional;
  bool prosite = true;
  std::string alphabet_name = "amino";
  BuildMethod method = BuildMethod::kParallel;
  unsigned threads = hardware_threads();
  std::size_t compress_threshold = 0;
  bool count = false;
  std::string output;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: sfa <build|match|inspect|grail> ... (see header "
               "comment / README)\n");
  std::exit(error ? 2 : 0);
}

const Alphabet& alphabet_by_name(const std::string& name) {
  if (name == "amino") return Alphabet::amino();
  if (name == "dna") return Alphabet::dna();
  if (name == "ascii") return Alphabet::ascii_printable();
  usage("unknown alphabet (amino|dna|ascii)");
}

BuildMethod method_by_name(const std::string& name) {
  if (name == "baseline") return BuildMethod::kBaseline;
  if (name == "hashed") return BuildMethod::kHashed;
  if (name == "transposed") return BuildMethod::kTransposed;
  if (name == "parallel") return BuildMethod::kParallel;
  if (name == "probabilistic") return BuildMethod::kProbabilistic;
  usage("unknown method");
}

Options parse(int argc, char** argv) {
  Options opt;
  if (argc < 2) usage();
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (arg == "--prosite")
      opt.prosite = true;
    else if (arg == "--regex")
      opt.prosite = false;
    else if (arg == "--alphabet")
      opt.alphabet_name = next();
    else if (arg == "--method")
      opt.method = method_by_name(next());
    else if (arg == "--threads")
      opt.threads = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--compress-threshold")
      opt.compress_threshold = std::stoull(next());
    else if (arg == "--count")
      opt.count = true;
    else if (arg == "-o" || arg == "--output")
      opt.output = next();
    else if (arg == "--help" || arg == "-h")
      usage();
    else if (!arg.empty() && arg[0] == '-')
      usage(("unknown option: " + arg).c_str());
    else
      opt.positional.push_back(arg);
  }
  return opt;
}

Dfa compile(const Options& opt, const std::string& pattern) {
  if (opt.prosite) return compile_prosite(pattern);
  return compile_pattern(pattern, alphabet_by_name(opt.alphabet_name));
}

int cmd_build(const Options& opt) {
  if (opt.positional.size() != 1) usage("build needs exactly one pattern");
  const WallTimer compile_timer;
  const Dfa dfa = compile(opt, opt.positional[0]);
  std::printf("DFA: %u states over %u symbols (%.3f s)\n", dfa.size(),
              dfa.num_symbols(), compile_timer.seconds());

  BuildOptions build;
  build.num_threads = opt.threads;
  build.memory_threshold_bytes = opt.compress_threshold;
  BuildStats stats;
  const Sfa sfa = build_sfa(dfa, opt.method, build, &stats);
  std::printf("%s\n", sfa.summary().c_str());
  std::printf("construction: %.3f s, %s method, %u thread(s)%s\n",
              stats.seconds, build_method_name(opt.method), stats.threads,
              stats.compression_triggered ? ", compression triggered" : "");
  if (!opt.output.empty()) {
    save_sfa_file(sfa, opt.output);
    std::printf("saved: %s\n", opt.output.c_str());
  }
  return 0;
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

int cmd_match(const Options& opt) {
  if (opt.positional.size() != 2)
    usage("match needs <file.sfa> <textfile|->");
  const Sfa sfa = load_sfa_file(opt.positional[0]);
  const Alphabet& alphabet = alphabet_by_name(opt.alphabet_name);
  if (alphabet.size() != sfa.num_symbols())
    usage("alphabet size does not match the SFA (pass --alphabet)");
  std::string text = read_all(opt.positional[1]);
  // Tolerate trailing newlines from shell pipelines.
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  const std::vector<Symbol> input = alphabet.encode(text);

  const WallTimer timer;
  const MatchResult result = match_sfa_parallel(sfa, input, opt.threads);
  const double ms = timer.millis();
  std::printf("input: %s symbols, %u thread(s)\n",
              with_commas(input.size()).c_str(), opt.threads);
  std::printf("match: %s (%.3f ms)\n", result.accepted ? "YES" : "no", ms);
  return result.accepted ? 0 : 1;
}

int cmd_inspect(const Options& opt) {
  if (opt.positional.size() != 1) usage("inspect needs <file.sfa>");
  const Sfa sfa = load_sfa_file(opt.positional[0]);
  std::printf("%s\n", sfa.summary().c_str());
  std::printf("start state:   %u\n", sfa.start());
  std::printf("transitions:   %s\n",
              with_commas(static_cast<std::uint64_t>(sfa.num_states()) *
                          sfa.num_symbols())
                  .c_str());
  std::size_t accepting = 0;
  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s)
    accepting += sfa.accepting(s);
  std::printf("accepting:     %s (%.1f%%)\n", with_commas(accepting).c_str(),
              100.0 * static_cast<double>(accepting) /
                  static_cast<double>(sfa.num_states()));
  return 0;
}

int cmd_grail(const Options& opt) {
  if (opt.positional.size() != 1) usage("grail needs exactly one pattern");
  const Dfa dfa = compile(opt, opt.positional[0]);
  const Alphabet& alphabet =
      opt.prosite ? Alphabet::amino() : alphabet_by_name(opt.alphabet_name);
  std::fputs(dfa.to_grail(alphabet).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    if (opt.command == "build") return cmd_build(opt);
    if (opt.command == "match") return cmd_match(opt);
    if (opt.command == "inspect") return cmd_inspect(opt);
    if (opt.command == "grail") return cmd_grail(opt);
    usage(("unknown command: " + opt.command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
