// sfa — command-line front end for the library.
//
//   sfa build  <pattern> -o out.sfa [options]   compile + construct + save
//   sfa match  <file.sfa> <textfile> [options]  parallel SFA matching
//   sfa inspect <file.sfa>                      summary + statistics
//   sfa grail  <pattern> [options]              dump the minimal DFA
//   sfa info                                    platform + build capabilities
//   sfa profile <trace.json> [options]          analyze a --trace recording:
//                                               per-phase wall time, worker
//                                               timeline/utilization, steals,
//                                               parallel efficiency
//     --stats-json FILE.json  also summarize the run's --stats-json output
//                             (the sfa-profile/1 section, when present)
//     --expect-workers N      exit 1 unless the trace shows >= N worker
//                             tracks (CI gate)
//   sfa serve [options]                         drive the multi-pattern
//                                               matching service with the
//                                               in-process traffic simulator
//     --once                 serve exactly one batch and exit (CI smoke)
//     --requests N           total requests (default 64; --once default 4)
//     --batch N              max requests per pool dispatch (default 16)
//     --sets K               registered pattern sets (default 4, PROSITE)
//     --engine E             eager|lazy|speculative|narrowed|mix
//     --chunks N             chunks per request scan (default 4)
//     --cache-budget BYTES   SfaCache LRU budget (default 256 MiB; 0 = off)
//     --cache-dir DIR        persist compiled SFAs as <fingerprint>.sfa
//     --rate R               open-loop arrivals/sec (default 0: closed loop)
//     --input-symbols L      per-request input length (default 4096)
//     --churn N              register a fresh synthetic set every N requests
//     --seed S               simulator seed (default 2017)
//     --stats-json FILE      sfa-serve-stats/1 run statistics
//
// Common options:
//   --prosite | --regex      pattern syntax        (default: --prosite)
//   --alphabet amino|dna|ascii                     (default: amino;
//                                                   --prosite implies amino)
//   --method baseline|hashed|transposed|parallel|probabilistic
//                                                  (default: parallel)
//   --threads N                                    (default: hardware)
//   --memory-threshold BYTES  enable 3-phase compression for ANY method
//                             (baseline/probabilistic accept and ignore it:
//                             the tree keys / fingerprint-only store have no
//                             compressible payload).  --compress-threshold is
//                             the historical alias.
//   --codec rle|lz77|huffman|deflate               mapping-store codec
//   --count                  match: count accepting end-positions; needs
//                            --pattern PAT to recompile the DFA (.sfa files
//                            do not store the DFA delta table the two-pass
//                            count rescans with)
//   --pattern PAT            match: the pattern the .sfa was built from
//   --stream                 match: feed the input through a StreamMatcher
//                            session block by block instead of one shot
//   --lazy                   match: lazy on-demand matching — no .sfa file;
//                            usage becomes `sfa match --lazy <textfile|->
//                            --pattern PAT`.  SFA states intern during the
//                            scan, so patterns whose eager SFA would exceed
//                            max_states still match in parallel.  Composes
//                            with --count / --stream / --threads.
//   --memory-cap BYTES       lazy: hard cap on intern-table memory; workers
//                            fall back to exact direct DFA simulation when
//                            the cap is reached (0 = unlimited)
//   --narrowed               match: PaREM-hybrid chunk-entry narrowing — no
//                            .sfa file; usage becomes `sfa match --narrowed
//                            <textfile|-> --pattern PAT`.  Each chunk
//                            simulates only its feasible entry-state set
//                            (computed from the DFA's per-symbol reachable
//                            sets), with a per-chunk fallback when the set
//                            fails to shrink.  Composes with --count /
//                            --threads.
//   --peek-k K               narrowed: refine each chunk's feasible set by
//                            peeking its first K symbols (set-image
//                            composition; default 0)
//   --scheduler static-stripe|work-stealing|guided
//                            dispatch policy of the scan worker pool
//                            (default static-stripe, the historical t%team
//                            binding).  work-stealing balances
//                            heterogeneous chunk costs via per-worker
//                            deques; guided claims geometrically shrinking
//                            batches.  Applies to match/serve scans; build
//                            keeps its own two-regime distribution.
//   --adaptive-chunks        enable the adaptive chunk planner: chunk
//                            counts follow a target byte size adapted from
//                            observed per-chunk TSC imbalance instead of
//                            being fixed at --threads
//   --pin none|socket        NUMA pinning (default none).  socket binds
//                            worker w of the scan pool AND the parallel
//                            builder's team to NUMA node (w mod nodes) and
//                            warms first-touch scratch there; a no-op on
//                            hosts without /sys/devices/system/node.
//   --table-layout dense|dedup|d2fa
//                            build: re-encode the δ-table before saving
//                            (non-dense layouts save as layout-tagged SFA2
//                            files).  match: re-encode after loading, so a
//                            dense .sfa can be matched through any layout.
//                            dedup shares identical rows; d2fa stores
//                            per-state exceptions + a default pointer
//                            (bounded-depth chase).  Default: dense on
//                            build, the file's own layout on match.
//
// Observability (docs/OBSERVABILITY.md):
//   --trace FILE.json        record a span trace of the run (Perfetto /
//                            chrome://tracing format; needs an SFA_TRACE=ON
//                            build for instrumented hot paths)
//   --stats-json FILE.json   write machine-readable run statistics
//                            (schemas sfa-build-stats/1, sfa-match-stats/1;
//                            match stats carry the always-on sfa-profile/1
//                            per-worker chunk attribution, and build/match
//                            runs attach hardware perf counters when the
//                            kernel grants perf_event_open)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sfa/automata/ops.hpp"
#include "sfa/automata/product.hpp"
#include "sfa/compress/registry.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/lazy_matcher.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/chunk_planner.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/core/serialize.hpp"
#include "sfa/core/stream_matcher.hpp"
#include "sfa/obs/json_parse.hpp"
#include "sfa/obs/profile/perf_counters.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/profile/report.hpp"
#include "sfa/obs/stats_export.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/serve/match_service.hpp"
#include "sfa/serve/serve_stats.hpp"
#include "sfa/serve/simulator.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/format.hpp"
#include "sfa/support/timer.hpp"

namespace {

using namespace sfa;

struct Options {
  std::string command;
  std::vector<std::string> positional;
  bool prosite = true;
  std::string alphabet_name = "amino";
  BuildMethod method = BuildMethod::kParallel;
  unsigned threads = hardware_threads();
  std::size_t compress_threshold = 0;
  std::string codec_name;
  bool count = false;
  bool stream = false;
  bool lazy = false;
  bool narrowed = false;
  unsigned peek_k = 0;
  std::size_t memory_cap = 0;
  std::string table_layout;  // empty = keep the default/file layout
  std::string pattern;
  std::string output;
  std::string trace_path;
  std::string stats_json_path;
  unsigned expect_workers = 0;  // profile: minimum worker tracks, 0 = off
  // serve: the in-process traffic driver over the service layer.
  bool once = false;              // one batch, then exit (CI smoke)
  std::size_t serve_requests = 64;
  std::size_t serve_batch = 16;
  unsigned serve_sets = 4;
  std::string serve_engine = "eager";  // eager|lazy|speculative|narrowed|mix
  unsigned serve_chunks = 4;
  std::uint64_t cache_budget = 256ull << 20;
  std::string cache_dir;
  double arrival_rate = 0;        // open-loop arrivals/sec; 0 = closed loop
  std::size_t input_symbols = 4096;
  std::size_t churn_every = 0;    // register a fresh synthetic set every N
  std::uint64_t seed = 2017;
  // Dispatch seam (PR 10): scheduler policy, adaptive chunk sizing, NUMA
  // pinning.  Empty/false keep the bit-for-bit historical behavior.
  std::string scheduler_name;
  bool adaptive_chunks = false;
  std::string pin_name;
};

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: sfa <build|match|inspect|grail|info|profile|serve> ... "
               "(see header comment / README)\n");
  std::exit(error ? 2 : 0);
}

const Alphabet& alphabet_by_name(const std::string& name) {
  if (name == "amino") return Alphabet::amino();
  if (name == "dna") return Alphabet::dna();
  if (name == "ascii") return Alphabet::ascii_printable();
  usage(("unknown alphabet '" + name + "' (expected amino, dna, or ascii)")
            .c_str());
}

BuildMethod method_by_name(const std::string& name) {
  if (name == "baseline") return BuildMethod::kBaseline;
  if (name == "hashed") return BuildMethod::kHashed;
  if (name == "transposed") return BuildMethod::kTransposed;
  if (name == "parallel") return BuildMethod::kParallel;
  if (name == "probabilistic") return BuildMethod::kProbabilistic;
  usage(("unknown method '" + name +
         "' (expected baseline, hashed, transposed, parallel, or "
         "probabilistic)")
            .c_str());
}

Options parse(int argc, char** argv) {
  Options opt;
  if (argc < 2) usage();
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing option value");
      return argv[++i];
    };
    if (arg == "--prosite")
      opt.prosite = true;
    else if (arg == "--regex")
      opt.prosite = false;
    else if (arg == "--alphabet")
      opt.alphabet_name = next();
    else if (arg == "--method")
      opt.method = method_by_name(next());
    else if (arg == "--threads")
      opt.threads = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--memory-threshold" || arg == "--compress-threshold")
      opt.compress_threshold = std::stoull(next());
    else if (arg == "--codec")
      opt.codec_name = next();
    else if (arg == "--count")
      opt.count = true;
    else if (arg == "--stream")
      opt.stream = true;
    else if (arg == "--lazy")
      opt.lazy = true;
    else if (arg == "--narrowed")
      opt.narrowed = true;
    else if (arg == "--peek-k")
      opt.peek_k = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--memory-cap")
      opt.memory_cap = std::stoull(next());
    else if (arg == "--table-layout")
      opt.table_layout = next();
    else if (arg == "--pattern")
      opt.pattern = next();
    else if (arg == "-o" || arg == "--output")
      opt.output = next();
    else if (arg == "--trace")
      opt.trace_path = next();
    else if (arg == "--stats-json")
      opt.stats_json_path = next();
    else if (arg == "--expect-workers")
      opt.expect_workers = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--once")
      opt.once = true;
    else if (arg == "--requests")
      opt.serve_requests = std::stoull(next());
    else if (arg == "--batch")
      opt.serve_batch = std::stoull(next());
    else if (arg == "--sets")
      opt.serve_sets = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--engine")
      opt.serve_engine = next();
    else if (arg == "--chunks")
      opt.serve_chunks = static_cast<unsigned>(std::stoul(next()));
    else if (arg == "--cache-budget")
      opt.cache_budget = std::stoull(next());
    else if (arg == "--cache-dir")
      opt.cache_dir = next();
    else if (arg == "--rate")
      opt.arrival_rate = std::stod(next());
    else if (arg == "--input-symbols")
      opt.input_symbols = std::stoull(next());
    else if (arg == "--churn")
      opt.churn_every = std::stoull(next());
    else if (arg == "--seed")
      opt.seed = std::stoull(next());
    else if (arg == "--scheduler")
      opt.scheduler_name = next();
    else if (arg == "--adaptive-chunks")
      opt.adaptive_chunks = true;
    else if (arg == "--pin")
      opt.pin_name = next();
    else if (arg == "--help" || arg == "-h")
      usage();
    else if (!arg.empty() && arg[0] == '-')
      usage(("unknown option: " + arg).c_str());
    else
      opt.positional.push_back(arg);
  }
  return opt;
}

Dfa compile(const Options& opt, const std::string& pattern) {
  if (opt.prosite) return compile_prosite(pattern);
  return compile_pattern(pattern, alphabet_by_name(opt.alphabet_name));
}

/// --table-layout value, or kDense when the flag was not given.  Exits with
/// usage() on an unknown spelling.
table::TableLayout layout_by_name(const std::string& name) {
  table::TableLayout layout = table::TableLayout::kDense;
  if (!name.empty() && !table::parse_layout(name, layout))
    usage(("unknown table layout '" + name +
           "' (expected dense, dedup, or d2fa)")
              .c_str());
  return layout;
}

/// Re-encode the δ-table when --table-layout asks for it, and report the
/// footprint move (resident bytes before → after).
void apply_table_layout(Sfa& sfa, const Options& opt) {
  if (opt.table_layout.empty()) return;
  const table::TableLayout target = layout_by_name(opt.table_layout);
  if (target == sfa.table_layout()) return;
  const std::uint64_t before = sfa.table_bytes();
  const WallTimer timer;
  sfa.convert_table_layout(target);
  const table::TableStats t = sfa.table().stats();
  std::printf("table layout:  %s (%s -> %s, %.3f s, %s unique rows",
              table::layout_name(t.layout), human_bytes(before).c_str(),
              human_bytes(t.resident_bytes).c_str(), timer.seconds(),
              with_commas(t.rows_unique).c_str());
  if (t.layout == table::TableLayout::kD2fa)
    std::printf(", max chase %u", t.max_chase_depth);
  std::printf(")\n");
}

const Codec* codec_by_name(const std::string& name) {
  if (name.empty()) return nullptr;
  const Codec* codec = find_codec(name);
  if (codec == nullptr)
    usage(("unknown codec '" + name + "' (see `sfa info` for the registry)")
              .c_str());
  return codec;
}

/// Apply the dispatch-seam flags (--scheduler / --adaptive-chunks / --pin)
/// to the process-wide knobs: the default executor's pool policy and pin
/// mode, the chunk planner, and the process pin mode the parallel builder's
/// team reads.  The planner is reset either way so chunk_size_* stats cover
/// exactly the run that follows.
void apply_dispatch_options(const Options& opt) {
  if (!opt.scheduler_name.empty()) {
    sched::Policy policy = sched::Policy::kStaticStripe;
    if (!sched::parse_policy(opt.scheduler_name, policy))
      usage(("unknown scheduler '" + opt.scheduler_name +
             "' (expected static-stripe, work-stealing, or guided)")
                .c_str());
    scan::set_default_scheduler(policy);
  }
  scan::ChunkPlanner::instance().set_enabled(opt.adaptive_chunks);
  scan::ChunkPlanner::instance().reset();
  if (!opt.pin_name.empty()) {
    PinMode pin = PinMode::kNone;
    if (!parse_pin_mode(opt.pin_name, pin))
      usage(("unknown pin mode '" + opt.pin_name +
             "' (expected none or socket)")
                .c_str());
    scan::set_default_pin_mode(pin);
    set_process_pin_mode(pin);
  }
}

/// Starts a trace recording session when --trace was given; writes the
/// Chrome-tracing JSON on stop_and_write().  In a default (SFA_TRACE=OFF)
/// binary the hot paths carry no instrumentation, so the file would hold an
/// empty trace — warn rather than silently produce one.
class TraceSession {
 public:
  explicit TraceSession(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    if (!obs::kTraceEnabled)
      std::fprintf(stderr,
                   "warning: this binary was built without SFA_TRACE=ON; "
                   "%s will contain no instrumentation spans\n",
                   path_.c_str());
    obs::TraceCollector::instance().start();
  }

  void stop_and_write() {
    if (path_.empty() || done_) return;
    done_ = true;
    auto& collector = obs::TraceCollector::instance();
    collector.stop();
    if (!collector.write_chrome_json_file(path_))
      throw std::runtime_error("cannot write trace: " + path_);
    std::printf("trace: %s\n", path_.c_str());
  }

 private:
  std::string path_;
  bool done_ = false;
};

int cmd_build(const Options& opt) {
  if (opt.positional.size() != 1) usage("build needs exactly one pattern");
  apply_dispatch_options(opt);
  const WallTimer compile_timer;
  const Dfa dfa = compile(opt, opt.positional[0]);
  std::printf("DFA: %u states over %u symbols (%.3f s)\n", dfa.size(),
              dfa.num_symbols(), compile_timer.seconds());

  BuildOptions build;
  build.num_threads = opt.threads;
  build.memory_threshold_bytes = opt.compress_threshold;
  build.codec = codec_by_name(opt.codec_name);
  BuildStats stats;
  TraceSession trace(opt.trace_path);
  obs::PerfCounterScope perf("build");
  Sfa sfa = build_sfa(dfa, opt.method, build, &stats);
  const obs::PerfCounterValues perf_values = perf.stop();
  trace.stop_and_write();
  apply_table_layout(sfa, opt);
  std::printf("%s\n", sfa.summary().c_str());
  std::printf("construction: %.3f s, %s method, %u thread(s)%s\n",
              stats.seconds, build_method_name(opt.method), stats.threads,
              stats.compression_triggered ? ", compression triggered" : "");
  if (perf_values.available)
    std::printf("perf: %s cycles, %s instructions (ipc %.2f)\n",
                with_commas(perf_values.cycles).c_str(),
                with_commas(perf_values.instructions).c_str(),
                perf_values.ipc());
  if (!opt.stats_json_path.empty()) {
    const table::TableStats table_stats = sfa.table().stats();
    if (!obs::write_build_stats_json_file(opt.stats_json_path, stats,
                                          build_method_name(opt.method),
                                          &perf_values, &table_stats))
      throw std::runtime_error("cannot write stats: " + opt.stats_json_path);
    std::printf("stats: %s\n", opt.stats_json_path.c_str());
  }
  if (!opt.output.empty()) {
    save_sfa_file(sfa, opt.output);
    std::printf("saved: %s\n", opt.output.c_str());
  }
  return 0;
}

std::string read_all(const std::string& path) {
  if (path == "-") {
    std::ostringstream os;
    os << std::cin.rdbuf();
    return os.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// `sfa match --lazy <textfile|-> --pattern PAT`: no .sfa file — the DFA is
/// compiled from the pattern and SFA states intern on demand during the
/// scan, so even patterns whose eager build() would abort on max_states are
/// matched in parallel.
/// Snapshots the process-wide executor counters at construction and fills
/// a run's additive pool_* stats fields as deltas over the timed section.
struct PoolStatsDelta {
  sfa::scan::ExecutorStats before = sfa::scan::default_executor().stats();

  void fill(obs::MatchRunInfo& info) const {
    const sfa::scan::ExecutorStats after = sfa::scan::default_executor().stats();
    info.pool_workers = after.pool_workers;
    info.pool_dispatches = after.pool_dispatches - before.pool_dispatches;
    info.pool_wakeups = after.pool_wakeups - before.pool_wakeups;
    info.pool_steals = after.pool_steals - before.pool_steals;
    info.scheduler = sched::policy_name(scan::default_scheduler());
    const scan::ChunkPlanner::Snapshot plan =
        scan::ChunkPlanner::instance().snapshot();
    if (plan.enabled) {
      info.adaptive = true;
      info.chunk_size_min = plan.chunk_bytes_min;
      info.chunk_size_max = plan.chunk_bytes_max;
      info.chunk_size_final = plan.chunk_bytes_final;
    }
  }
};

int cmd_match_lazy(const Options& opt) {
  if (opt.positional.size() != 1)
    usage("match --lazy needs <textfile|-> (no .sfa file; the SFA is "
          "constructed on demand from --pattern)");
  if (opt.pattern.empty())
    usage("match --lazy needs --pattern PAT (the pattern to match; there is "
          "no pre-built .sfa to load)");
  if (opt.count && opt.stream)
    usage("--count and --stream are mutually exclusive");
  const Dfa dfa = compile(opt, opt.pattern);
  const Alphabet& alphabet =
      opt.prosite ? Alphabet::amino() : alphabet_by_name(opt.alphabet_name);
  if (alphabet.size() != dfa.num_symbols())
    usage("alphabet size does not match the compiled pattern");
  std::string text = read_all(opt.positional[0]);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  const std::vector<Symbol> input = alphabet.encode(text);

  LazyMatchOptions lazy;
  lazy.num_threads = opt.threads;
  lazy.memory_threshold_bytes = opt.compress_threshold;
  lazy.memory_cap_bytes = opt.memory_cap;
  lazy.codec = codec_by_name(opt.codec_name);

  obs::MatchRunInfo info;
  info.command = "match";
  info.lazy = true;
  info.input_symbols = input.size();
  info.threads = opt.threads;

  std::printf("input: %s symbols, %u thread(s), lazy\n",
              with_commas(input.size()).c_str(), opt.threads);
  LazyMatcher matcher(dfa, lazy);
  bool accepted = false;
  PoolStatsDelta pool;
  obs::ExecutionProfiler::instance().reset();  // section covers this run only
  obs::PerfCounterScope perf("match");
  TraceSession trace(opt.trace_path);
  if (opt.count) {
    const WallTimer timer;
    const std::size_t count = matcher.count(input);
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = count > 0;
    std::printf("matches: %s (%.3f ms)\n", with_commas(count).c_str(), ms);
    info.mode = "count";
    info.counted = true;
    info.match_count = count;
    info.seconds = ms / 1e3;
  } else if (opt.stream) {
    constexpr std::size_t kBlockSymbols = 64 * 1024;
    StreamMatcher stream(matcher);
    const WallTimer timer;
    for (std::size_t off = 0; off < input.size(); off += kBlockSymbols)
      stream.feed(input.data() + off,
                  std::min(kBlockSymbols, input.size() - off));
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = stream.matched();
    std::printf("stream: %s blocks, match: %s (%.3f ms)\n",
                with_commas((input.size() + kBlockSymbols - 1) / kBlockSymbols)
                    .c_str(),
                accepted ? "YES" : "no", ms);
    info.mode = "stream";
    info.input_symbols = stream.symbols_consumed();
    info.seconds = ms / 1e3;
  } else {
    const WallTimer timer;
    const MatchResult result = matcher.match(input);
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = result.accepted;
    std::printf("match: %s (%.3f ms)\n", accepted ? "YES" : "no", ms);
    info.mode = "match";
    info.seconds = ms / 1e3;
  }
  info.accepted = accepted;
  pool.fill(info);
  info.perf = perf.stop();
  info.profile = true;
  const LazyMatchStats stats = matcher.stats();
  info.lazy_interned_states = stats.interned_states;
  info.lazy_cache_hits = stats.cache_hits;
  const std::uint64_t lookups = stats.cache_hits + stats.cache_misses;
  std::printf("lazy: %s states interned, %.1f%% cache hit rate%s%s\n",
              with_commas(stats.interned_states).c_str(),
              lookups == 0 ? 100.0
                           : 100.0 * static_cast<double>(stats.cache_hits) /
                                 static_cast<double>(lookups),
              stats.cap_hit ? ", memory cap hit" : "",
              stats.compression_triggered ? ", compression triggered" : "");
  if (!opt.stats_json_path.empty()) {
    if (!obs::write_match_stats_json_file(opt.stats_json_path, info))
      throw std::runtime_error("cannot write stats: " + opt.stats_json_path);
    std::printf("stats: %s\n", opt.stats_json_path.c_str());
  }
  return accepted ? 0 : 1;
}

/// `sfa match --narrowed <textfile|-> --pattern PAT [--peek-k K]`: no .sfa
/// file — the DFA is compiled from the pattern and each chunk simulates
/// only its PaREM feasible entry-state set (reach of the boundary symbol,
/// refined by peeking K symbols).  No SFA construction happens at all.
int cmd_match_narrowed(const Options& opt) {
  if (opt.positional.size() != 1)
    usage("match --narrowed needs <textfile|-> (no .sfa file; the feasible "
          "sets come from --pattern's DFA)");
  if (opt.pattern.empty())
    usage("match --narrowed needs --pattern PAT (the pattern to match; "
          "there is no pre-built .sfa to load)");
  if (opt.stream)
    usage("--narrowed and --stream are mutually exclusive (narrowing is a "
          "whole-input chunk policy)");
  const Dfa dfa = compile(opt, opt.pattern);
  const Alphabet& alphabet =
      opt.prosite ? Alphabet::amino() : alphabet_by_name(opt.alphabet_name);
  if (alphabet.size() != dfa.num_symbols())
    usage("alphabet size does not match the compiled pattern");
  std::string text = read_all(opt.positional[0]);
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  const std::vector<Symbol> input = alphabet.encode(text);

  NarrowedMatchOptions narrowed;
  narrowed.peek_k = opt.peek_k;

  obs::MatchRunInfo info;
  info.command = "match";
  info.narrowed = true;
  info.input_symbols = input.size();
  info.threads = opt.threads;

  std::printf("input: %s symbols, %u thread(s), narrowed (peek-k %u)\n",
              with_commas(input.size()).c_str(), opt.threads, opt.peek_k);
  bool accepted = false;
  unsigned chunks = 0;
  unsigned narrowed_chunks = 0;
  unsigned fallback_chunks = 0;
  std::uint64_t entry_states = 0;
  PoolStatsDelta pool;
  obs::ExecutionProfiler::instance().reset();  // section covers this run only
  obs::PerfCounterScope perf("match");
  TraceSession trace(opt.trace_path);
  if (opt.count) {
    const WallTimer timer;
    const NarrowedCountResult r =
        count_matches_narrowed(dfa, input, opt.threads, narrowed);
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = r.count > 0;
    chunks = r.chunks;
    narrowed_chunks = r.narrowed_chunks;
    fallback_chunks = r.fallback_chunks;
    entry_states = r.entry_states;
    std::printf("matches: %s (%.3f ms)\n", with_commas(r.count).c_str(), ms);
    info.mode = "count";
    info.counted = true;
    info.match_count = r.count;
    info.seconds = ms / 1e3;
  } else {
    const WallTimer timer;
    const NarrowedResult r = match_narrowed(dfa, input, opt.threads, narrowed);
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = r.result.accepted;
    chunks = r.chunks;
    narrowed_chunks = r.narrowed_chunks;
    fallback_chunks = r.fallback_chunks;
    entry_states = r.entry_states;
    std::printf("match: %s (%.3f ms)\n", accepted ? "YES" : "no", ms);
    info.mode = "match";
    info.seconds = ms / 1e3;
  }
  info.accepted = accepted;
  pool.fill(info);
  info.perf = perf.stop();
  info.profile = true;
  info.narrowed_entry_states = entry_states;
  info.narrowed_fallback_chunks = fallback_chunks;
  std::printf("narrowed: %u/%u chunks narrowed, %u fallback, %s entry "
              "states simulated\n",
              narrowed_chunks, chunks, fallback_chunks,
              with_commas(entry_states).c_str());
  if (!opt.stats_json_path.empty()) {
    if (!obs::write_match_stats_json_file(opt.stats_json_path, info))
      throw std::runtime_error("cannot write stats: " + opt.stats_json_path);
    std::printf("stats: %s\n", opt.stats_json_path.c_str());
  }
  return accepted ? 0 : 1;
}

int cmd_match(const Options& opt) {
  if (opt.lazy && opt.narrowed)
    usage("--lazy and --narrowed are mutually exclusive chunk policies");
  apply_dispatch_options(opt);
  if (opt.lazy) return cmd_match_lazy(opt);
  if (opt.narrowed) return cmd_match_narrowed(opt);
  if (opt.positional.size() != 2)
    usage("match needs <file.sfa> <textfile|->");
  if (opt.count && opt.pattern.empty())
    usage("--count needs the DFA delta table, which .sfa files do not store "
          "— pass --pattern PAT (the pattern the .sfa was built from) so the "
          "DFA can be recompiled for the two-pass rescan");
  if (opt.count && opt.stream)
    usage("--count and --stream are mutually exclusive");
  Sfa sfa = load_sfa_file(opt.positional[0]);
  apply_table_layout(sfa, opt);
  const Alphabet& alphabet = alphabet_by_name(opt.alphabet_name);
  if (alphabet.size() != sfa.num_symbols())
    usage("alphabet size does not match the SFA (pass --alphabet)");
  std::string text = read_all(opt.positional[1]);
  // Tolerate trailing newlines from shell pipelines.
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
    text.pop_back();
  const std::vector<Symbol> input = alphabet.encode(text);

  obs::MatchRunInfo info;
  info.command = "match";
  info.input_symbols = input.size();
  info.threads = opt.threads;
  info.has_table = true;
  info.table = sfa.table().stats();

  bool accepted = false;
  std::printf("input: %s symbols, %u thread(s)\n",
              with_commas(input.size()).c_str(), opt.threads);
  PoolStatsDelta pool;
  obs::ExecutionProfiler::instance().reset();  // section covers this run only
  obs::PerfCounterScope perf("match");
  TraceSession trace(opt.trace_path);
  if (opt.count) {
    // Recompile the DFA the .sfa came from; the two-pass count rescans each
    // chunk with it from the chunk-entry state the SFA composition provides.
    const Dfa dfa = compile(opt, opt.pattern);
    if (dfa.num_symbols() != sfa.num_symbols())
      usage("--pattern compiles to a different alphabet than the SFA");
    const WallTimer timer;
    const std::size_t count =
        count_matches_parallel(sfa, dfa, input, opt.threads);
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = count > 0;
    std::printf("matches: %s (%.3f ms)\n", with_commas(count).c_str(), ms);
    info.mode = "count";
    info.counted = true;
    info.match_count = count;
    info.seconds = ms / 1e3;
    info.accepted = accepted;
  } else if (opt.stream) {
    // Feed block by block through a StreamMatcher session — the incremental
    // interface network-payload consumers use.
    constexpr std::size_t kBlockSymbols = 64 * 1024;
    StreamMatcher matcher(sfa, opt.threads);
    const WallTimer timer;
    for (std::size_t off = 0; off < input.size(); off += kBlockSymbols)
      matcher.feed(input.data() + off,
                   std::min(kBlockSymbols, input.size() - off));
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = matcher.matched();
    std::printf("stream: %s blocks, match: %s (%.3f ms)\n",
                with_commas((input.size() + kBlockSymbols - 1) / kBlockSymbols)
                    .c_str(),
                accepted ? "YES" : "no", ms);
    info.mode = "stream";
    info.input_symbols = matcher.symbols_consumed();
    info.seconds = ms / 1e3;
    info.accepted = accepted;
  } else {
    const WallTimer timer;
    const MatchResult result = match_sfa_parallel(sfa, input, opt.threads);
    const double ms = timer.millis();
    trace.stop_and_write();
    accepted = result.accepted;
    std::printf("match: %s (%.3f ms)\n", accepted ? "YES" : "no", ms);
    info.mode = "match";
    info.seconds = ms / 1e3;
    info.accepted = accepted;
  }
  pool.fill(info);
  info.perf = perf.stop();
  info.profile = true;
  if (!opt.stats_json_path.empty()) {
    if (!obs::write_match_stats_json_file(opt.stats_json_path, info))
      throw std::runtime_error("cannot write stats: " + opt.stats_json_path);
    std::printf("stats: %s\n", opt.stats_json_path.c_str());
  }
  return accepted ? 0 : 1;
}

int cmd_inspect(const Options& opt) {
  if (opt.positional.size() != 1) usage("inspect needs <file.sfa>");
  const Sfa sfa = load_sfa_file(opt.positional[0]);
  std::printf("%s\n", sfa.summary().c_str());
  std::printf("start state:   %u\n", sfa.start());
  std::printf("transitions:   %s\n",
              with_commas(static_cast<std::uint64_t>(sfa.num_states()) *
                          sfa.num_symbols())
                  .c_str());
  std::size_t accepting = 0;
  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s)
    accepting += sfa.accepting(s);
  std::printf("accepting:     %s (%.1f%%)\n", with_commas(accepting).c_str(),
              100.0 * static_cast<double>(accepting) /
                  static_cast<double>(sfa.num_states()));
  std::printf("dfa states:    %s\n", with_commas(sfa.dfa_states()).c_str());
  std::printf("cell width:    %u bytes\n", sfa.cell_width());
  const table::TableStats t = sfa.table().stats();
  const std::uint64_t dense_bytes = static_cast<std::uint64_t>(
                                        sfa.num_states()) *
                                    sfa.num_symbols() * sizeof(Sfa::StateId);
  std::printf("table layout:  %s\n", table::layout_name(t.layout));
  std::printf("delta table:   %s resident (%s dense)\n",
              human_bytes(t.resident_bytes).c_str(),
              human_bytes(dense_bytes).c_str());
  std::printf("unique rows:   %s\n", with_commas(t.rows_unique).c_str());
  if (t.layout == table::TableLayout::kD2fa)
    std::printf("max chase:     %u\n", t.max_chase_depth);
  if (sfa.has_mappings()) {
    const std::uint64_t stored = sfa.mapping_store_bytes();
    const std::uint64_t raw = static_cast<std::uint64_t>(sfa.num_states()) *
                              sfa.dfa_states() * sfa.cell_width();
    std::printf("mappings:      %s stored, %s raw (%s)\n",
                human_bytes(stored).c_str(), human_bytes(raw).c_str(),
                sfa.mappings_compressed() ? "compressed" : "uncompressed");
    if (sfa.mappings_compressed() && stored != 0)
      std::printf("compression:   %.2fx\n", static_cast<double>(raw) /
                                                static_cast<double>(stored));
  } else {
    std::printf("mappings:      not stored (matching only from the start "
                "state)\n");
  }
  return 0;
}

int cmd_info(const Options&) {
  const CpuFeatures f = cpu_features();
  std::printf("%s\n", platform_summary().c_str());
  std::printf("hardware threads: %u\n", hardware_threads());
  std::printf("cache line:       %zu bytes\n", cache_line_size());
  std::printf("simd features:    sse2=%d sse4.1=%d sse4.2=%d avx=%d avx2=%d "
              "pclmulqdq=%d bmi2=%d\n",
              f.sse2, f.sse41, f.sse42, f.avx, f.avx2, f.pclmulqdq, f.bmi2);
  std::printf("tsc:              %.0f Hz%s\n", tsc_hz(),
              tsc_hz() > 0 ? " (calibrated)" : " (unavailable)");
  std::printf("compiler:         %s\n", compiler_version().c_str());
  const std::string governor = cpu_governor();
  if (!governor.empty())
    std::printf("cpufreq governor: %s\n", governor.c_str());
  std::printf("span tracing:     %s\n",
              sfa::obs::kTraceEnabled ? "compiled in (SFA_TRACE=ON)"
                                      : "compiled out (default build)");
  std::printf("perf counters:    %s\n",
              obs::PerfCounterScope::compiled_in()
                  ? "compiled in (perf_event_open)"
                  : "compiled out (non-Linux build)");
  return 0;
}

/// `sfa profile <trace.json>`: consume a --trace recording (and optionally
/// the run's --stats-json file) and print the execution breakdown.  Built
/// on the same analysis stack as sfa_trace_check — a trace that tool would
/// reject is rejected here too.
int cmd_profile(const Options& opt) {
  if (opt.positional.size() != 1)
    usage("profile needs <trace.json> (a --trace recording)");
  const obs::TraceProfileReport rep =
      obs::analyze_trace_file(opt.positional[0]);
  std::fputs(obs::format_trace_profile(rep).c_str(), stdout);
  if (!rep.ok) return 2;

  if (!opt.stats_json_path.empty()) {
    obs::JsonValue root;
    std::string error;
    if (!obs::parse_json(read_all(opt.stats_json_path), root, error))
      throw std::runtime_error(opt.stats_json_path + ": " + error);
    std::printf("\nstats (%s, schema %s):\n", opt.stats_json_path.c_str(),
                root.string_or("schema", "?").c_str());
    const obs::JsonValue* profile = root.get("profile");
    if (profile != nullptr && profile->is_object()) {
      std::printf("  chunks: %.0f, imbalance factor %.2f, parallel "
                  "efficiency %.3f\n",
                  profile->number_or("chunks", 0),
                  profile->number_or("imbalance_factor", 0),
                  profile->number_or("parallel_efficiency", 0));
      const obs::JsonValue* workers = profile->get("workers");
      if (workers != nullptr && workers->is_array()) {
        for (const obs::JsonValue& w : *workers->arr) {
          // "worker" is the slot index, or the string "inline".
          const obs::JsonValue* id = w.get("worker");
          std::string label = "?";
          if (id != nullptr && id->is_number())
            label = std::to_string(static_cast<long long>(id->num));
          else if (id != nullptr && id->is_string())
            label = id->str;
          std::printf("  worker %s: %.0f chunks", label.c_str(),
                      w.number_or("chunks", 0));
          const obs::JsonValue* util = w.get("utilization");
          if (util != nullptr && util->is_number())
            std::printf(", %.1f%% utilization", 100.0 * util->num);
          std::printf("\n");
        }
      }
    } else {
      std::printf("  no sfa-profile/1 section (run `sfa match --stats-json`"
                  " to record one)\n");
    }
  }

  if (opt.expect_workers != 0 && rep.worker_tracks < opt.expect_workers) {
    std::fprintf(stderr,
                 "error: expected >= %u worker tracks, trace has %zu\n",
                 opt.expect_workers, rep.worker_tracks);
    return 1;
  }
  return 0;
}

int cmd_grail(const Options& opt) {
  if (opt.positional.size() != 1) usage("grail needs exactly one pattern");
  const Dfa dfa = compile(opt, opt.positional[0]);
  const Alphabet& alphabet =
      opt.prosite ? Alphabet::amino() : alphabet_by_name(opt.alphabet_name);
  std::fputs(dfa.to_grail(alphabet).c_str(), stdout);
  return 0;
}

}  // namespace

serve::EngineChoice serve_engine_by_name(const std::string& name) {
  if (name == "eager") return serve::EngineChoice::kEager;
  if (name == "lazy") return serve::EngineChoice::kLazy;
  if (name == "speculative") return serve::EngineChoice::kSpeculative;
  if (name == "narrowed") return serve::EngineChoice::kNarrowed;
  usage(("unknown engine '" + name +
         "' (expected eager, lazy, speculative, narrowed, or mix)")
            .c_str());
}

/// The service-layer front end: register PROSITE pattern sets, then drive
/// the MatchService with the open-loop traffic simulator (or a single
/// batch under --once).  This is an in-process load driver, not a daemon —
/// the point is measuring the serving substrate, not speaking a wire
/// protocol.
int cmd_serve(const Options& opt) {
  if (!opt.positional.empty()) usage("serve takes no positional arguments");
  if (opt.serve_engine != "mix") serve_engine_by_name(opt.serve_engine);
  apply_dispatch_options(opt);

  serve::ServiceOptions service_options;
  service_options.max_batch_workers = opt.threads;
  service_options.default_chunks = opt.serve_chunks;
  service_options.cache.memory_budget_bytes = opt.cache_budget;
  service_options.cache.disk_dir = opt.cache_dir;
  if (!opt.table_layout.empty())
    service_options.cache.table_layout = layout_by_name(opt.table_layout);
  serve::MatchService service(service_options);

  // Pattern sets: K groups of 3 eager-tractable motifs — bundled PROSITE
  // samples first, seeded synthetic motifs once those run out.  Some
  // samples union into 100k+-state DFAs (the service would serve them
  // DFA-only); the default driver filters those out so every engine,
  // including eager, participates.
  const auto& samples = prosite_samples();
  constexpr std::size_t kPatternsPerSet = 3;
  constexpr std::uint32_t kMaxMemberDfa = 100;
  constexpr std::uint32_t kMaxUnionDfa = 1024;
  std::vector<std::uint64_t> handles;
  std::size_t sample_index = 0;
  std::vector<serve::PatternSpec> set;
  std::vector<Dfa> member_dfas;
  while (handles.size() < std::max(1u, opt.serve_sets)) {
    serve::PatternSpec spec;
    spec.syntax = serve::PatternSyntax::kProsite;
    if (sample_index < samples.size()) {
      spec.id = samples[sample_index].id;
      spec.text = samples[sample_index].pattern;
    } else {
      spec.id = "SYN-" + std::to_string(sample_index);
      spec.text = synthetic_prosite_pattern(opt.seed + sample_index);
    }
    ++sample_index;
    try {
      Dfa member = service.registry().compile_member(spec);
      if (member.size() > kMaxMemberDfa) continue;
      member_dfas.push_back(std::move(member));
    } catch (const std::exception&) {
      continue;
    }
    set.push_back(std::move(spec));
    if (set.size() == kPatternsPerSet) {
      if (dfa_union_all(std::move(member_dfas)).size() <= kMaxUnionDfa) {
        // Warm the cache now and keep the set only when its eager SFA fit
        // the service budget — the default driver should exercise every
        // engine, and first-request latency should measure serving, not
        // construction.  (Churned sets still pay construction in-band.)
        const std::uint64_t handle = service.register_set(set);
        const serve::SfaCache::EntryPtr entry = service.resolve(handle);
        if (entry != nullptr && entry->sfa.has_value())
          handles.push_back(handle);
      }
      set.clear();
      member_dfas.clear();
    }
    if (sample_index > samples.size() + 500)
      usage("serve: could not assemble eager-tractable pattern sets");
  }

  // Seeded request inputs, reused round robin.
  const unsigned k = service.registry().alphabet().size();
  Xoshiro256 input_rng(opt.seed ^ 0x5EedF00dull);
  std::vector<std::vector<Symbol>> inputs(8);
  for (auto& input : inputs) {
    input.resize(std::max<std::size_t>(1, opt.input_symbols));
    for (auto& s : input) s = static_cast<Symbol>(input_rng.below(k));
  }

  const bool mix = opt.serve_engine == "mix";
  const serve::EngineChoice fixed_engine =
      mix ? serve::EngineChoice::kEager : serve_engine_by_name(opt.serve_engine);
  constexpr serve::EngineChoice kMix[] = {
      serve::EngineChoice::kEager, serve::EngineChoice::kLazy,
      serve::EngineChoice::kSpeculative, serve::EngineChoice::kNarrowed};

  serve::SimOptions sim;
  sim.seed = opt.seed;
  sim.requests = opt.once && opt.serve_requests == 64 ? 4 : opt.serve_requests;
  sim.max_batch = opt.once ? sim.requests : opt.serve_batch;
  sim.arrival_rate_per_sec = opt.once ? 0 : opt.arrival_rate;

  std::size_t churned = 0;
  auto make_request = [&](std::size_t i) {
    if (opt.churn_every != 0 && i != 0 && i % opt.churn_every == 0) {
      // Pattern-set churn: a fresh synthetic set enters rotation, forcing
      // compile + SFA build (+ eviction under a tight cache budget).
      std::vector<serve::PatternSpec> fresh{
          {"CHURN-" + std::to_string(churned), serve::PatternSyntax::kProsite,
           synthetic_prosite_pattern(opt.seed ^ (0xC0FFEEull + churned))}};
      handles.push_back(service.register_set(std::move(fresh)));
      ++churned;
    }
    serve::MatchRequest r;
    r.set = handles[i % handles.size()];
    r.engine = mix ? kMix[i % 4] : fixed_engine;
    r.task = serve::TaskKind::kCount;
    const auto& input = inputs[i % inputs.size()];
    r.data = input.data();
    r.len = input.size();
    r.chunks = opt.serve_chunks;
    return r;
  };

  TraceSession trace(opt.trace_path);
  const serve::SimResult sim_result = run_simulation(service, sim, make_request);
  trace.stop_and_write();

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "serve: %llu requests in %llu batches (%llu failed), %u sets "
      "registered\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.failed_requests),
      static_cast<unsigned>(stats.registered_sets));
  std::printf(
      "cache: %llu hits, %llu disk hits, %llu misses, %llu evictions, "
      "%llu bytes resident (%llu entries)\n",
      static_cast<unsigned long long>(stats.cache.hits),
      static_cast<unsigned long long>(stats.cache.disk_hits),
      static_cast<unsigned long long>(stats.cache.misses),
      static_cast<unsigned long long>(stats.cache.evictions),
      static_cast<unsigned long long>(stats.cache.resident_bytes),
      static_cast<unsigned long long>(stats.cache.entries));
  std::printf(
      "latency: p50 %.3f ms, p99 %.3f ms, mean %.3f ms | %.0f requests/s, "
      "%.0f matches/s\n",
      sim_result.run.p50_ms, sim_result.run.p99_ms, sim_result.run.mean_ms,
      sim_result.run.requests_per_sec, sim_result.run.matches_per_sec);
  std::printf("pool: %u workers, %llu dispatches, %llu steals (%s)\n",
              stats.pool.pool_workers,
              static_cast<unsigned long long>(stats.pool.pool_dispatches),
              static_cast<unsigned long long>(stats.pool.pool_steals),
              sched::policy_name(scan::default_scheduler()));

  if (!opt.stats_json_path.empty()) {
    serve::write_serve_stats_json_file(opt.stats_json_path, stats,
                                       sim_result.run);
    std::printf("stats: %s\n", opt.stats_json_path.c_str());
  }
  if (stats.failed_requests != 0) return 1;
  return 0;
}

int main(int argc, char** argv) {
  try {
    const Options opt = parse(argc, argv);
    if (opt.command == "build") return cmd_build(opt);
    if (opt.command == "match") return cmd_match(opt);
    if (opt.command == "inspect") return cmd_inspect(opt);
    if (opt.command == "grail") return cmd_grail(opt);
    if (opt.command == "info") return cmd_info(opt);
    if (opt.command == "profile") return cmd_profile(opt);
    if (opt.command == "serve") return cmd_serve(opt);
    usage(("unknown command: " + opt.command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
