// Sequential "hashing" builder (paper §III-A, the middle line of Fig. 4):
// CityHash-class fingerprints of state vectors, a chained hash table for
// O(1) membership tests, exhaustive byte-compare only on fingerprint
// equality.  Successors are still generated one delta-lookup at a time —
// the parameterized transposition is what build_transposed adds on top.
#include <deque>

#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/state.hpp"
#include "sfa/hash/city64.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

namespace {

template <typename Cell>
Sfa build_hashed_impl(const Dfa& dfa, const BuildOptions& opt,
                      BuildStats* stats) {
  const WallTimer timer;
  SFA_TRACE_SCOPE("build", "hashed");
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();

  Sfa result;
  detail::init_result<Cell>(result, dfa);

  using Node = StateNode<Cell>;
  LockFreeHashSet<Node, StateNodeTraits<Cell>> table(opt.hash_buckets);
  Arena headers, payloads;

  std::vector<Node*> nodes;  // by id
  std::deque<Node*> worklist;
  std::vector<Sfa::StateId> delta;
  std::vector<std::uint8_t> accepting;

  const auto intern = [&](const Cell* cells) -> Sfa::StateId {
    const std::uint64_t fp = city_hash64(cells, sizeof(Cell) * n);
    // Probe-before-allocate: build a stack probe node pointing at the
    // candidate cells to avoid arena garbage on duplicates.
    Node probe;
    probe.fingerprint = fp;
    probe.payload = reinterpret_cast<std::byte*>(const_cast<Cell*>(cells));
    probe.payload_size = static_cast<std::uint32_t>(sizeof(Cell) * n);
    // Counted lookup: single-threaded, so BuildStats can report lookup work
    // (chain traversals, fp collisions) on par with the parallel builder.
    if (Node* hit = table.find_counted(fp, probe)) return hit->id;

    Node* node = make_state_node<Cell>(headers, payloads, cells, n, fp);
    node->id = static_cast<Sfa::StateId>(nodes.size());
    detail::guard_state_count(node->id + 1ull, opt);
    node->accepting = dfa.accepting(
        static_cast<Dfa::StateId>(cells[dfa.start()]));
    table.insert_if_absent(node);  // single-threaded: always wins
    nodes.push_back(node);
    accepting.push_back(node->accepting);
    delta.resize(nodes.size() * k);
    worklist.push_back(node);
    return node->id;
  };

  const std::vector<Cell> start_cells = detail::identity_mapping<Cell>(n);
  result.set_start(intern(start_cells.data()));

  std::vector<Cell> succ(n);
  {
    SFA_TRACE_SCOPE("build", "explore");
    while (!worklist.empty()) {
      Node* node = worklist.front();
      worklist.pop_front();
      const Cell* src = node->cells();
      for (unsigned s = 0; s < k; ++s) {
        for (std::uint32_t q = 0; q < n; ++q)
          succ[q] = static_cast<Cell>(
              dfa.transition(static_cast<Dfa::StateId>(src[q]),
                             static_cast<Symbol>(s)));
        delta[static_cast<std::size_t>(node->id) * k + s] = intern(succ.data());
      }
    }
  }

  SFA_TRACE_SCOPE("build", "finalize");
  if (opt.keep_mappings) {
    std::vector<std::uint8_t> raw(nodes.size() * static_cast<std::size_t>(n) *
                                  sizeof(Cell));
    for (std::size_t i = 0; i < nodes.size(); ++i)
      std::memcpy(raw.data() + i * n * sizeof(Cell), nodes[i]->payload,
                  n * sizeof(Cell));
    result.set_mappings_raw(std::move(raw));
  }
  result.set_table(std::move(delta), std::move(accepting));

  if (stats) {
    *stats = BuildStats{};
    stats->sfa_states = result.num_states();
    stats->dfa_states = n;
    stats->seconds = timer.seconds();
    stats->mapping_bytes_uncompressed =
        static_cast<std::uint64_t>(result.num_states()) * n * sizeof(Cell);
    stats->mapping_bytes_stored = stats->mapping_bytes_uncompressed;
    stats->fingerprint_collisions =
        table.counters.fp_collisions.load(std::memory_order_relaxed);
    stats->chain_traversals =
        table.counters.chain_traversals.load(std::memory_order_relaxed);
    stats->threads = 1;
  }
  return result;
}

}  // namespace

Sfa build_sfa_hashed(const Dfa& dfa, const BuildOptions& options,
                     BuildStats* stats) {
  return detail::use_16bit_cells(dfa)
             ? build_hashed_impl<std::uint16_t>(dfa, options, stats)
             : build_hashed_impl<std::uint32_t>(dfa, options, stats);
}

}  // namespace sfa
