// SFA state node — the unit the construction algorithm manipulates.
//
// An SFA state for an n-state DFA is a vector of n DFA-state cells
// ("mapping" f in Algorithm 1).  Each constructed state is materialized as a
// node carrying (paper §III-A): the 64-bit fingerprint, the chain pointer for
// the hash table, the assigned state id, and the payload — either the
// exhaustive cell vector or, after the compression phase, the compressed
// blob (§III-C).  Headers are allocated in a persistent arena so node
// pointers stay valid across the compression phase; payloads live in a
// per-generation arena that is reclaimed wholesale after re-compression.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "sfa/compress/codec.hpp"
#include "sfa/concurrent/arena.hpp"

namespace sfa {

template <typename Cell>
struct StateNode {
  std::atomic<StateNode*> next{nullptr};  // hash-table chain
  std::uint64_t fingerprint = 0;          // over the uncompressed cells
  static constexpr std::uint32_t kIdUnset = 0xFFFFFFFFu;

  std::byte* payload = nullptr;           // cells, or compressed bytes
  std::uint32_t payload_size = 0;         // current payload bytes
  /// SFA state id.  In the parallel builder the id is published *after* the
  /// node wins insertion, so concurrent finders spin on kIdUnset.
  std::atomic<std::uint32_t> id{kIdUnset};
  std::uint8_t is_compressed = 0;
  std::uint8_t accepting = 0;             // f(q0) is a DFA final state

  bool compressed() const { return is_compressed != 0; }

  Cell* cells() { return reinterpret_cast<Cell*>(payload); }
  const Cell* cells() const { return reinterpret_cast<const Cell*>(payload); }

  const std::uint8_t* bytes() const {
    return reinterpret_cast<const std::uint8_t*>(payload);
  }
};

/// Allocate a node whose payload is a copy of the n uncompressed cells.
template <typename Cell>
StateNode<Cell>* make_state_node(Arena& header_arena, Arena& payload_arena,
                                 const Cell* cells, std::uint32_t n,
                                 std::uint64_t fingerprint) {
  auto* node = new (header_arena.allocate(sizeof(StateNode<Cell>),
                                          alignof(StateNode<Cell>)))
      StateNode<Cell>();
  node->fingerprint = fingerprint;
  node->payload_size = static_cast<std::uint32_t>(sizeof(Cell) * n);
  node->payload =
      static_cast<std::byte*>(payload_arena.allocate(node->payload_size, alignof(Cell)));
  std::memcpy(node->payload, cells, node->payload_size);
  return node;
}

/// Allocate a node holding a compressed payload (phase-3 construction).
template <typename Cell>
StateNode<Cell>* make_compressed_node(Arena& header_arena, Arena& payload_arena,
                                      const std::uint8_t* data,
                                      std::uint32_t size,
                                      std::uint64_t fingerprint) {
  auto* node = new (header_arena.allocate(sizeof(StateNode<Cell>),
                                          alignof(StateNode<Cell>)))
      StateNode<Cell>();
  node->fingerprint = fingerprint;
  node->payload_size = size;
  node->payload = static_cast<std::byte*>(payload_arena.allocate(size, 8));
  node->is_compressed = 1;
  std::memcpy(node->payload, data, size);
  return node;
}

/// Hash-set traits for StateNode.  Same-representation payloads compare
/// byte-by-byte (exact: the codec is deterministic).  Mixed-representation
/// comparisons arise in compressed-mode construction, where probes carry the
/// uncompressed candidate while resident nodes are compressed: the stored
/// side is decompressed into a thread-local scratch buffer — decompression
/// is several times cheaper than compressing every candidate before lookup.
/// Builders must call set_compare_context() on each thread that probes a
/// table which may hold compressed nodes.
template <typename Cell>
struct StateNodeTraits {
  static std::atomic<StateNode<Cell>*>& next(StateNode<Cell>& n) {
    return n.next;
  }
  static std::uint64_t fingerprint(const StateNode<Cell>& n) {
    return n.fingerprint;
  }
  static bool same_state(const StateNode<Cell>& a, const StateNode<Cell>& b) {
    if (a.is_compressed == b.is_compressed)
      return a.payload_size == b.payload_size &&
             std::memcmp(a.payload, b.payload, a.payload_size) == 0;
    const StateNode<Cell>& comp = a.is_compressed ? a : b;
    const StateNode<Cell>& raw = a.is_compressed ? b : a;
    if (raw.payload_size != tl_raw_size || tl_codec == nullptr) return false;
    const Bytes decoded = tl_codec->decompress(
        ByteView(comp.bytes(), comp.payload_size), tl_raw_size);
    return std::memcmp(decoded.data(), raw.payload, tl_raw_size) == 0;
  }

  /// Per-thread decompression context for mixed comparisons.
  static void set_compare_context(const Codec* codec, std::size_t raw_size) {
    tl_codec = codec;
    tl_raw_size = raw_size;
  }

  static inline thread_local const Codec* tl_codec = nullptr;
  static inline thread_local std::size_t tl_raw_size = 0;
};

}  // namespace sfa
