// Sequential baseline builder: Algorithm 1 with a std::map (red-black tree)
// over exhaustive state vectors, successors computed one delta-lookup at a
// time.  This mirrors the non-optimized implementation the paper measures
// its sequential speedups against (§IV-A).
#include <deque>
#include <map>

#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

namespace {

template <typename Cell>
Sfa build_baseline_impl(const Dfa& dfa, const BuildOptions& opt,
                        BuildStats* stats) {
  const WallTimer timer;
  SFA_TRACE_SCOPE("build", "baseline");
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();

  Sfa result;
  detail::init_result<Cell>(result, dfa);

  // The red-black tree keyed by the full state vector: every membership
  // test costs O(log |Q_s|) vector comparisons.
  std::map<std::vector<Cell>, Sfa::StateId> known;
  std::vector<std::vector<Cell>> states;   // by id
  std::deque<Sfa::StateId> worklist;       // Q_tmp
  std::vector<Sfa::StateId> delta;
  std::vector<std::uint8_t> accepting;

  const auto intern = [&](std::vector<Cell> mapping) {
    const auto it = known.find(mapping);
    if (it != known.end()) return it->second;
    const Sfa::StateId id = static_cast<Sfa::StateId>(states.size());
    detail::guard_state_count(id + 1ull, opt);
    known.emplace(mapping, id);
    accepting.push_back(dfa.accepting(
        static_cast<Dfa::StateId>(mapping[dfa.start()])));
    states.push_back(std::move(mapping));
    delta.resize(states.size() * k);
    worklist.push_back(id);
    return id;
  };

  const Sfa::StateId start = intern(detail::identity_mapping<Cell>(n));
  result.set_start(start);

  std::vector<Cell> succ(n);
  {
    SFA_TRACE_SCOPE("build", "explore");
    while (!worklist.empty()) {
      const Sfa::StateId id = worklist.front();
      worklist.pop_front();
      for (unsigned s = 0; s < k; ++s) {
        // f_next(q) = delta(f(q), sigma), one lookup per cell (line 6 of
        // Algorithm 1; no transposition in the baseline).
        const std::vector<Cell>& src = states[id];
        for (std::uint32_t q = 0; q < n; ++q)
          succ[q] = static_cast<Cell>(
              dfa.transition(static_cast<Dfa::StateId>(src[q]),
                             static_cast<Symbol>(s)));
        const Sfa::StateId to = intern(succ);
        delta[static_cast<std::size_t>(id) * k + s] = to;
      }
    }
  }

  SFA_TRACE_SCOPE("build", "finalize");
  if (opt.keep_mappings) {
    std::vector<std::uint8_t> raw(states.size() * static_cast<std::size_t>(n) *
                                  sizeof(Cell));
    for (std::size_t i = 0; i < states.size(); ++i)
      std::memcpy(raw.data() + i * n * sizeof(Cell), states[i].data(),
                  n * sizeof(Cell));
    result.set_mappings_raw(std::move(raw));
  }
  result.set_table(std::move(delta), std::move(accepting));

  if (stats) {
    *stats = BuildStats{};
    stats->sfa_states = result.num_states();
    stats->dfa_states = n;
    stats->seconds = timer.seconds();
    stats->mapping_bytes_uncompressed =
        static_cast<std::uint64_t>(result.num_states()) * n * sizeof(Cell);
    stats->mapping_bytes_stored = stats->mapping_bytes_uncompressed;
    stats->threads = 1;
  }
  return result;
}

}  // namespace

Sfa build_sfa_baseline(const Dfa& dfa, const BuildOptions& options,
                       BuildStats* stats) {
  return detail::use_16bit_cells(dfa)
             ? build_baseline_impl<std::uint16_t>(dfa, options, stats)
             : build_baseline_impl<std::uint32_t>(dfa, options, stats);
}

}  // namespace sfa
