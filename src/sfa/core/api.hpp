// High-level convenience API — the ten-line path from a pattern to parallel
// matching (see examples/quickstart.cpp).
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "sfa/automata/alphabet.hpp"
#include "sfa/automata/dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa {

/// Owns the compiled DFA and its SFA; answers membership and count queries.
class Engine {
 public:
  /// Compile a textual regex over `alphabet`, wrap it for match-anywhere
  /// semantics, minimize, and build the SFA with `method`.
  static Engine from_regex(std::string_view pattern, const Alphabet& alphabet,
                           BuildMethod method = BuildMethod::kParallel,
                           const BuildOptions& options = {});

  /// Compile a PROSITE motif (amino-acid alphabet implied).
  static Engine from_prosite(std::string_view pattern,
                             BuildMethod method = BuildMethod::kParallel,
                             const BuildOptions& options = {});

  /// Wrap an existing complete DFA.
  static Engine from_dfa(Dfa dfa, const Alphabet& alphabet,
                         BuildMethod method = BuildMethod::kParallel,
                         const BuildOptions& options = {});

  /// Does the pattern occur anywhere in `text`?  Parallel SFA matching with
  /// `num_threads` chunks (1 = sequential SFA run).
  bool contains(std::string_view text, unsigned num_threads = 1) const;

  /// Number of match end-positions in `text` (two-pass parallel count).
  std::size_t count(std::string_view text, unsigned num_threads = 1) const;

  const Dfa& dfa() const { return dfa_; }
  const Sfa& sfa() const { return sfa_; }
  const Alphabet& alphabet() const { return *alphabet_; }
  const BuildStats& build_stats() const { return stats_; }

 private:
  Engine(Dfa dfa, const Alphabet& alphabet, BuildMethod method,
         const BuildOptions& options);

  Dfa dfa_;
  Sfa sfa_;
  const Alphabet* alphabet_;
  BuildStats stats_;
};

}  // namespace sfa
