// Matching: the sequential DFA membership test (Fig. 1c) and the parallel
// SFA matching scheme the SFA exists for (paper §IV-D).
//
// Parallel matching splits the input into one chunk per thread; every thread
// runs the SFA from its start state (the identity mapping) over its chunk,
// yielding one SFA state — i.e. the function "DFA state at chunk entry ->
// DFA state at chunk exit" for ALL possible entry states at once.  A final
// O(threads) reduction composes the chunk mappings left to right.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa {

namespace detail {
/// Split [0, len) into `chunks` contiguous [begin, end) ranges (the last
/// chunk absorbs the remainder).  Shared by the eager, speculative and lazy
/// matchers so their chunk boundaries are identical for a given thread
/// count — differential tests compare them position-for-position.
std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(std::size_t len,
                                                              unsigned chunks);
}  // namespace detail

struct MatchResult {
  bool accepted = false;
  std::uint32_t final_dfa_state = 0;
};

/// Sequential DFA membership test (the baseline of §IV-D).
MatchResult match_sequential(const Dfa& dfa, const std::vector<Symbol>& input);

/// Run the SFA sequentially over the whole input (used by tests as an
/// oracle: must agree with match_sequential).
MatchResult match_sfa_sequential(const Sfa& sfa,
                                 const std::vector<Symbol>& input);

/// Parallel SFA matching with `num_threads` chunks.  Requires the SFA to
/// have been built with keep_mappings (the composition needs f_s).
MatchResult match_sfa_parallel(const Sfa& sfa, const std::vector<Symbol>& input,
                               unsigned num_threads);

/// Count match end-positions in parallel (two-pass extension): pass 1
/// computes chunk-entry DFA states via the SFA composition, pass 2 rescans
/// each chunk with the DFA from its now-known entry state, counting
/// accepting positions.  Equivalent to Dfa::count_accepting_prefixes.
std::size_t count_matches_parallel(const Sfa& sfa, const Dfa& dfa,
                                   const std::vector<Symbol>& input,
                                   unsigned num_threads);

/// Earliest accepting end-position in `input`, or npos when the pattern
/// never matches.  Two-pass parallel: chunk mappings locate entry states,
/// then chunks rescan in order until the first accepting position — only
/// chunks before (and including) the first hit are rescanned.
std::size_t find_first_match_parallel(const Sfa& sfa, const Dfa& dfa,
                                      const std::vector<Symbol>& input,
                                      unsigned num_threads);

inline constexpr std::size_t kNoMatch = static_cast<std::size_t>(-1);

/// All accepting end-positions, gathered in parallel (two-pass: SFA chunk
/// mappings -> per-chunk DFA rescan with known entry states).  Positions are
/// returned sorted ascending.  With a match-anywhere (absorbing) DFA this
/// lists every position from the first match on; for non-absorbing DFAs it
/// lists exactly the accepting prefixes.
std::vector<std::size_t> find_all_matches_parallel(
    const Sfa& sfa, const Dfa& dfa, const std::vector<Symbol>& input,
    unsigned num_threads);

// --- Speculative parallel DFA matching (related-work baseline, §V) -----------
//
// The approach of Holub & Štekr / Luchaup et al. that SFAs were introduced
// to supersede: every chunk after the first is matched from a *speculated*
// start state; a sequential validation pass re-matches any chunk whose true
// entry state differs from the speculation.  Failure-prone where the SFA
// scheme is failure-free — the contrast experiment in bench E10.

struct SpeculativeResult {
  MatchResult result;
  unsigned chunks = 0;
  unsigned rematched_chunks = 0;  // speculation failures
};

/// Pick the speculation state the way the literature does: the most
/// frequently visited DFA state over a short sequential prefix sample.
Dfa::StateId pick_speculation_state(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    std::size_t sample_limit = 4096);

SpeculativeResult match_speculative(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    unsigned num_threads,
                                    Dfa::StateId speculated_state);

/// Convenience overload: samples the speculation state itself.
SpeculativeResult match_speculative(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    unsigned num_threads);

// --- Narrowed parallel DFA matching (PaREM hybrid, PAPERS.md) ----------------
//
// Between the speculative baseline and the full SFA scheme: each chunk's
// feasible entry states are computed from the DFA's per-symbol reachable
// sets (optionally refined by peeking the chunk's first peek_k symbols),
// and pass 1 simulates only that subset — a partial mapping vector the
// composition resolves exactly.  Chunks whose feasible set fails to shrink
// below the threshold fraction fall back to an all-states simulation.
// Needs no SFA construction at all.

struct NarrowedMatchOptions {
  /// Symbols peeked per chunk for set-image refinement of the entry set.
  unsigned peek_k = 0;
  /// Per-chunk fallback trigger: full path when |feasible| > threshold * n.
  double shrink_threshold = 0.5;
};

struct NarrowedResult {
  MatchResult result;
  unsigned chunks = 0;
  unsigned narrowed_chunks = 0;   // chunks served from a partial vector
  unsigned fallback_chunks = 0;   // chunks that exceeded the threshold
  std::uint64_t entry_states = 0;  // feasible states simulated in pass 1
};

NarrowedResult match_narrowed(const Dfa& dfa, const std::vector<Symbol>& input,
                              unsigned num_threads,
                              const NarrowedMatchOptions& options = {});

struct NarrowedCountResult {
  std::size_t count = 0;
  unsigned chunks = 0;
  unsigned narrowed_chunks = 0;
  unsigned fallback_chunks = 0;
  std::uint64_t entry_states = 0;
};

/// Two-pass narrowed counting: partial-vector compose locates chunk entry
/// states, pass 2 rescans.  Equivalent to Dfa::count_accepting_prefixes.
NarrowedCountResult count_matches_narrowed(
    const Dfa& dfa, const std::vector<Symbol>& input, unsigned num_threads,
    const NarrowedMatchOptions& options = {});

}  // namespace sfa
