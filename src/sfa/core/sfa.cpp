#include "sfa/core/sfa.hpp"

#include <cstring>
#include <sstream>

#include "sfa/support/format.hpp"

namespace sfa {

Sfa::StateId Sfa::run(StateId from, const Symbol* input,
                      std::size_t len) const {
  StateId s = from;
  if (table_.layout() == table::TableLayout::kDense) {
    // Hot path: identical to the pre-seam loop — one load per symbol off a
    // raw pointer, no per-step layout dispatch.
    const StateId* delta = table_.dense_cells();
    for (std::size_t i = 0; i < len; ++i)
      s = delta[static_cast<std::size_t>(s) * num_symbols_ + input[i]];
    return s;
  }
  for (std::size_t i = 0; i < len; ++i) s = table_.next(s, input[i]);
  return s;
}

void Sfa::init(std::uint32_t dfa_states, unsigned num_symbols,
               unsigned cell_width, std::uint32_t dfa_start,
               std::vector<std::uint8_t> dfa_accepting) {
  dfa_states_ = dfa_states;
  num_symbols_ = num_symbols;
  cell_width_ = cell_width;
  dfa_start_ = dfa_start;
  dfa_accepting_ = std::move(dfa_accepting);
}

void Sfa::set_table(std::vector<StateId> delta,
                    std::vector<std::uint8_t> accepting) {
  num_states_ = static_cast<std::uint32_t>(accepting.size());
  table_ = table::TransitionTable::dense(std::move(delta), num_states_,
                                         num_symbols_);
  accepting_ = std::move(accepting);
}

void Sfa::set_table(table::TransitionTable table,
                    std::vector<std::uint8_t> accepting) {
  num_states_ = static_cast<std::uint32_t>(accepting.size());
  table_ = std::move(table);
  accepting_ = std::move(accepting);
}

void Sfa::convert_table_layout(table::TableLayout target, unsigned max_chase) {
  if (table_.layout() == target) return;
  table_ = table_.convert(target, max_chase);
  table::publish_table_metrics(table_.stats());
}

void Sfa::set_mappings_raw(std::vector<std::uint8_t> cells) {
  raw_mappings_ = std::move(cells);
  compressed_mappings_.clear();
  codec_ = nullptr;
  has_mappings_ = true;
}

void Sfa::set_mappings_compressed(std::vector<Bytes> blobs,
                                  const Codec* codec) {
  compressed_mappings_ = std::move(blobs);
  raw_mappings_.clear();
  codec_ = codec;
  has_mappings_ = true;
}

void Sfa::mapping(StateId s, std::vector<std::uint32_t>& out) const {
  if (!has_mappings_)
    throw std::logic_error("Sfa: mappings were not retained by the builder");
  out.resize(dfa_states_);
  const auto decode = [&](const std::uint8_t* base) {
    for (std::uint32_t q = 0; q < dfa_states_; ++q) {
      if (cell_width_ == 2) {
        std::uint16_t v;
        std::memcpy(&v, base + q * 2u, 2);
        out[q] = v;
      } else {
        std::uint32_t v;
        std::memcpy(&v, base + q * 4u, 4);
        out[q] = v;
      }
    }
  };
  if (codec_ != nullptr) {
    const Bytes& blob = compressed_mappings_[s];
    const Bytes raw = codec_->decompress(
        ByteView(blob.data(), blob.size()),
        static_cast<std::size_t>(dfa_states_) * cell_width_);
    decode(raw.data());
    return;
  }
  decode(raw_mapping(s));
}

std::uint32_t Sfa::map(StateId s, std::uint32_t q) const {
  if (!has_mappings_)
    throw std::logic_error("Sfa: mappings were not retained by the builder");
  if (codec_ != nullptr) {
    std::vector<std::uint32_t> full;
    mapping(s, full);
    return full[q];
  }
  const std::uint8_t* base = raw_mapping(s);
  if (cell_width_ == 2) {
    std::uint16_t v;
    std::memcpy(&v, base + q * 2u, 2);
    return v;
  }
  std::uint32_t v;
  std::memcpy(&v, base + q * 4u, 4);
  return v;
}

std::uint64_t Sfa::mapping_store_bytes() const {
  if (!has_mappings_) return 0;
  if (codec_ != nullptr) {
    std::uint64_t total = 0;
    for (const Bytes& b : compressed_mappings_) total += b.size();
    return total;
  }
  return raw_mappings_.size();
}

std::string Sfa::summary() const {
  std::ostringstream os;
  os << "SFA: " << with_commas(num_states_) << " states over "
     << num_symbols_ << " symbols (DFA n=" << with_commas(dfa_states_)
     << ", cell width " << cell_width_ << " B";
  if (table_.layout() != table::TableLayout::kDense)
    os << ", " << table::layout_name(table_.layout()) << " table "
       << human_bytes(table_.resident_bytes());
  if (has_mappings_)
    os << ", mapping store " << human_bytes(mapping_store_bytes())
       << (codec_ ? " compressed" : " raw");
  os << ")";
  return os.str();
}

}  // namespace sfa
