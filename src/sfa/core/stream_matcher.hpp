// Incremental (streaming) matching — feed input block by block without ever
// holding the whole text, e.g. network payloads in the paper's IDS
// motivation.  The SFA state after the blocks seen so far IS the resume
// point; each block can optionally be advanced with multiple threads by
// chunk-splitting + composition, exactly like whole-input parallel matching.
//
// Two backends:
//   * Eager: a pre-built Sfa (mappings required for parallel feeding).
//   * Lazy: a LazyMatcher — no build() up front; SFA states intern on
//     demand as the stream reaches them, so streams can be served on DFAs
//     whose eager SFA would explode past max_states.
#pragma once

#include <string_view>
#include <vector>

#include "sfa/core/lazy_matcher.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa {

class StreamMatcher {
 public:
  /// `sfa` must outlive the matcher; parallel feeding requires mappings.
  explicit StreamMatcher(const Sfa& sfa, unsigned num_threads = 1)
      : sfa_(&sfa), threads_(num_threads == 0 ? 1 : num_threads),
        dfa_state_(sfa.dfa_start()) {}

  /// Lazy backend: `lazy` must outlive the matcher (it owns the shared
  /// intern table, which keeps warming up across blocks and streams).
  /// Thread count and memory policy come from the LazyMatcher's options.
  explicit StreamMatcher(LazyMatcher& lazy)
      : lazy_(&lazy), dfa_state_(lazy.dfa().start()) {}

  /// Consume one block of symbols.
  void feed(const Symbol* data, std::size_t len);
  void feed(const std::vector<Symbol>& block) {
    feed(block.data(), block.size());
  }

  /// Has the pattern matched anywhere in the stream so far?  (Absorbing
  /// match-anywhere automata stay accepting once matched.)
  bool matched() const {
    return lazy_ ? lazy_->dfa().accepting(dfa_state_)
                 : sfa_->dfa_accepting(dfa_state_);
  }

  /// DFA state after the stream so far (for checkpoint/restore).
  std::uint32_t dfa_state() const { return dfa_state_; }
  void restore(std::uint32_t state) { dfa_state_ = state; }

  /// Reset to the beginning of a new stream.
  void reset() {
    dfa_state_ = lazy_ ? lazy_->dfa().start() : sfa_->dfa_start();
  }

  std::uint64_t symbols_consumed() const { return consumed_; }

 private:
  const Sfa* sfa_ = nullptr;
  LazyMatcher* lazy_ = nullptr;
  unsigned threads_ = 1;
  std::uint32_t dfa_state_;
  std::uint64_t consumed_ = 0;
};

}  // namespace sfa
