// Incremental (streaming) matching — feed input block by block without ever
// holding the whole text, e.g. network payloads in the paper's IDS
// motivation.  The SFA state after the blocks seen so far IS the resume
// point; each block can optionally be advanced with multiple threads by
// chunk-splitting + composition, exactly like whole-input parallel matching.
#pragma once

#include <string_view>
#include <vector>

#include "sfa/core/match.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa {

class StreamMatcher {
 public:
  /// `sfa` must outlive the matcher; parallel feeding requires mappings.
  explicit StreamMatcher(const Sfa& sfa, unsigned num_threads = 1)
      : sfa_(&sfa), threads_(num_threads == 0 ? 1 : num_threads),
        dfa_state_(sfa.dfa_start()) {}

  /// Consume one block of symbols.
  void feed(const Symbol* data, std::size_t len);
  void feed(const std::vector<Symbol>& block) {
    feed(block.data(), block.size());
  }

  /// Has the pattern matched anywhere in the stream so far?  (Absorbing
  /// match-anywhere automata stay accepting once matched.)
  bool matched() const { return sfa_->dfa_accepting(dfa_state_); }

  /// DFA state after the stream so far (for checkpoint/restore).
  std::uint32_t dfa_state() const { return dfa_state_; }
  void restore(std::uint32_t state) { dfa_state_ = state; }

  /// Reset to the beginning of a new stream.
  void reset() { dfa_state_ = sfa_->dfa_start(); }

  std::uint64_t symbols_consumed() const { return consumed_; }

 private:
  const Sfa* sfa_;
  unsigned threads_;
  std::uint32_t dfa_state_;
  std::uint64_t consumed_ = 0;
};

}  // namespace sfa
