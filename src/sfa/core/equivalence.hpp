// SFA <-> DFA equivalence verification — the correctness oracle every
// builder variant is tested against.
#pragma once

#include <cstdint>
#include <string>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa {

struct VerifyOptions {
  /// Random input strings to cross-check acceptance on.
  std::size_t random_inputs = 200;
  std::size_t min_length = 0;
  std::size_t max_length = 64;
  std::uint64_t seed = 42;
  /// Structurally check delta_s against delta on this many sampled SFA
  /// states (0 = all states; requires mappings).
  std::size_t structural_samples = 0;
};

struct VerifyReport {
  bool ok = true;
  std::string first_failure;  // human-readable description

  explicit operator bool() const { return ok; }
};

/// Checks that S(A) simulates A:
///  1. the start state's mapping is the identity (if mappings retained);
///  2. for sampled states s and all symbols: f_{delta_s(s,sigma)}(q)
///     == delta(f_s(q), sigma) for every DFA state q;
///  3. acceptance of random strings agrees between DFA run, sequential SFA
///     run, and the mapping-composition view.
VerifyReport verify_sfa(const Sfa& sfa, const Dfa& dfa,
                        const VerifyOptions& options = {});

}  // namespace sfa
