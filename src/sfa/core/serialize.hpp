// Binary serialization of constructed SFAs (and their source DFAs).
//
// SFA construction is the expensive step — the whole point of the paper —
// so a production deployment builds once and reuses.  The format is a
// little-endian container:
//
//   "SFA1" | cell_width:u8 | num_symbols:u8 | dfa_states:u32 |
//   num_states:u32 | start:u32 | dfa_start:u32 |
//   dfa_accepting[dfa_states] | accepting[num_states] |
//   delta[num_states * num_symbols]:u32 |
//   mapping_mode:u8 (0 none, 1 raw, 2 compressed) |
//     raw:        store bytes (num_states * dfa_states * cell_width)
//     compressed: codec name (len:u8 + bytes), then per state
//                 blob_size:u32 + blob bytes
//
// Loading a compressed store resolves the codec by name from the registry.
//
// Non-dense TransitionTable layouts write an "SFA2" container instead:
//
//   "SFA2" | layout:u8 (1 dedup, 2 d2fa) | ...same header/accepting as
//   SFA1... | layout-specific table section | mapping_mode as above
//
//   dedup: rows_unique:u32 | row_of[num_states]:u32 |
//          cells[rows_unique * num_symbols]:u32
//   d2fa:  exc_total:u32 | default_of[num_states]:u32 (0xFFFFFFFF = none) |
//          exc_start[num_states + 1]:u32 | (sym:u8, to:u32) * exc_total
//
// Dense automata ALWAYS write SFA1 byte-for-byte (old readers and golden
// fixtures stay valid); the loader accepts either magic and reconstructs
// the tagged layout, so a d2fa-saved file matches without reconversion.
#pragma once

#include <iosfwd>
#include <string>

#include "sfa/core/sfa.hpp"

namespace sfa {

void save_sfa(const Sfa& sfa, std::ostream& out);
Sfa load_sfa(std::istream& in);

/// File-path conveniences (throw std::runtime_error on I/O failure).
void save_sfa_file(const Sfa& sfa, const std::string& path);
Sfa load_sfa_file(const std::string& path);

}  // namespace sfa
