#include "sfa/core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "sfa/compress/registry.hpp"

namespace sfa {

namespace {

constexpr char kMagic[4] = {'S', 'F', 'A', '1'};
// Layout-tagged container for non-dense TransitionTable layouts.  Dense
// automata keep writing the original SFA1 stream byte-for-byte (seed-era
// readers and golden fixtures depend on that); SFA1 loads as dense.
constexpr char kMagic2[4] = {'S', 'F', 'A', '2'};

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

std::uint8_t get_u8(std::istream& in) {
  const int c = in.get();
  if (c == EOF) throw std::runtime_error("sfa load: truncated stream");
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& in) {
  char buf[4];
  if (!in.read(buf, 4)) throw std::runtime_error("sfa load: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[i]))
         << (8 * i);
  return v;
}

void put_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

void get_bytes(std::istream& in, void* data, std::size_t size) {
  if (!in.read(static_cast<char*>(data), static_cast<std::streamsize>(size)))
    throw std::runtime_error("sfa load: truncated stream");
}

void put_table_section(std::ostream& out, const table::TransitionTable& t) {
  if (t.layout() == table::TableLayout::kRowDedup) {
    put_u32(out, t.rows_unique());
    for (const Sfa::StateId r : t.row_of()) put_u32(out, r);
    for (const Sfa::StateId v : t.cells()) put_u32(out, v);
    return;
  }
  // kD2fa: per-state default pointers, then the exception CSR.
  put_u32(out, static_cast<std::uint32_t>(t.exc_sym().size()));
  for (const Sfa::StateId d : t.defaults()) put_u32(out, d);
  for (const std::uint32_t s : t.exc_start()) put_u32(out, s);
  for (std::size_t i = 0; i < t.exc_sym().size(); ++i) {
    put_u8(out, t.exc_sym()[i]);
    put_u32(out, t.exc_to()[i]);
  }
}

table::TransitionTable get_table_section(std::istream& in,
                                         table::TableLayout layout,
                                         std::uint32_t num_states,
                                         unsigned k) {
  if (layout == table::TableLayout::kRowDedup) {
    const std::uint32_t uniques = get_u32(in);
    std::vector<Sfa::StateId> row_of(num_states);
    for (auto& r : row_of) r = get_u32(in);
    std::vector<Sfa::StateId> cells(static_cast<std::size_t>(uniques) * k);
    for (auto& v : cells) v = get_u32(in);
    return table::TransitionTable::row_dedup_from_parts(
        std::move(row_of), std::move(cells), num_states, k);
  }
  const std::uint32_t exc_total = get_u32(in);
  std::vector<Sfa::StateId> defaults(num_states);
  for (auto& d : defaults) d = get_u32(in);
  std::vector<std::uint32_t> exc_start(static_cast<std::size_t>(num_states) +
                                       1);
  for (auto& s : exc_start) s = get_u32(in);
  std::vector<std::uint8_t> exc_sym(exc_total);
  std::vector<Sfa::StateId> exc_to(exc_total);
  for (std::uint32_t i = 0; i < exc_total; ++i) {
    exc_sym[i] = get_u8(in);
    exc_to[i] = get_u32(in);
  }
  return table::TransitionTable::d2fa_from_parts(
      std::move(defaults), std::move(exc_start), std::move(exc_sym),
      std::move(exc_to), num_states, k);
}

}  // namespace

void save_sfa(const Sfa& sfa, std::ostream& out) {
  const table::TableLayout layout = sfa.table_layout();
  if (layout == table::TableLayout::kDense) {
    put_bytes(out, kMagic, 4);
  } else {
    put_bytes(out, kMagic2, 4);
    put_u8(out, static_cast<std::uint8_t>(layout));
  }
  put_u8(out, static_cast<std::uint8_t>(sfa.cell_width()));
  put_u8(out, static_cast<std::uint8_t>(sfa.num_symbols()));
  put_u32(out, sfa.dfa_states());
  put_u32(out, sfa.num_states());
  put_u32(out, sfa.start());
  put_u32(out, sfa.dfa_start());

  for (std::uint32_t q = 0; q < sfa.dfa_states(); ++q)
    put_u8(out, sfa.dfa_accepting(q) ? 1 : 0);
  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s)
    put_u8(out, sfa.accepting(s) ? 1 : 0);
  if (layout == table::TableLayout::kDense) {
    for (Sfa::StateId s = 0; s < sfa.num_states(); ++s)
      for (unsigned sym = 0; sym < sfa.num_symbols(); ++sym)
        put_u32(out, sfa.transition(s, static_cast<Symbol>(sym)));
  } else {
    put_table_section(out, sfa.table());
  }

  if (!sfa.has_mappings()) {
    put_u8(out, 0);
  } else if (!sfa.mappings_compressed()) {
    put_u8(out, 1);
    const ByteView store = sfa.raw_mapping_store();
    put_bytes(out, store.data(), store.size());
  } else {
    put_u8(out, 2);
    const std::string name(sfa.codec()->name());
    put_u8(out, static_cast<std::uint8_t>(name.size()));
    put_bytes(out, name.data(), name.size());
    for (Sfa::StateId s = 0; s < sfa.num_states(); ++s) {
      const ByteView blob = sfa.compressed_blob(s);
      put_u32(out, static_cast<std::uint32_t>(blob.size()));
      put_bytes(out, blob.data(), blob.size());
    }
  }
  if (!out) throw std::runtime_error("sfa save: stream write failed");
}

Sfa load_sfa(std::istream& in) {
  char magic[4];
  get_bytes(in, magic, 4);
  table::TableLayout layout = table::TableLayout::kDense;
  if (std::memcmp(magic, kMagic2, 4) == 0) {
    const std::uint8_t tag = get_u8(in);
    if (tag != static_cast<std::uint8_t>(table::TableLayout::kRowDedup) &&
        tag != static_cast<std::uint8_t>(table::TableLayout::kD2fa))
      throw std::runtime_error("sfa load: bad table layout tag");
    layout = static_cast<table::TableLayout>(tag);
  } else if (std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("sfa load: bad magic");
  }

  const unsigned cell_width = get_u8(in);
  if (cell_width != 2 && cell_width != 4)
    throw std::runtime_error("sfa load: bad cell width");
  const unsigned k = get_u8(in);
  const std::uint32_t n = get_u32(in);
  const std::uint32_t num_states = get_u32(in);
  const std::uint32_t start = get_u32(in);
  const std::uint32_t dfa_start = get_u32(in);
  if (k == 0 || n == 0) throw std::runtime_error("sfa load: empty automaton");
  if (start >= num_states || dfa_start >= n)
    throw std::runtime_error("sfa load: start state out of range");

  std::vector<std::uint8_t> dfa_accepting(n);
  get_bytes(in, dfa_accepting.data(), n);
  std::vector<std::uint8_t> accepting(num_states);
  get_bytes(in, accepting.data(), num_states);

  table::TransitionTable table;
  if (layout == table::TableLayout::kDense) {
    std::vector<Sfa::StateId> delta(static_cast<std::size_t>(num_states) * k);
    for (auto& v : delta) {
      v = get_u32(in);
      if (v >= num_states)
        throw std::runtime_error("sfa load: transition out of range");
    }
    table = table::TransitionTable::dense(std::move(delta), num_states, k);
  } else {
    table = get_table_section(in, layout, num_states, k);
  }

  Sfa sfa;
  sfa.init(n, k, cell_width, dfa_start, std::move(dfa_accepting));
  sfa.set_start(start);

  const std::uint8_t mode = get_u8(in);
  if (mode == 1) {
    std::vector<std::uint8_t> store(static_cast<std::size_t>(num_states) * n *
                                    cell_width);
    get_bytes(in, store.data(), store.size());
    sfa.set_mappings_raw(std::move(store));
  } else if (mode == 2) {
    const unsigned name_len = get_u8(in);
    std::string name(name_len, '\0');
    get_bytes(in, name.data(), name_len);
    const Codec* codec = find_codec(name);
    if (codec == nullptr)
      throw std::runtime_error("sfa load: unknown codec '" + name + "'");
    std::vector<Bytes> blobs(num_states);
    for (auto& blob : blobs) {
      const std::uint32_t size = get_u32(in);
      blob.resize(size);
      get_bytes(in, blob.data(), size);
    }
    sfa.set_mappings_compressed(std::move(blobs), codec);
  } else if (mode != 0) {
    throw std::runtime_error("sfa load: bad mapping mode");
  }
  sfa.set_table(std::move(table), std::move(accepting));
  return sfa;
}

void save_sfa_file(const Sfa& sfa, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_sfa(sfa, out);
}

Sfa load_sfa_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_sfa(in);
}

}  // namespace sfa
