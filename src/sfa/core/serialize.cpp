#include "sfa/core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "sfa/compress/registry.hpp"

namespace sfa {

namespace {

constexpr char kMagic[4] = {'S', 'F', 'A', '1'};

void put_u8(std::ostream& out, std::uint8_t v) {
  out.put(static_cast<char>(v));
}

void put_u32(std::ostream& out, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out.write(buf, 4);
}

std::uint8_t get_u8(std::istream& in) {
  const int c = in.get();
  if (c == EOF) throw std::runtime_error("sfa load: truncated stream");
  return static_cast<std::uint8_t>(c);
}

std::uint32_t get_u32(std::istream& in) {
  char buf[4];
  if (!in.read(buf, 4)) throw std::runtime_error("sfa load: truncated stream");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[i]))
         << (8 * i);
  return v;
}

void put_bytes(std::ostream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(size));
}

void get_bytes(std::istream& in, void* data, std::size_t size) {
  if (!in.read(static_cast<char*>(data), static_cast<std::streamsize>(size)))
    throw std::runtime_error("sfa load: truncated stream");
}

}  // namespace

void save_sfa(const Sfa& sfa, std::ostream& out) {
  put_bytes(out, kMagic, 4);
  put_u8(out, static_cast<std::uint8_t>(sfa.cell_width()));
  put_u8(out, static_cast<std::uint8_t>(sfa.num_symbols()));
  put_u32(out, sfa.dfa_states());
  put_u32(out, sfa.num_states());
  put_u32(out, sfa.start());
  put_u32(out, sfa.dfa_start());

  for (std::uint32_t q = 0; q < sfa.dfa_states(); ++q)
    put_u8(out, sfa.dfa_accepting(q) ? 1 : 0);
  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s)
    put_u8(out, sfa.accepting(s) ? 1 : 0);
  for (Sfa::StateId s = 0; s < sfa.num_states(); ++s)
    for (unsigned sym = 0; sym < sfa.num_symbols(); ++sym)
      put_u32(out, sfa.transition(s, static_cast<Symbol>(sym)));

  if (!sfa.has_mappings()) {
    put_u8(out, 0);
  } else if (!sfa.mappings_compressed()) {
    put_u8(out, 1);
    const ByteView store = sfa.raw_mapping_store();
    put_bytes(out, store.data(), store.size());
  } else {
    put_u8(out, 2);
    const std::string name(sfa.codec()->name());
    put_u8(out, static_cast<std::uint8_t>(name.size()));
    put_bytes(out, name.data(), name.size());
    for (Sfa::StateId s = 0; s < sfa.num_states(); ++s) {
      const ByteView blob = sfa.compressed_blob(s);
      put_u32(out, static_cast<std::uint32_t>(blob.size()));
      put_bytes(out, blob.data(), blob.size());
    }
  }
  if (!out) throw std::runtime_error("sfa save: stream write failed");
}

Sfa load_sfa(std::istream& in) {
  char magic[4];
  get_bytes(in, magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("sfa load: bad magic");

  const unsigned cell_width = get_u8(in);
  if (cell_width != 2 && cell_width != 4)
    throw std::runtime_error("sfa load: bad cell width");
  const unsigned k = get_u8(in);
  const std::uint32_t n = get_u32(in);
  const std::uint32_t num_states = get_u32(in);
  const std::uint32_t start = get_u32(in);
  const std::uint32_t dfa_start = get_u32(in);
  if (k == 0 || n == 0) throw std::runtime_error("sfa load: empty automaton");
  if (start >= num_states || dfa_start >= n)
    throw std::runtime_error("sfa load: start state out of range");

  std::vector<std::uint8_t> dfa_accepting(n);
  get_bytes(in, dfa_accepting.data(), n);
  std::vector<std::uint8_t> accepting(num_states);
  get_bytes(in, accepting.data(), num_states);

  std::vector<Sfa::StateId> delta(static_cast<std::size_t>(num_states) * k);
  for (auto& v : delta) {
    v = get_u32(in);
    if (v >= num_states)
      throw std::runtime_error("sfa load: transition out of range");
  }

  Sfa sfa;
  sfa.init(n, k, cell_width, dfa_start, std::move(dfa_accepting));
  sfa.set_start(start);

  const std::uint8_t mode = get_u8(in);
  if (mode == 1) {
    std::vector<std::uint8_t> store(static_cast<std::size_t>(num_states) * n *
                                    cell_width);
    get_bytes(in, store.data(), store.size());
    sfa.set_mappings_raw(std::move(store));
  } else if (mode == 2) {
    const unsigned name_len = get_u8(in);
    std::string name(name_len, '\0');
    get_bytes(in, name.data(), name_len);
    const Codec* codec = find_codec(name);
    if (codec == nullptr)
      throw std::runtime_error("sfa load: unknown codec '" + name + "'");
    std::vector<Bytes> blobs(num_states);
    for (auto& blob : blobs) {
      const std::uint32_t size = get_u32(in);
      blob.resize(size);
      get_bytes(in, blob.data(), size);
    }
    sfa.set_mappings_compressed(std::move(blobs), codec);
  } else if (mode != 0) {
    throw std::runtime_error("sfa load: bad mapping mode");
  }
  sfa.set_table(std::move(delta), std::move(accepting));
  return sfa;
}

void save_sfa_file(const Sfa& sfa, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_sfa(sfa, out);
}

Sfa load_sfa_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_sfa(in);
}

}  // namespace sfa
