// Sequential "parameterized transposition" builder (paper §III-A, the top
// line of Fig. 4 and the baseline for all parallel speedups): hashing plus
// blockwise SIMD transposition of the transition table, producing all
// |Sigma| successor states of an SFA state in one cache-friendly sweep.
#include <deque>

#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/state.hpp"
#include "sfa/hash/city64.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/simd/transpose.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

namespace {

template <typename Cell>
Sfa build_transposed_impl(const Dfa& dfa, const BuildOptions& opt,
                          BuildStats* stats) {
  const WallTimer timer;
  SFA_TRACE_SCOPE("build", "transposed");
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();

  Sfa result;
  detail::init_result<Cell>(result, dfa);

  const std::vector<Cell> delta_table = detail::cell_delta_table<Cell>(dfa);

  using Node = StateNode<Cell>;
  LockFreeHashSet<Node, StateNodeTraits<Cell>> table(opt.hash_buckets);
  Arena headers, payloads;

  std::vector<Node*> nodes;
  std::deque<Node*> worklist;
  std::vector<Sfa::StateId> delta;
  std::vector<std::uint8_t> accepting;

  const auto intern = [&](const Cell* cells) -> Sfa::StateId {
    const std::uint64_t fp = city_hash64(cells, sizeof(Cell) * n);
    Node probe;
    probe.fingerprint = fp;
    probe.payload = reinterpret_cast<std::byte*>(const_cast<Cell*>(cells));
    probe.payload_size = static_cast<std::uint32_t>(sizeof(Cell) * n);
    // Counted lookup (single-threaded): keeps BuildStats lookup accounting
    // on par with the hashed and parallel builders.
    if (Node* hit = table.find_counted(fp, probe)) return hit->id;

    Node* node = make_state_node<Cell>(headers, payloads, cells, n, fp);
    node->id = static_cast<Sfa::StateId>(nodes.size());
    detail::guard_state_count(node->id + 1ull, opt);
    node->accepting = dfa.accepting(
        static_cast<Dfa::StateId>(cells[dfa.start()]));
    table.insert_if_absent(node);
    nodes.push_back(node);
    accepting.push_back(node->accepting);
    delta.resize(nodes.size() * k);
    worklist.push_back(node);
    return node->id;
  };

  const std::vector<Cell> start_cells = detail::identity_mapping<Cell>(n);
  result.set_start(intern(start_cells.data()));

  // One k x n buffer holds ALL successors of the current state; row sigma is
  // the successor state on symbol sigma (right half of Fig. 3).
  std::vector<Cell> successors(static_cast<std::size_t>(k) * n);
  {
    SFA_TRACE_SCOPE("build", "explore");
    while (!worklist.empty()) {
      Node* node = worklist.front();
      worklist.pop_front();
      successors_transposed<Cell>(delta_table.data(), k, node->cells(), n,
                                  successors.data(), opt.transpose);
      for (unsigned s = 0; s < k; ++s)
        delta[static_cast<std::size_t>(node->id) * k + s] =
            intern(successors.data() + static_cast<std::size_t>(s) * n);
    }
  }

  SFA_TRACE_SCOPE("build", "finalize");
  if (opt.keep_mappings) {
    std::vector<std::uint8_t> raw(nodes.size() * static_cast<std::size_t>(n) *
                                  sizeof(Cell));
    for (std::size_t i = 0; i < nodes.size(); ++i)
      std::memcpy(raw.data() + i * n * sizeof(Cell), nodes[i]->payload,
                  n * sizeof(Cell));
    result.set_mappings_raw(std::move(raw));
  }
  result.set_table(std::move(delta), std::move(accepting));

  if (stats) {
    *stats = BuildStats{};
    stats->sfa_states = result.num_states();
    stats->dfa_states = n;
    stats->seconds = timer.seconds();
    stats->mapping_bytes_uncompressed =
        static_cast<std::uint64_t>(result.num_states()) * n * sizeof(Cell);
    stats->mapping_bytes_stored = stats->mapping_bytes_uncompressed;
    stats->fingerprint_collisions =
        table.counters.fp_collisions.load(std::memory_order_relaxed);
    stats->chain_traversals =
        table.counters.chain_traversals.load(std::memory_order_relaxed);
    stats->threads = 1;
  }
  return result;
}

}  // namespace

Sfa build_sfa_transposed(const Dfa& dfa, const BuildOptions& options,
                         BuildStats* stats) {
  return detail::use_16bit_cells(dfa)
             ? build_transposed_impl<std::uint16_t>(dfa, options, stats)
             : build_transposed_impl<std::uint32_t>(dfa, options, stats);
}

}  // namespace sfa
