// SFA construction — the paper's contribution.  Every BuildMethod is a
// policy combination over the layered construction substrate in
// src/sfa/core/build/ (InternTable × SuccessorGen × Frontier × MappingStore
// — see docs/ARCHITECTURE.md for the seam-by-seam map to paper sections):
//
//   kBaseline    Algorithm 1 with a red-black tree (std::map) over the
//                exhaustive state vectors — the paper's sequential baseline.
//                (tree intern, scalar successors, FIFO frontier)
//   kHashed      + fingerprints & a chained hash table (§III-A): O(1)
//                membership tests, exhaustive compare only on fp equality.
//                (chained intern, scalar successors, raw or 3-phase store)
//   kTransposed  + parameterized transposition of the transition table with
//                SIMD kernels (§III-A, Fig. 3) — the fastest sequential
//                method and the baseline for parallel speedups.
//                (chained intern, transposed successors, raw/3-phase store)
//   kParallel    + multicore construction (§III-B): global start-phase
//                queue, thread-local work-stealing queues, lock-free hash
//                table, and the three-phase in-memory compression (§III-C).
//   kProbabilistic  the fingerprint-only variant the paper sketches in
//                §III-A but leaves uninvestigated: membership decided by a
//                64-bit Rabin fingerprint alone, payloads freed right after
//                expansion (states may merge with probability ~|Q_s|²/2⁶⁴).
//                (fingerprint intern, transposed successors, drop store)
#pragma once

#include <cstddef>
#include <cstdint>

#include "sfa/automata/dfa.hpp"
#include "sfa/compress/codec.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/simd/transpose.hpp"

namespace sfa {

enum class BuildMethod {
  kBaseline,
  kHashed,
  kTransposed,
  kParallel,
  kProbabilistic,
};

struct BuildOptions {
  /// Worker threads (kParallel only; others are sequential by definition).
  unsigned num_threads = 1;

  /// Keep per-state mappings in the result (needed for parallel matching
  /// and Table II size reporting; disable to save memory when only the
  /// state count / transition structure matters).
  bool keep_mappings = true;

  /// Memory threshold in bytes that triggers the three-phase compression
  /// store (§III-C) — honored by kHashed, kTransposed, and kParallel.
  /// 0 disables compression, the paper's default for problem sizes that fit
  /// in memory.  kBaseline and kProbabilistic accept and ignore it: the
  /// tree's keys must stay exhaustive for ordering, and the fingerprint-only
  /// store retains no payload to compress.
  std::size_t memory_threshold_bytes = 0;

  /// Codec for the compression store (nullptr = deflate-like; see
  /// sfa/compress/registry.hpp for the named registry).
  const Codec* codec = nullptr;

  /// Successor generation for kTransposed/kParallel.
  TransposeMethod transpose = TransposeMethod::kAuto;

  /// Number of SFA states processed from the single global queue before
  /// workers switch to their thread-local queues (§III-B2).
  std::size_t global_queue_capacity = 1024;

  /// Initial hash-table bucket count (rounded up to a power of two).
  std::size_t hash_buckets = 1u << 16;

  /// Safety valve: abort construction (std::runtime_error) if the SFA
  /// exceeds this many states.  The state-explosion problem is real.
  std::uint64_t max_states = 8u << 20;
};

/// Construct S(A).  `dfa` must be complete.  Statistics are written to
/// `stats` when non-null.
Sfa build_sfa(const Dfa& dfa, BuildMethod method, const BuildOptions& options = {},
              BuildStats* stats = nullptr);

// Individual entry points (same semantics, explicit method):
Sfa build_sfa_baseline(const Dfa& dfa, const BuildOptions& options = {},
                       BuildStats* stats = nullptr);
Sfa build_sfa_hashed(const Dfa& dfa, const BuildOptions& options = {},
                     BuildStats* stats = nullptr);
Sfa build_sfa_transposed(const Dfa& dfa, const BuildOptions& options = {},
                         BuildStats* stats = nullptr);
Sfa build_sfa_parallel(const Dfa& dfa, const BuildOptions& options = {},
                       BuildStats* stats = nullptr);
Sfa build_sfa_probabilistic(const Dfa& dfa, const BuildOptions& options = {},
                            BuildStats* stats = nullptr);

const char* build_method_name(BuildMethod m);

}  // namespace sfa
