// SFA construction — the paper's contribution, in four builder variants:
//
//   kBaseline    Algorithm 1 with a red-black tree (std::map) over the
//                exhaustive state vectors — the paper's sequential baseline.
//   kHashed      + fingerprints & a chained hash table (§III-A): O(1)
//                membership tests, exhaustive compare only on fp equality.
//   kTransposed  + parameterized transposition of the transition table with
//                SIMD kernels (§III-A, Fig. 3) — the fastest sequential
//                method and the baseline for parallel speedups.
//   kParallel    + multicore construction (§III-B): global start-phase
//                queue, thread-local work-stealing queues, lock-free hash
//                table, and the three-phase in-memory compression (§III-C).
//   kProbabilistic  the fingerprint-only variant the paper sketches in
//                §III-A but leaves uninvestigated: membership decided by a
//                64-bit Rabin fingerprint alone, payloads freed right after
//                expansion (states may merge with probability ~|Q_s|²/2⁶⁴).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sfa/automata/dfa.hpp"
#include "sfa/compress/codec.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/simd/transpose.hpp"

namespace sfa {

enum class BuildMethod {
  kBaseline,
  kHashed,
  kTransposed,
  kParallel,
  kProbabilistic,
};

struct BuildOptions {
  /// Worker threads (kParallel only; others are sequential by definition).
  unsigned num_threads = 1;

  /// Keep per-state mappings in the result (needed for parallel matching
  /// and Table II size reporting; disable to save memory when only the
  /// state count / transition structure matters).
  bool keep_mappings = true;

  /// Memory threshold in bytes that triggers the compression phase
  /// (kParallel only).  0 disables compression — the paper's default for
  /// problem sizes that fit in memory.
  std::size_t memory_threshold_bytes = 0;

  /// Codec for the compression phase (nullptr = deflate-like).
  const Codec* codec = nullptr;

  /// Successor generation for kTransposed/kParallel.
  TransposeMethod transpose = TransposeMethod::kAuto;

  /// Number of SFA states processed from the single global queue before
  /// workers switch to their thread-local queues (§III-B2).
  std::size_t global_queue_capacity = 1024;

  /// Initial hash-table bucket count (rounded up to a power of two).
  std::size_t hash_buckets = 1u << 16;

  /// Safety valve: abort construction (std::runtime_error) if the SFA
  /// exceeds this many states.  The state-explosion problem is real.
  std::uint64_t max_states = 8u << 20;
};

/// Construct S(A).  `dfa` must be complete.  Statistics are written to
/// `stats` when non-null.
Sfa build_sfa(const Dfa& dfa, BuildMethod method, const BuildOptions& options = {},
              BuildStats* stats = nullptr);

// Individual entry points (same semantics, explicit method):
Sfa build_sfa_baseline(const Dfa& dfa, const BuildOptions& options = {},
                       BuildStats* stats = nullptr);
Sfa build_sfa_hashed(const Dfa& dfa, const BuildOptions& options = {},
                     BuildStats* stats = nullptr);
Sfa build_sfa_transposed(const Dfa& dfa, const BuildOptions& options = {},
                         BuildStats* stats = nullptr);
Sfa build_sfa_parallel(const Dfa& dfa, const BuildOptions& options = {},
                       BuildStats* stats = nullptr);
Sfa build_sfa_probabilistic(const Dfa& dfa, const BuildOptions& options = {},
                            BuildStats* stats = nullptr);

const char* build_method_name(BuildMethod m);

}  // namespace sfa
