#include "sfa/core/api.hpp"

#include "sfa/automata/ops.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace sfa {

Engine::Engine(Dfa dfa, const Alphabet& alphabet, BuildMethod method,
               const BuildOptions& options)
    : dfa_(std::move(dfa)), alphabet_(&alphabet) {
  sfa_ = build_sfa(dfa_, method, options, &stats_);
}

Engine Engine::from_regex(std::string_view pattern, const Alphabet& alphabet,
                          BuildMethod method, const BuildOptions& options) {
  return Engine(compile_pattern(pattern, alphabet), alphabet, method, options);
}

Engine Engine::from_prosite(std::string_view pattern, BuildMethod method,
                            const BuildOptions& options) {
  return Engine(compile_prosite(pattern), Alphabet::amino(), method, options);
}

Engine Engine::from_dfa(Dfa dfa, const Alphabet& alphabet, BuildMethod method,
                        const BuildOptions& options) {
  return Engine(std::move(dfa), alphabet, method, options);
}

bool Engine::contains(std::string_view text, unsigned num_threads) const {
  const std::vector<Symbol> input = alphabet_->encode(text);
  return match_sfa_parallel(sfa_, input, num_threads).accepted;
}

std::size_t Engine::count(std::string_view text, unsigned num_threads) const {
  const std::vector<Symbol> input = alphabet_->encode(text);
  return count_matches_parallel(sfa_, dfa_, input, num_threads);
}

}  // namespace sfa
