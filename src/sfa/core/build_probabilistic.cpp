// Probabilistic fingerprint-only construction — the extension the paper
// sketches but does not investigate (§III-A): "for a probabilistic version
// of our algorithm, which would store fingerprints only, Rabin fingerprints
// would be the better choice, because Rabin's method is capable of providing
// tight bounds on the number of expected hash-collisions".
//
// Here set-membership is decided by the 64-bit Rabin fingerprint ALONE — no
// exhaustive state payload is retained for comparison, so resident memory
// per discovered state is one small node instead of n cells.  State vectors
// live only while their state sits on the work frontier (they are needed
// once, to expand successors) and are freed after expansion.
//
// Correctness is probabilistic: a fingerprint collision silently merges two
// distinct SFA states (expected collisions ~ |Q_s|^2 / 2^64 for a random
// degree-64 modulus; the polynomial degree is the paper's tuning knob).
// BuildStats::peak_frontier_bytes records the bounded live-payload memory.
#include <deque>

#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/hash/rabin.hpp"
#include "sfa/simd/transpose.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

namespace {

struct FpNode {
  std::atomic<FpNode*> next{nullptr};
  std::uint64_t fp = 0;
  std::uint32_t id = 0;
};

struct FpTraits {
  static std::atomic<FpNode*>& next(FpNode& n) { return n.next; }
  static std::uint64_t fingerprint(const FpNode& n) { return n.fp; }
  // Fingerprint equality IS state equality in the probabilistic scheme.
  static bool same_state(const FpNode&, const FpNode&) { return true; }
};

template <typename Cell>
Sfa build_probabilistic_impl(const Dfa& dfa, const BuildOptions& opt,
                             BuildStats* stats) {
  const WallTimer timer;
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();
  const RabinFingerprinter& rabin = default_rabin();

  Sfa result;
  detail::init_result<Cell>(result, dfa);

  const std::vector<Cell> delta_table = detail::cell_delta_table<Cell>(dfa);

  LockFreeHashSet<FpNode, FpTraits> table(opt.hash_buckets);
  std::deque<FpNode> nodes;  // stable addresses; one per discovered state

  // Frontier: states discovered but not yet expanded, WITH their vectors.
  std::deque<std::pair<std::uint32_t, std::vector<Cell>>> frontier;
  std::size_t frontier_bytes = 0, peak_frontier_bytes = 0;

  std::vector<Sfa::StateId> delta;
  std::vector<std::uint8_t> accepting;
  std::vector<std::uint8_t> mappings;  // only when keep_mappings

  const auto intern = [&](const Cell* cells) -> Sfa::StateId {
    const std::uint64_t fp = rabin.hash(cells, sizeof(Cell) * n);
    FpNode probe;
    probe.fp = fp;
    if (FpNode* hit = table.find(fp, probe)) return hit->id;

    nodes.emplace_back();
    FpNode* node = &nodes.back();
    node->fp = fp;
    node->id = static_cast<std::uint32_t>(nodes.size() - 1);
    detail::guard_state_count(nodes.size(), opt);
    table.insert_if_absent(node);

    accepting.push_back(
        dfa.accepting(static_cast<Dfa::StateId>(cells[dfa.start()])));
    delta.resize(nodes.size() * k);
    if (opt.keep_mappings) {
      const std::size_t off = mappings.size();
      mappings.resize(off + sizeof(Cell) * n);
      std::memcpy(mappings.data() + off, cells, sizeof(Cell) * n);
    }
    frontier.emplace_back(node->id, std::vector<Cell>(cells, cells + n));
    frontier_bytes += sizeof(Cell) * n;
    peak_frontier_bytes = std::max(peak_frontier_bytes, frontier_bytes);
    return node->id;
  };

  const std::vector<Cell> start_cells = detail::identity_mapping<Cell>(n);
  result.set_start(intern(start_cells.data()));

  std::vector<Cell> successors(static_cast<std::size_t>(k) * n);
  while (!frontier.empty()) {
    const auto [id, cells] = std::move(frontier.front());
    frontier.pop_front();
    frontier_bytes -= sizeof(Cell) * n;
    successors_transposed<Cell>(delta_table.data(), k, cells.data(), n,
                                successors.data(), opt.transpose);
    for (unsigned s = 0; s < k; ++s)
      delta[static_cast<std::size_t>(id) * k + s] =
          intern(successors.data() + static_cast<std::size_t>(s) * n);
  }

  if (opt.keep_mappings) result.set_mappings_raw(std::move(mappings));
  result.set_table(std::move(delta), std::move(accepting));

  if (stats) {
    *stats = BuildStats{};
    stats->sfa_states = result.num_states();
    stats->dfa_states = n;
    stats->seconds = timer.seconds();
    stats->mapping_bytes_uncompressed =
        static_cast<std::uint64_t>(result.num_states()) * n * sizeof(Cell);
    stats->mapping_bytes_stored =
        opt.keep_mappings ? stats->mapping_bytes_uncompressed
                          : result.num_states() * sizeof(FpNode);
    stats->peak_frontier_bytes = peak_frontier_bytes;
    stats->threads = 1;
  }
  return result;
}

}  // namespace

Sfa build_sfa_probabilistic(const Dfa& dfa, const BuildOptions& options,
                            BuildStats* stats) {
  return detail::use_16bit_cells(dfa)
             ? build_probabilistic_impl<std::uint16_t>(dfa, options, stats)
             : build_probabilistic_impl<std::uint32_t>(dfa, options, stats);
}

}  // namespace sfa
