// TransitionTable — the δ-storage policy seam (paper §III table layout).
//
// Every consumer of the constructed SFA used to index a dense
// `num_states × |Σ|` vector directly; r500-class explosive SFAs blow that
// table out of cache even though most rows are near-duplicates of each
// other (an SFA state with m live tracks has at most m+1 distinct
// successors over the whole alphabet).  This type owns δ-storage and lookup
// behind one inlineable call, with three layouts:
//
//   kDense     the original contiguous `state * k + sym` vector — lookup
//              compiles to the same single load as before the seam.
//   kRowDedup  hash-consed rows (Regen's SSFA::Minimize observation):
//              states with identical δ rows share one stored row through a
//              `state → unique row` indirection vector.  Two dependent
//              loads per lookup.
//   kD2fa      default-transition layout (Bille/Gørtz/Pedersen): each state
//              stores only the symbols on which its row DIFFERS from a
//              default state's row, plus a pointer to that default; lookup
//              chases defaults until an exception (or a root row that
//              stores all |Σ| symbols) resolves the symbol.  The chase
//              depth is bounded at conversion time (chase_limit()).
//
// Conversions always go through a materialized dense image, so any layout
// converts to any other and the result is provably the same function
// (tests/test_table.cpp asserts cell-for-cell equality; the differential
// oracle runs every layout through the engine×task matrix).
//
// D²FA construction here is the near-linear heuristic, not the paper's
// O(S²·|Σ|) maximum-weight spanning tree over the space reduction graph:
// rows are hash-consed first, the most popular unique row becomes the root
// (it keeps all |Σ| entries), every other unique row defaults to either its
// lexicographic predecessor or the root — whichever needs fewer exceptions
// while keeping the chase depth under the bound — and duplicate states
// default to their row representative with zero exceptions.  Acyclicity is
// by construction (defaults always point at an earlier row in the sorted
// order, or at the root).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sfa::table {

enum class TableLayout : std::uint8_t {
  kDense = 0,
  kRowDedup = 1,
  kD2fa = 2,
};

/// CLI/stats spelling: "dense", "dedup", "d2fa".  Inline so the obs
/// exporters (which sit BELOW sfa_core in the library layering) can name
/// layouts without linking the table implementation.
inline const char* layout_name(TableLayout layout) {
  switch (layout) {
    case TableLayout::kDense:
      return "dense";
    case TableLayout::kRowDedup:
      return "dedup";
    case TableLayout::kD2fa:
      return "d2fa";
  }
  return "unknown";
}

/// Inverse of layout_name ("row-dedup" is accepted as an alias); returns
/// false on an unknown spelling.
inline bool parse_layout(const std::string& name, TableLayout& out) {
  if (name == "dense") {
    out = TableLayout::kDense;
  } else if (name == "dedup" || name == "row-dedup") {
    out = TableLayout::kRowDedup;
  } else if (name == "d2fa") {
    out = TableLayout::kD2fa;
  } else {
    return false;
  }
  return true;
}

/// Snapshot of a table's footprint, exported by `sfa inspect`, the
/// `--stats-json` documents (additive table_* fields) and the
/// `sfa.table.*` metrics.
struct TableStats {
  TableLayout layout = TableLayout::kDense;
  /// Bytes of the arrays a lookup can touch (dense cells, indirection
  /// vectors, exception CSR).  What the ≥3× shrink criterion measures.
  std::uint64_t resident_bytes = 0;
  /// Distinct δ rows (dense: num_states — nothing is shared).
  std::uint32_t rows_unique = 0;
  /// Deepest default chase any lookup can take (0 outside kD2fa).
  unsigned max_chase_depth = 0;
  /// chase_depth_hist[d] = states whose chase resolves in exactly d hops
  /// (empty outside kD2fa).
  std::vector<std::uint64_t> chase_depth_hist;
};

class TransitionTable {
 public:
  using StateId = std::uint32_t;

  /// default_of() value for a root state (resolves every symbol locally).
  static constexpr StateId kNoDefault = 0xFFFFFFFFu;
  /// Conversion-time bound on the default chase.  ≥ 2 (root chains need
  /// depth 1 for unique rows plus 1 for duplicate states).
  static constexpr unsigned kDefaultMaxChase = 4;
  /// Lookup-time safety bound: a corrupted table (fault injection, hostile
  /// file) terminates with a deterministic wrong answer instead of looping.
  static constexpr unsigned kHardChaseLimit = 64;

  TransitionTable() = default;

  /// Wrap an already-built dense vector (num_states * num_symbols entries).
  static TransitionTable dense(std::vector<StateId> delta,
                               std::uint32_t num_states, unsigned num_symbols);

  TableLayout layout() const { return layout_; }
  std::uint32_t num_states() const { return num_states_; }
  unsigned num_symbols() const { return k_; }
  bool empty() const { return num_states_ == 0; }

  /// δ(s, sym).  The hot call: one predictable branch on the layout tag,
  /// then the dense case is the exact pre-seam load.
  StateId next(StateId s, unsigned sym) const {
    if (layout_ == TableLayout::kDense)
      return cells_[static_cast<std::size_t>(s) * k_ + sym];
    if (layout_ == TableLayout::kRowDedup)
      return cells_[static_cast<std::size_t>(row_of_[s]) * k_ + sym];
    return d2fa_next(s, sym);
  }

  /// Raw dense cells for tight loops (valid only when layout() == kDense).
  const StateId* dense_cells() const { return cells_.data(); }

  // --- Conversions --------------------------------------------------------

  /// Re-encode into `target` (no-op when already there).  Any source layout
  /// works: non-dense sources are materialized first.
  TransitionTable convert(TableLayout target,
                          unsigned max_chase = kDefaultMaxChase) const;
  TransitionTable to_dense() const;
  TransitionTable to_row_dedup() const;
  TransitionTable to_d2fa(unsigned max_chase = kDefaultMaxChase) const;

  /// The full dense image (num_states * k), whatever the layout.
  std::vector<StateId> materialize_dense() const;

  // --- Footprint ----------------------------------------------------------

  std::uint64_t resident_bytes() const;
  std::uint32_t rows_unique() const { return rows_unique_; }
  /// Deepest default chase (0 outside kD2fa).
  unsigned max_chase_depth() const { return max_chase_depth_; }
  TableStats stats() const;

  // --- Fault injection (the oracle's teeth) -------------------------------

  /// Redirect one state's default pointer to a different state WITHOUT
  /// fixing its exception list — a broken chase the differential oracle
  /// must catch.  The redirect target is chosen so δ(s, ·) provably
  /// changes (not just the encoding).  `preferred` biases the choice: each
  /// (state, symbol) pair is tried first, and the corruption is made
  /// observable at exactly that lookup — the oracle passes the (state,
  /// symbol) trace of a probe walk so the corruption lands on a path its
  /// matchers actually exercise.  kD2fa only; throws std::logic_error
  /// otherwise.  Returns the corrupted state id.
  StateId inject_corrupt_default_transition(
      const std::vector<std::pair<StateId, std::uint8_t>>& preferred = {});

  // --- Serializer access (core/serialize.cpp) -----------------------------

  /// Dense cell vector: per-state rows (kDense) or per-unique rows
  /// (kRowDedup); empty for kD2fa.
  const std::vector<StateId>& cells() const { return cells_; }
  const std::vector<StateId>& row_of() const { return row_of_; }
  const std::vector<StateId>& defaults() const { return default_of_; }
  const std::vector<std::uint32_t>& exc_start() const { return exc_start_; }
  const std::vector<std::uint8_t>& exc_sym() const { return exc_sym_; }
  const std::vector<StateId>& exc_to() const { return exc_to_; }

  /// Rebuild a kRowDedup table from its serialized parts (validates index
  /// ranges; throws std::runtime_error on a malformed file).
  static TransitionTable row_dedup_from_parts(std::vector<StateId> row_of,
                                              std::vector<StateId> unique_cells,
                                              std::uint32_t num_states,
                                              unsigned num_symbols);
  /// Rebuild a kD2fa table from its serialized parts.  Validates ranges,
  /// CSR monotonicity, per-state symbol ordering, and that every default
  /// chain is acyclic (recomputing the chase-depth histogram as it goes);
  /// throws std::runtime_error on a malformed file.
  static TransitionTable d2fa_from_parts(std::vector<StateId> default_of,
                                         std::vector<std::uint32_t> exc_start,
                                         std::vector<std::uint8_t> exc_sym,
                                         std::vector<StateId> exc_to,
                                         std::uint32_t num_states,
                                         unsigned num_symbols);

 private:
  StateId d2fa_next(StateId s, unsigned sym) const {
    for (unsigned hop = 0; hop <= kHardChaseLimit; ++hop) {
      const std::uint32_t lo = exc_start_[s];
      const std::uint32_t hi = exc_start_[s + 1];
      for (std::uint32_t i = lo; i < hi; ++i) {
        if (exc_sym_[i] == sym) return exc_to_[i];
        if (exc_sym_[i] > sym) break;  // exceptions are symbol-sorted
      }
      const StateId d = default_of_[s];
      if (d == kNoDefault) break;
      s = d;
    }
    // Only reachable through a corrupted table (see kHardChaseLimit):
    // deterministic and terminating, so the oracle sees a plain wrong
    // answer rather than a hang.
    return s;
  }

  /// Recompute rows_unique_/max_chase_depth_/chase_depth_hist_ for a kD2fa
  /// table from the default chains; throws on a cyclic chain.
  void compute_d2fa_depths();

  TableLayout layout_ = TableLayout::kDense;
  std::uint32_t num_states_ = 0;
  unsigned k_ = 0;
  std::uint32_t rows_unique_ = 0;
  unsigned max_chase_depth_ = 0;

  // kDense: num_states*k cells.  kRowDedup: rows_unique_*k cells + row_of_.
  std::vector<StateId> cells_;
  std::vector<StateId> row_of_;

  // kD2fa: per-state default pointer + symbol-sorted exception CSR.
  std::vector<StateId> default_of_;
  std::vector<std::uint32_t> exc_start_;  // num_states + 1
  std::vector<std::uint8_t> exc_sym_;
  std::vector<StateId> exc_to_;

  std::vector<std::uint64_t> chase_depth_hist_;
};

/// Publish a table's footprint to the process metrics registry:
/// sfa.table.conversions (counter), sfa.table.resident_bytes and
/// sfa.table.rows_unique (gauges), sfa.table.chase_depth (histogram).
void publish_table_metrics(const TableStats& stats);

}  // namespace sfa::table
