// SegmentedRows — concurrent row storage shared by the parallel builder's
// δ segments and the lazy matcher's δ-row publication.
//
// A fixed-size directory of atomically-published segment pointers; each
// segment holds a power-of-two number of `row_width`-wide rows.  Growth
// never relocates existing rows (pointer stability is what lets racing
// workers publish into a row while other workers read it), and the only
// lock sits on the rare segment-allocation path.  A segment's release-store
// publication is ordered before the owning state's id publication in both
// consumers, so any reader that saw the id also sees the segment.
//
// The element type is the consumer's choice: plain Sfa::StateId rows for
// the parallel builder (rows are written before the rendezvous that reads
// them), std::atomic<Node*> rows for the lazy matcher (rows are written
// WHILE other workers read them — the benign same-value race documented in
// build/lazy_intern.hpp).  Elements are value-constructed on allocation
// (zero / nullptr).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sfa::table {

namespace detail {
template <typename E>
inline void zero_element(E& e) {
  e = E{};
}
template <typename T>
inline void zero_element(std::atomic<T>& e) {
  e.store(T{}, std::memory_order_relaxed);
}
}  // namespace detail

template <typename Element>
class SegmentedRows {
 public:
  SegmentedRows(unsigned row_width, unsigned seg_bits,
                std::size_t max_segments)
      : width_(row_width),
        seg_bits_(seg_bits),
        mask_((std::uint32_t{1} << seg_bits) - 1),
        max_segments_(max_segments),
        directory_(std::make_unique<std::atomic<Element*>[]>(max_segments)) {
    for (std::size_t i = 0; i < max_segments_; ++i)
      directory_[i].store(nullptr, std::memory_order_relaxed);
  }

  SegmentedRows(const SegmentedRows&) = delete;
  SegmentedRows& operator=(const SegmentedRows&) = delete;

  /// Row of state `id`; valid only after ensure_row(id) has returned (on
  /// any thread whose visibility is ordered after that return).
  Element* row(std::uint32_t id) {
    Element* seg =
        directory_[id >> seg_bits_].load(std::memory_order_acquire);
    return seg + static_cast<std::size_t>(id & mask_) * width_;
  }

  /// Allocate the segment holding `id` if absent.  Returns the bytes newly
  /// allocated (0 when the segment already existed) so callers with memory
  /// accounting can charge them.
  std::size_t ensure_row(std::uint32_t id) {
    const std::size_t seg = id >> seg_bits_;
    if (directory_[seg].load(std::memory_order_acquire) != nullptr) return 0;
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    if (directory_[seg].load(std::memory_order_relaxed) != nullptr) return 0;
    const std::size_t entries =
        (std::size_t{1} << seg_bits_) * width_;
    auto storage = std::make_unique<Element[]>(entries);
    for (std::size_t i = 0; i < entries; ++i) detail::zero_element(storage[i]);
    directory_[seg].store(storage.get(), std::memory_order_release);
    storage_.push_back(std::move(storage));
    return entries * sizeof(Element);
  }

  unsigned row_width() const { return width_; }

 private:
  const unsigned width_;
  const unsigned seg_bits_;
  const std::uint32_t mask_;
  const std::size_t max_segments_;
  std::unique_ptr<std::atomic<Element*>[]> directory_;
  std::vector<std::unique_ptr<Element[]>> storage_;
  std::mutex alloc_mutex_;
};

}  // namespace sfa::table
