#include "sfa/core/table/transition_table.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "sfa/hash/city64.hpp"
#include "sfa/obs/metrics.hpp"

namespace sfa::table {

namespace {

/// View-keyed hash consing of δ rows: every state's row is hashed once,
/// collisions fall back to a cell-for-cell compare against the canonical
/// copy.  Returns per-state unique-row indices; fills `reps` with the first
/// state carrying each unique row (the row's representative, in discovery
/// order) and `weights` with how many states share it.
std::vector<std::uint32_t> hash_cons_rows(
    const std::vector<TransitionTable::StateId>& dense, std::uint32_t states,
    unsigned k, std::vector<std::uint32_t>& reps,
    std::vector<std::uint32_t>& weights) {
  std::unordered_multimap<std::uint64_t, std::uint32_t> seen;
  seen.reserve(states);
  std::vector<std::uint32_t> row_of(states);
  const std::size_t row_bytes =
      static_cast<std::size_t>(k) * sizeof(TransitionTable::StateId);
  for (std::uint32_t s = 0; s < states; ++s) {
    const auto* row = dense.data() + static_cast<std::size_t>(s) * k;
    const std::uint64_t h = city_hash64(row, row_bytes);
    std::uint32_t found = 0xFFFFFFFFu;
    auto [it, end] = seen.equal_range(h);
    for (; it != end; ++it) {
      const auto* canon =
          dense.data() + static_cast<std::size_t>(reps[it->second]) * k;
      if (std::memcmp(canon, row, row_bytes) == 0) {
        found = it->second;
        break;
      }
    }
    if (found == 0xFFFFFFFFu) {
      found = static_cast<std::uint32_t>(reps.size());
      reps.push_back(s);
      weights.push_back(0);
      seen.emplace(h, found);
    }
    row_of[s] = found;
    ++weights[found];
  }
  return row_of;
}

}  // namespace

TransitionTable TransitionTable::dense(std::vector<StateId> delta,
                                       std::uint32_t num_states,
                                       unsigned num_symbols) {
  TransitionTable t;
  t.layout_ = TableLayout::kDense;
  t.num_states_ = num_states;
  t.k_ = num_symbols;
  t.rows_unique_ = num_states;
  t.cells_ = std::move(delta);
  return t;
}

std::vector<TransitionTable::StateId> TransitionTable::materialize_dense()
    const {
  if (layout_ == TableLayout::kDense) return cells_;
  std::vector<StateId> out(static_cast<std::size_t>(num_states_) * k_);
  for (std::uint32_t s = 0; s < num_states_; ++s)
    for (unsigned sym = 0; sym < k_; ++sym)
      out[static_cast<std::size_t>(s) * k_ + sym] = next(s, sym);
  return out;
}

TransitionTable TransitionTable::to_dense() const {
  if (layout_ == TableLayout::kDense) return *this;
  return dense(materialize_dense(), num_states_, k_);
}

TransitionTable TransitionTable::to_row_dedup() const {
  const std::vector<StateId> image = materialize_dense();
  std::vector<std::uint32_t> reps, weights;
  std::vector<std::uint32_t> row_of =
      hash_cons_rows(image, num_states_, k_, reps, weights);

  TransitionTable t;
  t.layout_ = TableLayout::kRowDedup;
  t.num_states_ = num_states_;
  t.k_ = k_;
  t.rows_unique_ = static_cast<std::uint32_t>(reps.size());
  t.row_of_ = std::move(row_of);
  t.cells_.resize(static_cast<std::size_t>(reps.size()) * k_);
  for (std::size_t u = 0; u < reps.size(); ++u)
    std::memcpy(t.cells_.data() + u * k_,
                image.data() + static_cast<std::size_t>(reps[u]) * k_,
                static_cast<std::size_t>(k_) * sizeof(StateId));
  return t;
}

TransitionTable TransitionTable::to_d2fa(unsigned max_chase) const {
  if (max_chase < 2) max_chase = 2;
  const std::vector<StateId> image = materialize_dense();
  std::vector<std::uint32_t> reps, weights;
  const std::vector<std::uint32_t> urow_of =
      hash_cons_rows(image, num_states_, k_, reps, weights);
  const std::uint32_t uniques = static_cast<std::uint32_t>(reps.size());
  const auto row = [&](std::uint32_t u) {
    return image.data() + static_cast<std::size_t>(reps[u]) * k_;
  };

  // Root = the most shared unique row; it keeps all |Σ| entries so every
  // chase terminates there.
  std::uint32_t root = 0;
  for (std::uint32_t u = 1; u < uniques; ++u)
    if (weights[u] > weights[root]) root = u;

  // Lexicographic order over unique rows: neighbours in this order tend to
  // differ in few cells, so a row's predecessor is a good default whenever
  // it beats the root on exception count.  Defaults only ever point at an
  // earlier sorted row (or the root), so chains are acyclic by construction.
  std::vector<std::uint32_t> order(uniques);
  for (std::uint32_t u = 0; u < uniques; ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return std::lexicographical_compare(row(a), row(a) + k_, row(b),
                                        row(b) + k_);
  });

  const auto diff_count = [&](std::uint32_t a, std::uint32_t b) {
    unsigned d = 0;
    for (unsigned sym = 0; sym < k_; ++sym)
      if (row(a)[sym] != row(b)[sym]) ++d;
    return d;
  };

  // Duplicate states chase their representative (one extra hop), so
  // representatives themselves stay one level shallower than the bound.
  const unsigned rep_depth_cap = max_chase - 1;
  std::vector<std::uint32_t> udefault(uniques, kNoDefault);  // unique index
  std::vector<unsigned> udepth(uniques, 0);
  for (std::uint32_t p = 0; p < uniques; ++p) {
    const std::uint32_t u = order[p];
    if (u == root) continue;  // full row, no default
    std::uint32_t pick = root;
    unsigned pick_diff = diff_count(u, root);
    if (p > 0 && order[p - 1] != u) {
      const std::uint32_t pred = order[p - 1];
      const unsigned pred_diff = diff_count(u, pred);
      if (pred != root && pred_diff <= pick_diff &&
          udepth[pred] + 1 <= rep_depth_cap) {
        pick = pred;
        pick_diff = pred_diff;
      }
    }
    udefault[u] = pick;
    udepth[u] = udepth[pick] + 1;
    (void)pick_diff;
  }

  TransitionTable t;
  t.layout_ = TableLayout::kD2fa;
  t.num_states_ = num_states_;
  t.k_ = k_;
  t.rows_unique_ = uniques;
  t.default_of_.resize(num_states_);
  t.exc_start_.assign(num_states_ + 1, 0);

  // Pass 1: exception counts per state; pass 2: fill the CSR.
  const auto exceptions_of = [&](std::uint32_t s, auto&& emit) {
    const std::uint32_t u = urow_of[s];
    if (reps[u] != s) return;  // duplicate: default to rep, no exceptions
    if (udefault[u] == kNoDefault) {
      for (unsigned sym = 0; sym < k_; ++sym) emit(sym, row(u)[sym]);
      return;
    }
    const auto* base = row(udefault[u]);
    for (unsigned sym = 0; sym < k_; ++sym)
      if (row(u)[sym] != base[sym]) emit(sym, row(u)[sym]);
  };
  for (std::uint32_t s = 0; s < num_states_; ++s) {
    std::uint32_t count = 0;
    exceptions_of(s, [&](unsigned, StateId) { ++count; });
    t.exc_start_[s + 1] = t.exc_start_[s] + count;
  }
  t.exc_sym_.resize(t.exc_start_[num_states_]);
  t.exc_to_.resize(t.exc_start_[num_states_]);
  for (std::uint32_t s = 0; s < num_states_; ++s) {
    const std::uint32_t u = urow_of[s];
    if (reps[u] != s) {
      t.default_of_[s] = reps[u];
    } else if (udefault[u] == kNoDefault) {
      t.default_of_[s] = kNoDefault;
    } else {
      t.default_of_[s] = reps[udefault[u]];
    }
    std::uint32_t at = t.exc_start_[s];
    exceptions_of(s, [&](unsigned sym, StateId to) {
      t.exc_sym_[at] = static_cast<std::uint8_t>(sym);
      t.exc_to_[at] = to;
      ++at;
    });
  }
  t.compute_d2fa_depths();
  return t;
}

TransitionTable TransitionTable::convert(TableLayout target,
                                         unsigned max_chase) const {
  if (target == layout_) return *this;
  switch (target) {
    case TableLayout::kDense:
      return to_dense();
    case TableLayout::kRowDedup:
      return to_row_dedup();
    case TableLayout::kD2fa:
      return to_d2fa(max_chase);
  }
  throw std::logic_error("TransitionTable: unknown target layout");
}

void TransitionTable::compute_d2fa_depths() {
  // Depth via memoized chain walk; a chain longer than num_states_ is a
  // cycle (possible only in a malformed file — conversion is acyclic).
  constexpr unsigned kUnknown = 0xFFFFFFFEu;
  std::vector<unsigned> depth(num_states_, kUnknown);
  std::vector<StateId> chain;
  for (std::uint32_t s = 0; s < num_states_; ++s) {
    if (depth[s] != kUnknown) continue;
    chain.clear();
    StateId cur = s;
    while (depth[cur] == kUnknown && default_of_[cur] != kNoDefault) {
      chain.push_back(cur);
      if (chain.size() > num_states_)
        throw std::runtime_error("d2fa table: default-transition cycle");
      cur = default_of_[cur];
      if (cur >= num_states_)
        throw std::runtime_error("d2fa table: default out of range");
    }
    unsigned d = depth[cur] == kUnknown ? 0 : depth[cur];
    if (depth[cur] == kUnknown) depth[cur] = 0;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
      depth[*it] = ++d;
  }
  max_chase_depth_ = 0;
  for (unsigned d : depth) max_chase_depth_ = std::max(max_chase_depth_, d);
  chase_depth_hist_.assign(max_chase_depth_ + 1, 0);
  for (unsigned d : depth) ++chase_depth_hist_[d];
}

std::uint64_t TransitionTable::resident_bytes() const {
  switch (layout_) {
    case TableLayout::kDense:
      return cells_.size() * sizeof(StateId);
    case TableLayout::kRowDedup:
      return cells_.size() * sizeof(StateId) +
             row_of_.size() * sizeof(StateId);
    case TableLayout::kD2fa:
      return default_of_.size() * sizeof(StateId) +
             exc_start_.size() * sizeof(std::uint32_t) +
             exc_sym_.size() * sizeof(std::uint8_t) +
             exc_to_.size() * sizeof(StateId);
  }
  return 0;
}

TableStats TransitionTable::stats() const {
  TableStats s;
  s.layout = layout_;
  s.resident_bytes = resident_bytes();
  s.rows_unique = rows_unique_;
  s.max_chase_depth = max_chase_depth_;
  s.chase_depth_hist = chase_depth_hist_;
  return s;
}

TransitionTable::StateId TransitionTable::inject_corrupt_default_transition(
    const std::vector<std::pair<StateId, std::uint8_t>>& preferred) {
  if (layout_ != TableLayout::kD2fa)
    throw std::logic_error(
        "inject_corrupt_default_transition: table is not d2fa");
  // The redirect must change δ(s, ·) for real — pointing the default at a
  // state whose row happens to agree on every chased symbol would be a
  // corruption nothing could ever observe.  Work over the materialized
  // image so candidate rows can be compared directly.
  const std::vector<StateId> image = materialize_dense();
  const auto row = [&](StateId s) { return image.data() + std::size_t{s} * k_; };
  const auto shadowed = [&](StateId s, unsigned sym) {
    for (std::uint32_t e = exc_start_[s]; e < exc_start_[s + 1]; ++e) {
      if (exc_sym_[e] == sym) return true;
      if (exc_sym_[e] > sym) break;
    }
    return false;
  };
  // Corrupt a (state, symbol) lookup with a redirect that resolves that
  // exact lookup through a different row.
  const auto corrupt_at = [&](StateId s, unsigned sym) -> bool {
    const StateId good = default_of_[s];
    if (s >= num_states_ || sym >= k_) return false;
    if (good == kNoDefault || shadowed(s, sym)) return false;
    for (StateId wrong = 0; wrong < num_states_; ++wrong) {
      if (wrong == good || wrong == s) continue;
      if (row(wrong)[sym] == row(good)[sym]) continue;
      default_of_[s] = wrong;
      // Depth bookkeeping is deliberately NOT recomputed: the corruption
      // must look exactly like a bit flipped in a built table.
      return true;
    }
    return false;
  };
  for (const auto& [s, sym] : preferred)
    if (corrupt_at(s, sym)) return s;
  // No usable preference: first state with a live, non-fully-shadowed
  // default and any observably-different redirect target.  Low ids first —
  // builders number states in discovery order, so low ids sit near the
  // start state.
  for (std::uint32_t s = 0; s < num_states_; ++s)
    for (unsigned sym = 0; sym < k_; ++sym)
      if (corrupt_at(s, sym)) return s;
  throw std::logic_error(
      "inject_corrupt_default_transition: no observable corruption exists");
}

TransitionTable TransitionTable::row_dedup_from_parts(
    std::vector<StateId> row_of, std::vector<StateId> unique_cells,
    std::uint32_t num_states, unsigned num_symbols) {
  if (row_of.size() != num_states)
    throw std::runtime_error("dedup table: row_of size mismatch");
  if (num_symbols == 0 || unique_cells.size() % num_symbols != 0)
    throw std::runtime_error("dedup table: cells not a multiple of symbols");
  const std::uint32_t uniques =
      static_cast<std::uint32_t>(unique_cells.size() / num_symbols);
  for (StateId r : row_of)
    if (r >= uniques) throw std::runtime_error("dedup table: row index range");
  for (StateId v : unique_cells)
    if (v >= num_states)
      throw std::runtime_error("dedup table: transition out of range");
  TransitionTable t;
  t.layout_ = TableLayout::kRowDedup;
  t.num_states_ = num_states;
  t.k_ = num_symbols;
  t.rows_unique_ = uniques;
  t.row_of_ = std::move(row_of);
  t.cells_ = std::move(unique_cells);
  return t;
}

TransitionTable TransitionTable::d2fa_from_parts(
    std::vector<StateId> default_of, std::vector<std::uint32_t> exc_start,
    std::vector<std::uint8_t> exc_sym, std::vector<StateId> exc_to,
    std::uint32_t num_states, unsigned num_symbols) {
  if (default_of.size() != num_states ||
      exc_start.size() != static_cast<std::size_t>(num_states) + 1)
    throw std::runtime_error("d2fa table: header size mismatch");
  if (exc_sym.size() != exc_to.size() ||
      exc_start.back() != exc_sym.size() || exc_start.front() != 0)
    throw std::runtime_error("d2fa table: exception CSR mismatch");
  for (std::uint32_t s = 0; s < num_states; ++s) {
    if (exc_start[s] > exc_start[s + 1])
      throw std::runtime_error("d2fa table: CSR not monotone");
    for (std::uint32_t i = exc_start[s]; i < exc_start[s + 1]; ++i) {
      if (exc_sym[i] >= num_symbols)
        throw std::runtime_error("d2fa table: exception symbol range");
      if (i > exc_start[s] && exc_sym[i] <= exc_sym[i - 1])
        throw std::runtime_error("d2fa table: exceptions not symbol-sorted");
      if (exc_to[i] >= num_states)
        throw std::runtime_error("d2fa table: transition out of range");
    }
    if (default_of[s] == kNoDefault) {
      if (exc_start[s + 1] - exc_start[s] != num_symbols)
        throw std::runtime_error("d2fa table: root row is not complete");
    } else if (default_of[s] >= num_states) {
      throw std::runtime_error("d2fa table: default out of range");
    }
  }
  TransitionTable t;
  t.layout_ = TableLayout::kD2fa;
  t.num_states_ = num_states;
  t.k_ = num_symbols;
  t.default_of_ = std::move(default_of);
  t.exc_start_ = std::move(exc_start);
  t.exc_sym_ = std::move(exc_sym);
  t.exc_to_ = std::move(exc_to);
  t.compute_d2fa_depths();  // also rejects default cycles
  // Unique-row count is not stored in the file; the number of states that
  // carry exceptions (row representatives + the root) reproduces it.
  t.rows_unique_ = 0;
  for (std::uint32_t s = 0; s < num_states; ++s)
    if (t.exc_start_[s + 1] > t.exc_start_[s]) ++t.rows_unique_;
  return t;
}

void publish_table_metrics(const TableStats& stats) {
  auto& registry = obs::Registry::instance();
  registry.counter("sfa.table.conversions").inc();
  registry.gauge("sfa.table.resident_bytes")
      .set(static_cast<std::int64_t>(stats.resident_bytes));
  registry.gauge("sfa.table.rows_unique")
      .set(static_cast<std::int64_t>(stats.rows_unique));
  auto& hist = registry.histogram("sfa.table.chase_depth");
  std::uint64_t buckets[obs::Histogram::kBuckets] = {};
  std::uint64_t sum = 0;
  for (std::size_t d = 0; d < stats.chase_depth_hist.size(); ++d) {
    buckets[obs::Histogram::bucket_index(d)] += stats.chase_depth_hist[d];
    sum += d * stats.chase_depth_hist[d];
  }
  hist.merge_buckets(buckets, obs::Histogram::kBuckets, sum);
}

}  // namespace sfa::table
