// DenseTableBuilder — construction-side half of the TransitionTable seam.
//
// The sequential build driver (build/driver.hpp) interns states one at a
// time without knowing the final count, so the δ-table must grow as states
// appear.  Growth policy (geometric doubling, O(log states) relocations)
// and the relocation counter that feeds BuildStats::delta_reallocations
// used to live inline in the driver; they are the table's business, so
// they live here now.  finish() hands the cells to a dense
// TransitionTable without copying.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sfa/core/table/transition_table.hpp"

namespace sfa::table {

class DenseTableBuilder {
 public:
  using StateId = TransitionTable::StateId;

  explicit DenseTableBuilder(unsigned num_symbols) : k_(num_symbols) {}

  /// Make rows [0, rows) addressable.  Doubles capacity when exhausted so
  /// the backing storage relocates O(log rows) times, not once per state.
  void ensure_rows(std::uint64_t rows) {
    const std::size_t need = static_cast<std::size_t>(rows) * k_;
    if (need > cells_.capacity()) {
      cells_.reserve(std::max<std::size_t>(need, cells_.capacity() * 2));
      ++reallocations_;
    }
    cells_.resize(need);
  }

  void set(StateId from, unsigned sym, StateId to) {
    cells_[static_cast<std::size_t>(from) * k_ + sym] = to;
  }

  /// Backing-storage relocations so far (BuildStats::delta_reallocations).
  std::uint64_t reallocations() const { return reallocations_; }

  /// Move the built cells into a dense TransitionTable.  The builder is
  /// spent afterwards.
  TransitionTable finish(std::uint32_t num_states) {
    return TransitionTable::dense(std::move(cells_), num_states, k_);
  }

 private:
  const unsigned k_;
  std::vector<StateId> cells_;
  std::uint64_t reallocations_ = 0;
};

}  // namespace sfa::table
