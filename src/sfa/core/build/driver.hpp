// The one sequential construction driver (Algorithm 1), templated over the
// substrate's policy seams.  Every sequential BuildMethod is a policy
// combination instantiated in build/sequential.cpp:
//
//   method         InternTable                SuccessorGen   Frontier  store
//   baseline       TreeInternTable            Scalar         FIFO      inline
//   hashed         ChainedInternTable<Raw|Compressed>  Scalar  FIFO    raw/3-phase
//   transposed     ChainedInternTable<Raw|Compressed>  Transposed FIFO raw/3-phase
//   probabilistic  FingerprintInternTable     Transposed     FIFO      drop
//
// The driver owns everything the five pre-substrate builders each
// reimplemented: max_states guarding, the dense delta table (geometric
// growth), the accepting bitmap, keep_mappings finalization, BuildStats
// filling, and obs spans/metrics.  The parallel builder shares the policy
// components but needs its own driver (worker team, rendezvous) — see
// build/parallel.cpp.
//
// Exploration is breadth-first and successors are interned in symbol order,
// so state numbering is identical across every sequential policy
// combination — the differential oracle's exact-equality checks depend on
// this invariant.
#pragma once

#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/build/frontier.hpp"
#include "sfa/core/build/obs_glue.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/core/table/dense_builder.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::detail {

template <typename Cell, typename Intern, typename SuccGen>
Sfa run_sequential_build(const Dfa& dfa, const BuildOptions& opt,
                         BuildStats* stats, const char* method_label) {
  const WallTimer timer;
  SFA_TRACE_SCOPE("build", method_label);
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();

  Sfa result;
  init_result<Cell>(result, dfa);

  Intern intern(dfa, opt);
  SuccGen succ_gen(dfa, opt);
  FifoFrontier<typename Intern::WorkItem> frontier;

  table::DenseTableBuilder delta(k);
  std::vector<std::uint8_t> accepting;
  std::uint64_t num_states = 0;

  const auto intern_cells = [&](const Cell* cells) -> Sfa::StateId {
    bool fresh = false;
    typename Intern::WorkItem item{};
    const Sfa::StateId id = intern.intern(cells, fresh, item);
    if (fresh) {
      ++num_states;
      guard_state_count(num_states, opt);
      accepting.push_back(
          dfa.accepting(static_cast<Dfa::StateId>(cells[dfa.start()])));
      // The table builder owns growth policy (geometric doubling) and the
      // relocation count that lands in BuildStats::delta_reallocations.
      delta.ensure_rows(num_states);
      frontier.push(std::move(item));
    }
    return id;
  };

  const std::vector<Cell> start_cells = identity_mapping<Cell>(n);
  result.set_start(intern_cells(start_cells.data()));

  // One k x n buffer holds ALL successors of the current state; row sigma is
  // the successor state on symbol sigma (right half of Fig. 3).  The source
  // mapping never changes mid-state, so generating every row before
  // interning any of them is observationally identical to the interleaved
  // per-symbol loop the pre-substrate builders ran.
  std::vector<Cell> successors(static_cast<std::size_t>(k) * n);
  {
    SFA_TRACE_SCOPE("build", "explore");
    typename Intern::WorkItem item{};
    while (frontier.pop(item)) {
      const Sfa::StateId id = intern.id_of(item);
      succ_gen.generate(intern.cells_of(item), k, n, successors.data());
      intern.after_expand(item);
      for (unsigned s = 0; s < k; ++s) {
        const Sfa::StateId to =
            intern_cells(successors.data() + static_cast<std::size_t>(s) * n);
        delta.set(id, s, to);
      }
    }
  }

  SFA_TRACE_SCOPE("build", "finalize");
  intern.finalize_mappings(result, opt.keep_mappings);
  const std::uint64_t delta_reallocations = delta.reallocations();
  result.set_table(
      delta.finish(static_cast<std::uint32_t>(num_states)),
      std::move(accepting));

  BuildStats local;
  local.sfa_states = result.num_states();
  local.dfa_states = n;
  local.seconds = timer.seconds();
  local.mapping_bytes_uncompressed =
      static_cast<std::uint64_t>(result.num_states()) * n * sizeof(Cell);
  local.mapping_bytes_stored = result.has_mappings()
                                   ? result.mapping_store_bytes()
                                   : local.mapping_bytes_uncompressed;
  local.delta_reallocations = delta_reallocations;
  local.threads = 1;
  intern.fill_stats(local, result);

  if (const HashSetCounters* hc = intern.hash_counters())
    publish_hash_metrics(*hc);
  publish_build_run(method_label, result.num_states(), 1,
                    local.compression_triggered);
  if (stats) *stats = local;
  return result;
}

}  // namespace sfa::detail
