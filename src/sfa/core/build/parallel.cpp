// Parallel SFA construction (paper §III-B) with three-phase in-memory
// compression (§III-C) — the substrate's concurrent driver.
//
// The policy components are the same seams the sequential driver composes
// (build/driver.hpp), taken in their concurrent variants:
//
//   InternTable   the LockFreeHashSet driven through its racing
//                 insert_if_absent path (losers adopt the winner's node; ids
//                 are published after insertion and readers spin on the
//                 unset sentinel, which keeps ids dense)
//   SuccessorGen  detail::TransposedSuccessorGen — shared verbatim with the
//                 sequential transposed builder (immutable, so one instance
//                 serves every worker)
//   Frontier      the two-regime scheduler of §III-B2: a global queue with
//                 CAS-synchronized enqueues and statically partitioned
//                 dequeues, then per-worker work-stealing deques (owner LIFO
//                 pop, thieves CAS-steal the opposite end, nearest victim
//                 first)
//   MappingStore  per-worker arenas with the multi-worker three-phase
//                 rendezvous: when accounted usage crosses the threshold,
//                 every worker acknowledges between work items, the world
//                 stops at a barrier, the hash table is rebuilt from
//                 re-compressed states, uncompressed arenas are reclaimed,
//                 and construction resumes compressing on creation
//
// The worker team, rendezvous barriers, and id-publication protocol make
// this a distinct driver rather than an instantiation of the sequential
// template; everything else (codec resolution, successor generation, metric
// names) is shared substrate code.
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sfa/concurrent/barrier.hpp"
#include "sfa/concurrent/global_queue.hpp"
#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/concurrent/memory_manager.hpp"
#include "sfa/concurrent/ws_queue.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/build/obs_glue.hpp"
#include "sfa/core/build/store.hpp"
#include "sfa/core/build/successor.hpp"
#include "sfa/core/state.hpp"
#include "sfa/core/table/segmented_rows.hpp"
#include "sfa/hash/city64.hpp"
#include "sfa/obs/metrics.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/numa.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

namespace {

template <typename Cell>
class ParallelBuilder {
 public:
  using Node = StateNode<Cell>;
  using Table = LockFreeHashSet<Node, StateNodeTraits<Cell>>;

  ParallelBuilder(const Dfa& dfa, const BuildOptions& opt)
      : dfa_(dfa),
        opt_(opt),
        k_(dfa.num_symbols()),
        n_(dfa.size()),
        threads_(opt.num_threads == 0 ? 1 : opt.num_threads),
        succ_gen_(dfa, opt),
        table_(opt.hash_buckets),
        global_(opt.global_queue_capacity),
        manager_(opt.memory_threshold_bytes, threads_),
        barrier_(threads_),
        codec_(detail::resolve_codec(opt)),
        delta_rows_(dfa.num_symbols(), kSegBits, kMaxSegments) {
    workers_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
      workers_.push_back(std::make_unique<WorkerState>(
          &manager_.accounting()));
  }

  Sfa build(BuildStats* stats) {
    const WallTimer timer;
    {
      SFA_TRACE_SCOPE("build", "seed");
      seed_start_state();
    }

    std::vector<std::thread> team;
    team.reserve(threads_);
    {
      SFA_TRACE_SPAN(team_span, "build", "team");
      team_span.arg("threads", threads_);
      for (unsigned t = 0; t < threads_; ++t)
        team.emplace_back([this, t] { worker_main(t); });
      for (auto& th : team) th.join();
    }

    if (aborted_.load()) throw std::runtime_error(abort_message_);
    SFA_TRACE_SPAN(fin_span, "build", "finalize");
    Sfa result = finalize();
    fin_span.arg("sfa_states", result.num_states());
    fin_span.finish();
    publish_metrics();
    if (stats) fill_stats(*stats, result, timer.seconds());
    return result;
  }

 private:
  struct WorkerState {
    explicit WorkerState(MemoryAccounting* accounting)
        : headers(accounting), payloads(accounting), compressed(accounting),
          queue(std::make_unique<WorkStealingQueue>()) {}
    Arena headers;     // node headers — live for the whole construction
    Arena payloads;    // uncompressed payload generation (reclaimable)
    Arena compressed;  // compressed payload generation
    std::unique_ptr<WorkStealingQueue> queue;
    std::vector<Node*> owned;           // nodes this worker inserted
    std::vector<Cell> succ_buffer;      // k x n successor scratch
    std::vector<std::uint8_t> scratch;  // decompression scratch
    Bytes comp_scratch;                 // compression scratch
    bool acked = false;
    bool compressed_mode = false;
    std::uint64_t from_global = 0;
  };

  // ---- seeding ---------------------------------------------------------

  void seed_start_state() {
    WorkerState& w = *workers_[0];
    const std::vector<Cell> identity = detail::identity_mapping<Cell>(n_);
    const std::uint64_t fp =
        city_hash64(identity.data(), sizeof(Cell) * n_);
    Node* node = make_state_node<Cell>(w.headers, w.payloads, identity.data(),
                                       n_, fp);
    node->accepting = dfa_.accepting(
        static_cast<Dfa::StateId>(identity[dfa_.start()]));
    table_.insert_if_absent(node);
    const std::uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    ensure_delta_segment(id);
    node->id.store(id, std::memory_order_release);
    w.owned.push_back(node);
    pending_.fetch_add(1, std::memory_order_relaxed);
    global_.try_enqueue(reinterpret_cast<std::uint64_t>(node));
  }

  // ---- worker loop ------------------------------------------------------

  void worker_main(unsigned tid) {
    WorkerState& w = *workers_[tid];
    w.succ_buffer.resize(static_cast<std::size_t>(k_) * n_);
    w.scratch.resize(static_cast<std::size_t>(n_) * sizeof(Cell));
    // Mixed compressed/uncompressed equality needs the codec on this thread.
    StateNodeTraits<Cell>::set_compare_context(
        codec_, static_cast<std::size_t>(n_) * sizeof(Cell));
    GlobalQueue::Cursor cursor(tid, threads_);
    bool global_done = false;
    unsigned idle_spins = 0;

    SFA_TRACE_THREAD_NAME("builder/worker " + std::to_string(tid));
    // The builder spawns its own team, so the process-wide `--pin` policy is
    // applied here (the scan pool carries its own copy of the mode).
    apply_pin(process_pin_mode(), tid);
    SFA_TRACE_SPAN(worker_span, "build", "worker");
    worker_span.arg("tid", tid);
    // One span per distribution phase: "global-phase" while the worker still
    // draws from the CAS global queue, "local-phase" once it has moved to
    // its own work-stealing queue (§III-B: the two-regime distribution).
    SFA_TRACE_SPAN(phase_span, "build", "global-phase");
    bool in_global_phase = true;

    for (;;) {
      // Compression rendezvous has priority over everything, including
      // termination and abort: every worker must reach the barrier.
      if (manager_.phase() == MemoryPhase::kCompressing && !w.acked) {
        compression_rendezvous(tid, w);
        continue;
      }
      if (aborted_.load(std::memory_order_acquire)) break;

      Node* node = get_work(tid, w, cursor, global_done);
      if (in_global_phase && global_done) {
        in_global_phase = false;
        phase_span.arg("from_global", w.from_global);
        phase_span.finish();
        phase_span.open("build", "local-phase");
      }
      if (node != nullptr) {
        idle_spins = 0;
        process(tid, w, node);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (pending_.load(std::memory_order_acquire) == 0) {
        if (manager_.phase() == MemoryPhase::kCompressing && !w.acked)
          continue;  // join the rendezvous first
        break;
      }
      // Backoff: brief pause-spin, then yield the core so an oversubscribed
      // host (threads > cores) lets the worker that holds the work run.
      if (++idle_spins < 64)
        cpu_pause();
      else
        std::this_thread::yield();
    }
  }

  Node* get_work(unsigned tid, WorkerState& w, GlobalQueue::Cursor& cursor,
                 bool& global_done) {
    if (!global_done) {
      bool exhausted = false;
      if (auto v = cursor.take(global_, exhausted)) {
        ++w.from_global;
        return reinterpret_cast<Node*>(*v);
      }
      if (exhausted) global_done = true;
    }
    if (auto v = w.queue->pop()) return reinterpret_cast<Node*>(*v);
    // Steal, nearest victim first (§III-B2: start from the closest queue).
    for (unsigned i = 1; i < threads_; ++i) {
      const unsigned victim = (tid + i) % threads_;
      if (auto v = workers_[victim]->queue->steal()) {
        SFA_TRACE_INSTANT2("build", "steal", "victim", victim, "distance", i);
        return reinterpret_cast<Node*>(*v);
      }
    }
    return nullptr;
  }

  void process(unsigned tid, WorkerState& w, Node* node) {
    // Source cells: decompress when the node was stored compressed.
    const Cell* src;
    if (node->compressed()) {
      const Bytes raw = codec_->decompress(
          ByteView(node->bytes(), node->payload_size),
          static_cast<std::size_t>(n_) * sizeof(Cell));
      std::memcpy(w.scratch.data(), raw.data(), raw.size());
      src = reinterpret_cast<const Cell*>(w.scratch.data());
    } else {
      src = node->cells();
    }

    // All |Sigma| successors in one parameterized transposition.
    succ_gen_.generate(src, k_, n_, w.succ_buffer.data());

    const std::uint32_t src_id = node->id.load(std::memory_order_acquire);
    Sfa::StateId* row = delta_row(src_id);
    for (unsigned s = 0; s < k_; ++s) {
      const Cell* cells = w.succ_buffer.data() + static_cast<std::size_t>(s) * n_;
      row[s] = intern(tid, w, cells);
      if (aborted_.load(std::memory_order_relaxed)) return;
    }
  }

  /// Find-or-insert a successor state; returns its id.
  Sfa::StateId intern(unsigned tid, WorkerState& w, const Cell* cells) {
    const std::uint64_t fp = city_hash64(cells, sizeof(Cell) * n_);

    // Probe with the UNCOMPRESSED candidate even in compressed mode: the
    // traits decompress a resident node only on fingerprint equality, which
    // is far cheaper than compressing every candidate before lookup
    // (duplicates — the common case — then cost one decompression).
    Node probe;
    probe.fingerprint = fp;
    probe.payload = reinterpret_cast<std::byte*>(const_cast<Cell*>(cells));
    probe.payload_size = static_cast<std::uint32_t>(sizeof(Cell) * n_);
    if (Node* hit = table_.find(fp, probe)) return wait_id(hit);

    // Allocate and race for insertion; only new states pay for compression.
    Node* node;
    if (w.compressed_mode) {
      w.comp_scratch = codec_->compress(ByteView(
          reinterpret_cast<const std::uint8_t*>(cells), sizeof(Cell) * n_));
      node = make_compressed_node<Cell>(
          w.headers, w.compressed, w.comp_scratch.data(),
          static_cast<std::uint32_t>(w.comp_scratch.size()), fp);
    } else {
      node = make_state_node<Cell>(w.headers, w.payloads, cells, n_, fp);
      manager_.observe();  // may flip the phase to kCompressing
    }
    node->accepting =
        dfa_.accepting(static_cast<Dfa::StateId>(cells[dfa_.start()]));

    const auto [winner, inserted] = table_.insert_if_absent(node);
    if (!inserted) return wait_id(winner);  // our node becomes arena garbage

    const std::uint32_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed);
    if (id + 1ull > opt_.max_states) {
      abort_construction("SFA state explosion: exceeded max_states=" +
                         std::to_string(opt_.max_states));
      node->id.store(id, std::memory_order_release);
      return id;
    }
    ensure_delta_segment(id);
    node->id.store(id, std::memory_order_release);
    w.owned.push_back(node);

    pending_.fetch_add(1, std::memory_order_acq_rel);
    enqueue(tid, w, node);
    return id;
  }

  static std::uint32_t wait_id(Node* node) {
    std::uint32_t id;
    unsigned spins = 0;
    while ((id = node->id.load(std::memory_order_acquire)) == Node::kIdUnset) {
      // The winner publishes right after insertion; yield if it appears to
      // have been descheduled (threads > cores).
      if (++spins < 64)
        cpu_pause();
      else
        std::this_thread::yield();
    }
    return id;
  }

  void enqueue(unsigned /*tid*/, WorkerState& w, Node* node) {
    const std::uint64_t item = reinterpret_cast<std::uint64_t>(node);
    if (!global_.closed()) {
      if (global_.try_enqueue(item)) return;
      global_.close();  // threshold reached: switch to local queues
    }
    w.queue->push(item);
  }

  void abort_construction(std::string message) {
    bool expected = false;
    if (aborted_.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lock(abort_mutex_);
      abort_message_ = std::move(message);
    }
  }

  // ---- delta storage ----------------------------------------------------
  //
  // Segmented δ-row publication is shared with the lazy matcher's intern
  // table through the TransitionTable seam's SegmentedRows component
  // (core/table/segmented_rows.hpp): pointer-stable growth, a mutex only
  // on segment allocation, release-store publication ordered before the
  // owning state's id publication.

  static constexpr unsigned kSegBits = 14;  // 16384 states per segment
  static constexpr std::size_t kMaxSegments = 1u << 16;

  Sfa::StateId* delta_row(std::uint32_t id) { return delta_rows_.row(id); }

  void ensure_delta_segment(std::uint32_t id) { delta_rows_.ensure_row(id); }

  // ---- compression phase -------------------------------------------------

  void compression_rendezvous(unsigned tid, WorkerState& w) {
    const WallTimer phase_timer;
    SFA_TRACE_SCOPE("build", "compression");
    // Sub-phase span walks through the three stop-the-world stages so a
    // trace shows where the pause time went (§III-C).
    SFA_TRACE_SPAN(stage, "build", "compress/suspend");
    manager_.acknowledge(tid);
    w.acked = true;
    barrier_.wait();  // world stopped; every worker is here

    if (tid == 0) table_.clear();
    barrier_.wait();

    stage.finish();
    stage.open("build", "compress/rebuild");
    stage.arg("owned", w.owned.size());
    // Each worker re-compresses its own nodes and re-inserts them without
    // duplicate checks (they are known unique).
    for (Node* node : w.owned) {
      if (!node->compressed()) {
        const Bytes comp = codec_->compress(
            ByteView(node->bytes(), node->payload_size));
        auto* storage =
            static_cast<std::byte*>(w.compressed.allocate(comp.size(), 8));
        std::memcpy(storage, comp.data(), comp.size());
        node->payload = storage;
        node->payload_size = static_cast<std::uint32_t>(comp.size());
        node->is_compressed = 1;
      }
      node->next.store(nullptr, std::memory_order_relaxed);
      table_.insert_unchecked(node);
    }
    barrier_.wait();

    stage.finish();
    stage.open("build", "compress/resume");
    // All payloads re-pointed: the uncompressed generation can go.
    w.payloads.release_all();
    w.compressed_mode = true;
    if (tid == 0) {
      manager_.finish_compression();
      compression_seconds_ = phase_timer.seconds();
      compression_triggered_ = true;
    }
    barrier_.wait();
  }

  // ---- finalize -----------------------------------------------------------

  Sfa finalize() {
    const std::uint32_t count = next_id_.load(std::memory_order_acquire);
    Sfa result;
    detail::init_result<Cell>(result, dfa_);
    result.set_start(0);  // the seed always takes id 0

    std::vector<Sfa::StateId> delta(static_cast<std::size_t>(count) * k_);
    for (std::uint32_t id = 0; id < count; ++id)
      std::memcpy(delta.data() + static_cast<std::size_t>(id) * k_,
                  delta_row(id), sizeof(Sfa::StateId) * k_);

    std::vector<std::uint8_t> accepting(count);
    const bool compressed_result = compression_triggered_;
    std::vector<std::uint8_t> raw;
    std::vector<Bytes> blobs;
    if (opt_.keep_mappings) {
      if (compressed_result)
        blobs.resize(count);
      else
        raw.resize(static_cast<std::size_t>(count) * n_ * sizeof(Cell));
    }
    for (const auto& w : workers_) {
      for (Node* node : w->owned) {
        const std::uint32_t id = node->id.load(std::memory_order_relaxed);
        accepting[id] = node->accepting;
        if (!opt_.keep_mappings) continue;
        if (compressed_result) {
          // Late stragglers: a node may still be uncompressed if it was
          // created after the rendezvous by a worker that had not yet
          // switched modes — impossible by construction (modes flip at the
          // barrier), but compress defensively rather than corrupt.
          if (node->compressed()) {
            blobs[id].assign(node->bytes(), node->bytes() + node->payload_size);
          } else {
            blobs[id] = codec_->compress(
                ByteView(node->bytes(), node->payload_size));
          }
        } else {
          std::memcpy(raw.data() + static_cast<std::size_t>(id) * n_ *
                          sizeof(Cell),
                      node->payload, n_ * sizeof(Cell));
        }
      }
    }
    if (opt_.keep_mappings) {
      if (compressed_result)
        result.set_mappings_compressed(std::move(blobs), codec_);
      else
        result.set_mappings_raw(std::move(raw));
    }
    result.set_table(std::move(delta), std::move(accepting));
    return result;
  }

  void fill_stats(BuildStats& stats, const Sfa& result, double seconds) {
    stats = BuildStats{};
    stats.sfa_states = result.num_states();
    stats.dfa_states = n_;
    stats.seconds = seconds;
    stats.compression_seconds = compression_seconds_;
    stats.compression_triggered = compression_triggered_;
    stats.mapping_bytes_uncompressed =
        static_cast<std::uint64_t>(result.num_states()) * n_ * sizeof(Cell);
    stats.mapping_bytes_stored = result.has_mappings()
                                     ? result.mapping_store_bytes()
                                     : stats.mapping_bytes_uncompressed;
    stats.fingerprint_collisions =
        table_.counters.fp_collisions.load(std::memory_order_relaxed);
    stats.hash_cas_failures =
        table_.counters.cas_failures.load(std::memory_order_relaxed);
    stats.chain_traversals =
        table_.counters.chain_traversals.load(std::memory_order_relaxed);
    stats.threads = threads_;
    for (const auto& w : workers_) {
      stats.steals +=
          w->queue->counters.steals.load(std::memory_order_relaxed);
      stats.steal_failures +=
          w->queue->counters.steal_failures.load(std::memory_order_relaxed);
      stats.queue_cas_failures +=
          w->queue->counters.cas_failures.load(std::memory_order_relaxed);
      stats.global_queue_states += w->from_global;
    }
    stats.queue_cas_failures +=
        global_.counters.cas_failures.load(std::memory_order_relaxed);
  }

  /// Fold this run's substrate counters into the process-wide metrics
  /// registry (surfaced via --stats-json and the Prometheus exporter).
  /// Metrics are always on — only span tracing is compile-time gated.
  void publish_metrics() {
    auto& reg = obs::Registry::instance();
    const auto rel = std::memory_order_relaxed;

    detail::publish_build_run("parallel", next_id_.load(rel), threads_,
                              compression_triggered_);
    detail::publish_hash_metrics(table_.counters);

    std::uint64_t pushes = 0, pops = 0, steals = 0, steal_failures = 0,
                  cas_failures = 0, from_global = 0;
    obs::Histogram& steal_cycles = reg.histogram("sfa.queue.steal_cycles");
    for (const auto& w : workers_) {
      const auto& qc = w->queue->counters;
      pushes += qc.pushes.load(rel);
      pops += qc.pops.load(rel);
      steals += qc.steals.load(rel);
      steal_failures += qc.steal_failures.load(rel);
      cas_failures += qc.cas_failures.load(rel);
      from_global += w->from_global;
      detail::merge_log2(steal_cycles, qc.steal_cycles);
    }
    reg.counter("sfa.queue.pushes").inc(pushes);
    reg.counter("sfa.queue.pops").inc(pops);
    reg.counter("sfa.queue.steals").inc(steals);
    reg.counter("sfa.queue.steal_failures").inc(steal_failures);
    reg.counter("sfa.queue.cas_failures").inc(cas_failures);
    reg.counter("sfa.queue.global_states").inc(from_global);
    reg.counter("sfa.queue.global_cas_failures")
        .inc(global_.counters.cas_failures.load(rel));
  }

  const Dfa& dfa_;
  const BuildOptions opt_;
  const unsigned k_;
  const std::uint32_t n_;
  const unsigned threads_;
  const detail::TransposedSuccessorGen<Cell> succ_gen_;

  Table table_;
  GlobalQueue global_;
  MemoryManager manager_;
  SpinBarrier barrier_;
  const Codec* codec_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::atomic<std::uint32_t> next_id_{0};
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> aborted_{false};
  std::mutex abort_mutex_;
  std::string abort_message_;

  table::SegmentedRows<Sfa::StateId> delta_rows_;

  double compression_seconds_ = 0;
  bool compression_triggered_ = false;
};

}  // namespace

Sfa build_sfa_parallel(const Dfa& dfa, const BuildOptions& options,
                       BuildStats* stats) {
  if (detail::use_16bit_cells(dfa)) {
    ParallelBuilder<std::uint16_t> builder(dfa, options);
    return builder.build(stats);
  }
  ParallelBuilder<std::uint32_t> builder(dfa, options);
  return builder.build(stats);
}

}  // namespace sfa
