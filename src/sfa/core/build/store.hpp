// MappingStore policy seam (construction substrate, layer 4 of 4).
//
// The store owns the payload representation of interned SFA states: the
// node arenas, the (optional) three-phase compression of §III-C, and the
// finalization of the result's mapping store.  Policies:
//
//   RawMappingStore         every payload stays an uncompressed cell vector
//                           in a bump arena — the paper's default when the
//                           problem fits in memory.
//   CompressedMappingStore  the three-phase scheme of §III-C, now available
//                           to the SEQUENTIAL hashed/transposed builders as
//                           well: states accumulate uncompressed until the
//                           accounted arena usage crosses
//                           BuildOptions::memory_threshold_bytes, then every
//                           resident payload is re-compressed in one pass
//                           (single-threaded stop-the-world — there is only
//                           one thread to stop), the uncompressed arena is
//                           reclaimed wholesale, and construction resumes
//                           compressing each new state on creation.
//
// The fingerprint-only "drop" store of the probabilistic builder keeps no
// resident payload at all; it is fused into FingerprintInternTable
// (build/intern.hpp) because membership and storage collapse into one
// structure there.
//
// The parallel builder implements the same two store behaviours with a
// multi-worker rendezvous (build/parallel.cpp); the codec plumbing and
// node helpers here are shared.
//
// Relation to the δ-table seam (core/table/): the store owns the MAPPING
// payloads, the TransitionTable owns δ-storage.  They compress on different
// axes — mappings byte-compress per state (§III-C), δ rows dedup/default
// ACROSS states (D²FA).  Row-dedup of mapping payloads would be a no-op
// here: interning already guarantees every stored mapping is unique, so the
// two seams stay orthogonal and compose freely (any store policy × any
// table layout, exercised by the serialization round-trip matrix).
#pragma once

#include <cstring>
#include <vector>

#include "sfa/compress/deflate_like.hpp"
#include "sfa/concurrent/arena.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/core/state.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::detail {

/// The codec used when BuildOptions::codec is null (the paper's
/// deflate-like pick from the §III-C Squash evaluation).
inline const Codec* default_build_codec() {
  static const DeflateLikeCodec codec;
  return &codec;
}

inline const Codec* resolve_codec(const BuildOptions& opt) {
  return opt.codec ? opt.codec : default_build_codec();
}

template <typename Cell>
class RawMappingStore {
 public:
  using Node = StateNode<Cell>;
  static constexpr const char* kName = "raw";

  RawMappingStore(const Dfa& dfa, const BuildOptions&)
      : n_(dfa.size()) {}

  Node* make_node(const Cell* cells, std::uint64_t fp) {
    return make_state_node<Cell>(headers_, payloads_, cells, n_, fp);
  }

  const Cell* cells_of(const Node* node) { return node->cells(); }

  /// Raw storage never switches representation.
  void maybe_compress(const std::vector<Node*>&) {}

  bool compression_triggered() const { return false; }

  void finalize(Sfa& result, const std::vector<Node*>& nodes,
                bool keep_mappings) const {
    if (!keep_mappings) return;
    std::vector<std::uint8_t> raw(nodes.size() * static_cast<std::size_t>(n_) *
                                  sizeof(Cell));
    for (std::size_t i = 0; i < nodes.size(); ++i)
      std::memcpy(raw.data() + i * n_ * sizeof(Cell), nodes[i]->payload,
                  n_ * sizeof(Cell));
    result.set_mappings_raw(std::move(raw));
  }

  void fill_stats(BuildStats&) const {}

 private:
  const std::uint32_t n_;
  Arena headers_, payloads_;
};

template <typename Cell>
class CompressedMappingStore {
 public:
  using Node = StateNode<Cell>;
  static constexpr const char* kName = "compressed";

  CompressedMappingStore(const Dfa& dfa, const BuildOptions& opt)
      : n_(dfa.size()),
        raw_bytes_(static_cast<std::size_t>(n_) * sizeof(Cell)),
        threshold_(opt.memory_threshold_bytes),
        codec_(resolve_codec(opt)),
        headers_(&accounting_),
        payloads_(&accounting_),
        compressed_(&accounting_) {
    scratch_.resize(raw_bytes_);
    // Mixed compressed/uncompressed probes need the codec on this thread
    // from the moment the first compressed node can appear.
    StateNodeTraits<Cell>::set_compare_context(codec_, raw_bytes_);
  }

  Node* make_node(const Cell* cells, std::uint64_t fp) {
    if (compressed_mode_) {
      comp_scratch_ = codec_->compress(ByteView(
          reinterpret_cast<const std::uint8_t*>(cells), raw_bytes_));
      return make_compressed_node<Cell>(
          headers_, compressed_, comp_scratch_.data(),
          static_cast<std::uint32_t>(comp_scratch_.size()), fp);
    }
    return make_state_node<Cell>(headers_, payloads_, cells, n_, fp);
  }

  const Cell* cells_of(const Node* node) {
    if (!node->compressed()) return node->cells();
    const Bytes raw = codec_->decompress(
        ByteView(node->bytes(), node->payload_size), raw_bytes_);
    std::memcpy(scratch_.data(), raw.data(), raw.size());
    return reinterpret_cast<const Cell*>(scratch_.data());
  }

  /// Threshold watcher — the sequential analogue of MemoryManager::observe()
  /// plus the whole §III-C rendezvous collapsed to one thread: re-compress
  /// every resident payload, reclaim the uncompressed generation, and flip
  /// to compress-on-create.  Node headers (and therefore the intern table's
  /// chains and the frontier's Node pointers) stay valid throughout; only
  /// payload pointers move.
  void maybe_compress(const std::vector<Node*>& nodes) {
    if (compressed_mode_ || threshold_ == 0 || accounting_.used() < threshold_)
      return;
    const WallTimer phase_timer;
    SFA_TRACE_SCOPE("build", "compression");
    for (Node* node : nodes) {
      if (node->compressed()) continue;
      const Bytes comp =
          codec_->compress(ByteView(node->bytes(), node->payload_size));
      auto* storage =
          static_cast<std::byte*>(compressed_.allocate(comp.size(), 8));
      std::memcpy(storage, comp.data(), comp.size());
      node->payload = storage;
      node->payload_size = static_cast<std::uint32_t>(comp.size());
      node->is_compressed = 1;
    }
    payloads_.release_all();
    compressed_mode_ = true;
    compression_triggered_ = true;
    compression_seconds_ += phase_timer.seconds();
  }

  bool compression_triggered() const { return compression_triggered_; }

  void finalize(Sfa& result, const std::vector<Node*>& nodes,
                bool keep_mappings) const {
    if (!keep_mappings) return;
    if (!compression_triggered_) {
      std::vector<std::uint8_t> raw(nodes.size() *
                                    static_cast<std::size_t>(raw_bytes_));
      for (std::size_t i = 0; i < nodes.size(); ++i)
        std::memcpy(raw.data() + i * raw_bytes_, nodes[i]->payload, raw_bytes_);
      result.set_mappings_raw(std::move(raw));
      return;
    }
    std::vector<Bytes> blobs(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node* node = nodes[i];
      if (node->compressed()) {
        blobs[i].assign(node->bytes(), node->bytes() + node->payload_size);
      } else {
        blobs[i] = codec_->compress(ByteView(node->bytes(), node->payload_size));
      }
    }
    result.set_mappings_compressed(std::move(blobs), codec_);
  }

  void fill_stats(BuildStats& stats) const {
    stats.compression_triggered = compression_triggered_;
    stats.compression_seconds = compression_seconds_;
  }

 private:
  const std::uint32_t n_;
  const std::size_t raw_bytes_;
  const std::size_t threshold_;
  const Codec* codec_;
  MemoryAccounting accounting_;
  Arena headers_, payloads_, compressed_;
  std::vector<std::uint8_t> scratch_;  // decompression scratch for cells_of
  Bytes comp_scratch_;
  bool compressed_mode_ = false;
  bool compression_triggered_ = false;
  double compression_seconds_ = 0;
};

}  // namespace sfa::detail
