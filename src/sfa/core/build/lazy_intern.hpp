// LazyIntern policy — on-demand interning for construction FUSED INTO
// matching (the fifth consumer of the substrate seams).
//
// The eager builders explore the whole SFA up front, which is worst-case
// O(n^n) states and therefore gated on BuildOptions::max_states.  The lazy
// matcher instead interns only the SFA states *reachable on the actual
// input*: chunk workers walk their chunk, and on the first visit to a
// (state, symbol) edge they compute ALL |Sigma| successors through the
// SuccessorGen seam and race them into this shared table — the same
// probe-before-allocate / CAS-insert / id-publication protocol as the
// parallel builder's lock-free intern (build/parallel.cpp), minus the
// frontier (the input IS the frontier).
//
// Differences from the eager stores, both deliberate:
//
//   * Compression is compress-on-create ONLY (the degenerate of the §III-C
//     three-phase scheme).  A stop-the-world recompress rendezvous needs
//     every worker parked at a barrier, but matcher workers retire as soon
//     as their chunk is done — a barrier would deadlock against finished
//     workers.  Crossing memory_threshold_bytes therefore flips new states
//     to compressed form without rewriting resident ones; mixed raw/
//     compressed probing is already handled by StateNodeTraits.
//   * A hard memory_cap_bytes: when admitting one more state would exceed
//     the cap, intern() returns nullptr and the caller falls back to direct
//     per-chunk DFA×identity simulation (exact, just not memoized).  This is
//     what makes EVERY automaton servable: the cap bounds memory, the
//     fallback bounds correctness risk to zero.
//
// Per interned state the table also owns a lazily-filled delta row of
// |Sigma| atomic successor pointers (segmented storage, same pattern as the
// parallel builder's delta segments).  Row entries are written individually
// by whichever worker expands the edge first; racing writers store the same
// canonical node pointer, so the benign race needs no CAS.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/compress/codec.hpp"
#include "sfa/concurrent/arena.hpp"
#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/state.hpp"
#include "sfa/core/table/segmented_rows.hpp"
#include "sfa/hash/city64.hpp"

namespace sfa::detail {

template <typename Cell>
class LazyInternTable {
 public:
  using Node = StateNode<Cell>;
  static constexpr const char* kName = "lazy";

  struct Config {
    /// Worker slots: one private arena set per concurrent caller of
    /// intern()/cells_of().  Slot indices are the caller's contract.
    unsigned slots = 1;
    std::size_t hash_buckets = 1u << 16;
    /// Accounted bytes beyond which NEW states compress on creation
    /// (compress-on-create only; see the header comment).  0 disables.
    std::size_t memory_threshold_bytes = 0;
    /// Hard cap: intern() refuses (returns nullptr) when admitting another
    /// state would exceed this.  0 means unlimited.
    std::size_t memory_cap_bytes = 0;
    /// Must be non-null (resolve_codec) — mixed-representation probes need
    /// it the moment the threshold can flip.
    const Codec* codec = nullptr;
    /// Fault injection for the oracle's teeth test: corrupt one mapping
    /// cell of the state that wins this id.  kIdUnset disables.
    std::uint32_t inject_corrupt_id = StateNode<Cell>::kIdUnset;
  };

  LazyInternTable(const Dfa& dfa, const Config& config)
      : dfa_(dfa),
        n_(dfa.size()),
        k_(dfa.num_symbols()),
        raw_bytes_(sizeof(Cell) * static_cast<std::size_t>(dfa.size())),
        config_(config),
        table_(config.hash_buckets),
        rows_(dfa.num_symbols(), kSegBits, kMaxSegments) {
    const unsigned slots = config_.slots == 0 ? 1u : config_.slots;
    slots_.reserve(slots);
    for (unsigned i = 0; i < slots; ++i)
      slots_.push_back(std::make_unique<Slot>(&accounting_));
    bind_thread();
    const std::vector<Cell> identity = identity_mapping<Cell>(n_);
    seed_ = intern(0, identity.data());
  }

  LazyInternTable(const LazyInternTable&) = delete;
  LazyInternTable& operator=(const LazyInternTable&) = delete;

  /// Every thread that probes the table must bind the decompression context
  /// first (mixed raw/compressed comparisons are thread-local state).
  void bind_thread() const {
    StateNodeTraits<Cell>::set_compare_context(config_.codec, raw_bytes_);
  }

  /// The identity mapping's node, or nullptr when the cap refused even the
  /// seed (every chunk then runs the direct-simulation fallback).
  Node* start() const { return seed_; }

  /// Find-or-insert one mapping.  Returns the canonical node with its id
  /// published, or nullptr when the memory cap prevents admitting a NEW
  /// state (already-interned states are always found).  Safe to call from
  /// many threads concurrently as long as each uses its own slot.
  Node* intern(unsigned slot_index, const Cell* cells) {
    const std::uint64_t fp = city_hash64(cells, raw_bytes_);
    Node probe;
    probe.fingerprint = fp;
    probe.payload =
        reinterpret_cast<std::byte*>(const_cast<Cell*>(cells));
    probe.payload_size = static_cast<std::uint32_t>(raw_bytes_);
    if (Node* hit = table_.find(fp, probe)) {
      wait_id(hit);
      return hit;
    }

    if (config_.memory_cap_bytes != 0 &&
        accounting_.used() + sizeof(Node) + raw_bytes_ >
            config_.memory_cap_bytes) {
      cap_hit_.store(true, std::memory_order_relaxed);
      return nullptr;
    }

    Slot& w = *slots_[slot_index];
    Node* node;
    if (compressed_mode_.load(std::memory_order_relaxed)) {
      w.comp_scratch = config_.codec->compress(ByteView(
          reinterpret_cast<const std::uint8_t*>(cells), raw_bytes_));
      node = make_compressed_node<Cell>(
          w.headers, w.compressed, w.comp_scratch.data(),
          static_cast<std::uint32_t>(w.comp_scratch.size()), fp);
    } else {
      node = make_state_node<Cell>(w.headers, w.payloads, cells, n_, fp);
      if (config_.memory_threshold_bytes != 0 &&
          accounting_.used() >= config_.memory_threshold_bytes)
        compressed_mode_.store(true, std::memory_order_relaxed);
    }
    node->accepting =
        dfa_.accepting(static_cast<Dfa::StateId>(cells[dfa_.start()]));

    const auto [winner, inserted] = table_.insert_if_absent(node);
    if (!inserted) {  // our node becomes arena garbage
      wait_id(winner);
      return winner;
    }
    const std::uint32_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
    ensure_row_segment(id);
    if (id == config_.inject_corrupt_id && !node->compressed() && n_ > 1) {
      Cell& cell = node->cells()[dfa_.start()];
      cell = static_cast<Cell>((static_cast<std::uint32_t>(cell) + 1) % n_);
    }
    node->id.store(id, std::memory_order_release);
    return node;
  }

  /// The lazy delta row of state `id`: |Sigma| atomic successor pointers,
  /// nullptr where the edge has not been expanded yet.  Valid for any id
  /// returned (published) by intern().
  std::atomic<Node*>* row(std::uint32_t id) { return rows_.row(id); }

  /// The state's cell vector, decompressing into the slot's scratch buffer
  /// when needed.  Valid until the slot's next cells_of() call.
  const Cell* cells_of(unsigned slot_index, const Node* node) {
    if (!node->compressed()) return node->cells();
    Slot& w = *slots_[slot_index];
    if (w.decompress_scratch.size() < raw_bytes_)
      w.decompress_scratch.resize(raw_bytes_);
    const Bytes raw = config_.codec->decompress(
        ByteView(node->bytes(), node->payload_size), raw_bytes_);
    std::memcpy(w.decompress_scratch.data(), raw.data(), raw.size());
    return reinterpret_cast<const Cell*>(w.decompress_scratch.data());
  }

  std::uint32_t num_states() const {
    return next_id_.load(std::memory_order_relaxed);
  }
  bool cap_hit() const { return cap_hit_.load(std::memory_order_relaxed); }
  bool compression_triggered() const {
    return compressed_mode_.load(std::memory_order_relaxed);
  }
  std::size_t memory_used() const { return accounting_.used(); }
  const HashSetCounters& counters() const { return table_.counters; }

 private:
  // Segmented row storage through the TransitionTable seam's shared
  // component (core/table/segmented_rows.hpp), the same one the parallel
  // builder's delta segments use: pointer-stable under concurrent growth,
  // mutex only on the (rare) segment-allocation path.  A segment's
  // publication is ordered before the owning state's id publication, so
  // any reader that saw the id also sees the segment.
  static constexpr unsigned kSegBits = 12;  // 4096 states per segment
  static constexpr std::size_t kMaxSegments = std::size_t{1} << 18;

  struct Slot {
    explicit Slot(MemoryAccounting* accounting)
        : headers(accounting), payloads(accounting), compressed(accounting) {}
    Arena headers, payloads, compressed;
    std::vector<std::uint8_t> decompress_scratch;
    Bytes comp_scratch;
  };

  static void wait_id(Node* node) {
    while (node->id.load(std::memory_order_acquire) == Node::kIdUnset) {
    }
  }

  void ensure_row_segment(std::uint32_t id) {
    if (const std::size_t bytes = rows_.ensure_row(id)) accounting_.add(bytes);
  }

  const Dfa& dfa_;
  const std::uint32_t n_;
  const unsigned k_;
  const std::size_t raw_bytes_;
  const Config config_;

  MemoryAccounting accounting_;
  std::vector<std::unique_ptr<Slot>> slots_;
  LockFreeHashSet<Node, StateNodeTraits<Cell>> table_;
  std::atomic<std::uint32_t> next_id_{0};
  std::atomic<bool> compressed_mode_{false};
  std::atomic<bool> cap_hit_{false};
  Node* seed_ = nullptr;

  table::SegmentedRows<std::atomic<Node*>> rows_;
};

}  // namespace sfa::detail
