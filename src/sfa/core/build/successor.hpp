// SuccessorGen policy seam (construction substrate, layer 2 of 4).
//
// Given the cells of one SFA state, produce the cells of ALL |Sigma|
// successor states into a k x n row-major buffer (row sigma = the successor
// on symbol sigma).  Two policies implement the paper's two regimes:
//
//   ScalarSuccessorGen      one delta-lookup per cell (Algorithm 1 line 6) —
//                           the baseline/hashed builders' successor loop.
//   TransposedSuccessorGen  parameterized transposition with SIMD kernels
//                           (§III-A, Fig. 3) — all successors in one
//                           cache-friendly sweep over the transposed table.
//
// Both fill the same buffer layout, so the driver interns row s for
// s = 0..k-1 in identical order regardless of policy — state numbering is
// policy-invariant, which the oracle's isomorphism checks rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/simd/transpose.hpp"

namespace sfa::detail {

template <typename Cell>
class ScalarSuccessorGen {
 public:
  static constexpr const char* kName = "scalar";

  ScalarSuccessorGen(const Dfa& dfa, const BuildOptions&) : dfa_(&dfa) {
    if (!dfa.complete())
      throw std::invalid_argument("SFA construction requires a complete DFA");
  }

  void generate(const Cell* src, unsigned k, std::uint32_t n, Cell* out) const {
    for (unsigned s = 0; s < k; ++s) {
      Cell* row = out + static_cast<std::size_t>(s) * n;
      for (std::uint32_t q = 0; q < n; ++q)
        row[q] = static_cast<Cell>(dfa_->transition(
            static_cast<Dfa::StateId>(src[q]), static_cast<Symbol>(s)));
    }
  }

 private:
  const Dfa* dfa_;
};

template <typename Cell>
class TransposedSuccessorGen {
 public:
  static constexpr const char* kName = "transposed";

  TransposedSuccessorGen(const Dfa& dfa, const BuildOptions& opt)
      : delta_table_(cell_delta_table<Cell>(dfa)), method_(opt.transpose) {}

  void generate(const Cell* src, unsigned k, std::uint32_t n, Cell* out) const {
    successors_transposed<Cell>(delta_table_.data(), k, src, n, out, method_);
  }

 private:
  const std::vector<Cell> delta_table_;
  const TransposeMethod method_;
};

}  // namespace sfa::detail
