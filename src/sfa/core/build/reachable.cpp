#include "sfa/core/build/reachable.hpp"

#include <algorithm>

#include "sfa/core/build/successor.hpp"

namespace sfa {

std::size_t ReachTable::max_set_size() const {
  std::size_t best = 0;
  for (const auto& set : per_symbol) best = std::max(best, set.size());
  return best;
}

ReachTable compute_reach_table(const Dfa& dfa, bool use_transposed_kernel) {
  if (!dfa.complete())
    throw std::invalid_argument(
        "compute_reach_table requires a complete DFA");
  const std::uint32_t n = dfa.size();
  const unsigned k = dfa.num_symbols();

  // Successor rows of the identity mapping: row a = [delta(q, a) for q].
  const std::vector<std::uint32_t> identity = detail::identity_mapping<std::uint32_t>(n);
  std::vector<std::uint32_t> rows(static_cast<std::size_t>(k) * n);
  const BuildOptions opt;
  if (use_transposed_kernel) {
    detail::TransposedSuccessorGen<std::uint32_t> gen(dfa, opt);
    gen.generate(identity.data(), k, n, rows.data());
  } else {
    detail::ScalarSuccessorGen<std::uint32_t> gen(dfa, opt);
    gen.generate(identity.data(), k, n, rows.data());
  }

  ReachTable table;
  table.dfa_states = n;
  table.num_symbols = k;
  table.per_symbol.resize(k);
  for (unsigned a = 0; a < k; ++a) {
    auto& set = table.per_symbol[a];
    set.assign(rows.begin() + static_cast<std::size_t>(a) * n,
               rows.begin() + static_cast<std::size_t>(a + 1) * n);
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
  }
  return table;
}

}  // namespace sfa
