// Frontier policy seam (construction substrate, layer 3 of 4).
//
// The frontier holds discovered-but-unexpanded SFA states (Q_tmp in
// Algorithm 1).  The sequential policy is a FIFO worklist — BFS order, which
// also fixes the state numbering all sequential builders share.  The
// parallel policy is the two-regime scheduler of §III-B2 (global
// CAS-enqueue/statically-partitioned-dequeue queue, then per-worker
// work-stealing deques); it is inherently tied to the worker team and lives
// in the parallel driver (build/parallel.cpp) built from the same
// concurrent substrate (GlobalQueue + WorkStealingQueue).
#pragma once

#include <deque>
#include <utility>

namespace sfa::detail {

template <typename Item>
class FifoFrontier {
 public:
  static constexpr const char* kName = "fifo";

  void push(Item item) { queue_.push_back(std::move(item)); }

  bool pop(Item& out) {
    if (queue_.empty()) return false;
    out = std::move(queue_.front());
    queue_.pop_front();
    return true;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  std::deque<Item> queue_;
};

}  // namespace sfa::detail
