// Shared observability glue for the construction substrate: folding the
// concurrent substrate's counter blocks into the process-wide metrics
// registry.  Implemented once here so the sequential driver and the parallel
// builder publish identically-shaped metrics (ROADMAP [obs]).
#pragma once

#include <string>

#include "sfa/concurrent/counters.hpp"
#include "sfa/obs/metrics.hpp"

namespace sfa::detail {

/// Fold a concurrent-substrate Log2Histogram (relaxed atomics, same bucket
/// geometry) into a registry histogram.
inline void merge_log2(obs::Histogram& dst, const Log2Histogram& src) {
  std::uint64_t counts[Log2Histogram::kBuckets];
  for (int i = 0; i < Log2Histogram::kBuckets; ++i)
    counts[i] = src.buckets[i].load(std::memory_order_relaxed);
  dst.merge_buckets(counts, Log2Histogram::kBuckets,
                    src.sum.load(std::memory_order_relaxed));
}

/// Hash-table behaviour under the shared sfa.hash.* names — one metric
/// family regardless of which builder drove the table.
inline void publish_hash_metrics(const HashSetCounters& tc) {
  auto& reg = obs::Registry::instance();
  const auto rel = std::memory_order_relaxed;
  reg.counter("sfa.hash.inserts").inc(tc.inserts.load(rel));
  reg.counter("sfa.hash.duplicates").inc(tc.duplicates.load(rel));
  reg.counter("sfa.hash.fp_collisions").inc(tc.fp_collisions.load(rel));
  reg.counter("sfa.hash.cas_failures").inc(tc.cas_failures.load(rel));
  reg.counter("sfa.hash.chain_traversals").inc(tc.chain_traversals.load(rel));
  merge_log2(reg.histogram("sfa.hash.chain_length"), tc.chain_length);
}

/// Per-method run accounting: sfa.build.<method>.{runs,states,compressions}
/// (mirrors the names the parallel builder has always published).
inline void publish_build_run(const char* method, std::uint64_t states,
                              unsigned threads, bool compression_triggered) {
  auto& reg = obs::Registry::instance();
  const std::string prefix = std::string("sfa.build.") + method;
  reg.counter(prefix + ".runs").inc();
  reg.gauge(prefix + ".threads").set(threads);
  reg.gauge(prefix + ".states").set(static_cast<std::int64_t>(states));
  if (compression_triggered) reg.counter(prefix + ".compressions").inc();
}

}  // namespace sfa::detail
