// Sequential builder entry points: each BuildMethod is a policy combination
// over the one templated driver (build/driver.hpp).  See docs/ARCHITECTURE.md
// for the seam-by-seam map to the paper's sections.
#include <stdexcept>

#include "sfa/core/build.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/build/driver.hpp"
#include "sfa/core/build/intern.hpp"
#include "sfa/core/build/store.hpp"
#include "sfa/core/build/successor.hpp"

namespace sfa {

namespace {

// Hashed/transposed pick their MappingStore at runtime: a nonzero
// memory_threshold_bytes selects the three-phase compressed store (§III-C),
// otherwise payloads stay raw.  Pre-substrate, the threshold was silently
// ignored outside kParallel.
template <typename Cell, template <typename> class SuccGen>
Sfa build_chained(const Dfa& dfa, const BuildOptions& opt, BuildStats* stats,
                  const char* label) {
  if (opt.memory_threshold_bytes > 0)
    return detail::run_sequential_build<
        Cell,
        detail::ChainedInternTable<Cell, detail::CompressedMappingStore<Cell>>,
        SuccGen<Cell>>(dfa, opt, stats, label);
  return detail::run_sequential_build<
      Cell, detail::ChainedInternTable<Cell, detail::RawMappingStore<Cell>>,
      SuccGen<Cell>>(dfa, opt, stats, label);
}

}  // namespace

Sfa build_sfa_baseline(const Dfa& dfa, const BuildOptions& options,
                       BuildStats* stats) {
  if (detail::use_16bit_cells(dfa))
    return detail::run_sequential_build<std::uint16_t,
                                        detail::TreeInternTable<std::uint16_t>,
                                        detail::ScalarSuccessorGen<std::uint16_t>>(
        dfa, options, stats, "baseline");
  return detail::run_sequential_build<std::uint32_t,
                                      detail::TreeInternTable<std::uint32_t>,
                                      detail::ScalarSuccessorGen<std::uint32_t>>(
      dfa, options, stats, "baseline");
}

Sfa build_sfa_hashed(const Dfa& dfa, const BuildOptions& options,
                     BuildStats* stats) {
  return detail::use_16bit_cells(dfa)
             ? build_chained<std::uint16_t, detail::ScalarSuccessorGen>(
                   dfa, options, stats, "hashed")
             : build_chained<std::uint32_t, detail::ScalarSuccessorGen>(
                   dfa, options, stats, "hashed");
}

Sfa build_sfa_transposed(const Dfa& dfa, const BuildOptions& options,
                         BuildStats* stats) {
  return detail::use_16bit_cells(dfa)
             ? build_chained<std::uint16_t, detail::TransposedSuccessorGen>(
                   dfa, options, stats, "transposed")
             : build_chained<std::uint32_t, detail::TransposedSuccessorGen>(
                   dfa, options, stats, "transposed");
}

Sfa build_sfa_probabilistic(const Dfa& dfa, const BuildOptions& options,
                            BuildStats* stats) {
  if (detail::use_16bit_cells(dfa))
    return detail::run_sequential_build<
        std::uint16_t, detail::FingerprintInternTable<std::uint16_t>,
        detail::TransposedSuccessorGen<std::uint16_t>>(dfa, options, stats,
                                                       "probabilistic");
  return detail::run_sequential_build<
      std::uint32_t, detail::FingerprintInternTable<std::uint32_t>,
      detail::TransposedSuccessorGen<std::uint32_t>>(dfa, options, stats,
                                                     "probabilistic");
}

Sfa build_sfa(const Dfa& dfa, BuildMethod method, const BuildOptions& options,
              BuildStats* stats) {
  switch (method) {
    case BuildMethod::kBaseline:
      return build_sfa_baseline(dfa, options, stats);
    case BuildMethod::kHashed:
      return build_sfa_hashed(dfa, options, stats);
    case BuildMethod::kTransposed:
      return build_sfa_transposed(dfa, options, stats);
    case BuildMethod::kParallel:
      return build_sfa_parallel(dfa, options, stats);
    case BuildMethod::kProbabilistic:
      return build_sfa_probabilistic(dfa, options, stats);
  }
  throw std::logic_error("unknown build method");
}

const char* build_method_name(BuildMethod m) {
  switch (m) {
    case BuildMethod::kBaseline:
      return "baseline";
    case BuildMethod::kHashed:
      return "hashed";
    case BuildMethod::kTransposed:
      return "transposed";
    case BuildMethod::kParallel:
      return "parallel";
    case BuildMethod::kProbabilistic:
      return "probabilistic";
  }
  return "?";
}

}  // namespace sfa
