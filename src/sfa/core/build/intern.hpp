// InternTable policy seam (construction substrate, layer 1 of 4).
//
// The intern table answers "have we seen this mapping before, and if not,
// what is its id?" — line 7 of Algorithm 1.  Three sequential policies:
//
//   TreeInternTable         std::map over exhaustive cell vectors — the
//                           non-optimized implementation the paper measures
//                           sequential speedups against (§IV-A).
//   ChainedInternTable      CityHash-class fingerprint + chained hash table
//                           with exhaustive compare only on fingerprint
//                           equality (§III-A); parameterized by a
//                           MappingStore (build/store.hpp), which is how
//                           three-phase compression composes with the
//                           sequential hashed/transposed builders.
//   FingerprintInternTable  the probabilistic scheme the paper sketches:
//                           the 64-bit Rabin fingerprint ALONE decides
//                           membership; no resident payload, state vectors
//                           live only on the work frontier.  Membership and
//                           storage collapse into one structure here, so the
//                           "drop" store is fused in rather than a separate
//                           MappingStore.
//
// The lock-free CAS-based intern policy is the same LockFreeHashSet driven
// through its racing insert_if_absent path; it is tied to the worker team
// and lives in the parallel driver (build/parallel.cpp).
//
// Driver contract (see build/driver.hpp):
//   using WorkItem;                        // what the frontier holds
//   StateId intern(cells, fresh, item);    // find-or-insert, id out
//   const Cell* cells_of(WorkItem&);       // valid until the next intern()
//   StateId id_of(const WorkItem&);
//   void after_expand(WorkItem&);          // successors generated; payload
//                                          //   may be dropped
//   void finalize_mappings(Sfa&, keep);
//   void fill_stats(BuildStats&, const Sfa&);
#pragma once

#include <cstring>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/build/store.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/core/state.hpp"
#include "sfa/hash/city64.hpp"
#include "sfa/hash/rabin.hpp"

namespace sfa::detail {

template <typename Cell>
class TreeInternTable {
 public:
  using WorkItem = Sfa::StateId;
  static constexpr const char* kName = "tree";
  static constexpr const char* kStoreName = "inline";

  TreeInternTable(const Dfa& dfa, const BuildOptions&) : n_(dfa.size()) {}

  Sfa::StateId intern(const Cell* cells, bool& fresh, WorkItem& item) {
    std::vector<Cell> key(cells, cells + n_);
    // Every membership test costs O(log |Q_s|) vector comparisons.
    const auto it = known_.find(key);
    if (it != known_.end()) {
      fresh = false;
      return it->second;
    }
    const Sfa::StateId id = static_cast<Sfa::StateId>(states_.size());
    known_.emplace(key, id);
    states_.push_back(std::move(key));
    fresh = true;
    item = id;
    return id;
  }

  const Cell* cells_of(const WorkItem& id) { return states_[id].data(); }
  Sfa::StateId id_of(const WorkItem& id) const { return id; }
  void after_expand(WorkItem&) {}

  void finalize_mappings(Sfa& result, bool keep_mappings) const {
    if (!keep_mappings) return;
    std::vector<std::uint8_t> raw(states_.size() * static_cast<std::size_t>(n_) *
                                  sizeof(Cell));
    for (std::size_t i = 0; i < states_.size(); ++i)
      std::memcpy(raw.data() + i * n_ * sizeof(Cell), states_[i].data(),
                  n_ * sizeof(Cell));
    result.set_mappings_raw(std::move(raw));
  }

  void fill_stats(BuildStats&, const Sfa&) const {}
  const HashSetCounters* hash_counters() const { return nullptr; }

 private:
  const std::uint32_t n_;
  std::map<std::vector<Cell>, Sfa::StateId> known_;
  std::vector<std::vector<Cell>> states_;  // by id
};

template <typename Cell, typename Store>
class ChainedInternTable {
 public:
  using Node = StateNode<Cell>;
  using WorkItem = Node*;
  static constexpr const char* kName = "chained";
  static constexpr const char* kStoreName = Store::kName;

  ChainedInternTable(const Dfa& dfa, const BuildOptions& opt)
      : n_(dfa.size()), store_(dfa, opt), table_(opt.hash_buckets) {}

  Sfa::StateId intern(const Cell* cells, bool& fresh, WorkItem& item) {
    const std::uint64_t fp = city_hash64(cells, sizeof(Cell) * n_);
    // Probe-before-allocate: a stack node pointing at the candidate cells
    // avoids arena garbage on duplicates.  The probe stays UNCOMPRESSED even
    // once the store has switched modes: the traits decompress a resident
    // node only on fingerprint equality, far cheaper than compressing every
    // candidate before lookup.
    Node probe;
    probe.fingerprint = fp;
    probe.payload = reinterpret_cast<std::byte*>(const_cast<Cell*>(cells));
    probe.payload_size = static_cast<std::uint32_t>(sizeof(Cell) * n_);
    // Counted lookup: single-threaded, so BuildStats can report lookup work
    // (chain traversals, fp collisions) on par with the parallel builder.
    if (Node* hit = table_.find_counted(fp, probe)) {
      fresh = false;
      return hit->id.load(std::memory_order_relaxed);
    }

    Node* node = store_.make_node(cells, fp);
    node->id.store(static_cast<Sfa::StateId>(nodes_.size()),
                   std::memory_order_relaxed);
    table_.insert_if_absent(node);  // single-threaded: always wins
    nodes_.push_back(node);
    // Threshold check after every allocation, like the parallel builder's
    // manager_.observe() — node headers stay valid across the switch, so the
    // chains and the frontier survive untouched.
    store_.maybe_compress(nodes_);
    fresh = true;
    item = node;
    return node->id.load(std::memory_order_relaxed);
  }

  const Cell* cells_of(const WorkItem& node) { return store_.cells_of(node); }
  Sfa::StateId id_of(const WorkItem& node) const {
    return node->id.load(std::memory_order_relaxed);
  }
  void after_expand(WorkItem&) {}

  void finalize_mappings(Sfa& result, bool keep_mappings) const {
    store_.finalize(result, nodes_, keep_mappings);
  }

  void fill_stats(BuildStats& stats, const Sfa&) const {
    stats.fingerprint_collisions =
        table_.counters.fp_collisions.load(std::memory_order_relaxed);
    stats.chain_traversals =
        table_.counters.chain_traversals.load(std::memory_order_relaxed);
    store_.fill_stats(stats);
  }

  const HashSetCounters* hash_counters() const { return &table_.counters; }

 private:
  const std::uint32_t n_;
  Store store_;
  LockFreeHashSet<Node, StateNodeTraits<Cell>> table_;
  std::vector<Node*> nodes_;  // by id
};

/// Hash-set node for the fingerprint-only scheme: no payload at all.
struct FpNode {
  std::atomic<FpNode*> next{nullptr};
  std::uint64_t fp = 0;
  std::uint32_t id = 0;
};

struct FpTraits {
  static std::atomic<FpNode*>& next(FpNode& n) { return n.next; }
  static std::uint64_t fingerprint(const FpNode& n) { return n.fp; }
  // Fingerprint equality IS state equality in the probabilistic scheme: a
  // collision silently merges two distinct SFA states (expected collisions
  // ~ |Q_s|^2 / 2^64 for a random degree-64 modulus).
  static bool same_state(const FpNode&, const FpNode&) { return true; }
};

template <typename Cell>
class FingerprintInternTable {
 public:
  // Discovered-but-unexpanded states carry their vector WITH them on the
  // frontier — the only place an exhaustive payload exists in this scheme.
  using WorkItem = std::pair<std::uint32_t, std::vector<Cell>>;
  static constexpr const char* kName = "fingerprint";
  static constexpr const char* kStoreName = "drop";

  FingerprintInternTable(const Dfa& dfa, const BuildOptions& opt)
      : n_(dfa.size()),
        keep_(opt.keep_mappings),
        rabin_(default_rabin()),
        table_(opt.hash_buckets) {}

  Sfa::StateId intern(const Cell* cells, bool& fresh, WorkItem& item) {
    const std::uint64_t fp = rabin_.hash(cells, sizeof(Cell) * n_);
    FpNode probe;
    probe.fp = fp;
    if (FpNode* hit = table_.find_counted(fp, probe)) {
      fresh = false;
      return hit->id;
    }

    nodes_.emplace_back();
    FpNode* node = &nodes_.back();  // deque: stable addresses
    node->fp = fp;
    node->id = static_cast<std::uint32_t>(nodes_.size() - 1);
    table_.insert_if_absent(node);

    if (keep_) {
      const std::size_t off = mappings_.size();
      mappings_.resize(off + sizeof(Cell) * n_);
      std::memcpy(mappings_.data() + off, cells, sizeof(Cell) * n_);
    }
    item = WorkItem(node->id, std::vector<Cell>(cells, cells + n_));
    frontier_bytes_ += sizeof(Cell) * n_;
    peak_frontier_bytes_ = std::max(peak_frontier_bytes_, frontier_bytes_);
    fresh = true;
    return node->id;
  }

  const Cell* cells_of(const WorkItem& item) { return item.second.data(); }
  Sfa::StateId id_of(const WorkItem& item) const { return item.first; }

  /// Successors generated: the vector is dead weight from here (it dies with
  /// the WorkItem); drop it from the live-payload accounting.
  void after_expand(WorkItem&) { frontier_bytes_ -= sizeof(Cell) * n_; }

  void finalize_mappings(Sfa& result, bool keep_mappings) {
    if (keep_mappings) result.set_mappings_raw(std::move(mappings_));
  }

  void fill_stats(BuildStats& stats, const Sfa& result) const {
    stats.chain_traversals =
        table_.counters.chain_traversals.load(std::memory_order_relaxed);
    stats.peak_frontier_bytes = peak_frontier_bytes_;
    // Resident store: one small node per state instead of n cells.
    stats.mapping_bytes_stored =
        keep_ ? stats.mapping_bytes_uncompressed
              : result.num_states() * sizeof(FpNode);
  }

  const HashSetCounters* hash_counters() const { return &table_.counters; }

 private:
  const std::uint32_t n_;
  const bool keep_;
  const RabinFingerprinter& rabin_;
  LockFreeHashSet<FpNode, FpTraits> table_;
  std::deque<FpNode> nodes_;  // stable addresses; one per discovered state
  std::vector<std::uint8_t> mappings_;  // only when keep_mappings
  std::size_t frontier_bytes_ = 0, peak_frontier_bytes_ = 0;
};

}  // namespace sfa::detail
