// Per-symbol reachable-state sets (construction substrate, shared with the
// matching side).
//
// PaREM's observation (Memeti/Pllana, PAPERS.md): a chunk that starts right
// after symbol `a` can only be entered through a state in
//
//   reach(a) = { delta(q, a) : q in Q }
//
// — the image of the whole state set under one symbol.  The image rows are
// exactly the successor rows of the IDENTITY mapping, so the precompute
// reuses the builder's SuccessorGen policies (scalar lookup loop or the
// SIMD transposed sweep) and only adds a sort+unique per symbol.  The
// NarrowedEngine consumes the table to shrink its per-chunk entry-state
// simulation; tests and benches share one table across engines/threads
// (it is immutable after construction).
#pragma once

#include <cstdint>
#include <vector>

#include "sfa/automata/dfa.hpp"

namespace sfa {

struct ReachTable {
  std::uint32_t dfa_states = 0;
  unsigned num_symbols = 0;
  /// per_symbol[a] = sorted, duplicate-free { delta(q, a) : q in Q }.
  std::vector<std::vector<std::uint32_t>> per_symbol;

  /// Largest |reach(a)| over the alphabet (the adversarial input-class
  /// generator maximizes this; the narrowing threshold compares against it).
  std::size_t max_set_size() const;
};

/// Compute reach(a) for every symbol.  Requires a complete DFA (same
/// precondition as SFA construction; throws std::invalid_argument).  With
/// `use_transposed_kernel` the image rows come from the SIMD transposed
/// successor sweep, otherwise from the scalar per-cell lookup loop — both
/// produce identical tables (asserted by the differential tests).
ReachTable compute_reach_table(const Dfa& dfa,
                               bool use_transposed_kernel = true);

}  // namespace sfa
