// Lazy on-demand SFA matching: construction fused into the parallel scan.
//
// Eager matching needs a completed build() — worst-case O(n^n) states, so
// DFAs with explosive SFAs cannot be matched in parallel at all (build()
// aborts on max_states).  The lazy matcher removes that gate: chunk workers
// intern SFA states on demand as the input reaches them, sharing one
// lock-free intern table (build/lazy_intern.hpp) and the SuccessorGen seam
// (scalar or SIMD-transposed).  Only input-reachable states ever
// materialize, which for real inputs is a vanishing fraction of the
// exhaustive SFA — and under a hard memory cap the matcher degrades to
// direct per-chunk DFA×identity simulation, so results are exact for EVERY
// complete DFA regardless of its SFA's size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/compress/codec.hpp"
#include "sfa/core/match.hpp"
#include "sfa/simd/transpose.hpp"

namespace sfa {

struct LazyMatchOptions {
  /// Chunk workers per call (0 clamps to 1; small inputs fall back to 1).
  unsigned num_threads = 1;

  /// Successor generation on an intern miss: the SIMD-transposed sweep
  /// (§III-A) or the scalar per-cell loop.
  bool transposed_successors = true;
  TransposeMethod transpose = TransposeMethod::kAuto;

  /// Accounted bytes beyond which newly interned states are stored
  /// compressed (compress-on-create; 0 disables).
  std::size_t memory_threshold_bytes = 0;

  /// Hard cap on accounted intern-table memory.  When interning one more
  /// state would exceed it, the affected workers fall back to direct
  /// per-chunk DFA simulation — exact results, bounded memory.  0 = off.
  std::size_t memory_cap_bytes = 0;

  /// Codec for compressed states (nullptr = deflate-like default).
  const Codec* codec = nullptr;

  /// Initial intern-table bucket count (rounded up to a power of two).
  std::size_t hash_buckets = 1u << 16;

  /// TEST ONLY — corrupt one cell of the interned state that receives this
  /// id, so the differential oracle can prove it detects lazy-intern bugs.
  /// 0xFFFFFFFF disables.
  std::uint32_t inject_corrupt_state = 0xFFFFFFFFu;
};

struct LazyMatchStats {
  /// States resident in the shared intern table (cumulative over the
  /// matcher's lifetime; only input-reachable states are ever interned).
  std::uint64_t interned_states = 0;
  /// Successor lookups answered by an already-expanded delta-row entry.
  std::uint64_t cache_hits = 0;
  /// Lookups that had to generate + intern (first visit to the edge).
  std::uint64_t cache_misses = 0;
  /// Symbols processed by the direct-simulation fallback.
  std::uint64_t direct_symbols = 0;
  /// Chunks that fell back to direct simulation (memory cap).
  std::uint64_t fallback_chunks = 0;
  bool cap_hit = false;
  bool compression_triggered = false;
  /// Effective worker count of the most recent call.
  unsigned threads = 1;
};

/// Reusable lazy matcher: the intern table persists across calls, so a
/// long-running service amortizes construction over its whole match
/// traffic.  Not copyable; concurrent calls on one instance are NOT
/// supported (each call spawns its own workers internally).
class LazyMatcher {
 public:
  explicit LazyMatcher(const Dfa& dfa, LazyMatchOptions options = {});
  ~LazyMatcher();
  LazyMatcher(const LazyMatcher&) = delete;
  LazyMatcher& operator=(const LazyMatcher&) = delete;

  const Dfa& dfa() const;

  /// Membership test — same contract as match_sfa_parallel.
  MatchResult match(const std::vector<Symbol>& input);

  /// Count of accepting end-positions — same contract as
  /// count_matches_parallel / Dfa::count_accepting_prefixes.
  std::size_t count(const std::vector<Symbol>& input);

  /// Earliest accepting end-position, or kNoMatch.
  std::size_t find_first(const std::vector<Symbol>& input);

  /// Advance an arbitrary DFA state over a block — the StreamMatcher
  /// primitive.  Unlike the eager stream path (which can only look up
  /// mappings of fully built SFAs), the lazy chunk mappings compose from
  /// ANY entry state, with no prior build.
  std::uint32_t advance(std::uint32_t dfa_state, const Symbol* data,
                        std::size_t len);

  LazyMatchStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// One-shot conveniences (construct a LazyMatcher, run, report stats).
MatchResult match_sfa_lazy(const Dfa& dfa, const std::vector<Symbol>& input,
                           const LazyMatchOptions& options = {},
                           LazyMatchStats* stats = nullptr);
std::size_t count_matches_lazy(const Dfa& dfa,
                               const std::vector<Symbol>& input,
                               const LazyMatchOptions& options = {},
                               LazyMatchStats* stats = nullptr);
std::size_t find_first_match_lazy(const Dfa& dfa,
                                  const std::vector<Symbol>& input,
                                  const LazyMatchOptions& options = {},
                                  LazyMatchStats* stats = nullptr);

}  // namespace sfa
