// Matching entry points — thin wrappers over the scan substrate
// (src/sfa/core/scan/): each picks a ScanEngine, clamps the thread count
// exactly as before, and delegates to the shared MatchTask implementations.
// Signatures and results are unchanged — the oracle verifies every wrapper
// position-for-position against the sequential reference.
#include "sfa/core/match.hpp"

#include <stdexcept>

#include "sfa/core/scan/chunk_planner.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa {

namespace {

/// Chunk count for a parallel scan — the thread count unless the adaptive
/// planner (`--adaptive-chunks`) is on, in which case it may oversplit so
/// the scheduler has surplus tasks to balance.
unsigned planned_chunks(const std::vector<Symbol>& input,
                        unsigned num_threads) {
  return scan::ChunkPlanner::instance().plan(input.size() * sizeof(Symbol),
                                             num_threads);
}

}  // namespace

MatchResult match_sequential(const Dfa& dfa, const std::vector<Symbol>& input) {
  const Dfa::StateId q = dfa.run(dfa.start(), input.data(), input.size());
  return {dfa.accepting(q), q};
}

MatchResult match_sfa_sequential(const Sfa& sfa,
                                 const std::vector<Symbol>& input) {
  const Sfa::StateId s = sfa.run(sfa.start(), input.data(), input.size());
  // f_s(q0) is the DFA state the whole input leads to.
  const std::uint32_t q =
      input.empty() ? sfa.dfa_start() : sfa.map(s, sfa.dfa_start());
  return {sfa.dfa_accepting(q), q};
}

namespace detail {

std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(std::size_t len,
                                                              unsigned chunks) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t per = len / chunks;
  std::size_t begin = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    const std::size_t end = (c + 1 == chunks) ? len : begin + per;
    out.emplace_back(begin, end);
    begin = end;
  }
  return out;
}

}  // namespace detail

MatchResult match_sfa_parallel(const Sfa& sfa, const std::vector<Symbol>& input,
                               unsigned num_threads) {
  if (!sfa.has_mappings())
    throw std::logic_error(
        "match_sfa_parallel: SFA was built without keep_mappings");
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;  // chunking overhead

  if (num_threads == 1) {
    return match_sfa_sequential(sfa, input);
  }
  SFA_TRACE_SCOPE("match", "sfa-parallel");
  scan::EagerEngine engine(sfa);
  return scan::run_accept(engine, scan::default_executor(), input.data(),
                          input.size(), planned_chunks(input, num_threads));
}

std::size_t count_matches_parallel(const Sfa& sfa, const Dfa& dfa,
                                   const std::vector<Symbol>& input,
                                   unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64 || num_threads == 1) {
    scan::DirectEngine engine(dfa);
    return scan::run_count(engine, scan::default_executor(), input.data(),
                           input.size(), 1);
  }
  if (!sfa.has_mappings())
    throw std::logic_error(
        "count_matches_parallel: SFA was built without keep_mappings");

  SFA_TRACE_SCOPE("match", "count-parallel");
  scan::EagerEngine engine(sfa, &dfa);
  return scan::run_count(engine, scan::default_executor(), input.data(),
                         input.size(), planned_chunks(input, num_threads));
}

std::vector<std::size_t> find_all_matches_parallel(
    const Sfa& sfa, const Dfa& dfa, const std::vector<Symbol>& input,
    unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;

  if (num_threads == 1) {
    scan::DirectEngine engine(dfa);
    return scan::run_find_all(engine, scan::default_executor(), input.data(),
                              input.size(), 1);
  }
  if (!sfa.has_mappings())
    throw std::logic_error(
        "find_all_matches_parallel: SFA was built without keep_mappings");

  scan::EagerEngine engine(sfa, &dfa);
  return scan::run_find_all(engine, scan::default_executor(), input.data(),
                            input.size(), planned_chunks(input, num_threads));
}

std::size_t find_first_match_parallel(const Sfa& sfa, const Dfa& dfa,
                                      const std::vector<Symbol>& input,
                                      unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;

  if (num_threads == 1) {
    scan::DirectEngine engine(dfa);
    return scan::run_find_first(engine, scan::default_executor(), input.data(),
                                input.size(), 1);
  }
  if (!sfa.has_mappings())
    throw std::logic_error(
        "find_first_match_parallel: SFA was built without keep_mappings");

  scan::EagerEngine engine(sfa, &dfa);
  return scan::run_find_first(engine, scan::default_executor(), input.data(),
                              input.size(),
                              planned_chunks(input, num_threads));
}

Dfa::StateId pick_speculation_state(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    std::size_t sample_limit) {
  std::vector<std::uint32_t> visits(dfa.size(), 0);
  Dfa::StateId q = dfa.start();
  const std::size_t limit = std::min(input.size(), sample_limit);
  for (std::size_t i = 0; i < limit; ++i) {
    q = dfa.transition(q, input[i]);
    ++visits[q];
  }
  Dfa::StateId best = dfa.start();
  std::uint32_t best_count = 0;
  for (Dfa::StateId s = 0; s < dfa.size(); ++s) {
    if (visits[s] > best_count) {
      best_count = visits[s];
      best = s;
    }
  }
  return best;
}

SpeculativeResult match_speculative(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    unsigned num_threads,
                                    Dfa::StateId speculated_state) {
  SpeculativeResult out;
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;
  const unsigned chunks = planned_chunks(input, num_threads);
  out.chunks = chunks;

  scan::SpeculativeEngine engine(dfa, speculated_state);
  out.result = scan::run_accept(engine, scan::default_executor(), input.data(),
                                input.size(), chunks);
  out.rematched_chunks = engine.rematched();
  return out;
}

SpeculativeResult match_speculative(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    unsigned num_threads) {
  return match_speculative(dfa, input, num_threads,
                           pick_speculation_state(dfa, input));
}

namespace {

scan::NarrowedOptions to_scan_options(const NarrowedMatchOptions& options) {
  scan::NarrowedOptions out;
  out.peek_k = options.peek_k;
  out.shrink_threshold = options.shrink_threshold;
  return out;
}

}  // namespace

NarrowedResult match_narrowed(const Dfa& dfa, const std::vector<Symbol>& input,
                              unsigned num_threads,
                              const NarrowedMatchOptions& options) {
  NarrowedResult out;
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;  // chunking overhead
  const unsigned chunks = planned_chunks(input, num_threads);
  out.chunks = chunks;

  SFA_TRACE_SCOPE("match", "narrowed");
  scan::NarrowedEngine engine(dfa, to_scan_options(options));
  out.result = scan::run_accept(engine, scan::default_executor(), input.data(),
                                input.size(), chunks);
  out.narrowed_chunks = engine.narrowed_chunks();
  out.fallback_chunks = engine.fallback_chunks();
  out.entry_states = engine.entry_states_simulated();
  return out;
}

NarrowedCountResult count_matches_narrowed(const Dfa& dfa,
                                           const std::vector<Symbol>& input,
                                           unsigned num_threads,
                                           const NarrowedMatchOptions& options) {
  NarrowedCountResult out;
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;
  const unsigned chunks = planned_chunks(input, num_threads);
  out.chunks = chunks;

  SFA_TRACE_SCOPE("match", "narrowed-count");
  scan::NarrowedEngine engine(dfa, to_scan_options(options));
  out.count = scan::run_count(engine, scan::default_executor(), input.data(),
                              input.size(), chunks);
  out.narrowed_chunks = engine.narrowed_chunks();
  out.fallback_chunks = engine.fallback_chunks();
  out.entry_states = engine.entry_states_simulated();
  return out;
}

}  // namespace sfa
