#include "sfa/core/match.hpp"

#include <stdexcept>
#include <string>
#include <thread>

#include "sfa/obs/trace.hpp"

namespace sfa {

MatchResult match_sequential(const Dfa& dfa, const std::vector<Symbol>& input) {
  const Dfa::StateId q = dfa.run(dfa.start(), input.data(), input.size());
  return {dfa.accepting(q), q};
}

MatchResult match_sfa_sequential(const Sfa& sfa,
                                 const std::vector<Symbol>& input) {
  const Sfa::StateId s = sfa.run(sfa.start(), input.data(), input.size());
  // f_s(q0) is the DFA state the whole input leads to.
  const std::uint32_t q =
      input.empty() ? sfa.dfa_start() : sfa.map(s, sfa.dfa_start());
  return {sfa.dfa_accepting(q), q};
}

namespace detail {

std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(std::size_t len,
                                                              unsigned chunks) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t per = len / chunks;
  std::size_t begin = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    const std::size_t end = (c + 1 == chunks) ? len : begin + per;
    out.emplace_back(begin, end);
    begin = end;
  }
  return out;
}

}  // namespace detail

using detail::chunk_ranges;

MatchResult match_sfa_parallel(const Sfa& sfa, const std::vector<Symbol>& input,
                               unsigned num_threads) {
  if (!sfa.has_mappings())
    throw std::logic_error(
        "match_sfa_parallel: SFA was built without keep_mappings");
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;  // chunking overhead

  const auto ranges = chunk_ranges(input.size(), num_threads);
  std::vector<Sfa::StateId> chunk_state(num_threads);

  if (num_threads == 1) {
    return match_sfa_sequential(sfa, input);
  }
  SFA_TRACE_SCOPE("match", "sfa-parallel");
  std::vector<std::thread> team;
  team.reserve(num_threads);
  for (unsigned t = 0; t < num_threads; ++t) {
    team.emplace_back([&, t] {
      SFA_TRACE_THREAD_NAME("matcher/chunk " + std::to_string(t));
      SFA_TRACE_SPAN(span, "match", "chunk-advance");
      const auto [b, e] = ranges[t];
      span.arg("begin", b);
      span.arg("symbols", e - b);
      chunk_state[t] = sfa.run(sfa.start(), input.data() + b, e - b);
    });
  }
  for (auto& th : team) th.join();

  // Reduction: compose the chunk mappings left to right from q0.
  SFA_TRACE_SCOPE("match", "compose");
  std::uint32_t q = sfa.dfa_start();
  for (unsigned t = 0; t < num_threads; ++t) q = sfa.map(chunk_state[t], q);
  return {sfa.dfa_accepting(q), q};
}

std::size_t count_matches_parallel(const Sfa& sfa, const Dfa& dfa,
                                   const std::vector<Symbol>& input,
                                   unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64 || num_threads == 1) {
    return dfa.count_accepting_prefixes(input.data(), input.size());
  }
  if (!sfa.has_mappings())
    throw std::logic_error(
        "count_matches_parallel: SFA was built without keep_mappings");

  const auto ranges = chunk_ranges(input.size(), num_threads);
  std::vector<Sfa::StateId> chunk_state(num_threads);

  SFA_TRACE_SCOPE("match", "count-parallel");
  // Pass 1: chunk mappings via the SFA.
  {
    SFA_TRACE_SCOPE("match", "pass1-mappings");
    std::vector<std::thread> team;
    team.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      team.emplace_back([&, t] {
        SFA_TRACE_THREAD_NAME("matcher/chunk " + std::to_string(t));
        SFA_TRACE_SPAN(span, "match", "chunk-advance");
        const auto [b, e] = ranges[t];
        span.arg("begin", b);
        span.arg("symbols", e - b);
        chunk_state[t] = sfa.run(sfa.start(), input.data() + b, e - b);
      });
    }
    for (auto& th : team) th.join();
  }

  // Entry DFA states per chunk, by composing the prefix mappings.
  std::vector<Dfa::StateId> entry(num_threads);
  {
    SFA_TRACE_SCOPE("match", "compose");
    std::uint32_t q = dfa.start();
    for (unsigned t = 0; t < num_threads; ++t) {
      entry[t] = static_cast<Dfa::StateId>(q);
      q = sfa.map(chunk_state[t], q);
    }
  }

  // Pass 2: count accepting positions with known entry states.
  std::vector<std::size_t> counts(num_threads, 0);
  {
    SFA_TRACE_SCOPE("match", "pass2-count");
    std::vector<std::thread> team;
    team.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      team.emplace_back([&, t] {
        SFA_TRACE_SPAN(span, "match", "chunk-count");
        const auto [b, e] = ranges[t];
        span.arg("begin", b);
        Dfa::StateId s = entry[t];
        std::size_t c = 0;
        for (std::size_t i = b; i < e; ++i) {
          s = dfa.transition(s, input[i]);
          c += dfa.accepting(s);
        }
        counts[t] = c;
      });
    }
    for (auto& th : team) th.join();
  }
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  return total;
}

std::vector<std::size_t> find_all_matches_parallel(
    const Sfa& sfa, const Dfa& dfa, const std::vector<Symbol>& input,
    unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;
  const auto ranges = chunk_ranges(input.size(), num_threads);

  if (num_threads == 1) {
    std::vector<std::size_t> out;
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < input.size(); ++i) {
      q = dfa.transition(q, input[i]);
      if (dfa.accepting(q)) out.push_back(i + 1);
    }
    return out;
  }
  if (!sfa.has_mappings())
    throw std::logic_error(
        "find_all_matches_parallel: SFA was built without keep_mappings");

  // Pass 1: chunk mappings.
  std::vector<Sfa::StateId> chunk_state(num_threads);
  {
    std::vector<std::thread> team;
    team.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      team.emplace_back([&, t] {
        const auto [b, e] = ranges[t];
        chunk_state[t] = sfa.run(sfa.start(), input.data() + b, e - b);
      });
    }
    for (auto& th : team) th.join();
  }
  // Entry states by composition, then pass 2: per-chunk position gathering.
  std::vector<Dfa::StateId> entry(num_threads);
  std::uint32_t q = dfa.start();
  for (unsigned t = 0; t < num_threads; ++t) {
    entry[t] = static_cast<Dfa::StateId>(q);
    q = sfa.map(chunk_state[t], q);
  }
  std::vector<std::vector<std::size_t>> per_chunk(num_threads);
  {
    std::vector<std::thread> team;
    team.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      team.emplace_back([&, t] {
        const auto [b, e] = ranges[t];
        Dfa::StateId s = entry[t];
        for (std::size_t i = b; i < e; ++i) {
          s = dfa.transition(s, input[i]);
          if (dfa.accepting(s)) per_chunk[t].push_back(i + 1);
        }
      });
    }
    for (auto& th : team) th.join();
  }
  std::vector<std::size_t> out;
  for (auto& v : per_chunk) out.insert(out.end(), v.begin(), v.end());
  return out;  // chunks are in order, so positions are already sorted
}

std::size_t find_first_match_parallel(const Sfa& sfa, const Dfa& dfa,
                                      const std::vector<Symbol>& input,
                                      unsigned num_threads) {
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;

  const auto ranges = chunk_ranges(input.size(), num_threads);
  std::vector<Sfa::StateId> chunk_state(num_threads);

  if (num_threads > 1) {
    if (!sfa.has_mappings())
      throw std::logic_error(
          "find_first_match_parallel: SFA was built without keep_mappings");
    std::vector<std::thread> team;
    team.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      team.emplace_back([&, t] {
        const auto [b, e] = ranges[t];
        chunk_state[t] = sfa.run(sfa.start(), input.data() + b, e - b);
      });
    }
    for (auto& th : team) th.join();
  }

  // "Exit state accepting" implies "a match ended in or before this chunk"
  // only when acceptance absorbs (match-anywhere DFAs, the library default).
  // Detect that property once; without it, every chunk must be rescanned.
  bool absorbing = true;
  for (Dfa::StateId s = 0; s < dfa.size() && absorbing; ++s) {
    if (!dfa.accepting(s)) continue;
    for (unsigned sym = 0; sym < dfa.num_symbols(); ++sym)
      if (!dfa.accepting(dfa.transition(s, static_cast<Symbol>(sym)))) {
        absorbing = false;
        break;
      }
  }

  Dfa::StateId q = dfa.start();
  for (unsigned t = 0; t < num_threads; ++t) {
    const auto [b, e] = ranges[t];
    const Dfa::StateId exit_state =
        num_threads == 1
            ? dfa.run(q, input.data() + b, e - b)
            : static_cast<Dfa::StateId>(sfa.map(chunk_state[t], q));
    if (!absorbing || dfa.accepting(exit_state)) {
      Dfa::StateId s = q;
      for (std::size_t i = b; i < e; ++i) {
        s = dfa.transition(s, input[i]);
        if (dfa.accepting(s)) return i + 1;
      }
    }
    q = exit_state;
  }
  return kNoMatch;
}

Dfa::StateId pick_speculation_state(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    std::size_t sample_limit) {
  std::vector<std::uint32_t> visits(dfa.size(), 0);
  Dfa::StateId q = dfa.start();
  const std::size_t limit = std::min(input.size(), sample_limit);
  for (std::size_t i = 0; i < limit; ++i) {
    q = dfa.transition(q, input[i]);
    ++visits[q];
  }
  Dfa::StateId best = dfa.start();
  std::uint32_t best_count = 0;
  for (Dfa::StateId s = 0; s < dfa.size(); ++s) {
    if (visits[s] > best_count) {
      best_count = visits[s];
      best = s;
    }
  }
  return best;
}

SpeculativeResult match_speculative(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    unsigned num_threads,
                                    Dfa::StateId speculated_state) {
  SpeculativeResult out;
  if (num_threads == 0) num_threads = 1;
  if (input.size() < num_threads * 64) num_threads = 1;
  out.chunks = num_threads;

  const auto ranges = chunk_ranges(input.size(), num_threads);
  std::vector<Dfa::StateId> exit_state(num_threads);

  // Speculative pass: chunk 0 from the true start, the rest from the guess.
  {
    std::vector<std::thread> team;
    team.reserve(num_threads);
    for (unsigned t = 0; t < num_threads; ++t) {
      team.emplace_back([&, t] {
        const auto [b, e] = ranges[t];
        const Dfa::StateId from = t == 0 ? dfa.start() : speculated_state;
        exit_state[t] = dfa.run(from, input.data() + b, e - b);
      });
    }
    for (auto& th : team) th.join();
  }

  // Validation pass: sequential; re-match a chunk whenever its true entry
  // state differs from the speculation (the scheme's failure case).
  Dfa::StateId q = exit_state[0];
  for (unsigned t = 1; t < num_threads; ++t) {
    if (q == speculated_state) {
      q = exit_state[t];
      continue;
    }
    ++out.rematched_chunks;
    const auto [b, e] = ranges[t];
    q = dfa.run(q, input.data() + b, e - b);
  }
  out.result = {dfa.accepting(q), q};
  return out;
}

SpeculativeResult match_speculative(const Dfa& dfa,
                                    const std::vector<Symbol>& input,
                                    unsigned num_threads) {
  return match_speculative(dfa, input, num_threads,
                           pick_speculation_state(dfa, input));
}

}  // namespace sfa
