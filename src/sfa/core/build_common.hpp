// Internals shared by the builder variants (not part of the public API).
#pragma once

#include <cstring>
#include <stdexcept>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa::detail {

/// Cell width rule: 16-bit cells whenever the DFA fits (paper's kernels
/// exist for both widths; 16-bit halves the working set).
inline bool use_16bit_cells(const Dfa& dfa) { return dfa.size() <= 0xFFFEu; }

/// Copy the DFA's transition table into Cell-typed row-major storage
/// (the layout the transposition kernels gather from).
template <typename Cell>
std::vector<Cell> cell_delta_table(const Dfa& dfa) {
  if (!dfa.complete())
    throw std::invalid_argument("SFA construction requires a complete DFA");
  const unsigned k = dfa.num_symbols();
  std::vector<Cell> table(static_cast<std::size_t>(dfa.size()) * k);
  for (Dfa::StateId q = 0; q < dfa.size(); ++q)
    for (unsigned s = 0; s < k; ++s)
      table[static_cast<std::size_t>(q) * k + s] =
          static_cast<Cell>(dfa.transition(q, static_cast<Symbol>(s)));
  return table;
}

/// The SFA start state: the identity mapping <q_0, ..., q_{n-1}>.
template <typename Cell>
std::vector<Cell> identity_mapping(std::uint32_t n) {
  std::vector<Cell> v(n);
  for (std::uint32_t q = 0; q < n; ++q) v[q] = static_cast<Cell>(q);
  return v;
}

inline std::vector<std::uint8_t> dfa_accepting_bitmap(const Dfa& dfa) {
  std::vector<std::uint8_t> out(dfa.size());
  for (Dfa::StateId q = 0; q < dfa.size(); ++q) out[q] = dfa.accepting(q);
  return out;
}

/// Initialize the result shell shared by every builder.
template <typename Cell>
void init_result(Sfa& sfa, const Dfa& dfa) {
  sfa.init(dfa.size(), dfa.num_symbols(), sizeof(Cell),
           dfa.start(), dfa_accepting_bitmap(dfa));
}

inline void guard_state_count(std::uint64_t count, const BuildOptions& opt) {
  if (count > opt.max_states)
    throw std::runtime_error(
        "SFA state explosion: exceeded max_states=" +
        std::to_string(opt.max_states) +
        " (raise BuildOptions::max_states or enable compression)");
}

}  // namespace sfa::detail
