// The constructed simultaneous finite automaton.
//
// S(A) for an n-state DFA A: SFA states are mappings Q -> Q, the start state
// is the identity mapping, and delta_s applies the DFA's delta component-wise
// (paper §II, Algorithm 1).  This type is the *result* of construction — an
// immutable automaton with a dense transition table plus (optionally) the
// per-state mappings needed to compose chunk results during parallel
// matching.  Mappings may be stored compressed (Table II workloads).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/compress/codec.hpp"
#include "sfa/core/table/transition_table.hpp"

namespace sfa {

/// Construction statistics reported by every builder (fills the columns of
/// the paper's Fig. 4/5 and Table II).
struct BuildStats {
  std::uint64_t sfa_states = 0;
  std::uint64_t dfa_states = 0;
  double seconds = 0;                  // end-to-end construction time
  double compression_seconds = 0;      // stop-the-world re-compression
  std::uint64_t mapping_bytes_uncompressed = 0;  // states * n * cell width
  std::uint64_t mapping_bytes_stored = 0;        // actual resident bytes
  bool compression_triggered = false;
  // Hash-table behaviour:
  std::uint64_t fingerprint_collisions = 0;
  std::uint64_t hash_cas_failures = 0;
  std::uint64_t chain_traversals = 0;
  // Work distribution (parallel builder only):
  std::uint64_t steals = 0;
  std::uint64_t steal_failures = 0;
  std::uint64_t queue_cas_failures = 0;
  std::uint64_t global_queue_states = 0;
  unsigned threads = 1;
  /// Probabilistic builder only: peak bytes of live (not-yet-expanded)
  /// state vectors — the working set the fingerprint-only scheme bounds.
  std::uint64_t peak_frontier_bytes = 0;
  /// Times the dense delta table's backing storage moved during construction
  /// (sequential builders; geometric growth keeps this O(log states)).
  std::uint64_t delta_reallocations = 0;

  double compression_ratio() const {
    return mapping_bytes_stored
               ? static_cast<double>(mapping_bytes_uncompressed) /
                     static_cast<double>(mapping_bytes_stored)
               : 0.0;
  }
};

class Sfa {
 public:
  using StateId = std::uint32_t;

  Sfa() = default;

  // --- Automaton interface ---------------------------------------------

  StateId start() const { return start_; }
  std::uint32_t num_states() const { return num_states_; }
  unsigned num_symbols() const { return num_symbols_; }
  /// n — the size of the underlying DFA (= cells per mapping).
  std::uint32_t dfa_states() const { return dfa_states_; }

  StateId transition(StateId s, Symbol symbol) const {
    return table_.next(s, symbol);
  }

  /// Runs delta_s over `input` starting from `from`.
  StateId run(StateId from, const Symbol* input, std::size_t len) const;

  /// True when the state's mapping sends the DFA start state to a final
  /// state — i.e. the membership answer for a whole input consumed from the
  /// SFA start state (F_s of Algorithm 1, specialized to I = {q0}).
  bool accepting(StateId s) const { return accepting_[s] != 0; }

  // --- Mappings (needed for chunk composition) ---------------------------

  bool has_mappings() const { return has_mappings_; }
  bool mappings_compressed() const { return codec_ != nullptr; }

  /// Decode the full mapping vector of state `s` into `out` (n entries):
  /// out[q] = f_s(q).
  void mapping(StateId s, std::vector<std::uint32_t>& out) const;

  /// f_s(q) for a single q.  O(1) for uncompressed mappings; decompresses
  /// the state's blob when compressed.
  std::uint32_t map(StateId s, std::uint32_t q) const;

  /// Acceptance of a DFA state (copied from the source DFA so matching does
  /// not need the DFA object around).
  bool dfa_accepting(std::uint32_t q) const { return dfa_accepting_[q] != 0; }
  std::uint32_t dfa_start() const { return dfa_start_; }

  /// Resident bytes of the mapping store (compressed or not).
  std::uint64_t mapping_store_bytes() const;

  /// Cell width in bytes (2 or 4).
  unsigned cell_width() const { return cell_width_; }

  // --- δ-table layout (the TransitionTable seam) --------------------------

  const table::TransitionTable& table() const { return table_; }
  table::TableLayout table_layout() const { return table_.layout(); }
  /// Resident bytes of the δ-table under its current layout.
  std::uint64_t table_bytes() const { return table_.resident_bytes(); }
  /// Re-encode the δ-table in place (the automaton's language and state
  /// numbering are unchanged — only lookup cost and footprint move).
  /// Publishes sfa.table.* metrics.
  void convert_table_layout(
      table::TableLayout target,
      unsigned max_chase = table::TransitionTable::kDefaultMaxChase);

  /// Codec of the compressed mapping store (nullptr when raw/absent).
  const Codec* codec() const { return codec_; }

  /// Raw view of one compressed mapping blob (mappings_compressed() only).
  ByteView compressed_blob(StateId s) const {
    return ByteView(compressed_mappings_[s].data(),
                    compressed_mappings_[s].size());
  }

  /// Raw view of the uncompressed mapping store (raw mappings only).
  ByteView raw_mapping_store() const {
    return ByteView(raw_mappings_.data(), raw_mappings_.size());
  }

  std::string summary() const;

  // --- Construction-side interface (used by the builders) ----------------

  struct Builder;  // opaque friend-ish assembly helper, see sfa.cpp

  void init(std::uint32_t dfa_states, unsigned num_symbols,
            unsigned cell_width, std::uint32_t dfa_start,
            std::vector<std::uint8_t> dfa_accepting);
  void set_start(StateId s) { start_ = s; }
  /// Dense-vector convenience: wraps `delta` in a dense TransitionTable.
  void set_table(std::vector<StateId> delta, std::vector<std::uint8_t> accepting);
  /// Adopt an already-encoded table (any layout).
  void set_table(table::TransitionTable table,
                 std::vector<std::uint8_t> accepting);
  /// Raw (uncompressed, cell-width-packed) mapping store, indexed by id.
  void set_mappings_raw(std::vector<std::uint8_t> cells);
  /// Compressed per-state blobs + the codec that made them.
  void set_mappings_compressed(std::vector<Bytes> blobs, const Codec* codec);

 private:
  const std::uint8_t* raw_mapping(StateId s) const {
    return raw_mappings_.data() +
           static_cast<std::size_t>(s) * dfa_states_ * cell_width_;
  }

  std::uint32_t num_states_ = 0;
  std::uint32_t dfa_states_ = 0;
  unsigned num_symbols_ = 0;
  unsigned cell_width_ = 4;
  StateId start_ = 0;
  std::uint32_t dfa_start_ = 0;

  table::TransitionTable table_;          // δ-storage behind the layout seam
  std::vector<std::uint8_t> accepting_;   // per SFA state
  std::vector<std::uint8_t> dfa_accepting_;

  bool has_mappings_ = false;
  std::vector<std::uint8_t> raw_mappings_;  // uncompressed store
  std::vector<Bytes> compressed_mappings_;  // per-state blobs
  const Codec* codec_ = nullptr;
};

}  // namespace sfa
