#include "sfa/core/lazy_matcher.hpp"

#include <atomic>
#include <cstring>
#include <optional>
#include <utility>

#include "sfa/core/build/lazy_intern.hpp"
#include "sfa/core/build/obs_glue.hpp"
#include "sfa/core/build/store.hpp"
#include "sfa/core/build/successor.hpp"
#include "sfa/core/build_common.hpp"
#include "sfa/core/scan/chunk_planner.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/obs/metrics.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa {

namespace {

/// Result of one chunk walk: the chunk's transition function ("DFA state at
/// chunk entry -> DFA state at chunk exit", i.e. an SFA state's mapping —
/// materialized whether it came from the intern table or from the direct
/// fallback) plus the walk's counters.
struct ChunkOutcome {
  std::vector<std::uint32_t> mapping;
  bool fell_back = false;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t direct_symbols = 0;
};

/// Type-erases the cell width so LazyMatcher::Impl stays non-templated.
class EngineBase {
 public:
  virtual ~EngineBase() = default;
  virtual void run_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      std::vector<ChunkOutcome>& out, scan::Executor& exec) = 0;
  virtual std::uint64_t num_states() const = 0;
  virtual bool cap_hit() const = 0;
  virtual bool compression_triggered() const = 0;
  virtual const HashSetCounters& table_counters() const = 0;
};

template <typename Cell>
class Engine final : public EngineBase {
 public:
  Engine(const Dfa& dfa, const LazyMatchOptions& opt)
      : dfa_(dfa),
        n_(dfa.size()),
        k_(dfa.num_symbols()),
        table_(dfa, make_table_config(opt)) {
    BuildOptions bopt;
    bopt.transpose = opt.transpose;
    if (opt.transposed_successors)
      transposed_.emplace(dfa, bopt);
    else
      scalar_.emplace(dfa, bopt);
  }

  void run_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      std::vector<ChunkOutcome>& out, scan::Executor& exec) override {
    out.assign(ranges.size(), ChunkOutcome{});
    if (ranges.size() == 1) {
      const auto [b, e] = ranges[0];
      walk_chunk(0, data + b, e - b, out[0]);
      return;
    }
    exec.for_chunks(static_cast<unsigned>(ranges.size()), [&](unsigned t) {
      // Category "build": these workers really do construct SFA states
      // (the on-demand slice), and the trace validator's worker-track
      // count keys on build-category spans.
      SFA_TRACE_SPAN(span, "build", "lazy-chunk");
      // Same dispatch attribution as the match-chunk spans (engine.cpp):
      // lazy chunks ride the pooled dispatch too, so the validator can
      // audit stripe congruence / scheduler id on traced lazy runs.
      const DispatchContext& dc = current_dispatch_context();
      span.arg("scheduler", static_cast<std::uint64_t>(dc.policy));
      span.arg("task", std::uint64_t{t});
      span.arg("stride", static_cast<std::uint64_t>(dc.stride));
      const auto [b, e] = ranges[t];
      obs::annotate_profile_chunk(
          static_cast<unsigned>(scan::EngineId::kLazy),
          (e - b) * sizeof(Symbol));
      walk_chunk(t, data + b, e - b, out[t]);
      span.arg("symbols", e - b);
      span.arg("misses", out[t].misses);
    });
  }

  std::uint64_t num_states() const override { return table_.num_states(); }
  bool cap_hit() const override { return table_.cap_hit(); }
  bool compression_triggered() const override {
    return table_.compression_triggered();
  }
  const HashSetCounters& table_counters() const override {
    return table_.counters();
  }

 private:
  using Table = detail::LazyInternTable<Cell>;
  using Node = typename Table::Node;

  static typename Table::Config make_table_config(
      const LazyMatchOptions& opt) {
    typename Table::Config cfg;
    cfg.slots = opt.num_threads == 0 ? 1u : opt.num_threads;
    cfg.hash_buckets = opt.hash_buckets;
    cfg.memory_threshold_bytes = opt.memory_threshold_bytes;
    cfg.memory_cap_bytes = opt.memory_cap_bytes;
    cfg.codec = opt.codec ? opt.codec : detail::default_build_codec();
    cfg.inject_corrupt_id = opt.inject_corrupt_state;
    return cfg;
  }

  void generate(const Cell* src, Cell* out) const {
    if (transposed_)
      transposed_->generate(src, k_, n_, out);
    else
      scalar_->generate(src, k_, n_, out);
  }

  /// One SFA walk over [data, data+len): follow already-expanded delta-row
  /// entries (cache hit); on a miss, generate ALL |Sigma| successors of the
  /// current state and intern them, publishing each into the row.  When the
  /// memory cap refuses an intern, degrade to direct DFA simulation of the
  /// mapping for the rest of the chunk (exact, unmemoized).
  void walk_chunk(unsigned slot, const Symbol* data, std::size_t len,
                  ChunkOutcome& out) {
    table_.bind_thread();
    Node* cur = table_.start();
    bool direct = cur == nullptr;  // cap refused even the identity seed
    std::vector<Cell> direct_map;
    if (direct) {
      direct_map = detail::identity_mapping<Cell>(n_);
      out.fell_back = true;
    }
    std::vector<Cell> succ;  // k x n successor buffer, filled on miss

    for (std::size_t i = 0; i < len; ++i) {
      const Symbol sym = data[i];
      if (direct) {
        for (std::uint32_t q = 0; q < n_; ++q)
          direct_map[q] = static_cast<Cell>(dfa_.transition(
              static_cast<Dfa::StateId>(direct_map[q]), sym));
        ++out.direct_symbols;
        continue;
      }
      std::atomic<Node*>* row =
          table_.row(cur->id.load(std::memory_order_acquire));
      if (Node* next = row[sym].load(std::memory_order_acquire)) {
        ++out.hits;
        cur = next;
        continue;
      }
      ++out.misses;
      const Cell* src = table_.cells_of(slot, cur);
      succ.resize(static_cast<std::size_t>(k_) * n_);
      generate(src, succ.data());
      Node* wanted = nullptr;
      for (unsigned s = 0; s < k_; ++s) {
        Node* node = table_.intern(slot, succ.data() +
                                             static_cast<std::size_t>(s) * n_);
        // Benign race: concurrent expanders store the same canonical node.
        if (node) row[s].store(node, std::memory_order_release);
        if (s == sym) wanted = node;
      }
      if (wanted) {
        cur = wanted;
      } else {  // cap refused the successor we actually need
        const Cell* taken = succ.data() + static_cast<std::size_t>(sym) * n_;
        direct_map.assign(taken, taken + n_);
        direct = true;
        out.fell_back = true;
      }
    }

    out.mapping.resize(n_);
    if (direct) {
      for (std::uint32_t q = 0; q < n_; ++q)
        out.mapping[q] = static_cast<std::uint32_t>(direct_map[q]);
    } else {
      const Cell* cells = table_.cells_of(slot, cur);
      for (std::uint32_t q = 0; q < n_; ++q)
        out.mapping[q] = static_cast<std::uint32_t>(cells[q]);
    }
  }

  const Dfa& dfa_;
  const std::uint32_t n_;
  const unsigned k_;
  Table table_;
  std::optional<detail::ScalarSuccessorGen<Cell>> scalar_;
  std::optional<detail::TransposedSuccessorGen<Cell>> transposed_;
};

std::unique_ptr<EngineBase> make_engine(const Dfa& dfa,
                                        const LazyMatchOptions& opt) {
  if (detail::use_16bit_cells(dfa))
    return std::make_unique<Engine<std::uint16_t>>(dfa, opt);
  return std::make_unique<Engine<std::uint32_t>>(dfa, opt);
}

}  // namespace

struct LazyMatcher::Impl {
  // Owns a copy of the DFA: a persistent matcher serving a long-running
  // session must not dangle when the caller's automaton goes away.
  Dfa dfa;
  LazyMatchOptions opt;
  std::unique_ptr<EngineBase> engine;
  LazyMatchStats stats;

  Impl(const Dfa& d, LazyMatchOptions o)
      : dfa(d), opt(std::move(o)), engine(make_engine(dfa, opt)) {}

  unsigned effective_threads(std::size_t len, std::size_t per_thread) const {
    unsigned t = opt.num_threads == 0 ? 1u : opt.num_threads;
    if (len < static_cast<std::size_t>(t) * per_thread) t = 1;
    return t;
  }

  /// Chunk count for `len` symbols on `threads` workers — the thread count
  /// unless the adaptive planner (`--adaptive-chunks`) is on.
  static unsigned planned_chunks(std::size_t len, unsigned threads) {
    return scan::ChunkPlanner::instance().plan(len * sizeof(Symbol), threads);
  }

  /// Run the chunk walks through the executor and fold the outcome counters
  /// into the cumulative stats + the metrics registry.
  std::vector<ChunkOutcome> run(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      scan::Executor& exec) {
    std::vector<ChunkOutcome> outcomes;
    engine->run_chunks(data, ranges, outcomes, exec);

    std::uint64_t hits = 0, misses = 0, direct = 0, fallbacks = 0;
    for (const ChunkOutcome& c : outcomes) {
      hits += c.hits;
      misses += c.misses;
      direct += c.direct_symbols;
      fallbacks += c.fell_back;
    }
    stats.cache_hits += hits;
    stats.cache_misses += misses;
    stats.direct_symbols += direct;
    stats.fallback_chunks += fallbacks;
    stats.interned_states = engine->num_states();
    stats.cap_hit = engine->cap_hit();
    stats.compression_triggered = engine->compression_triggered();
    stats.threads = static_cast<unsigned>(ranges.size());

    auto& reg = obs::Registry::instance();
    reg.counter("sfa.lazy.runs").inc();
    reg.counter("sfa.lazy.cache_hits").inc(hits);
    reg.counter("sfa.lazy.cache_misses").inc(misses);
    reg.counter("sfa.lazy.direct_symbols").inc(direct);
    reg.counter("sfa.lazy.fallback_chunks").inc(fallbacks);
    reg.gauge("sfa.lazy.interned_states")
        .set(static_cast<std::int64_t>(stats.interned_states));
    return outcomes;
  }
};

namespace {

/// The lazy ScanEngine: pass 1 interns SFA states on demand during the
/// chunk walks (LazyMatcher::Impl::run), chunk_exit is one materialized
/// mapping lookup.  Lives here because it needs the Impl internals — as a
/// template because Impl is private to LazyMatcher (members name it, this
/// deduces it); the shared MatchTasks drive it like any other engine.
template <typename ImplT>
class LazyScanEngineT final : public scan::ScanEngine {
 public:
  explicit LazyScanEngineT(ImplT& impl) : impl_(impl) {}

  scan::EngineId id() const override { return scan::EngineId::kLazy; }
  std::uint32_t start_state() const override { return impl_.dfa.start(); }
  bool accepting(std::uint32_t q) const override {
    return impl_.dfa.accepting(static_cast<Dfa::StateId>(q));
  }
  const Dfa* rescan_dfa() const override { return &impl_.dfa; }

  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      scan::Executor& exec) override {
    outcomes_ = impl_.run(data, ranges, exec);
  }

  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol*) override {
    return outcomes_[c].mapping[q];
  }

 private:
  ImplT& impl_;
  std::vector<ChunkOutcome> outcomes_;
};

}  // namespace

LazyMatcher::LazyMatcher(const Dfa& dfa, LazyMatchOptions options)
    : impl_(std::make_unique<Impl>(dfa, std::move(options))) {}

LazyMatcher::~LazyMatcher() {
  // One hash-metrics publication per matcher lifetime (the table's counters
  // are cumulative; per-run publication would double count).
  if (impl_) detail::publish_hash_metrics(impl_->engine->table_counters());
}

const Dfa& LazyMatcher::dfa() const { return impl_->dfa; }

MatchResult LazyMatcher::match(const std::vector<Symbol>& input) {
  const unsigned t = impl_->effective_threads(input.size(), 64);
  SFA_TRACE_SCOPE("match", "lazy-match");
  LazyScanEngineT<Impl> engine(*impl_);
  return scan::run_accept(engine, scan::default_executor(), input.data(),
                          input.size(), Impl::planned_chunks(input.size(), t));
}

std::size_t LazyMatcher::count(const std::vector<Symbol>& input) {
  const unsigned t = impl_->effective_threads(input.size(), 64);
  if (t == 1) {
    // Small inputs never pay for chunking (or interning): plain DFA count.
    impl_->stats.threads = 1;
    scan::DirectEngine engine(impl_->dfa);
    return scan::run_count(engine, scan::default_executor(), input.data(),
                           input.size(), 1);
  }
  SFA_TRACE_SCOPE("match", "lazy-count");
  LazyScanEngineT<Impl> engine(*impl_);
  return scan::run_count(engine, scan::default_executor(), input.data(),
                         input.size(), Impl::planned_chunks(input.size(), t));
}

std::size_t LazyMatcher::find_first(const std::vector<Symbol>& input) {
  const unsigned t = impl_->effective_threads(input.size(), 64);
  if (t == 1) {
    impl_->stats.threads = 1;
    scan::DirectEngine engine(impl_->dfa);
    return scan::run_find_first(engine, scan::default_executor(), input.data(),
                                input.size(), 1);
  }
  SFA_TRACE_SCOPE("match", "lazy-find-first");
  LazyScanEngineT<Impl> engine(*impl_);
  return scan::run_find_first(engine, scan::default_executor(), input.data(),
                              input.size(),
                              Impl::planned_chunks(input.size(), t));
}

std::uint32_t LazyMatcher::advance(std::uint32_t dfa_state, const Symbol* data,
                                   std::size_t len) {
  // Streaming threshold matches StreamMatcher's (threads * 256): blocks are
  // typically smaller than one-shot inputs, so chunking pays off later.
  const unsigned t = impl_->effective_threads(len, 256);
  if (len == 0) return dfa_state;
  // Chunk mappings compose from ANY entry state — this is what the eager
  // stream path cannot do without a full build.
  LazyScanEngineT<Impl> engine(*impl_);
  return scan::run_advance(engine, scan::default_executor(), data, len,
                           Impl::planned_chunks(len, t), dfa_state);
}

LazyMatchStats LazyMatcher::stats() const { return impl_->stats; }

MatchResult match_sfa_lazy(const Dfa& dfa, const std::vector<Symbol>& input,
                           const LazyMatchOptions& options,
                           LazyMatchStats* stats) {
  LazyMatcher m(dfa, options);
  const MatchResult r = m.match(input);
  if (stats) *stats = m.stats();
  return r;
}

std::size_t count_matches_lazy(const Dfa& dfa,
                               const std::vector<Symbol>& input,
                               const LazyMatchOptions& options,
                               LazyMatchStats* stats) {
  LazyMatcher m(dfa, options);
  const std::size_t r = m.count(input);
  if (stats) *stats = m.stats();
  return r;
}

std::size_t find_first_match_lazy(const Dfa& dfa,
                                  const std::vector<Symbol>& input,
                                  const LazyMatchOptions& options,
                                  LazyMatchStats* stats) {
  LazyMatcher m(dfa, options);
  const std::size_t r = m.find_first(input);
  if (stats) *stats = m.stats();
  return r;
}

}  // namespace sfa
