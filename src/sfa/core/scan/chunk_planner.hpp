// Adaptive chunk sizing for the matching substrate (`--adaptive-chunks`).
//
// The wrappers historically split an input into exactly `threads` chunks:
// optimal when every byte costs the same, but a d2fa chase storm or a
// narrowed fallback chunk can make one chunk several times slower than its
// siblings, and with one chunk per worker there is nothing left to balance
// with — even work-stealing needs surplus tasks to steal.  The planner
// closes the loop the PR 7 profiler opened: the executor reports observed
// per-chunk TSC times after every pooled dispatch, and the planner adapts a
// target chunk byte size that future plan() calls divide inputs by.
//
//   - imbalance (max/mean chunk cycles) above kSplitImbalance → halve the
//     target, creating more, smaller chunks for the scheduler to balance;
//   - near-perfect balance → double the target back, shedding dispatch
//     overhead (floor/cap keep the target in [4 KiB, 16 MiB]).
//
// Disabled by default: plan() then returns the thread count unchanged, so
// every existing call path is bit-for-bit the historical behavior.  The
// planner is process-wide (like default_executor) and thread-safe; stats
// feed the additive `chunk_size_*` fields of sfa-match-stats/1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace sfa::scan {

class ChunkPlanner {
 public:
  static constexpr std::size_t kDefaultTargetBytes = 256 * 1024;
  static constexpr std::size_t kMinTargetBytes = 4 * 1024;
  static constexpr std::size_t kMaxTargetBytes = 16 * 1024 * 1024;
  /// Never plan more than this many chunks per thread — bounds scheduling
  /// overhead and the trace volume of a single dispatch.
  static constexpr unsigned kMaxChunksPerThread = 8;

  struct Snapshot {
    bool enabled = false;
    std::size_t target_bytes = kDefaultTargetBytes;
    std::uint64_t plans = 0;
    std::uint64_t replans = 0;  // observe() calls that moved the target
    std::size_t chunk_bytes_min = 0;
    std::size_t chunk_bytes_max = 0;
    std::size_t chunk_bytes_final = 0;  // from the most recent plan()
  };

  static ChunkPlanner& instance();

  void set_enabled(bool enabled);
  bool enabled() const;

  /// Chunk count for an input of `bytes` scanned by `threads` workers.
  /// Disabled (or threads <= 1): exactly `threads`.  Enabled: bytes/target,
  /// clamped to [threads, threads * kMaxChunksPerThread] so there is always
  /// at least one chunk per worker and never an overhead explosion.
  unsigned plan(std::size_t bytes, unsigned threads);

  /// Feed back one pooled dispatch: `total_cycles` summed and `max_cycles`
  /// the worst over its `chunks` chunk bodies (TSC units — only the ratio
  /// matters, so no calibration needed).  No-op while disabled.
  void observe(unsigned chunks, std::uint64_t total_cycles,
               std::uint64_t max_cycles);

  Snapshot snapshot() const;

  /// Restore the default target and clear stats (keeps the enabled flag) —
  /// called before a timed run so its stats cover only that run.
  void reset();

 private:
  ChunkPlanner() = default;

  static constexpr double kSplitImbalance = 1.5;
  static constexpr double kMergeImbalance = 1.15;

  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::size_t target_bytes_ = kDefaultTargetBytes;
  std::uint64_t plans_ = 0;
  std::uint64_t replans_ = 0;
  std::size_t chunk_bytes_min_ = 0;
  std::size_t chunk_bytes_max_ = 0;
  std::size_t chunk_bytes_final_ = 0;
};

}  // namespace sfa::scan
