// ScanEngine — the "how does a chunk map entry states to exit states" seam
// of the matching substrate.
//
// Parallel SFA matching (§IV-D) factors into: split the input into chunks,
// process each chunk independently (pass 1), then compose the per-chunk
// transition functions left to right — optionally rescanning chunks with
// their now-known entry states (pass 2 of count / find-first / find-all).
// Every matcher in the repo is that same skeleton with a different chunk
// policy, which this interface isolates:
//
//   DirectEngine       pass 1 is empty; chunk_exit rescans with the DFA —
//                      the sequential reference the oracle compares against
//   EagerEngine        pass 1 runs a pre-built SFA from the identity;
//                      chunk_exit is one f_s lookup — failure-free (§IV-D)
//   LazyScanEngine     same, but SFA states intern on demand during the
//                      walk (lives in lazy_matcher.cpp, needs its Impl)
//   SpeculativeEngine  pass 1 runs the DFA from a guessed entry state;
//                      chunk_exit rescans on a wrong guess — the
//                      Holub–Štekr/Luchaup baseline (§V)
//
// The MatchTasks in tasks.hpp drive any engine through the shared two-pass
// logic; engines never spawn threads themselves — per-chunk work always
// goes through the Executor seam.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa::scan {

/// Numeric engine identity — attached as the `engine` arg on every
/// match-chunk trace span (trace args are integers) and validated by
/// sfa_trace_check.
enum class EngineId : std::uint64_t {
  kDirect = 0,
  kEager = 1,
  kLazy = 2,
  kSpeculative = 3,
};

class ScanEngine {
 public:
  virtual ~ScanEngine() = default;

  virtual EngineId id() const = 0;

  /// DFA start state / acceptance in the engine's state numbering (the DFA
  /// side of the composition — all engines compose DFA states).
  virtual std::uint32_t start_state() const = 0;
  virtual bool accepting(std::uint32_t q) const = 0;

  /// The DFA used for pass-2 rescans (count / find-first / find-all) and
  /// the chunks<=1 sequential short-circuits.  nullptr when the engine can
  /// only serve accept/advance (an EagerEngine constructed without a DFA).
  virtual const Dfa* rescan_dfa() const = 0;

  /// Pass 1: process every chunk independently through `exec`, retaining
  /// whatever chunk_exit() needs.  Ranges come from detail::chunk_ranges —
  /// identical across engines so differential tests compare chunk results
  /// position-for-position.
  virtual void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) = 0;

  /// DFA state at chunk c's exit, given its (composed) entry state q.
  /// May rescan the chunk (`data` is the full input, as in scan_chunks):
  /// DirectEngine always does, SpeculativeEngine on a failed guess.
  virtual std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                                   const Symbol* data) = 0;
};

/// Sequential DFA reference: no pass-1 work, chunk_exit runs the DFA.
class DirectEngine final : public ScanEngine {
 public:
  explicit DirectEngine(const Dfa& dfa) : dfa_(dfa) {}

  EngineId id() const override { return EngineId::kDirect; }
  std::uint32_t start_state() const override { return dfa_.start(); }
  bool accepting(std::uint32_t q) const override {
    return dfa_.accepting(static_cast<Dfa::StateId>(q));
  }
  const Dfa* rescan_dfa() const override { return &dfa_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

 private:
  const Dfa& dfa_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
};

/// Pre-built SFA: pass 1 runs delta_s from the identity over each chunk,
/// chunk_exit is a single f_s lookup.  Pass-2 tasks additionally need the
/// source DFA (the Sfa carries only acceptance, not transitions).
class EagerEngine final : public ScanEngine {
 public:
  explicit EagerEngine(const Sfa& sfa, const Dfa* rescan = nullptr)
      : sfa_(sfa), rescan_(rescan) {}

  EngineId id() const override { return EngineId::kEager; }
  std::uint32_t start_state() const override { return sfa_.dfa_start(); }
  bool accepting(std::uint32_t q) const override {
    return sfa_.dfa_accepting(q);
  }
  const Dfa* rescan_dfa() const override { return rescan_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

 private:
  const Sfa& sfa_;
  const Dfa* rescan_;
  std::vector<Sfa::StateId> chunk_state_;
};

/// Speculative baseline: chunk 0 scans from the true start, later chunks
/// from `guess`; chunk_exit rescans whenever the composed entry state
/// disagrees with the speculation (the scheme's failure case, counted in
/// rematched()).
class SpeculativeEngine final : public ScanEngine {
 public:
  SpeculativeEngine(const Dfa& dfa, Dfa::StateId guess)
      : dfa_(dfa), guess_(guess) {}

  EngineId id() const override { return EngineId::kSpeculative; }
  std::uint32_t start_state() const override { return dfa_.start(); }
  bool accepting(std::uint32_t q) const override {
    return dfa_.accepting(static_cast<Dfa::StateId>(q));
  }
  const Dfa* rescan_dfa() const override { return &dfa_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

  unsigned rematched() const { return rematched_; }

 private:
  const Dfa& dfa_;
  const Dfa::StateId guess_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::vector<Dfa::StateId> exit_;
  unsigned rematched_ = 0;
};

}  // namespace sfa::scan
