// ScanEngine — the "how does a chunk map entry states to exit states" seam
// of the matching substrate.
//
// Parallel SFA matching (§IV-D) factors into: split the input into chunks,
// process each chunk independently (pass 1), then compose the per-chunk
// transition functions left to right — optionally rescanning chunks with
// their now-known entry states (pass 2 of count / find-first / find-all).
// Every matcher in the repo is that same skeleton with a different chunk
// policy, which this interface isolates:
//
//   DirectEngine       pass 1 is empty; chunk_exit rescans with the DFA —
//                      the sequential reference the oracle compares against
//   EagerEngine        pass 1 runs a pre-built SFA from the identity;
//                      chunk_exit is one f_s lookup — failure-free (§IV-D)
//   LazyScanEngine     same, but SFA states intern on demand during the
//                      walk (lives in lazy_matcher.cpp, needs its Impl)
//   SpeculativeEngine  pass 1 runs the DFA from a guessed entry state;
//                      chunk_exit rescans on a wrong guess — the
//                      Holub–Štekr/Luchaup baseline (§V)
//   NarrowedEngine     pass 1 simulates only the PaREM feasible entry set
//                      of each chunk, retaining a PARTIAL mapping vector;
//                      chunk_exit resolves through the partial domain, with
//                      a per-chunk fallback when the set fails to shrink
//
// The MatchTasks in tasks.hpp drive any engine through the shared two-pass
// logic; engines never spawn threads themselves — per-chunk work always
// goes through the Executor seam.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build/reachable.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/core/sfa.hpp"

namespace sfa::scan {

/// Numeric engine identity — attached as the `engine` arg on every
/// match-chunk trace span (trace args are integers) and validated by
/// sfa_trace_check.
enum class EngineId : std::uint64_t {
  kDirect = 0,
  kEager = 1,
  kLazy = 2,
  kSpeculative = 3,
  kNarrowed = 4,
};

class ScanEngine {
 public:
  virtual ~ScanEngine() = default;

  virtual EngineId id() const = 0;

  /// DFA start state / acceptance in the engine's state numbering (the DFA
  /// side of the composition — all engines compose DFA states).
  virtual std::uint32_t start_state() const = 0;
  virtual bool accepting(std::uint32_t q) const = 0;

  /// The DFA used for pass-2 rescans (count / find-first / find-all) and
  /// the chunks<=1 sequential short-circuits.  nullptr when the engine can
  /// only serve accept/advance (an EagerEngine constructed without a DFA).
  virtual const Dfa* rescan_dfa() const = 0;

  /// Pass 1: process every chunk independently through `exec`, retaining
  /// whatever chunk_exit() needs.  Ranges come from detail::chunk_ranges —
  /// identical across engines so differential tests compare chunk results
  /// position-for-position.
  virtual void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) = 0;

  /// DFA state at chunk c's exit, given its (composed) entry state q.
  /// May rescan the chunk (`data` is the full input, as in scan_chunks):
  /// DirectEngine always does, SpeculativeEngine on a failed guess.
  virtual std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                                   const Symbol* data) = 0;
};

/// Sequential DFA reference: no pass-1 work, chunk_exit runs the DFA.
class DirectEngine final : public ScanEngine {
 public:
  explicit DirectEngine(const Dfa& dfa) : dfa_(dfa) {}

  EngineId id() const override { return EngineId::kDirect; }
  std::uint32_t start_state() const override { return dfa_.start(); }
  bool accepting(std::uint32_t q) const override {
    return dfa_.accepting(static_cast<Dfa::StateId>(q));
  }
  const Dfa* rescan_dfa() const override { return &dfa_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

 private:
  const Dfa& dfa_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
};

/// Pre-built SFA: pass 1 runs delta_s from the identity over each chunk,
/// chunk_exit is a single f_s lookup.  Pass-2 tasks additionally need the
/// source DFA (the Sfa carries only acceptance, not transitions).
class EagerEngine final : public ScanEngine {
 public:
  explicit EagerEngine(const Sfa& sfa, const Dfa* rescan = nullptr)
      : sfa_(sfa), rescan_(rescan) {}

  EngineId id() const override { return EngineId::kEager; }
  std::uint32_t start_state() const override { return sfa_.dfa_start(); }
  bool accepting(std::uint32_t q) const override {
    return sfa_.dfa_accepting(q);
  }
  const Dfa* rescan_dfa() const override { return rescan_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

 private:
  const Sfa& sfa_;
  const Dfa* rescan_;
  std::vector<Sfa::StateId> chunk_state_;
};

/// Speculative baseline: chunk 0 scans from the true start, later chunks
/// from `guess`; chunk_exit rescans whenever the composed entry state
/// disagrees with the speculation (the scheme's failure case, counted in
/// rematched()).
class SpeculativeEngine final : public ScanEngine {
 public:
  SpeculativeEngine(const Dfa& dfa, Dfa::StateId guess)
      : dfa_(dfa), guess_(guess) {}

  EngineId id() const override { return EngineId::kSpeculative; }
  std::uint32_t start_state() const override { return dfa_.start(); }
  bool accepting(std::uint32_t q) const override {
    return dfa_.accepting(static_cast<Dfa::StateId>(q));
  }
  const Dfa* rescan_dfa() const override { return &dfa_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

  unsigned rematched() const { return rematched_; }

 private:
  const Dfa& dfa_;
  const Dfa::StateId guess_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::vector<Dfa::StateId> exit_;
  unsigned rematched_ = 0;
};

/// Tuning / test hooks for the NarrowedEngine.
struct NarrowedOptions {
  /// Symbols peeked at the head of each chunk: the feasible entry set is
  /// pushed through the peeked prefix by set-image composition, usually
  /// collapsing it further before any simulation happens.  0 narrows by the
  /// boundary symbol alone.
  unsigned peek_k = 0;
  /// Per-chunk fallback trigger: when the peeked feasible set still holds
  /// more than `shrink_threshold * n` states, narrowing buys too little and
  /// the chunk takes the full path instead (the fallback SFA walk when one
  /// was supplied, otherwise an all-states simulation).  >= 1.0 disables
  /// the fallback, 0.0 forces it on every narrowable chunk.
  double shrink_threshold = 0.5;
  /// Fault-injection teeth hook (tests only): rotate every reachable set by
  /// one state so the feasible domains are wrong — the differential oracle
  /// must catch the resulting wrong answers.
  bool inject_corrupt_feasible_set = false;
};

/// PaREM-hybrid chunk policy (PAPERS.md): a chunk starting after symbol `a`
/// can only be entered through reach(a) = { delta(q,a) : q in Q }, so pass 1
/// simulates the DFA from just that feasible subset (optionally shrunk
/// further by peeking the chunk's first peek_k symbols) and retains a
/// PARTIAL mapping vector.  chunk_exit composes exactly over the partial
/// domain — the true entry state is always feasible — while chunks whose
/// set fails to shrink below the threshold fall back to the full
/// eager/speculative-style path.  Needs no pre-built SFA; pass an Sfa to
/// serve the fallback chunks with a single mapping walk instead of an
/// all-states simulation.
class NarrowedEngine final : public ScanEngine {
 public:
  /// `fallback_sfa` (optional) must have been built from `dfa` with
  /// keep_mappings; `shared_reach` (optional) lets callers amortize one
  /// immutable reach table across many engines/threads — when null the
  /// constructor computes its own via compute_reach_table.
  explicit NarrowedEngine(const Dfa& dfa, NarrowedOptions options = {},
                          const Sfa* fallback_sfa = nullptr,
                          const ReachTable* shared_reach = nullptr);

  EngineId id() const override { return EngineId::kNarrowed; }
  std::uint32_t start_state() const override { return dfa_.start(); }
  bool accepting(std::uint32_t q) const override {
    return dfa_.accepting(static_cast<Dfa::StateId>(q));
  }
  const Dfa* rescan_dfa() const override { return &dfa_; }
  void scan_chunks(
      const Symbol* data,
      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
      Executor& exec) override;
  std::uint32_t chunk_exit(unsigned c, std::uint32_t q,
                           const Symbol* data) override;

  /// Chunks of the last scan that ran the narrowed (partial-vector) path.
  unsigned narrowed_chunks() const { return narrowed_chunks_; }
  /// Chunks that exceeded the shrink threshold and took the full path.
  unsigned fallback_chunks() const { return fallback_chunks_; }
  /// Total feasible entry states simulated across narrowed chunks — the
  /// work the full n-state scheme would have multiplied per chunk.
  std::uint64_t entry_states_simulated() const { return entry_states_; }
  /// Partial-domain misses in chunk_exit.  Zero unless the reach table was
  /// corrupted (inject_corrupt_feasible_set) — the teeth tests assert the
  /// misses surface as wrong answers the oracle then catches.
  unsigned feasible_misses() const { return feasible_misses_; }
  const ReachTable& reach() const { return *reach_; }

 private:
  enum class ChunkKind : std::uint8_t {
    kKnown,    // entry known a priori (chunk 0 / empty-prefix chunks)
    kPartial,  // narrowed: partial mapping over the feasible post-peek set
    kFull,     // fallback without an SFA: all-states simulation
    kSfa,      // fallback with an SFA: one mapping walk, exit = f_s lookup
  };
  struct ChunkPlan {
    ChunkKind kind = ChunkKind::kKnown;
    std::uint32_t known_entry = 0;  // kKnown
    std::uint32_t known_exit = 0;   // kKnown
    std::size_t peek_len = 0;       // kPartial
    std::uint32_t first_feasible = 0;  // kPartial: deterministic miss answer
    std::vector<std::uint32_t> map;    // kPartial (post-peek, sparse) / kFull
    std::uint64_t simulated = 0;       // kPartial: |feasible set|
    Sfa::StateId sfa_state = 0;        // kSfa
  };

  void plan_chunk(unsigned c, const Symbol* data);

  const Dfa& dfa_;
  const NarrowedOptions options_;
  const Sfa* sfa_;
  ReachTable owned_reach_;
  const ReachTable* reach_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::vector<ChunkPlan> plans_;
  unsigned narrowed_chunks_ = 0;
  unsigned fallback_chunks_ = 0;
  std::uint64_t entry_states_ = 0;
  unsigned feasible_misses_ = 0;
};

}  // namespace sfa::scan
