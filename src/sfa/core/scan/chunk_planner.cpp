#include "sfa/core/scan/chunk_planner.hpp"

#include <algorithm>

#include "sfa/obs/metrics.hpp"

namespace sfa::scan {

ChunkPlanner& ChunkPlanner::instance() {
  static ChunkPlanner planner;
  return planner;
}

void ChunkPlanner::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

bool ChunkPlanner::enabled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return enabled_;
}

unsigned ChunkPlanner::plan(std::size_t bytes, unsigned threads) {
  if (threads <= 1) return threads;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return threads;
  const std::size_t want = bytes / target_bytes_;
  const unsigned chunks = static_cast<unsigned>(std::clamp<std::size_t>(
      want, threads, static_cast<std::size_t>(threads) * kMaxChunksPerThread));
  ++plans_;
  const std::size_t chunk_bytes = bytes / chunks;
  if (chunk_bytes_min_ == 0 || chunk_bytes < chunk_bytes_min_)
    chunk_bytes_min_ = chunk_bytes;
  chunk_bytes_max_ = std::max(chunk_bytes_max_, chunk_bytes);
  chunk_bytes_final_ = chunk_bytes;
  return chunks;
}

void ChunkPlanner::observe(unsigned chunks, std::uint64_t total_cycles,
                           std::uint64_t max_cycles) {
  if (chunks == 0 || total_cycles == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  const double mean =
      static_cast<double>(total_cycles) / static_cast<double>(chunks);
  if (mean <= 0.0) return;
  const double imbalance = static_cast<double>(max_cycles) / mean;
  std::size_t next = target_bytes_;
  if (imbalance > kSplitImbalance) {
    next = std::max(kMinTargetBytes, target_bytes_ / 2);
  } else if (imbalance < kMergeImbalance) {
    next = std::min(kMaxTargetBytes, target_bytes_ * 2);
  }
  if (next != target_bytes_) {
    target_bytes_ = next;
    ++replans_;
    obs::Registry::instance().counter("sfa.pool.sched.replans").inc();
  }
}

ChunkPlanner::Snapshot ChunkPlanner::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot s;
  s.enabled = enabled_;
  s.target_bytes = target_bytes_;
  s.plans = plans_;
  s.replans = replans_;
  s.chunk_bytes_min = chunk_bytes_min_;
  s.chunk_bytes_max = chunk_bytes_max_;
  s.chunk_bytes_final = chunk_bytes_final_;
  return s;
}

void ChunkPlanner::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  target_bytes_ = kDefaultTargetBytes;
  plans_ = 0;
  replans_ = 0;
  chunk_bytes_min_ = 0;
  chunk_bytes_max_ = 0;
  chunk_bytes_final_ = 0;
}

}  // namespace sfa::scan
