// Executor — the "who runs a chunk" seam of the matching substrate.
//
// Mirrors the build substrate's policy seams (docs/ARCHITECTURE.md): every
// MatchTask expresses its per-chunk work as for_chunks(n, body) and stays
// agnostic of whether the chunks run inline on the caller (InlineExecutor)
// or on the persistent WorkerPool (PooledExecutor).  The pooled executor is
// the perf headline of the re-layering: matchers used to spawn fresh
// std::threads per call — per *block* for streams — while the pool parks a
// warm team on a condition variable and dispatches chunks to it.
//
// Trace/metrics glue lives here, NOT in sfa_concurrent (the pool must stay
// obs-free, like the queues and the arena): pool threads are named
// "scan-pool/worker N" in traces, and every pooled dispatch updates the
// sfa.match.pool.* metrics.
#pragma once

#include <atomic>
#include <cstdint>

#include "sfa/concurrent/worker_pool.hpp"

namespace sfa::obs {
class Counter;
class Gauge;
}  // namespace sfa::obs

namespace sfa::scan {

/// Non-owning callable reference `void(unsigned chunk)` — must outlive the
/// for_chunks() call, which always blocks until every chunk ran.
class ChunkBody {
 public:
  template <typename F>
  ChunkBody(const F& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* o, unsigned chunk) { (*static_cast<const F*>(o))(chunk); }) {}

  void operator()(unsigned chunk) const { call_(obj_, chunk); }

 private:
  void* obj_;
  void (*call_)(void*, unsigned);
};

/// Executor-side counters surfaced through `sfa match --stats-json`
/// (additive `pool_*` fields of sfa-match-stats/1).
struct ExecutorStats {
  unsigned pool_workers = 0;
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_wakeups = 0;
  std::uint64_t pool_steals = 0;  // deque steals (work-stealing policy only)
  unsigned pinned_workers = 0;
};

class Executor {
 public:
  virtual ~Executor() = default;
  /// Run body(0..chunks-1), returning after all chunks completed.
  /// chunks <= 1 always executes inline on the calling thread.
  virtual void for_chunks(unsigned chunks, const ChunkBody& body) = 0;
  virtual ExecutorStats stats() const { return {}; }
};

/// Sequential policy: every chunk runs on the caller, in order.
class InlineExecutor final : public Executor {
 public:
  void for_chunks(unsigned chunks, const ChunkBody& body) override;
};

/// Persistent-pool policy.  The pool grows on demand to the largest chunk
/// count ever dispatched (the legacy matchers spawned arbitrary per-call
/// thread counts, so demand-sizing is strictly no worse) and keeps its
/// workers parked between calls.
class PooledExecutor final : public Executor {
 public:
  explicit PooledExecutor(unsigned initial_workers = 0);
  void for_chunks(unsigned chunks, const ChunkBody& body) override;
  ExecutorStats stats() const override;

  /// Scheduling policy of the underlying pool (scheduler.hpp) — applies to
  /// dispatches made after the call.
  void set_policy(sched::Policy policy) { pool_.set_policy(policy); }
  sched::Policy policy() const { return pool_.policy(); }

  /// NUMA pin mode of the underlying pool (numa.hpp).
  void set_pin_mode(PinMode mode) { pool_.set_pin_mode(mode); }
  PinMode pin_mode() const { return pool_.pin_mode(); }

 private:
  WorkerPool pool_;
  obs::Counter* dispatches_metric_;
  obs::Counter* wakeups_metric_;
  obs::Counter* steals_metric_;
  obs::Gauge* workers_metric_;
  obs::Gauge* policy_metric_;
  obs::Gauge* pinned_metric_;
  std::atomic<std::uint64_t> published_wakeups_{0};
  std::atomic<std::uint64_t> published_steals_{0};
};

/// The process-wide pooled executor every matcher entry point dispatches
/// through.  Streaming sessions share it, so their pool stays warm across
/// blocks and across sessions.  Joined at process exit.
Executor& default_executor();

/// A shared inline executor (for forcing the sequential policy in tests
/// and differential checks).
Executor& inline_executor();

/// Process-wide scheduler/pin knobs applied to default_executor()'s pool —
/// what `sfa {match,serve} --scheduler/--pin` set.  Matchers constructing
/// private PooledExecutors are unaffected.
void set_default_scheduler(sched::Policy policy);
sched::Policy default_scheduler();
void set_default_pin_mode(PinMode mode);
PinMode default_pin_mode();

}  // namespace sfa::scan
