#include "sfa/core/scan/tasks.hpp"

#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa::scan {

namespace {

// Composition pass shared by the rescan-style tasks: a left-to-right fold of
// chunk_exit from the DFA start state, recording each chunk's entry state
// for pass 2.  Engines resolve their own chunk representation inside
// chunk_exit — a full mapping lookup (eager), a rescan (direct, failed
// speculation), or a partial-domain lookup with per-chunk fallback
// (narrowed) — so the fold composes exactly regardless of how much of the
// mapping vector pass 1 actually retained.
std::vector<std::uint32_t> compose_entries(ScanEngine& engine,
                                           const Symbol* data,
                                           unsigned chunks) {
  SFA_TRACE_SCOPE("match", "compose");
  std::vector<std::uint32_t> entry(chunks);
  std::uint32_t q = engine.rescan_dfa()->start();
  for (unsigned c = 0; c < chunks; ++c) {
    entry[c] = q;
    q = engine.chunk_exit(c, q, data);
  }
  return entry;
}

}  // namespace

bool acceptance_absorbs(const Dfa& dfa) {
  for (Dfa::StateId s = 0; s < dfa.size(); ++s) {
    if (!dfa.accepting(s)) continue;
    for (unsigned sym = 0; sym < dfa.num_symbols(); ++sym)
      if (!dfa.accepting(dfa.transition(s, static_cast<Symbol>(sym))))
        return false;
  }
  return true;
}

std::uint32_t run_advance(ScanEngine& engine, Executor& exec,
                          const Symbol* data, std::size_t len, unsigned chunks,
                          std::uint32_t entry) {
  if (chunks == 0) chunks = 1;
  const auto ranges = detail::chunk_ranges(len, chunks);
  engine.scan_chunks(data, ranges, exec);
  SFA_TRACE_SCOPE("match", "compose");
  std::uint32_t q = entry;
  for (unsigned c = 0; c < chunks; ++c) q = engine.chunk_exit(c, q, data);
  return q;
}

MatchResult run_accept(ScanEngine& engine, Executor& exec, const Symbol* data,
                       std::size_t len, unsigned chunks) {
  const std::uint32_t q =
      run_advance(engine, exec, data, len, chunks, engine.start_state());
  return {engine.accepting(q), q};
}

std::size_t run_count(ScanEngine& engine, Executor& exec, const Symbol* data,
                      std::size_t len, unsigned chunks) {
  const Dfa& dfa = *engine.rescan_dfa();
  if (chunks <= 1)
    return dfa.count_accepting_prefixes(data, len);

  const auto ranges = detail::chunk_ranges(len, chunks);
  {
    SFA_TRACE_SCOPE("match", "pass1-mappings");
    engine.scan_chunks(data, ranges, exec);
  }
  const std::vector<std::uint32_t> entry =
      compose_entries(engine, data, chunks);
  std::vector<std::size_t> counts(chunks, 0);
  {
    SFA_TRACE_SCOPE("match", "pass2-count");
    exec.for_chunks(chunks, [&](unsigned c) {
      SFA_TRACE_SPAN(span, "match", "chunk-count");
      span.arg("engine", static_cast<std::uint64_t>(engine.id()));
      const DispatchContext& dc = current_dispatch_context();
      span.arg("scheduler", static_cast<std::uint64_t>(dc.policy));
      span.arg("task", static_cast<std::uint64_t>(c));
      span.arg("stride", static_cast<std::uint64_t>(dc.stride));
      const auto [b, e] = ranges[c];
      span.arg("begin", b);
      obs::annotate_profile_chunk(static_cast<unsigned>(engine.id()),
                                  (e - b) * sizeof(Symbol));
      Dfa::StateId s = static_cast<Dfa::StateId>(entry[c]);
      std::size_t acc = 0;
      for (std::size_t i = b; i < e; ++i) {
        s = dfa.transition(s, data[i]);
        acc += dfa.accepting(s);
      }
      counts[c] = acc;
    });
  }
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  return total;
}

std::size_t run_find_first(ScanEngine& engine, Executor& exec,
                           const Symbol* data, std::size_t len,
                           unsigned chunks) {
  const Dfa& dfa = *engine.rescan_dfa();
  if (chunks <= 1) {
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < len; ++i) {
      q = dfa.transition(q, data[i]);
      if (dfa.accepting(q)) return i + 1;
    }
    return kNoMatch;
  }

  const auto ranges = detail::chunk_ranges(len, chunks);
  engine.scan_chunks(data, ranges, exec);
  // "Exit state accepting" locates the first matching chunk only when
  // acceptance absorbs; otherwise every chunk is rescanned.
  const bool absorbing = acceptance_absorbs(dfa);
  std::uint32_t q = dfa.start();
  for (unsigned c = 0; c < chunks; ++c) {
    const std::uint32_t exit_state = engine.chunk_exit(c, q, data);
    if (!absorbing || dfa.accepting(static_cast<Dfa::StateId>(exit_state))) {
      Dfa::StateId s = static_cast<Dfa::StateId>(q);
      const auto [b, e] = ranges[c];
      for (std::size_t i = b; i < e; ++i) {
        s = dfa.transition(s, data[i]);
        if (dfa.accepting(s)) return i + 1;
      }
    }
    q = exit_state;
  }
  return kNoMatch;
}

std::vector<std::size_t> run_find_all(ScanEngine& engine, Executor& exec,
                                      const Symbol* data, std::size_t len,
                                      unsigned chunks) {
  const Dfa& dfa = *engine.rescan_dfa();
  if (chunks <= 1) {
    std::vector<std::size_t> out;
    Dfa::StateId q = dfa.start();
    for (std::size_t i = 0; i < len; ++i) {
      q = dfa.transition(q, data[i]);
      if (dfa.accepting(q)) out.push_back(i + 1);
    }
    return out;
  }

  const auto ranges = detail::chunk_ranges(len, chunks);
  engine.scan_chunks(data, ranges, exec);
  const std::vector<std::uint32_t> entry =
      compose_entries(engine, data, chunks);
  std::vector<std::vector<std::size_t>> per_chunk(chunks);
  exec.for_chunks(chunks, [&](unsigned c) {
    SFA_TRACE_SPAN(span, "match", "chunk-collect");
    span.arg("engine", static_cast<std::uint64_t>(engine.id()));
    const DispatchContext& dc = current_dispatch_context();
    span.arg("scheduler", static_cast<std::uint64_t>(dc.policy));
    span.arg("task", static_cast<std::uint64_t>(c));
    span.arg("stride", static_cast<std::uint64_t>(dc.stride));
    const auto [b, e] = ranges[c];
    span.arg("begin", b);
    obs::annotate_profile_chunk(static_cast<unsigned>(engine.id()),
                                (e - b) * sizeof(Symbol));
    Dfa::StateId s = static_cast<Dfa::StateId>(entry[c]);
    for (std::size_t i = b; i < e; ++i) {
      s = dfa.transition(s, data[i]);
      if (dfa.accepting(s)) per_chunk[c].push_back(i + 1);
    }
  });
  std::vector<std::size_t> out;
  for (auto& v : per_chunk) out.insert(out.end(), v.begin(), v.end());
  return out;  // chunks are in order, so positions are already sorted
}

}  // namespace sfa::scan
