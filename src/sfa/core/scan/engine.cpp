#include "sfa/core/scan/engine.hpp"

#include <algorithm>

#include "sfa/obs/metrics.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa::scan {

void DirectEngine::scan_chunks(
    const Symbol*, const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor&) {
  // Pass 1 has nothing to precompute: without mappings, a chunk's exit
  // state is only computable once its entry state is known (which is the
  // whole point of the SFA engines).
  ranges_ = ranges;
}

std::uint32_t DirectEngine::chunk_exit(unsigned c, std::uint32_t q,
                                       const Symbol* data) {
  const auto [b, e] = ranges_[c];
  return dfa_.run(static_cast<Dfa::StateId>(q), data + b, e - b);
}

void EagerEngine::scan_chunks(
    const Symbol* data,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor& exec) {
  chunk_state_.assign(ranges.size(), 0);
  if (ranges.size() == 1) {
    // Single-chunk runs stay on the caller with no chunk span, matching
    // the sequential fallbacks' trace shape.
    const auto [b, e] = ranges[0];
    chunk_state_[0] = sfa_.run(sfa_.start(), data + b, e - b);
    return;
  }
  exec.for_chunks(static_cast<unsigned>(ranges.size()), [&](unsigned c) {
    SFA_TRACE_SPAN(span, "match", "chunk-advance");
    span.arg("engine", static_cast<std::uint64_t>(id()));
    const DispatchContext& dc = current_dispatch_context();
    span.arg("scheduler", static_cast<std::uint64_t>(dc.policy));
    span.arg("task", static_cast<std::uint64_t>(c));
    span.arg("stride", static_cast<std::uint64_t>(dc.stride));
    const auto [b, e] = ranges[c];
    span.arg("symbols", e - b);
    obs::annotate_profile_chunk(static_cast<unsigned>(id()),
                                (e - b) * sizeof(Symbol));
    chunk_state_[c] = sfa_.run(sfa_.start(), data + b, e - b);
  });
}

std::uint32_t EagerEngine::chunk_exit(unsigned c, std::uint32_t q,
                                      const Symbol*) {
  return sfa_.map(chunk_state_[c], q);
}

void SpeculativeEngine::scan_chunks(
    const Symbol* data,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor& exec) {
  ranges_ = ranges;
  exit_.assign(ranges.size(), 0);
  rematched_ = 0;
  if (ranges.size() == 1) {
    const auto [b, e] = ranges[0];
    exit_[0] = dfa_.run(dfa_.start(), data + b, e - b);
    return;
  }
  exec.for_chunks(static_cast<unsigned>(ranges.size()), [&](unsigned c) {
    SFA_TRACE_SPAN(span, "match", "chunk-advance");
    span.arg("engine", static_cast<std::uint64_t>(id()));
    const DispatchContext& dc = current_dispatch_context();
    span.arg("scheduler", static_cast<std::uint64_t>(dc.policy));
    span.arg("task", static_cast<std::uint64_t>(c));
    span.arg("stride", static_cast<std::uint64_t>(dc.stride));
    const auto [b, e] = ranges_[c];
    span.arg("symbols", e - b);
    obs::annotate_profile_chunk(static_cast<unsigned>(id()),
                                (e - b) * sizeof(Symbol));
    const Dfa::StateId from = c == 0 ? dfa_.start() : guess_;
    exit_[c] = dfa_.run(from, data + b, e - b);
  });
}

std::uint32_t SpeculativeEngine::chunk_exit(unsigned c, std::uint32_t q,
                                            const Symbol* data) {
  const Dfa::StateId speculated = c == 0 ? dfa_.start() : guess_;
  if (static_cast<Dfa::StateId>(q) == speculated) return exit_[c];
  ++rematched_;
  const auto [b, e] = ranges_[c];
  return dfa_.run(static_cast<Dfa::StateId>(q), data + b, e - b);
}

namespace {

constexpr std::uint32_t kUnset = 0xFFFFFFFFu;

struct NarrowedMetrics {
  // Handles resolved once; Registry references are stable for the life of
  // the process.
  obs::Counter& chunks =
      obs::Registry::instance().counter("sfa.match.narrowed.chunks");
  obs::Counter& fallback_chunks =
      obs::Registry::instance().counter("sfa.match.narrowed.fallback_chunks");
  obs::Counter& entry_states =
      obs::Registry::instance().counter("sfa.match.narrowed.entry_states");
  obs::Counter& feasible_misses =
      obs::Registry::instance().counter("sfa.match.narrowed.feasible_misses");
  static NarrowedMetrics& get() {
    static NarrowedMetrics m;
    return m;
  }
};

}  // namespace

NarrowedEngine::NarrowedEngine(const Dfa& dfa, NarrowedOptions options,
                               const Sfa* fallback_sfa,
                               const ReachTable* shared_reach)
    : dfa_(dfa),
      options_(options),
      sfa_(fallback_sfa && fallback_sfa->has_mappings() ? fallback_sfa
                                                        : nullptr) {
  if (shared_reach != nullptr && !options_.inject_corrupt_feasible_set) {
    reach_ = shared_reach;
    return;
  }
  owned_reach_ =
      shared_reach != nullptr ? *shared_reach : compute_reach_table(dfa_);
  if (options_.inject_corrupt_feasible_set) {
    // Rotate every set by one state: the domains pass 1 simulates are now
    // wrong, so real entry states miss and compose to wrong exits — which
    // the differential oracle must catch (the teeth test).
    const std::uint32_t n = dfa_.size();
    for (auto& set : owned_reach_.per_symbol) {
      for (auto& s : set) s = (s + 1) % n;
      std::sort(set.begin(), set.end());
      set.erase(std::unique(set.begin(), set.end()), set.end());
    }
  }
  reach_ = &owned_reach_;
}

void NarrowedEngine::plan_chunk(unsigned c, const Symbol* data) {
  const auto [b, e] = ranges_[c];
  ChunkPlan& p = plans_[c];
  if (b == 0) {
    // Chunk 0 (and any empty chunk degenerating to position 0): the entry
    // is the start state a priori — nothing upstream to narrow through.
    p.kind = ChunkKind::kKnown;
    p.known_entry = dfa_.start();
    p.known_exit = dfa_.run(dfa_.start(), data + b, e - b);
    return;
  }

  // PaREM feasible set: the chunk is entered through delta(., data[b-1]),
  // then pushed through the peeked prefix by set-image composition.
  const std::uint32_t n = dfa_.size();
  const auto& f0 = reach_->per_symbol[data[b - 1]];
  std::vector<std::uint32_t> feasible(f0.begin(), f0.end());
  const std::size_t peek_len =
      std::min<std::size_t>(options_.peek_k, e - b);
  std::vector<char> seen(n, 0);
  for (std::size_t i = 0; i < peek_len; ++i) {
    std::fill(seen.begin(), seen.end(), 0);
    std::size_t w = 0;
    for (std::uint32_t s : feasible) {
      const std::uint32_t t =
          dfa_.transition(static_cast<Dfa::StateId>(s), data[b + i]);
      if (!seen[t]) {
        seen[t] = 1;
        feasible[w++] = t;
      }
    }
    feasible.resize(w);
  }

  if (feasible.empty() ||
      static_cast<double>(feasible.size()) >
          options_.shrink_threshold * static_cast<double>(n)) {
    // The set failed to shrink: take the full path for this chunk — one
    // SFA mapping walk when available (the eager scheme), otherwise an
    // all-states simulation (every entry state, like a mapping computed by
    // hand).
    if (sfa_ != nullptr) {
      p.kind = ChunkKind::kSfa;
      p.sfa_state = sfa_->run(sfa_->start(), data + b, e - b);
    } else {
      p.kind = ChunkKind::kFull;
      p.map.resize(n);
      for (std::uint32_t q = 0; q < n; ++q)
        p.map[q] = dfa_.run(static_cast<Dfa::StateId>(q), data + b, e - b);
    }
    return;
  }

  p.kind = ChunkKind::kPartial;
  p.peek_len = peek_len;
  p.first_feasible = feasible.front();
  p.simulated = feasible.size();
  p.map.assign(n, kUnset);
  for (std::uint32_t s : feasible)
    p.map[s] = dfa_.run(static_cast<Dfa::StateId>(s), data + b + peek_len,
                        e - b - peek_len);
}

void NarrowedEngine::scan_chunks(
    const Symbol* data,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor& exec) {
  ranges_ = ranges;
  plans_.assign(ranges.size(), {});
  narrowed_chunks_ = 0;
  fallback_chunks_ = 0;
  entry_states_ = 0;
  feasible_misses_ = 0;
  if (ranges.size() == 1) {
    // Single-chunk runs stay on the caller with no chunk span, matching
    // the sequential fallbacks' trace shape (peek_k never exceeds what the
    // chunk holds — plan_chunk clamps it, and the known-entry plan here
    // does not peek at all).
    plan_chunk(0, data);
    return;
  }
  exec.for_chunks(static_cast<unsigned>(ranges.size()), [&](unsigned c) {
    SFA_TRACE_SPAN(span, "match", "chunk-advance");
    span.arg("engine", static_cast<std::uint64_t>(id()));
    const DispatchContext& dc = current_dispatch_context();
    span.arg("scheduler", static_cast<std::uint64_t>(dc.policy));
    span.arg("task", static_cast<std::uint64_t>(c));
    span.arg("stride", static_cast<std::uint64_t>(dc.stride));
    const auto [b, e] = ranges_[c];
    span.arg("symbols", e - b);
    obs::annotate_profile_chunk(static_cast<unsigned>(id()),
                                (e - b) * sizeof(Symbol));
    plan_chunk(c, data);
  });
  // for_chunks is a barrier, so the per-chunk plans are complete; fold the
  // run's accounting on the caller (workers never touch shared counters).
  for (const ChunkPlan& p : plans_) {
    if (p.kind == ChunkKind::kPartial) {
      ++narrowed_chunks_;
      entry_states_ += p.simulated;
    } else if (p.kind != ChunkKind::kKnown) {
      ++fallback_chunks_;
    }
  }
  NarrowedMetrics& m = NarrowedMetrics::get();
  m.chunks.inc(ranges.size());
  m.fallback_chunks.inc(fallback_chunks_);
  m.entry_states.inc(entry_states_);
}

std::uint32_t NarrowedEngine::chunk_exit(unsigned c, std::uint32_t q,
                                         const Symbol* data) {
  const ChunkPlan& p = plans_[c];
  const auto [b, e] = ranges_[c];
  switch (p.kind) {
    case ChunkKind::kKnown:
      if (q == p.known_entry) return p.known_exit;
      // Only reachable via run_advance from a carried state (streaming):
      // the plan assumed the start state, so rescan like the speculative
      // engine's failure case.
      return dfa_.run(static_cast<Dfa::StateId>(q), data + b, e - b);
    case ChunkKind::kFull:
      return p.map[q];
    case ChunkKind::kSfa:
      return sfa_->map(p.sfa_state, q);
    case ChunkKind::kPartial:
      break;
  }
  // Partial domain: replay the peeked prefix from the now-known entry
  // (O(peek_len)), then one lookup in the partial vector.
  std::uint32_t s = q;
  for (std::size_t i = 0; i < p.peek_len; ++i)
    s = dfa_.transition(static_cast<Dfa::StateId>(s), data[b + i]);
  const std::uint32_t exit_state = p.map[s];
  if (exit_state != kUnset) return exit_state;
  // A true entry state is always feasible, so a miss means the reach table
  // was corrupted (inject_corrupt_feasible_set).  Answer deterministically
  // from the first feasible state: memory-safe, and wrong in a way the
  // oracle catches.
  ++feasible_misses_;
  NarrowedMetrics::get().feasible_misses.inc();
  return p.map[p.first_feasible];
}

}  // namespace sfa::scan
