#include "sfa/core/scan/engine.hpp"

#include "sfa/obs/trace.hpp"

namespace sfa::scan {

void DirectEngine::scan_chunks(
    const Symbol*, const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor&) {
  // Pass 1 has nothing to precompute: without mappings, a chunk's exit
  // state is only computable once its entry state is known (which is the
  // whole point of the SFA engines).
  ranges_ = ranges;
}

std::uint32_t DirectEngine::chunk_exit(unsigned c, std::uint32_t q,
                                       const Symbol* data) {
  const auto [b, e] = ranges_[c];
  return dfa_.run(static_cast<Dfa::StateId>(q), data + b, e - b);
}

void EagerEngine::scan_chunks(
    const Symbol* data,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor& exec) {
  chunk_state_.assign(ranges.size(), 0);
  if (ranges.size() == 1) {
    // Single-chunk runs stay on the caller with no chunk span, matching
    // the sequential fallbacks' trace shape.
    const auto [b, e] = ranges[0];
    chunk_state_[0] = sfa_.run(sfa_.start(), data + b, e - b);
    return;
  }
  exec.for_chunks(static_cast<unsigned>(ranges.size()), [&](unsigned c) {
    SFA_TRACE_SPAN(span, "match", "chunk-advance");
    span.arg("engine", static_cast<std::uint64_t>(id()));
    const auto [b, e] = ranges[c];
    span.arg("symbols", e - b);
    chunk_state_[c] = sfa_.run(sfa_.start(), data + b, e - b);
  });
}

std::uint32_t EagerEngine::chunk_exit(unsigned c, std::uint32_t q,
                                      const Symbol*) {
  return sfa_.map(chunk_state_[c], q);
}

void SpeculativeEngine::scan_chunks(
    const Symbol* data,
    const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
    Executor& exec) {
  ranges_ = ranges;
  exit_.assign(ranges.size(), 0);
  rematched_ = 0;
  if (ranges.size() == 1) {
    const auto [b, e] = ranges[0];
    exit_[0] = dfa_.run(dfa_.start(), data + b, e - b);
    return;
  }
  exec.for_chunks(static_cast<unsigned>(ranges.size()), [&](unsigned c) {
    SFA_TRACE_SPAN(span, "match", "chunk-advance");
    span.arg("engine", static_cast<std::uint64_t>(id()));
    const auto [b, e] = ranges_[c];
    span.arg("symbols", e - b);
    const Dfa::StateId from = c == 0 ? dfa_.start() : guess_;
    exit_[c] = dfa_.run(from, data + b, e - b);
  });
}

std::uint32_t SpeculativeEngine::chunk_exit(unsigned c, std::uint32_t q,
                                            const Symbol* data) {
  const Dfa::StateId speculated = c == 0 ? dfa_.start() : guess_;
  if (static_cast<Dfa::StateId>(q) == speculated) return exit_[c];
  ++rematched_;
  const auto [b, e] = ranges_[c];
  return dfa_.run(static_cast<Dfa::StateId>(q), data + b, e - b);
}

}  // namespace sfa::scan
