// MatchTask — the "what question is being asked" seam of the matching
// substrate: accept / advance / count / find-first / find-all, written once
// over the ScanEngine × Executor seams instead of per matcher.
//
// Each task is the same two-pass shape from §IV-D: pass 1 scans chunks
// independently (engine policy), a sequential O(chunks) composition turns
// chunk transition functions into per-chunk entry states, and — for the
// rescan-style tasks — pass 2 revisits chunks with their now-known entry
// states.  `chunks <= 1` always short-circuits to the plain sequential DFA
// procedure (the legacy small-input fallbacks, preserved bit-for-bit).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"

namespace sfa::scan {

/// True when acceptance absorbs (accepting states only transition to
/// accepting states — match-anywhere automata, the library default).  The
/// find-first task may then skip rescanning chunks whose exit state is not
/// accepting; without the property every chunk must be rescanned.
bool acceptance_absorbs(const Dfa& dfa);

/// Advance a carried DFA state over [data, data+len) in `chunks` chunks:
/// pass 1 + composition from `entry`.  The streaming primitive —
/// StreamMatcher::feed and LazyMatcher::advance are this task.
std::uint32_t run_advance(ScanEngine& engine, Executor& exec,
                          const Symbol* data, std::size_t len, unsigned chunks,
                          std::uint32_t entry);

/// Whole-input membership: advance from the engine's start state and test
/// acceptance.
MatchResult run_accept(ScanEngine& engine, Executor& exec, const Symbol* data,
                       std::size_t len, unsigned chunks);

/// Count accepting end-positions (requires engine.rescan_dfa()).
std::size_t run_count(ScanEngine& engine, Executor& exec, const Symbol* data,
                      std::size_t len, unsigned chunks);

/// Earliest accepting end-position, or kNoMatch (requires rescan_dfa()).
std::size_t run_find_first(ScanEngine& engine, Executor& exec,
                           const Symbol* data, std::size_t len,
                           unsigned chunks);

/// All accepting end-positions, ascending (requires rescan_dfa()).
std::vector<std::size_t> run_find_all(ScanEngine& engine, Executor& exec,
                                      const Symbol* data, std::size_t len,
                                      unsigned chunks);

}  // namespace sfa::scan
