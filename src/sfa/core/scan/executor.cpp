#include "sfa/core/scan/executor.hpp"

#include <string>

#include "sfa/core/scan/chunk_planner.hpp"
#include "sfa/obs/metrics.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::scan {

void InlineExecutor::for_chunks(unsigned chunks, const ChunkBody& body) {
  for (unsigned c = 0; c < chunks; ++c) {
    obs::ChunkProfileScope prof(c, obs::kProfileInlineSlot);
    body(c);
  }
}

PooledExecutor::PooledExecutor(unsigned initial_workers)
    : pool_(initial_workers),
      // Handles resolved once; Registry references are stable for the
      // process lifetime, so the hot path never re-hashes the names.
      dispatches_metric_(
          &obs::Registry::instance().counter("sfa.match.pool.dispatches")),
      wakeups_metric_(
          &obs::Registry::instance().counter("sfa.match.pool.wakeups")),
      steals_metric_(
          &obs::Registry::instance().counter("sfa.pool.sched.steals")),
      workers_metric_(
          &obs::Registry::instance().gauge("sfa.match.pool.workers")),
      policy_metric_(
          &obs::Registry::instance().gauge("sfa.pool.sched.policy")),
      pinned_metric_(
          &obs::Registry::instance().gauge("sfa.pool.sched.pinned_workers")) {}

void PooledExecutor::for_chunks(unsigned chunks, const ChunkBody& body) {
  if (chunks <= 1) {
    if (chunks == 1) {
      obs::ChunkProfileScope prof(0, obs::kProfileInlineSlot);
      body(0);
    }
    return;
  }
  pool_.ensure_workers(chunks);
  // Per-chunk TSC feedback for the adaptive planner — gated so the default
  // (planner disabled) path keeps its exact historical instruction stream.
  const bool adaptive = ChunkPlanner::instance().enabled();
  std::atomic<std::uint64_t> total_cycles{0};
  std::atomic<std::uint64_t> max_cycles{0};
  SFA_TRACE_SPAN(dispatch_span, "match", "dispatch");
  dispatch_span.arg("scheduler", static_cast<std::uint64_t>(pool_.policy()));
  dispatch_span.arg("chunks", static_cast<std::uint64_t>(chunks));
  pool_.run(chunks, [&](unsigned task, unsigned worker) {
    const bool pooled = worker != ChunkFn::kInlineWorker;
    if (pooled)
      SFA_TRACE_THREAD_NAME("scan-pool/worker " + std::to_string(worker));
    obs::ChunkProfileScope prof(task,
                                pooled ? worker : obs::kProfileInlineSlot);
    if (!adaptive) {
      body(task);
      return;
    }
    const std::uint64_t t0 = read_tsc();
    body(task);
    const std::uint64_t dt = read_tsc() - t0;
    total_cycles.fetch_add(dt, std::memory_order_relaxed);
    std::uint64_t prev = max_cycles.load(std::memory_order_relaxed);
    while (dt > prev &&
           !max_cycles.compare_exchange_weak(prev, dt,
                                             std::memory_order_relaxed)) {
    }
  });
  if (adaptive)
    ChunkPlanner::instance().observe(
        chunks, total_cycles.load(std::memory_order_relaxed),
        max_cycles.load(std::memory_order_relaxed));
  dispatches_metric_->inc();
  const WorkerPoolStats s = pool_.stats();
  workers_metric_->set(static_cast<std::int64_t>(s.workers));
  policy_metric_->set(static_cast<std::int64_t>(pool_.policy()));
  pinned_metric_->set(static_cast<std::int64_t>(s.pinned_workers));
  // The pool counters are cumulative; publish only this executor's deltas
  // so the metrics stay plain monotone counters.
  const std::uint64_t prev_w = published_wakeups_.exchange(s.wakeups);
  if (s.wakeups > prev_w) wakeups_metric_->inc(s.wakeups - prev_w);
  const std::uint64_t prev_s = published_steals_.exchange(s.steals);
  if (s.steals > prev_s) steals_metric_->inc(s.steals - prev_s);
}

ExecutorStats PooledExecutor::stats() const {
  const WorkerPoolStats s = pool_.stats();
  ExecutorStats out;
  out.pool_workers = s.workers;
  out.pool_dispatches = s.dispatches;
  out.pool_wakeups = s.wakeups;
  out.pool_steals = s.steals;
  out.pinned_workers = s.pinned_workers;
  return out;
}

namespace {
PooledExecutor& default_pooled_executor() {
  static PooledExecutor exec;
  return exec;
}
}  // namespace

Executor& default_executor() { return default_pooled_executor(); }

Executor& inline_executor() {
  static InlineExecutor exec;
  return exec;
}

void set_default_scheduler(sched::Policy policy) {
  default_pooled_executor().set_policy(policy);
}

sched::Policy default_scheduler() {
  return default_pooled_executor().policy();
}

void set_default_pin_mode(PinMode mode) {
  default_pooled_executor().set_pin_mode(mode);
}

PinMode default_pin_mode() {
  return default_pooled_executor().pin_mode();
}

}  // namespace sfa::scan
