#include "sfa/core/scan/executor.hpp"

#include <string>

#include "sfa/obs/metrics.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa::scan {

void InlineExecutor::for_chunks(unsigned chunks, const ChunkBody& body) {
  for (unsigned c = 0; c < chunks; ++c) {
    obs::ChunkProfileScope prof(c, obs::kProfileInlineSlot);
    body(c);
  }
}

PooledExecutor::PooledExecutor(unsigned initial_workers)
    : pool_(initial_workers),
      // Handles resolved once; Registry references are stable for the
      // process lifetime, so the hot path never re-hashes the names.
      dispatches_metric_(
          &obs::Registry::instance().counter("sfa.match.pool.dispatches")),
      wakeups_metric_(
          &obs::Registry::instance().counter("sfa.match.pool.wakeups")),
      workers_metric_(
          &obs::Registry::instance().gauge("sfa.match.pool.workers")) {}

void PooledExecutor::for_chunks(unsigned chunks, const ChunkBody& body) {
  if (chunks <= 1) {
    if (chunks == 1) {
      obs::ChunkProfileScope prof(0, obs::kProfileInlineSlot);
      body(0);
    }
    return;
  }
  pool_.ensure_workers(chunks);
  pool_.run(chunks, [&body](unsigned task, unsigned worker) {
    const bool pooled = worker != ChunkFn::kInlineWorker;
    if (pooled)
      SFA_TRACE_THREAD_NAME("scan-pool/worker " + std::to_string(worker));
    obs::ChunkProfileScope prof(task,
                                pooled ? worker : obs::kProfileInlineSlot);
    body(task);
  });
  dispatches_metric_->inc();
  const WorkerPoolStats s = pool_.stats();
  workers_metric_->set(static_cast<std::int64_t>(s.workers));
  // The pool counter is cumulative; publish only this executor's delta so
  // the metric stays a plain monotone counter.
  const std::uint64_t prev = published_wakeups_.exchange(s.wakeups);
  if (s.wakeups > prev) wakeups_metric_->inc(s.wakeups - prev);
}

ExecutorStats PooledExecutor::stats() const {
  const WorkerPoolStats s = pool_.stats();
  ExecutorStats out;
  out.pool_workers = s.workers;
  out.pool_dispatches = s.dispatches;
  out.pool_wakeups = s.wakeups;
  return out;
}

Executor& default_executor() {
  static PooledExecutor exec;
  return exec;
}

Executor& inline_executor() {
  static InlineExecutor exec;
  return exec;
}

}  // namespace sfa::scan
