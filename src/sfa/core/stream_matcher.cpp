#include "sfa/core/stream_matcher.hpp"

#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa {

void StreamMatcher::feed(const Symbol* data, std::size_t len) {
  consumed_ += len;
  if (lazy_ != nullptr) {
    // Lazy backend: the chunk mappings compose from the carried state, no
    // pre-built SFA needed (threading/thresholds live in the LazyMatcher).
    SFA_TRACE_SPAN(span, "match", "stream-feed-lazy");
    span.arg("symbols", len);
    dfa_state_ = lazy_->advance(dfa_state_, data, len);
    return;
  }
  if (threads_ <= 1 || len < threads_ * 256 || !sfa_->has_mappings()) {
    // Sequential advance: run the SFA over the block from the identity and
    // apply the resulting mapping to the carried DFA state (one lookup).
    SFA_TRACE_SPAN(span, "match", "stream-feed-seq");
    span.arg("symbols", len);
    const Sfa::StateId s = sfa_->run(sfa_->start(), data, len);
    if (len != 0) dfa_state_ = sfa_->map(s, dfa_state_);
    return;
  }
  // Parallel advance through the persistent executor: chunk the block, run
  // each chunk from the identity, compose the chunk mappings onto the
  // carried state.  The pool stays warm across blocks — a streaming session
  // pays thread creation once, not per feed().
  SFA_TRACE_SPAN(span, "match", "stream-feed");
  span.arg("symbols", len);
  scan::EagerEngine engine(*sfa_);
  dfa_state_ = scan::run_advance(engine, scan::default_executor(), data, len,
                                 threads_, dfa_state_);
}

}  // namespace sfa
