#include "sfa/core/stream_matcher.hpp"

#include <thread>

#include "sfa/obs/trace.hpp"

namespace sfa {

void StreamMatcher::feed(const Symbol* data, std::size_t len) {
  consumed_ += len;
  if (lazy_ != nullptr) {
    // Lazy backend: the chunk mappings compose from the carried state, no
    // pre-built SFA needed (threading/thresholds live in the LazyMatcher).
    SFA_TRACE_SPAN(span, "match", "stream-feed-lazy");
    span.arg("symbols", len);
    dfa_state_ = lazy_->advance(dfa_state_, data, len);
    return;
  }
  if (threads_ <= 1 || len < threads_ * 256 || !sfa_->has_mappings()) {
    // Sequential advance: run the SFA over the block from the identity and
    // apply the resulting mapping to the carried DFA state (one lookup).
    SFA_TRACE_SPAN(span, "match", "stream-feed-seq");
    span.arg("symbols", len);
    const Sfa::StateId s = sfa_->run(sfa_->start(), data, len);
    if (len != 0) dfa_state_ = sfa_->map(s, dfa_state_);
    return;
  }
  // Parallel advance: chunk the block, run each chunk from the identity,
  // compose the chunk mappings onto the carried state.
  SFA_TRACE_SPAN(span, "match", "stream-feed");
  span.arg("symbols", len);
  const unsigned t = threads_;
  const std::size_t per = len / t;
  std::vector<Sfa::StateId> chunk_state(t);
  std::vector<std::thread> team;
  team.reserve(t);
  for (unsigned c = 0; c < t; ++c) {
    const std::size_t begin = c * per;
    const std::size_t end = (c + 1 == t) ? len : begin + per;
    team.emplace_back([this, &chunk_state, data, begin, end, c] {
      SFA_TRACE_SCOPE("match", "chunk-advance");
      chunk_state[c] = sfa_->run(sfa_->start(), data + begin, end - begin);
    });
  }
  for (auto& th : team) th.join();
  SFA_TRACE_SCOPE("match", "compose");
  for (unsigned c = 0; c < t; ++c)
    dfa_state_ = sfa_->map(chunk_state[c], dfa_state_);
}

}  // namespace sfa
