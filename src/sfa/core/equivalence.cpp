#include "sfa/core/equivalence.hpp"

#include <sstream>

#include "sfa/core/match.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {

VerifyReport verify_sfa(const Sfa& sfa, const Dfa& dfa,
                        const VerifyOptions& opt) {
  VerifyReport report;
  const auto fail = [&](const std::string& what) {
    if (report.ok) {
      report.ok = false;
      report.first_failure = what;
    }
  };

  if (sfa.dfa_states() != dfa.size() ||
      sfa.num_symbols() != dfa.num_symbols()) {
    fail("dimension mismatch between SFA and DFA");
    return report;
  }
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();

  if (sfa.has_mappings()) {
    // 1. Identity start mapping.
    std::vector<std::uint32_t> mapping;
    sfa.mapping(sfa.start(), mapping);
    for (std::uint32_t q = 0; q < n; ++q) {
      if (mapping[q] != q) {
        std::ostringstream os;
        os << "start mapping is not the identity at q=" << q << " (got "
           << mapping[q] << ")";
        fail(os.str());
        return report;
      }
    }

    // 2. Structural simulation on sampled states.
    const std::size_t samples =
        opt.structural_samples == 0
            ? sfa.num_states()
            : std::min<std::size_t>(opt.structural_samples, sfa.num_states());
    Xoshiro256 rng(opt.seed);
    std::vector<std::uint32_t> succ_mapping;
    for (std::size_t i = 0; i < samples && report.ok; ++i) {
      const Sfa::StateId s =
          opt.structural_samples == 0
              ? static_cast<Sfa::StateId>(i)
              : static_cast<Sfa::StateId>(rng.below(sfa.num_states()));
      sfa.mapping(s, mapping);
      for (unsigned sym = 0; sym < k && report.ok; ++sym) {
        const Sfa::StateId to = sfa.transition(s, static_cast<Symbol>(sym));
        sfa.mapping(to, succ_mapping);
        for (std::uint32_t q = 0; q < n; ++q) {
          const std::uint32_t expect = dfa.transition(
              static_cast<Dfa::StateId>(mapping[q]), static_cast<Symbol>(sym));
          if (succ_mapping[q] != expect) {
            std::ostringstream os;
            os << "delta_s mismatch: state " << s << " symbol " << sym
               << " cell " << q << ": got " << succ_mapping[q] << " want "
               << expect;
            fail(os.str());
            break;
          }
        }
      }
      // Acceptance flag consistency.
      if (report.ok &&
          sfa.accepting(s) != dfa.accepting(static_cast<Dfa::StateId>(
                                  mapping[dfa.start()]))) {
        std::ostringstream os;
        os << "acceptance flag mismatch on SFA state " << s;
        fail(os.str());
      }
    }
    if (!report.ok) return report;
  }

  // 3. Behavioural check on random strings.
  Xoshiro256 rng(opt.seed ^ 0x5f5f5f5full);
  std::vector<Symbol> input;
  for (std::size_t i = 0; i < opt.random_inputs; ++i) {
    const std::size_t len =
        opt.min_length +
        rng.below(opt.max_length - opt.min_length + 1);
    input.resize(len);
    for (auto& c : input) c = static_cast<Symbol>(rng.below(k));

    // Lockstep run: acceptance must agree at EVERY prefix, not just at the
    // end — this is what gives the behavioural check real detection power
    // against single-transition corruption.
    {
      Dfa::StateId q = dfa.start();
      Sfa::StateId s = sfa.start();
      for (std::size_t pos = 0; pos < input.size(); ++pos) {
        q = dfa.transition(q, input[pos]);
        s = sfa.transition(s, input[pos]);
        if (sfa.accepting(s) != dfa.accepting(q)) {
          std::ostringstream os;
          os << "acceptance mismatch on random input #" << i
             << " at prefix length " << (pos + 1) << ": DFA="
             << dfa.accepting(q) << " SFA=" << sfa.accepting(s);
          fail(os.str());
          return report;
        }
      }
    }
    const MatchResult dfa_result = match_sequential(dfa, input);
    if (sfa.has_mappings()) {
      const MatchResult sfa_result = match_sfa_sequential(sfa, input);
      if (sfa_result.accepted != dfa_result.accepted ||
          sfa_result.final_dfa_state != dfa_result.final_dfa_state) {
        std::ostringstream os;
        os << "final-state mismatch on random input #" << i << ": DFA ends in "
           << dfa_result.final_dfa_state << ", SFA mapping says "
           << sfa_result.final_dfa_state;
        fail(os.str());
        return report;
      }
    }
  }
  return report;
}

}  // namespace sfa
