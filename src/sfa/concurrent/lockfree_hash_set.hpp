// Lock-free chained hash table of SFA states (paper §III-A, §III-B).
//
// Keys are 64-bit fingerprints reduced modulo a power-of-two bucket count.
// Buckets chain nodes through an intrusive atomic next pointer; insertion
// CASes the bucket head, and the table supports duplicate *keys* (hash and
// fingerprint collisions) but never duplicate *states*: insert_if_absent
// compares fingerprints first and falls back to the exhaustive byte-by-byte
// comparison only on fingerprint equality — the paper's central trick for
// O(1) set-membership in the common case.
//
// Nodes are never unlinked (SFA construction only ever adds states), which
// makes the structure ABA-free without hazard pointers.  The compression
// phase empties and re-populates the table via clear()/insert_unchecked()
// while all workers are at a barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "sfa/concurrent/counters.hpp"

namespace sfa {

/// Node contract: `Traits` provides
///   static std::atomic<Node*>& next(Node&);
///   static std::uint64_t fingerprint(const Node&);
///   static bool same_state(const Node&, const Node&);   // exhaustive compare
template <typename Node, typename Traits>
class LockFreeHashSet {
 public:
  explicit LockFreeHashSet(std::size_t min_buckets) {
    std::size_t n = 64;
    while (n < min_buckets) n <<= 1;
    mask_ = n - 1;
    buckets_ = std::make_unique<std::atomic<Node*>[]>(n);
    for (std::size_t i = 0; i <= mask_; ++i)
      buckets_[i].store(nullptr, std::memory_order_relaxed);
  }

  struct InsertResult {
    Node* winner;    // the canonical node for this state
    bool inserted;   // false: an equal state was already present
  };

  /// Insert `node` unless an equal state is already present.
  InsertResult insert_if_absent(Node* node) {
    const std::uint64_t fp = Traits::fingerprint(*node);
    std::atomic<Node*>& bucket = buckets_[fp & mask_];

    Node* head = bucket.load(std::memory_order_acquire);
    std::uint64_t walked = 0;  // nodes visited across all rescans
    for (;;) {
      // Scan the current chain for an equal state.
      for (Node* cur = head; cur != nullptr;
           cur = Traits::next(*cur).load(std::memory_order_acquire)) {
        counters.chain_traversals.fetch_add(1, std::memory_order_relaxed);
        ++walked;
        if (Traits::fingerprint(*cur) != fp) continue;  // hash collision
        if (Traits::same_state(*cur, *node)) {
          counters.duplicates.fetch_add(1, std::memory_order_relaxed);
          counters.chain_length.record(walked);
          return {cur, false};
        }
        counters.fp_collisions.fetch_add(1, std::memory_order_relaxed);
      }
      // Not found: try to become the new head.
      Traits::next(*node).store(head, std::memory_order_relaxed);
      if (bucket.compare_exchange_weak(head, node, std::memory_order_release,
                                       std::memory_order_acquire)) {
        counters.inserts.fetch_add(1, std::memory_order_relaxed);
        counters.chain_length.record(walked);
        return {node, true};
      }
      counters.cas_failures.fetch_add(1, std::memory_order_relaxed);
      // head now holds the new chain head; rescan (an equal state may have
      // been inserted concurrently).
    }
  }

  /// Lookup only (used by tests and the matcher).  Deliberately uncounted:
  /// this is the hottest path in the parallel intern loop, and a shared
  /// fetch_add per probe would serialize exactly the accesses the table
  /// exists to scale.
  Node* find(std::uint64_t fp, const Node& probe) const {
    for (Node* cur = buckets_[fp & mask_].load(std::memory_order_acquire);
         cur != nullptr;
         cur = Traits::next(*cur).load(std::memory_order_acquire)) {
      if (Traits::fingerprint(*cur) == fp && Traits::same_state(*cur, probe))
        return cur;
    }
    return nullptr;
  }

  /// Counting lookup for the single-threaded builders, where BuildStats
  /// should reflect lookup work too and there is no contention to worry
  /// about.  Parallel code must keep using find().
  Node* find_counted(std::uint64_t fp, const Node& probe) const {
    std::uint64_t walked = 0;
    Node* found = nullptr;
    for (Node* cur = buckets_[fp & mask_].load(std::memory_order_acquire);
         cur != nullptr;
         cur = Traits::next(*cur).load(std::memory_order_acquire)) {
      ++walked;
      if (Traits::fingerprint(*cur) != fp) continue;
      if (Traits::same_state(*cur, probe)) {
        found = cur;
        break;
      }
      counters.fp_collisions.fetch_add(1, std::memory_order_relaxed);
    }
    counters.chain_traversals.fetch_add(walked, std::memory_order_relaxed);
    counters.chain_length.record(walked);
    return found;
  }

  /// Quiescent-only: drop all chains (nodes are owned by the arenas).
  void clear() {
    for (std::size_t i = 0; i <= mask_; ++i)
      buckets_[i].store(nullptr, std::memory_order_relaxed);
  }

  /// Quiescent-or-racing re-insertion WITHOUT the duplicate check — used
  /// when re-populating after compression, where every state is known
  /// unique (the efficiency win the paper notes in §III-C).
  void insert_unchecked(Node* node) {
    const std::uint64_t fp = Traits::fingerprint(*node);
    std::atomic<Node*>& bucket = buckets_[fp & mask_];
    Node* head = bucket.load(std::memory_order_acquire);
    do {
      Traits::next(*node).store(head, std::memory_order_relaxed);
    } while (!bucket.compare_exchange_weak(head, node,
                                           std::memory_order_release,
                                           std::memory_order_acquire));
  }

  std::size_t bucket_count() const { return mask_ + 1; }

  mutable HashSetCounters counters;

 private:
  std::size_t mask_;
  std::unique_ptr<std::atomic<Node*>[]> buckets_;
};

}  // namespace sfa
