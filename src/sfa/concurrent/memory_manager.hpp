// Memory manager driving the three-phase construction (paper §III-C).
//
// Phase 1 (Normal):      states stored uncompressed; the manager watches the
//                        accounting tally against a threshold.
// Phase 2 (Compressing): the manager has raised the compression flag; each
//                        worker acknowledges, re-compresses the existing
//                        states and helps rebuild the hash table.  The old
//                        (uncompressed) arenas may be reclaimed only after
//                        EVERY worker has acknowledged.
// Phase 3 (Compressed):  construction resumes, compressing each new state.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>

#include "sfa/concurrent/arena.hpp"

namespace sfa {

enum class MemoryPhase : int { kNormal = 0, kCompressing = 1, kCompressed = 2 };

class MemoryManager {
 public:
  /// threshold_bytes == 0 disables compression entirely.
  explicit MemoryManager(std::size_t threshold_bytes, unsigned num_workers)
      : threshold_(threshold_bytes), num_workers_(num_workers),
        acks_(std::make_unique<std::atomic<bool>[]>(num_workers)) {
    for (unsigned i = 0; i < num_workers_; ++i)
      acks_[i].store(false, std::memory_order_relaxed);
  }

  MemoryAccounting& accounting() { return accounting_; }

  /// Called by workers on their allocation path.  Transitions
  /// kNormal -> kCompressing exactly once when usage crosses the threshold.
  /// Returns the phase the caller should operate in.
  MemoryPhase observe() {
    MemoryPhase p =
        static_cast<MemoryPhase>(phase_.load(std::memory_order_acquire));
    if (p == MemoryPhase::kNormal && threshold_ != 0 &&
        accounting_.used() >= threshold_) {
      int expected = static_cast<int>(MemoryPhase::kNormal);
      phase_.compare_exchange_strong(
          expected, static_cast<int>(MemoryPhase::kCompressing),
          std::memory_order_acq_rel);
      p = static_cast<MemoryPhase>(phase_.load(std::memory_order_acquire));
    }
    return p;
  }

  MemoryPhase phase() const {
    return static_cast<MemoryPhase>(phase_.load(std::memory_order_acquire));
  }

  /// Worker `tid` confirms it has entered the compression phase.
  void acknowledge(unsigned tid) {
    acks_[tid].store(true, std::memory_order_release);
  }

  bool all_acknowledged() const {
    for (unsigned i = 0; i < num_workers_; ++i)
      if (!acks_[i].load(std::memory_order_acquire)) return false;
    return true;
  }

  /// Marks the stop-the-world re-compression as finished (kCompressed).
  void finish_compression() {
    phase_.store(static_cast<int>(MemoryPhase::kCompressed),
                 std::memory_order_release);
  }

  std::size_t threshold() const { return threshold_; }

 private:
  const std::size_t threshold_;
  const unsigned num_workers_;
  MemoryAccounting accounting_;
  std::atomic<int> phase_{static_cast<int>(MemoryPhase::kNormal)};
  std::unique_ptr<std::atomic<bool>[]> acks_;
};

}  // namespace sfa
