// Michael–Scott multi-producer/multi-consumer queue.
//
// Stand-in for the Intel TBB concurrent_queue the paper compares against in
// §IV-B: every producer AND every consumer synchronizes on the shared
// head/tail pointers, so its coherence-traffic profile (true sharing on the
// queue's internal state) matches what the paper's perf-c2c analysis found
// for the TBB queue.  Experiment E5 contrasts it with the thread-local
// work-stealing queues.
//
// Reclamation: dequeued nodes are retired, not freed, until the queue is
// destroyed — this keeps the algorithm simple and safe (no hazard pointers)
// at the cost of memory proportional to total traffic, which is fine for a
// benchmark comparison structure.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "sfa/concurrent/counters.hpp"

namespace sfa {

class MpmcQueue {
 public:
  MpmcQueue() {
    Node* dummy = allocate(0);
    head_.store(dummy, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  ~MpmcQueue() {
    for (Node* n : all_nodes_) delete n;
  }

  void enqueue(std::uint64_t item) {
    Node* node = allocate(item);
    for (;;) {
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = tail->next.load(std::memory_order_acquire);
      if (tail != tail_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) {
        if (tail->next.compare_exchange_weak(next, node,
                                             std::memory_order_release,
                                             std::memory_order_acquire)) {
          tail_.compare_exchange_strong(tail, node, std::memory_order_release,
                                        std::memory_order_relaxed);
          counters.pushes.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        counters.cas_failures.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Help a lagging enqueuer swing the tail.
        tail_.compare_exchange_strong(tail, next, std::memory_order_release,
                                      std::memory_order_relaxed);
      }
    }
  }

  std::optional<std::uint64_t> dequeue() {
    for (;;) {
      Node* head = head_.load(std::memory_order_acquire);
      Node* tail = tail_.load(std::memory_order_acquire);
      Node* next = head->next.load(std::memory_order_acquire);
      if (head != head_.load(std::memory_order_acquire)) continue;
      if (next == nullptr) return std::nullopt;  // empty
      if (head == tail) {
        // Tail lagging behind; help.
        tail_.compare_exchange_strong(tail, next, std::memory_order_release,
                                      std::memory_order_relaxed);
        continue;
      }
      const std::uint64_t value = next->value;
      if (head_.compare_exchange_weak(head, next, std::memory_order_release,
                                      std::memory_order_acquire)) {
        counters.pops.fetch_add(1, std::memory_order_relaxed);
        return value;
      }
      counters.cas_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }

  mutable QueueCounters counters;

 private:
  struct Node {
    explicit Node(std::uint64_t v) : value(v) {}
    std::uint64_t value;
    std::atomic<Node*> next{nullptr};
  };

  Node* allocate(std::uint64_t v) {
    Node* n = new Node(v);
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    all_nodes_.push_back(n);
    return n;
  }

  alignas(64) std::atomic<Node*> head_;
  alignas(64) std::atomic<Node*> tail_;
  std::mutex alloc_mutex_;
  std::vector<Node*> all_nodes_;
};

}  // namespace sfa
