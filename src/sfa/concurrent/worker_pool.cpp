#include "sfa/concurrent/worker_pool.hpp"

#include <exception>
#include <optional>

#include "sfa/concurrent/ws_queue.hpp"

namespace sfa {

namespace {
// run() from inside a worker executes inline: a job enqueued by worker w
// could need worker w itself (static stripes bind tasks to it; stealing and
// guided workers all wait for job completion), which is busy running the
// enqueuing task — the nested call must not wait on the team.
thread_local bool t_inside_pool_worker = false;

thread_local DispatchContext t_dispatch_context;

/// Scoped assignment of the thread-local dispatch context — restores the
/// previous value so nested inline runs (a batched serve request scanning
/// through the pool's inline guard) don't clobber the outer job's context.
class ScopedDispatchContext {
 public:
  ScopedDispatchContext(sched::Policy policy, unsigned stride)
      : saved_(t_dispatch_context) {
    t_dispatch_context = {policy, stride};
  }
  ~ScopedDispatchContext() { t_dispatch_context = saved_; }

 private:
  DispatchContext saved_;
};
}  // namespace

const DispatchContext& current_dispatch_context() {
  return t_dispatch_context;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& th : team_) th.join();
}

void WorkerPool::ensure_workers(unsigned workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) return;
  while (team_.size() < workers) {
    const unsigned id = static_cast<unsigned>(team_.size());
    team_.emplace_back([this, id] { worker_main(id); });
  }
}

unsigned WorkerPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<unsigned>(team_.size());
}

void WorkerPool::set_policy(sched::Policy policy) {
  policy_.store(policy, std::memory_order_relaxed);
}

sched::Policy WorkerPool::policy() const {
  return policy_.load(std::memory_order_relaxed);
}

void WorkerPool::set_pin_mode(PinMode mode) {
  pin_mode_.store(mode, std::memory_order_relaxed);
  // Workers compare against this epoch after each claim, so already-parked
  // threads re-apply the mode on the next job they join.
  pin_epoch_.fetch_add(1, std::memory_order_release);
}

PinMode WorkerPool::pin_mode() const {
  return pin_mode_.load(std::memory_order_relaxed);
}

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerPoolStats s;
  s.dispatches = dispatches_;
  s.wakeups = wakeups_;
  s.steals = steals_;
  s.workers = static_cast<unsigned>(team_.size());
  s.pinned_workers = pinned_workers_.load(std::memory_order_relaxed);
  return s;
}

void WorkerPool::run_inline(unsigned tasks, const ChunkFn& fn) const {
  const ScopedDispatchContext ctx(policy_.load(std::memory_order_relaxed), 1);
  for (unsigned t = 0; t < tasks; ++t) fn(t, ChunkFn::kInlineWorker);
}

void WorkerPool::run(unsigned tasks, const ChunkFn& fn) {
  if (tasks == 0) return;
  if (tasks == 1 || t_inside_pool_worker) {
    run_inline(tasks, fn);
    return;
  }
  Job job;
  job.fn = &fn;
  job.num_tasks = tasks;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (team_.empty() || stop_) {
      lock.unlock();
      run_inline(tasks, fn);
      return;
    }
    job.stride = static_cast<unsigned>(team_.size());
    job.policy = policy_.load(std::memory_order_relaxed);
    job.taken.assign(job.stride, 0);
    if (job.policy == sched::Policy::kWorkStealing) {
      // Seed the per-worker deques round-robin while still the owner; the
      // queue_ publication under this mutex is the ownership handoff (the
      // pops in run_job_stealing happen-after these pushes).
      job.deques.resize(job.stride);
      for (unsigned w = 0; w < job.stride; ++w)
        job.deques[w] = std::make_unique<WorkStealingQueue>();
      for (unsigned t = 0; t < tasks; ++t)
        job.deques[t % job.stride]->push(t);
    }
    queue_.push_back(&job);
    ++dispatches_;
    work_cv_.notify_all();
    // Wait for completion AND for every participating worker to have left
    // the job: a stealing worker may still be scanning victim deques (job
    // memory) after the last task finished elsewhere.
    done_cv_.wait(lock, [&job] {
      return job.done == job.num_tasks && job.active == 0;
    });
    for (const auto& deque : job.deques)
      steals_ += deque->counters.steals.load(std::memory_order_relaxed);
    // Unlink before the stack frame dies; workers only reach the job
    // through queue_ (under this mutex) or through a claim they made
    // before done/active satisfied the predicate, so after this erase
    // nothing touches it.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i] == &job) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

void WorkerPool::run_job_static(Job* job, unsigned id, unsigned& ran,
                                std::exception_ptr& error) {
  for (unsigned t = id; t < job->num_tasks; t += job->stride) {
    try {
      (*job->fn)(t, id);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++ran;
  }
}

void WorkerPool::run_job_stealing(Job* job, unsigned id, unsigned& ran,
                                  std::exception_ptr& error) {
  WorkStealingQueue& own = *job->deques[id];
  for (;;) {
    std::optional<std::uint64_t> item = own.pop();
    for (unsigned k = 1; !item && k < job->stride; ++k)
      item = job->deques[(id + k) % job->stride]->steal();
    if (!item) {
      // Every deque observed empty or lost its race.  A lost CAS means the
      // winner holds that item and re-sweeps after running it, so no task
      // is orphaned by leaving here.
      return;
    }
    try {
      (*job->fn)(static_cast<unsigned>(*item), id);
    } catch (...) {
      if (!error) error = std::current_exception();
    }
    ++ran;
  }
}

void WorkerPool::run_job_guided(Job* job, unsigned id, unsigned& ran,
                                std::exception_ptr& error) {
  for (;;) {
    unsigned cur = job->next.load(std::memory_order_relaxed);
    if (cur >= job->num_tasks) return;
    // Guided self-scheduling: claim half an even share of what remains —
    // batches shrink geometrically toward 1, so early claims are cheap and
    // the tail stays balanced.
    const unsigned remaining = job->num_tasks - cur;
    unsigned batch = remaining / (2 * job->stride);
    if (batch == 0) batch = 1;
    const unsigned end = cur + batch;  // batch <= remaining, no overflow
    if (!job->next.compare_exchange_weak(cur, end, std::memory_order_relaxed))
      continue;
    for (unsigned t = cur; t < end; ++t) {
      try {
        (*job->fn)(t, id);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++ran;
    }
  }
}

void WorkerPool::worker_main(unsigned id) {
  t_inside_pool_worker = true;
  unsigned pin_epoch_seen = 0;
  bool pinned = false;
  std::unique_lock<std::mutex> lock(mutex_);
  bool woke_from_wait = false;
  for (;;) {
    Job* job = nullptr;
    for (Job* j : queue_) {
      const bool claimable =
          j->policy == sched::Policy::kStaticStripe
              // Stripe binding: worker id serves exactly the tasks
              // congruent to id mod stride — nothing to claim when the job
              // has fewer tasks than that.
              ? (id < j->stride && id < j->num_tasks && !j->taken[id])
              // Stealing/guided: any team member of the dispatch may join
              // while undone work remains.
              : (id < j->stride && !j->taken[id] && j->done < j->num_tasks);
      if (claimable) {
        job = j;
        break;
      }
    }
    if (job == nullptr) {
      // Claimable work is drained even after stop_ so a run() caller
      // blocked in done_cv_.wait() always completes before the join.
      if (stop_) return;
      work_cv_.wait(lock);
      woke_from_wait = true;
      continue;
    }
    if (woke_from_wait) {
      ++wakeups_;
      woke_from_wait = false;
    }
    job->taken[id] = 1;
    ++job->active;
    lock.unlock();

    const unsigned epoch = pin_epoch_.load(std::memory_order_acquire);
    if (epoch != pin_epoch_seen) {
      pin_epoch_seen = epoch;
      const bool now_pinned =
          apply_pin(pin_mode_.load(std::memory_order_relaxed), id);
      if (now_pinned != pinned) {
        pinned_workers_.fetch_add(now_pinned ? 1 : -1,
                                  std::memory_order_relaxed);
        pinned = now_pinned;
      }
    }

    unsigned ran = 0;
    std::exception_ptr error;
    {
      const ScopedDispatchContext ctx(job->policy, job->stride);
      switch (job->policy) {
        case sched::Policy::kStaticStripe:
          run_job_static(job, id, ran, error);
          break;
        case sched::Policy::kWorkStealing:
          run_job_stealing(job, id, ran, error);
          break;
        case sched::Policy::kGuided:
          run_job_guided(job, id, ran, error);
          break;
      }
    }

    lock.lock();
    if (error && !job->error) job->error = error;
    job->done += ran;
    --job->active;
    if (job->done == job->num_tasks && job->active == 0)
      done_cv_.notify_all();
  }
}

}  // namespace sfa
