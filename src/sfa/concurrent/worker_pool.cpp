#include "sfa/concurrent/worker_pool.hpp"

#include <exception>

namespace sfa {

namespace {
// run() from inside a worker executes inline: a stripe-bound job enqueued
// by worker w could need worker w itself, which is busy running the
// enqueuing task — the nested call must not wait on the team.
thread_local bool t_inside_pool_worker = false;
}  // namespace

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& th : team_) th.join();
}

void WorkerPool::ensure_workers(unsigned workers) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stop_) return;
  while (team_.size() < workers) {
    const unsigned id = static_cast<unsigned>(team_.size());
    team_.emplace_back([this, id] { worker_main(id); });
  }
}

unsigned WorkerPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<unsigned>(team_.size());
}

WorkerPoolStats WorkerPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerPoolStats s;
  s.dispatches = dispatches_;
  s.wakeups = wakeups_;
  s.workers = static_cast<unsigned>(team_.size());
  return s;
}

void WorkerPool::run_inline(unsigned tasks, const ChunkFn& fn) {
  for (unsigned t = 0; t < tasks; ++t) fn(t, ChunkFn::kInlineWorker);
}

void WorkerPool::run(unsigned tasks, const ChunkFn& fn) {
  if (tasks == 0) return;
  if (tasks == 1 || t_inside_pool_worker) {
    run_inline(tasks, fn);
    return;
  }
  Job job;
  job.fn = &fn;
  job.num_tasks = tasks;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (team_.empty() || stop_) {
      lock.unlock();
      run_inline(tasks, fn);
      return;
    }
    job.stride = static_cast<unsigned>(team_.size());
    job.taken.assign(job.stride, 0);
    queue_.push_back(&job);
    ++dispatches_;
    work_cv_.notify_all();
    done_cv_.wait(lock, [&job] { return job.done == job.num_tasks; });
    // Unlink before the stack frame dies; workers only reach the job
    // through queue_ (under this mutex) or through a stripe they claimed
    // before done hit num_tasks, so after this erase nothing touches it.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i] == &job) {
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
  }
  if (job.error) std::rethrow_exception(job.error);
}

void WorkerPool::worker_main(unsigned id) {
  t_inside_pool_worker = true;
  std::unique_lock<std::mutex> lock(mutex_);
  bool woke_from_wait = false;
  for (;;) {
    Job* job = nullptr;
    for (Job* j : queue_) {
      if (id < j->stride && id < j->num_tasks && !j->taken[id]) {
        job = j;
        break;
      }
    }
    if (job == nullptr) {
      // Claimable stripes are drained even after stop_ so a run() caller
      // blocked in done_cv_.wait() always completes before the join.
      if (stop_) return;
      work_cv_.wait(lock);
      woke_from_wait = true;
      continue;
    }
    if (woke_from_wait) {
      ++wakeups_;
      woke_from_wait = false;
    }
    job->taken[id] = 1;
    lock.unlock();

    unsigned ran = 0;
    std::exception_ptr error;
    for (unsigned t = id; t < job->num_tasks; t += job->stride) {
      try {
        (*job->fn)(t, id);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
      ++ran;
    }

    lock.lock();
    if (error && !job->error) job->error = error;
    job->done += ran;
    if (job->done == job->num_tasks) done_cv_.notify_all();
  }
}

}  // namespace sfa
