// Contention instrumentation (software stand-in for the paper's perf-c2c
// HITM measurements, experiment E5).
//
// Every CAS retry on a shared cache line corresponds to a coherence
// transfer, so counting failed CAS attempts and steal conflicts gives a
// machine-independent proxy for the HITM loads the paper measured.
#pragma once

#include <atomic>
#include <cstdint>

namespace sfa {

struct QueueCounters {
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> pops{0};
  std::atomic<std::uint64_t> steals{0};          // successful steals
  std::atomic<std::uint64_t> steal_failures{0};  // CAS lost or empty race
  std::atomic<std::uint64_t> cas_failures{0};    // any failed CAS retry

  void reset() {
    pushes = pops = steals = steal_failures = cas_failures = 0;
  }
};

struct HashSetCounters {
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> duplicates{0};       // state already present
  std::atomic<std::uint64_t> fp_collisions{0};    // equal fp, different state
  std::atomic<std::uint64_t> cas_failures{0};
  std::atomic<std::uint64_t> chain_traversals{0}; // nodes compared

  void reset() {
    inserts = duplicates = fp_collisions = cas_failures = chain_traversals = 0;
  }
};

}  // namespace sfa
