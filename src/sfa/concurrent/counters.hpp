// Contention instrumentation (software stand-in for the paper's perf-c2c
// HITM measurements, experiment E5).
//
// Every CAS retry on a shared cache line corresponds to a coherence
// transfer, so counting failed CAS attempts and steal conflicts gives a
// machine-independent proxy for the HITM loads the paper measured.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace sfa {

/// Power-of-two-bucketed distribution, embedded in the counter blocks so the
/// lock-free substrates can record distributions (chain lengths, steal
/// latencies) without depending on the obs layer.  Bucket semantics match
/// obs::Histogram exactly — bucket 0 counts zeros, bucket i counts values in
/// [2^(i-1), 2^i) — so the builders merge these into the metrics registry
/// bucket-for-bucket (obs::Histogram::merge_buckets).
struct Log2Histogram {
  static constexpr int kBuckets = 64;  // full uint64 range, same as obs

  std::atomic<std::uint64_t> buckets[kBuckets] = {};
  std::atomic<std::uint64_t> sum{0};

  static int bucket_index(std::uint64_t v) {
    if (v == 0) return 0;
    const int idx = std::bit_width(v);
    return idx >= kBuckets ? kBuckets - 1 : idx;
  }

  void record(std::uint64_t v) {
    buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(v, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets) total += b.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
    sum.store(0, std::memory_order_relaxed);
  }
};

struct QueueCounters {
  std::atomic<std::uint64_t> pushes{0};
  std::atomic<std::uint64_t> pops{0};
  std::atomic<std::uint64_t> steals{0};          // successful steals
  std::atomic<std::uint64_t> steal_failures{0};  // CAS lost or empty race
  std::atomic<std::uint64_t> cas_failures{0};    // any failed CAS retry
  /// TSC cycles per contended steal attempt (successful or CAS-lost;
  /// empty-queue probes are excluded — idle spinning would swamp the
  /// distribution without measuring any contention).
  Log2Histogram steal_cycles;

  void reset() {
    pushes = pops = steals = steal_failures = cas_failures = 0;
    steal_cycles.reset();
  }
};

struct HashSetCounters {
  std::atomic<std::uint64_t> inserts{0};
  std::atomic<std::uint64_t> duplicates{0};       // state already present
  std::atomic<std::uint64_t> fp_collisions{0};    // equal fp, different state
  std::atomic<std::uint64_t> cas_failures{0};
  std::atomic<std::uint64_t> chain_traversals{0}; // nodes compared
  /// Bucket-chain length walked per insertion (the §III-A "expected chain
  /// length ~1" claim, measured).
  Log2Histogram chain_length;

  void reset() {
    inserts = duplicates = fp_collisions = cas_failures = chain_traversals = 0;
    chain_length.reset();
  }
};

}  // namespace sfa
