#include "sfa/concurrent/arena.hpp"

namespace sfa {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  // Align the cursor.
  const auto addr = reinterpret_cast<std::uintptr_t>(cursor_);
  const std::size_t pad = (align - (addr & (align - 1))) & (align - 1);

  if (pad + bytes > remaining_) {
    const std::size_t chunk =
        bytes + align <= chunk_bytes_ ? chunk_bytes_ : bytes + align;
    chunks_.push_back(std::make_unique<std::byte[]>(chunk));
    cursor_ = chunks_.back().get();
    remaining_ = chunk;
    reserved_ += chunk;
    if (accounting_) accounting_->add(chunk);
    return allocate(bytes, align);  // recurses exactly once
  }
  cursor_ += pad;
  remaining_ -= pad;
  void* out = cursor_;
  cursor_ += bytes;
  remaining_ -= bytes;
  return out;
}

void Arena::release_all() {
  if (accounting_ && reserved_ != 0) accounting_->sub(reserved_);
  chunks_.clear();
  cursor_ = nullptr;
  remaining_ = 0;
  reserved_ = 0;
}

}  // namespace sfa
