// Per-thread bump arenas with global byte accounting.
//
// SFA states are allocated append-only during construction, so each worker
// gets a private chunked bump allocator: no allocator locks on the hot path,
// and a whole generation of states (the uncompressed representation) can be
// reclaimed at once after the compression phase — the paper's "uncompressed
// SFA states can only be reclaimed by the memory manager once all threads
// confirmed to be in the compression phase" (§III-C).
//
// Every chunk allocation reports to a shared MemoryAccounting, which the
// MemoryManager polls to decide when construction must switch to the
// compression phase.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sfa {

/// Process-visible allocation tally shared by a set of arenas.
class MemoryAccounting {
 public:
  void add(std::size_t bytes) {
    used_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void sub(std::size_t bytes) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  std::size_t used() const { return used_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::size_t> used_{0};
};

/// Single-owner chunked bump allocator.  Not thread-safe by design — one
/// arena per worker thread.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 1u << 20;  // 1 MiB

  explicit Arena(MemoryAccounting* accounting = nullptr,
                 std::size_t chunk_bytes = kDefaultChunkBytes)
      : accounting_(accounting), chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  ~Arena() { release_all(); }

  /// Allocate `bytes` aligned to `align` (power of two, <= 64).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Bytes requested from the OS (chunk granularity).
  std::size_t reserved_bytes() const { return reserved_; }

  /// Drop every chunk (states allocated here become invalid).
  void release_all();

 private:
  MemoryAccounting* accounting_;
  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* cursor_ = nullptr;
  std::size_t remaining_ = 0;
  std::size_t reserved_ = 0;
};

}  // namespace sfa
