// Generation-counting spin barrier.
//
// Used only for the compression-phase rendezvous (twice per phase change),
// so a simple spinning barrier is the right tool: no futex syscalls, and the
// wait is always short because every worker checks the phase flag between
// work items.
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace sfa {

/// Polite busy-wait hint.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#endif
}

class SpinBarrier {
 public:
  explicit SpinBarrier(unsigned participants) : n_(participants) {}

  void wait() {
    const unsigned gen = generation_.load(std::memory_order_acquire);
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
      count_.store(0, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) cpu_pause();
    }
  }

 private:
  const unsigned n_;
  alignas(64) std::atomic<unsigned> count_{0};
  alignas(64) std::atomic<unsigned> generation_{0};
};

}  // namespace sfa
