// Global start-phase queue (paper §III-B2).
//
// At the start of SFA construction only the single start state exists, so
// thread-local queues would degenerate into all-thieves contention.  The
// paper therefore begins with ONE global queue: enqueues synchronize on the
// back position with a CAS, while dequeues are statically partitioned —
// thread t owns slots t, t+T, t+2T, ... and consumes them without any
// synchronization against other consumers.  Once a threshold number of SFA
// states exists, the builder switches to thread-local queues with stealing.
//
// Items are non-zero 64-bit values (pointers); slot value 0 means
// "not yet published".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>

#include "sfa/concurrent/counters.hpp"

namespace sfa {

class GlobalQueue {
 public:
  explicit GlobalQueue(std::size_t capacity)
      : capacity_(capacity),
        slots_(std::make_unique<std::atomic<std::uint64_t>[]>(capacity)) {
    for (std::size_t i = 0; i < capacity_; ++i)
      slots_[i].store(0, std::memory_order_relaxed);
  }

  /// Reserve a slot with a CAS on the back position and publish the item.
  /// Returns false when the queue is full (the builder then switches phase).
  bool try_enqueue(std::uint64_t item) {
    std::size_t b = back_.load(std::memory_order_relaxed);
    for (;;) {
      if (b >= capacity_) return false;
      if (back_.compare_exchange_weak(b, b + 1, std::memory_order_acq_rel,
                                      std::memory_order_relaxed)) {
        slots_[b].store(item, std::memory_order_release);
        counters.pushes.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      counters.cas_failures.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Per-thread cursor for the static dequeue partition.
  class Cursor {
   public:
    Cursor(unsigned thread_id, unsigned num_threads)
        : next_(thread_id), stride_(num_threads) {}

    /// Next statically-owned item, or nullopt when none is available *yet*.
    /// `exhausted` is set when no further item can ever appear for this
    /// thread (the queue is closed and the cursor passed the back).
    std::optional<std::uint64_t> take(GlobalQueue& q, bool& exhausted) {
      exhausted = false;
      const std::size_t back = q.back_.load(std::memory_order_acquire);
      if (next_ >= back) {
        exhausted = q.closed_.load(std::memory_order_acquire) &&
                    next_ >= q.back_.load(std::memory_order_acquire);
        return std::nullopt;
      }
      // The producer CASed back_ past this slot, so the publish store is
      // coming; spin until it lands (yield if the producer got descheduled).
      std::uint64_t v;
      unsigned spins = 0;
      while ((v = q.slots_[next_].load(std::memory_order_acquire)) == 0) {
        if (++spins >= 64) std::this_thread::yield();
      }
      next_ += stride_;
      q.counters.pops.fetch_add(1, std::memory_order_relaxed);
      return v;
    }

   private:
    std::size_t next_;
    const std::size_t stride_;
  };

  /// Producers call this when they stop enqueuing here (phase switch);
  /// consumers then drain their remaining static share and move on.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t size() const { return back_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return capacity_; }

  mutable QueueCounters counters;

 private:
  const std::size_t capacity_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  alignas(64) std::atomic<std::size_t> back_{0};
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace sfa
