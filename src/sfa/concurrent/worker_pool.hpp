// Persistent worker pool for per-call chunk dispatch (matching substrate).
//
// The parallel matchers used to spawn fresh std::threads on every call —
// per *block* in the streaming case, which is exactly the long-running
// IDS/network workload the SFA paper motivates.  This pool parks a fixed
// team on a condition variable and hands each call's chunks to it, so a
// streaming session pays thread creation once, not per block.
//
// Dispatch is stripe-bound, not work-stolen: task t of a job enqueued with
// team size S runs on worker (t mod S), and only there.  Chunk matching
// gives every worker the same amount of scan work by construction (chunks
// are equal-sized), so stealing buys nothing — and the binding guarantees
// that N <= S chunks land on N *distinct* threads even when the OS
// serializes them onto one core, which the trace validator's worker-track
// count relies on (`sfa_trace_check --expect-workers N`).
//
// This library must stay free of sfa_obs dependencies (same rule as the
// queues and the arena); trace/metrics glue lives in the scan Executor.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace sfa {

/// Non-owning callable reference `void(unsigned task, unsigned worker)`.
/// The referenced callable must outlive the WorkerPool::run() call that
/// uses it — trivially true because run() blocks until every task ran.
/// `worker` is the executing pool thread's index, or kInlineWorker when
/// the pool ran the task inline on the caller.
class ChunkFn {
 public:
  static constexpr unsigned kInlineWorker = ~0u;

  template <typename F>
  ChunkFn(const F& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* o, unsigned task, unsigned worker) {
          (*static_cast<const F*>(o))(task, worker);
        }) {}

  void operator()(unsigned task, unsigned worker) const {
    call_(obj_, task, worker);
  }

 private:
  void* obj_;
  void (*call_)(void*, unsigned, unsigned);
};

struct WorkerPoolStats {
  std::uint64_t dispatches = 0;  // jobs handed to the parked team
  std::uint64_t wakeups = 0;     // CV wakeups that found claimable work
  unsigned workers = 0;
};

/// A growable team of parked threads.  run() is the only work entry point;
/// it blocks until every task of the call completed, so the per-call chunk
/// buffers callers capture by reference stay valid.  Concurrent run() calls
/// from different threads are safe and interleave at stripe granularity.
/// The pool must outlive every run() call (do not destroy it while another
/// thread is still dispatching).
class WorkerPool {
 public:
  WorkerPool() = default;
  explicit WorkerPool(unsigned workers) { ensure_workers(workers); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Grow the team to at least `workers` threads (never shrinks).
  void ensure_workers(unsigned workers);

  unsigned num_workers() const;

  /// Execute fn(t, worker) for every t in [0, tasks).  Blocks until all
  /// tasks ran.  Falls back to inline execution on the caller when the
  /// team is empty, stopped, or there is only one task; a run() from
  /// inside a pool worker also executes inline (a worker waiting on its
  /// own team would deadlock).  The first exception thrown by a task is
  /// rethrown here after the remaining tasks finished.
  void run(unsigned tasks, const ChunkFn& fn);

  WorkerPoolStats stats() const;

 private:
  struct Job {
    const ChunkFn* fn;
    unsigned num_tasks;
    unsigned stride;           // team size at enqueue; task t -> worker t%stride
    std::vector<char> taken;   // per-stripe claim flags, indexed by worker
    unsigned done = 0;         // completed tasks
    std::exception_ptr error;  // first failure, rethrown by run()
  };

  void worker_main(unsigned id);
  static void run_inline(unsigned tasks, const ChunkFn& fn);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers park here
  std::condition_variable done_cv_;  // run() callers park here
  std::vector<std::thread> team_;
  std::vector<Job*> queue_;  // jobs live on their caller's stack
  std::uint64_t dispatches_ = 0;
  std::uint64_t wakeups_ = 0;
  bool stop_ = false;
};

}  // namespace sfa
