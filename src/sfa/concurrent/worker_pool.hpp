// Persistent worker pool for per-call chunk dispatch (matching substrate).
//
// The parallel matchers used to spawn fresh std::threads on every call —
// per *block* in the streaming case, which is exactly the long-running
// IDS/network workload the SFA paper motivates.  This pool parks a fixed
// team on a condition variable and hands each call's chunks to it, so a
// streaming session pays thread creation once, not per block.
//
// How a job's tasks map onto the team is the sched::Policy seam
// (scheduler.hpp).  The default, static-stripe, is the pool's historical
// behavior: task t of a job enqueued with team size S runs on worker
// (t mod S), and only there — equal-sized chunks give every worker the same
// scan work by construction, and the binding guarantees that N <= S chunks
// land on N *distinct* threads even when the OS serializes them onto one
// core, which the trace validator's worker-track count relies on
// (`sfa_trace_check --expect-workers N`).  Work-stealing and guided
// dispatch trade that distinctness guarantee for load balance under
// heterogeneous chunk costs; `sfa_trace_check --expect-scheduler` is how a
// trace consumer opts into the relaxed invariant.
//
// This library must stay free of sfa_obs dependencies (same rule as the
// queues and the arena); trace/metrics glue lives in the scan Executor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sfa/concurrent/scheduler.hpp"
#include "sfa/support/numa.hpp"

namespace sfa {

class WorkStealingQueue;

/// Non-owning callable reference `void(unsigned task, unsigned worker)`.
/// The referenced callable must outlive the WorkerPool::run() call that
/// uses it — trivially true because run() blocks until every task ran.
/// `worker` is the executing pool thread's index, or kInlineWorker when
/// the pool ran the task inline on the caller.
class ChunkFn {
 public:
  static constexpr unsigned kInlineWorker = ~0u;

  template <typename F>
  ChunkFn(const F& fn)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&fn))),
        call_([](void* o, unsigned task, unsigned worker) {
          (*static_cast<const F*>(o))(task, worker);
        }) {}

  void operator()(unsigned task, unsigned worker) const {
    call_(obj_, task, worker);
  }

 private:
  void* obj_;
  void (*call_)(void*, unsigned, unsigned);
};

struct WorkerPoolStats {
  std::uint64_t dispatches = 0;  // jobs handed to the parked team
  std::uint64_t wakeups = 0;     // CV wakeups that found claimable work
  std::uint64_t steals = 0;      // successful deque steals (work-stealing)
  unsigned workers = 0;
  unsigned pinned_workers = 0;   // workers currently bound to a NUMA node
};

/// How the task currently executing was dispatched — read by the trace
/// instrumentation in the scan layer to stamp `scheduler`/`stride` args on
/// chunk spans without widening the ChunkFn signature.  Thread-local:
/// meaningful only inside a task body (defaults to {static-stripe, 1} on
/// ordinary threads and for inline execution).
struct DispatchContext {
  sched::Policy policy = sched::Policy::kStaticStripe;
  unsigned stride = 1;
};
const DispatchContext& current_dispatch_context();

/// A growable team of parked threads.  run() is the only work entry point;
/// it blocks until every task of the call completed, so the per-call chunk
/// buffers callers capture by reference stay valid.  Concurrent run() calls
/// from different threads are safe and interleave at claim granularity.
/// The pool must outlive every run() call (do not destroy it while another
/// thread is still dispatching).
class WorkerPool {
 public:
  WorkerPool() = default;
  explicit WorkerPool(unsigned workers) { ensure_workers(workers); }
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;
  ~WorkerPool();

  /// Grow the team to at least `workers` threads (never shrinks).
  void ensure_workers(unsigned workers);

  unsigned num_workers() const;

  /// Scheduling policy for jobs enqueued AFTER the call (in-flight jobs
  /// keep the policy they were dispatched with).
  void set_policy(sched::Policy policy);
  sched::Policy policy() const;

  /// NUMA pin mode; workers (re-)apply it before their next claim, so the
  /// call affects already-parked threads too.
  void set_pin_mode(PinMode mode);
  PinMode pin_mode() const;

  /// Execute fn(t, worker) for every t in [0, tasks).  Blocks until all
  /// tasks ran.  Falls back to inline execution on the caller when the
  /// team is empty, stopped, or there is only one task; a run() from
  /// inside a pool worker also executes inline (a worker waiting on its
  /// own team would deadlock) — under every policy, including a stolen
  /// task that recursively dispatches.  The first exception thrown by a
  /// task is rethrown here after the remaining tasks finished.
  void run(unsigned tasks, const ChunkFn& fn);

  WorkerPoolStats stats() const;

 private:
  struct Job {
    const ChunkFn* fn;
    unsigned num_tasks;
    unsigned stride;           // team size at enqueue
    sched::Policy policy = sched::Policy::kStaticStripe;
    std::vector<char> taken;   // per-worker participation flags
    unsigned done = 0;         // completed tasks
    unsigned active = 0;       // workers currently inside the job
    std::exception_ptr error;  // first failure, rethrown by run()
    /// Work-stealing state: one Chase-Lev deque per worker, seeded
    /// round-robin by the run() caller BEFORE the job is published under
    /// the mutex (the publication is what hands deque ownership to the
    /// workers).  No pushes happen afterwards, so emptiness is monotone
    /// and the drain loops terminate.
    std::vector<std::unique_ptr<WorkStealingQueue>> deques;
    /// Guided self-scheduling cursor: next unclaimed task index.
    std::atomic<unsigned> next{0};
  };

  void worker_main(unsigned id);
  void run_inline(unsigned tasks, const ChunkFn& fn) const;
  static void run_job_static(Job* job, unsigned id, unsigned& ran,
                             std::exception_ptr& error);
  static void run_job_stealing(Job* job, unsigned id, unsigned& ran,
                               std::exception_ptr& error);
  static void run_job_guided(Job* job, unsigned id, unsigned& ran,
                             std::exception_ptr& error);

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers park here
  std::condition_variable done_cv_;  // run() callers park here
  std::vector<std::thread> team_;
  std::vector<Job*> queue_;  // jobs live on their caller's stack
  std::uint64_t dispatches_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t steals_ = 0;  // summed from finished jobs' deque counters
  std::atomic<sched::Policy> policy_{sched::Policy::kStaticStripe};
  /// Pin state: workers compare their local epoch against pin_epoch_ before
  /// each claim and re-apply the mode when it moved, so set_pin_mode()
  /// reaches threads that were created (and parked) earlier.
  std::atomic<PinMode> pin_mode_{PinMode::kNone};
  std::atomic<unsigned> pin_epoch_{0};
  std::atomic<unsigned> pinned_workers_{0};
  bool stop_ = false;
};

}  // namespace sfa
