// Thread-local work queue with lock-free stealing (paper §III-B2).
//
// Each worker owns one queue of SFA-state work items.  The owner pushes and
// pops without contending with anyone (single producer, single consumer);
// thieves remove items from the opposite end with a CAS, making the queue
// single-producer/multiple-consumer only while theft is happening — exactly
// the structure the paper credits for its low HITM rate versus a
// multi-producer/multi-consumer queue (§IV-B).
//
// The implementation is the Chase–Lev dynamic circular deque with the
// C11-memory-model formulation of Lê et al. (PPoPP 2013).  Items are 64-bit
// (the builders store pointers).  Retired arrays are kept until destruction
// so racing thieves never observe freed memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sfa/concurrent/counters.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

class WorkStealingQueue {
 public:
  explicit WorkStealingQueue(std::size_t initial_capacity = 256)
      : array_(new Array(round_up_pow2(initial_capacity))) {
    retired_.emplace_back(array_.load(std::memory_order_relaxed));
  }

  WorkStealingQueue(const WorkStealingQueue&) = delete;
  WorkStealingQueue& operator=(const WorkStealingQueue&) = delete;

  ~WorkStealingQueue() = default;  // retired_ owns every array ever used

  /// Owner-only: append a work item.
  void push(std::uint64_t item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    // Release store (rather than Lê et al.'s release fence + relaxed store):
    // equivalent publication semantics, and standalone fences are invisible
    // to ThreadSanitizer, which otherwise reports false races on the
    // pointed-to work items.
    bottom_.store(b + 1, std::memory_order_release);
    counters.pushes.fetch_add(1, std::memory_order_relaxed);
  }

  /// Owner-only: take the most recently pushed item (LIFO fast path).
  std::optional<std::uint64_t> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);

    if (t > b) {
      // Deque was empty; restore.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    std::uint64_t item = a->get(b);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        counters.cas_failures.fetch_add(1, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    counters.pops.fetch_add(1, std::memory_order_relaxed);
    return item;
  }

  /// Any thread: steal the oldest item (FIFO end).
  std::optional<std::uint64_t> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;  // empty — not a conflict

    // The empty fast path above stays timer-free; only attempts that touch
    // the contended cache lines are measured.
    const std::uint64_t tsc0 = read_tsc();
    Array* a = array_.load(std::memory_order_acquire);
    const std::uint64_t item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      counters.steal_failures.fetch_add(1, std::memory_order_relaxed);
      counters.cas_failures.fetch_add(1, std::memory_order_relaxed);
      counters.steal_cycles.record(read_tsc() - tsc0);
      return std::nullopt;  // lost the race
    }
    counters.steals.fetch_add(1, std::memory_order_relaxed);
    counters.steal_cycles.record(read_tsc() - tsc0);
    return item;
  }

  /// Approximate size (exact when quiescent).
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

  mutable QueueCounters counters;

 private:
  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<std::uint64_t>[]>(cap)) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;

    std::uint64_t get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, std::uint64_t v) {
      slots[static_cast<std::size_t>(i) & mask].store(
          v, std::memory_order_relaxed);
    }
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 16;
    while (p < v) p <<= 1;
    return p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto bigger = std::make_unique<Array>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    Array* raw = bigger.get();
    retired_.push_back(std::move(bigger));
    array_.store(raw, std::memory_order_release);
    return raw;
  }

  // Hot fields on separate cache lines: `top_` is hammered by thieves,
  // `bottom_` only by the owner.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  std::vector<std::unique_ptr<Array>> retired_;  // owner-only mutation (grow)
};

}  // namespace sfa
