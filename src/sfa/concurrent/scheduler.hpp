// Scheduling policy of the persistent WorkerPool — the "which worker runs
// task t" seam of the dispatch layer.
//
// The pool's original dispatch was a hard-coded stripe map (task t of a job
// enqueued with team size S runs on worker t%S, and only there).  That is
// the right default — equal-sized chunks give every worker the same scan
// work by construction, and the binding guarantees N <= S chunks land on N
// *distinct* threads, which `sfa_trace_check --expect-workers` relies on —
// but on big multicores with heterogeneous chunk costs (d2fa chase storms,
// narrowed fallback chunks, lazy interning bursts) a static stripe leaves
// the imbalance the PR 7 profiler measures sitting on the table.  The
// policies:
//
//   kStaticStripe  bit-for-bit the historical t%S binding (default)
//   kWorkStealing  per-worker Chase-Lev deques seeded round-robin; a worker
//                  drains its own deque LIFO and steals FIFO from victims
//                  when empty (same structure the parallel builder uses for
//                  SFA states, here applied to chunk indices)
//   kGuided        guided self-scheduling: workers claim geometrically
//                  shrinking batches (remaining / 2*team) off a shared
//                  cursor — large batches early for low overhead, small
//                  batches late to even out the tail
//
// The numeric values are a wire format: they are stamped as the `scheduler`
// arg on match-chunk trace spans and validated by sfa_trace_check
// --expect-scheduler, so they must stay stable.
#pragma once

#include <cstdint>
#include <string>

namespace sfa::sched {

enum class Policy : std::uint8_t {
  kStaticStripe = 0,
  kWorkStealing = 1,
  kGuided = 2,
};

/// Number of valid Policy values (exclusive upper bound of the `scheduler`
/// span arg).
inline constexpr unsigned kNumPolicies = 3;

inline const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kStaticStripe: return "static-stripe";
    case Policy::kWorkStealing: return "work-stealing";
    case Policy::kGuided: return "guided";
  }
  return "?";
}

/// Parse a CLI spelling ("static-stripe", "work-stealing", "guided").
/// Returns false (leaving `out` untouched) on an unknown name.
inline bool parse_policy(const std::string& name, Policy& out) {
  if (name == "static-stripe") {
    out = Policy::kStaticStripe;
    return true;
  }
  if (name == "work-stealing") {
    out = Policy::kWorkStealing;
    return true;
  }
  if (name == "guided") {
    out = Policy::kGuided;
    return true;
  }
  return false;
}

}  // namespace sfa::sched
