// Alphabets map external characters onto dense symbol ids [0, size).
//
// Everything downstream (regex compilation, DFA tables, SFA construction,
// matching) operates on symbol ids, so transition tables stay dense and the
// parameterized-transposition kernels see contiguous rows of |Sigma| cells.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sfa {

using Symbol = std::uint8_t;
inline constexpr Symbol kNoSymbol = 0xFF;

class Alphabet {
 public:
  /// Builds an alphabet from the distinct characters of `chars`, in order.
  explicit Alphabet(std::string_view chars);

  /// The 20 one-letter amino-acid codes (the PROSITE alphabet; Fig. 1).
  static const Alphabet& amino();

  /// A, C, G, T.
  static const Alphabet& dna();

  /// Printable ASCII (space..~), for text/signature examples.
  static const Alphabet& ascii_printable();

  unsigned size() const { return static_cast<unsigned>(chars_.size()); }

  /// Symbol id for a character, or kNoSymbol when not in the alphabet.
  Symbol symbol_of(char c) const {
    return to_symbol_[static_cast<unsigned char>(c)];
  }

  bool contains(char c) const { return symbol_of(c) != kNoSymbol; }

  char char_of(Symbol s) const { return chars_[s]; }

  const std::string& chars() const { return chars_; }

  /// Encode a text into symbol ids; throws std::invalid_argument on a
  /// character outside the alphabet.
  std::vector<Symbol> encode(std::string_view text) const;

  /// Decode symbol ids back to text.
  std::string decode(const std::vector<Symbol>& symbols) const;

 private:
  std::string chars_;
  std::array<Symbol, 256> to_symbol_;
};

}  // namespace sfa
