#include "sfa/automata/regex_parser.hpp"

#include <cctype>

namespace sfa {

namespace {

class Parser {
 public:
  Parser(std::string_view pattern, const Alphabet& alphabet)
      : src_(pattern), alphabet_(alphabet) {}

  Regex parse() {
    Regex r = parse_alt();
    if (!at_end()) fail("unexpected trailing input");
    return r;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }
  char take() { return src_[pos_++]; }
  [[noreturn]] void fail(const std::string& msg) const {
    throw RegexParseError(msg, pos_);
  }

  Symbol symbol_for(char c) const {
    const Symbol s = alphabet_.symbol_of(c);
    if (s == kNoSymbol)
      throw RegexParseError(std::string("character '") + c +
                                "' not in alphabet",
                            pos_);
    return s;
  }

  Regex parse_alt() {
    std::vector<Regex> branches;
    branches.push_back(parse_concat());
    while (!at_end() && peek() == '|') {
      take();
      branches.push_back(parse_concat());
    }
    return rx::alt(std::move(branches));
  }

  Regex parse_concat() {
    std::vector<Regex> parts;
    while (!at_end() && peek() != '|' && peek() != ')')
      parts.push_back(parse_repeat());
    return rx::cat(std::move(parts));
  }

  Regex parse_repeat() {
    Regex r = parse_atom();
    while (!at_end()) {
      const char c = peek();
      if (c == '*') {
        take();
        r = rx::star(std::move(r));
      } else if (c == '+') {
        take();
        r = rx::plus(std::move(r));
      } else if (c == '?') {
        take();
        r = rx::opt(std::move(r));
      } else if (c == '{') {
        take();
        const int lo = parse_int();
        int hi = lo;
        if (!at_end() && peek() == ',') {
          take();
          hi = (!at_end() && peek() == '}') ? kUnbounded : parse_int();
        }
        if (at_end() || take() != '}') fail("expected '}'");
        if (hi != kUnbounded && hi < lo) fail("repeat bounds reversed");
        r = rx::repeat(std::move(r), lo, hi);
      } else {
        break;
      }
    }
    return r;
  }

  int parse_int() {
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("expected number");
    long v = 0;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      v = v * 10 + (take() - '0');
      if (v > 100000) fail("repeat count too large");
    }
    return static_cast<int>(v);
  }

  Regex parse_atom() {
    if (at_end()) fail("expected atom");
    const char c = take();
    switch (c) {
      case '(': {
        Regex inner = parse_alt();
        if (at_end() || take() != ')') fail("expected ')'");
        return inner;
      }
      case '[':
        return rx::cls(parse_class());
      case '.':
        return rx::any(alphabet_.size());
      case '\\': {
        if (at_end()) fail("dangling escape");
        return rx::sym(symbol_for(take()));
      }
      case '*':
      case '+':
      case '?':
      case '{':
      case '}':
      case ')':
      case '|':
        --pos_;
        fail(std::string("unexpected metacharacter '") + c + "'");
      default:
        return rx::sym(symbol_for(c));
    }
  }

  CharClass parse_class() {
    bool negate = false;
    if (!at_end() && peek() == '^') {
      take();
      negate = true;
    }
    CharClass cls;
    bool any_member = false;
    while (!at_end() && peek() != ']') {
      char lo = take();
      if (lo == '\\') {
        if (at_end()) fail("dangling escape in class");
        lo = take();
      }
      char hi = lo;
      if (!at_end() && peek() == '-' && pos_ + 1 < src_.size() &&
          src_[pos_ + 1] != ']') {
        take();  // '-'
        hi = take();
        if (hi == '\\') {
          if (at_end()) fail("dangling escape in class");
          hi = take();
        }
      }
      if (hi < lo) fail("character range reversed");
      if (lo == hi) {
        cls.add(symbol_for(lo));  // single char must be in the alphabet
      } else {
        // Range semantics over sparse alphabets: all alphabet characters
        // within [lo, hi] (e.g. [A-G] over amino acids skips B).
        bool any_in_range = false;
        for (char ch = lo;; ++ch) {
          if (alphabet_.contains(ch)) {
            cls.add(alphabet_.symbol_of(ch));
            any_in_range = true;
          }
          if (ch == hi) break;
        }
        if (!any_in_range) fail("character range outside alphabet");
      }
      any_member = true;
    }
    if (at_end() || take() != ']') fail("expected ']'");
    if (!any_member) fail("empty character class");
    return negate ? cls.negated(alphabet_.size()) : cls;
  }

  std::string_view src_;
  const Alphabet& alphabet_;
  std::size_t pos_ = 0;
};

}  // namespace

Regex parse_regex(std::string_view pattern, const Alphabet& alphabet) {
  return Parser(pattern, alphabet).parse();
}

std::string regex_to_string(const Regex& r, const Alphabet& alphabet) {
  switch (r.kind) {
    case RegexKind::kEpsilon:
      return "()";
    case RegexKind::kClass: {
      if (r.cls.count() == 1) {
        for (unsigned s = 0; s < alphabet.size(); ++s)
          if (r.cls.test(static_cast<Symbol>(s)))
            return std::string(1, alphabet.char_of(static_cast<Symbol>(s)));
      }
      if (r.cls.count() == alphabet.size()) return ".";
      std::string out = "[";
      for (unsigned s = 0; s < alphabet.size(); ++s)
        if (r.cls.test(static_cast<Symbol>(s)))
          out.push_back(alphabet.char_of(static_cast<Symbol>(s)));
      out.push_back(']');
      return out;
    }
    case RegexKind::kConcat: {
      std::string out;
      for (const auto& c : r.children) {
        const bool paren = c.kind == RegexKind::kAlt;
        if (paren) out.push_back('(');
        out += regex_to_string(c, alphabet);
        if (paren) out.push_back(')');
      }
      return out;
    }
    case RegexKind::kAlt: {
      std::string out;
      for (std::size_t i = 0; i < r.children.size(); ++i) {
        if (i) out.push_back('|');
        out += regex_to_string(r.children[i], alphabet);
      }
      return out;
    }
    case RegexKind::kStar: {
      const auto& c = r.children.front();
      const bool paren = c.kind == RegexKind::kConcat || c.kind == RegexKind::kAlt;
      return (paren ? "(" + regex_to_string(c, alphabet) + ")"
                    : regex_to_string(c, alphabet)) +
             "*";
    }
    case RegexKind::kRepeat: {
      const auto& c = r.children.front();
      const bool paren = c.kind == RegexKind::kConcat || c.kind == RegexKind::kAlt;
      std::string base = paren ? "(" + regex_to_string(c, alphabet) + ")"
                               : regex_to_string(c, alphabet);
      if (r.min_rep == 0 && r.max_rep == 1) return base + "?";
      if (r.min_rep == 1 && r.max_rep == kUnbounded) return base + "+";
      std::string suffix = "{" + std::to_string(r.min_rep);
      if (r.max_rep == kUnbounded)
        suffix += ",}";
      else if (r.max_rep != r.min_rep)
        suffix += "," + std::to_string(r.max_rep) + "}";
      else
        suffix += "}";
      return base + suffix;
    }
  }
  return {};
}

}  // namespace sfa
