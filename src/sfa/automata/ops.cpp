#include "sfa/automata/ops.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "sfa/automata/determinize.hpp"
#include "sfa/automata/minimize.hpp"
#include "sfa/automata/nfa.hpp"
#include "sfa/automata/regex_parser.hpp"

namespace sfa {

Regex match_anywhere(Regex r, unsigned alphabet_size) {
  std::vector<Regex> parts;
  parts.push_back(rx::star(rx::any(alphabet_size)));
  parts.push_back(std::move(r));
  parts.push_back(rx::star(rx::any(alphabet_size)));
  return rx::cat(std::move(parts));
}

Dfa compile_to_dfa(const Regex& r, unsigned alphabet_size,
                   const CompileOptions& options) {
  const Regex* effective = &r;
  Regex wrapped;
  if (options.anywhere) {
    wrapped = match_anywhere(r, alphabet_size);
    effective = &wrapped;
  }
  const Nfa nfa = Nfa::from_regex(*effective, alphabet_size);
  Dfa dfa = determinize(nfa);
  if (options.minimize) dfa = minimize(dfa);
  return dfa;
}

Dfa compile_pattern(std::string_view pattern, const Alphabet& alphabet,
                    const CompileOptions& options) {
  return compile_to_dfa(parse_regex(pattern, alphabet), alphabet.size(),
                        options);
}

bool dfa_equivalent(const Dfa& a, const Dfa& b) {
  if (a.num_symbols() != b.num_symbols())
    throw std::invalid_argument("alphabet size mismatch");
  if (!a.complete() || !b.complete())
    throw std::invalid_argument("dfa_equivalent() requires complete DFAs");
  const unsigned k = a.num_symbols();

  const auto key = [&](Dfa::StateId qa, Dfa::StateId qb) {
    return (static_cast<std::uint64_t>(qa) << 32) | qb;
  };
  std::unordered_set<std::uint64_t> visited;
  std::deque<std::pair<Dfa::StateId, Dfa::StateId>> queue;
  queue.emplace_back(a.start(), b.start());
  visited.insert(key(a.start(), b.start()));

  while (!queue.empty()) {
    const auto [qa, qb] = queue.front();
    queue.pop_front();
    if (a.accepting(qa) != b.accepting(qb)) return false;
    for (unsigned s = 0; s < k; ++s) {
      const auto ta = a.transition(qa, static_cast<Symbol>(s));
      const auto tb = b.transition(qb, static_cast<Symbol>(s));
      if (visited.insert(key(ta, tb)).second) queue.emplace_back(ta, tb);
    }
  }
  return true;
}

Dfa dfa_from_grail_nfa(std::istream& in, const Alphabet& alphabet) {
  struct Edge {
    std::uint32_t from, to;
    Symbol symbol;
  };
  std::vector<Edge> edges;
  std::vector<std::uint32_t> starts, finals;
  std::uint32_t max_state = 0;
  bool any_start = false;

  std::string a, b, c;
  while (in >> a >> b >> c) {
    if (a == "(START)") {
      if (b != "|-") throw std::runtime_error("grail: malformed start line");
      starts.push_back(static_cast<std::uint32_t>(std::stoul(c)));
      max_state = std::max(max_state, starts.back());
      any_start = true;
    } else if (b == "-|") {
      if (c != "(FINAL)")
        throw std::runtime_error("grail: malformed final line");
      finals.push_back(static_cast<std::uint32_t>(std::stoul(a)));
      max_state = std::max(max_state, finals.back());
    } else {
      if (b.size() != 1 || !alphabet.contains(b[0]))
        throw std::runtime_error("grail: bad symbol '" + b + "'");
      const Edge e{static_cast<std::uint32_t>(std::stoul(a)),
                   static_cast<std::uint32_t>(std::stoul(c)),
                   alphabet.symbol_of(b[0])};
      max_state = std::max({max_state, e.from, e.to});
      edges.push_back(e);
    }
  }
  if (!any_start) throw std::runtime_error("grail: missing start line");

  // Subset construction directly over the edge list (no epsilon edges in
  // Grail text, so no closures are needed).
  const unsigned k = alphabet.size();
  const std::uint32_t n = max_state + 1;
  std::vector<std::vector<std::pair<Symbol, std::uint32_t>>> adj(n);
  for (const Edge& e : edges) adj[e.from].emplace_back(e.symbol, e.to);
  std::vector<bool> is_final(n, false);
  for (auto f : finals) is_final[f] = true;

  const auto accepts = [&](const std::vector<std::uint32_t>& set) {
    for (auto q : set)
      if (is_final[q]) return true;
    return false;
  };

  Dfa dfa(k);
  std::map<std::vector<std::uint32_t>, Dfa::StateId> ids;
  std::deque<std::vector<std::uint32_t>> worklist;
  const auto intern = [&](std::vector<std::uint32_t> set) {
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    const auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    const Dfa::StateId id = dfa.add_state(accepts(set));
    ids.emplace(set, id);
    worklist.push_back(std::move(set));
    return id;
  };

  dfa.set_start(intern({starts.begin(), starts.end()}));
  while (!worklist.empty()) {
    const std::vector<std::uint32_t> set = std::move(worklist.front());
    worklist.pop_front();
    const Dfa::StateId from = ids.at(set);
    for (unsigned s = 0; s < k; ++s) {
      std::vector<std::uint32_t> next;
      for (auto q : set)
        for (const auto& [sym, to] : adj[q])
          if (sym == static_cast<Symbol>(s)) next.push_back(to);
      dfa.set_transition(from, static_cast<Symbol>(s), intern(std::move(next)));
    }
  }
  return minimize(dfa);
}

Dfa dfa_from_grail_nfa(const std::string& text, const Alphabet& alphabet) {
  std::istringstream is(text);
  return dfa_from_grail_nfa(is, alphabet);
}

}  // namespace sfa
