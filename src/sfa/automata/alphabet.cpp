#include "sfa/automata/alphabet.hpp"

#include <stdexcept>

namespace sfa {

Alphabet::Alphabet(std::string_view chars) {
  to_symbol_.fill(kNoSymbol);
  for (char c : chars) {
    const auto uc = static_cast<unsigned char>(c);
    if (to_symbol_[uc] != kNoSymbol) continue;  // ignore duplicates
    if (chars_.size() >= 255)
      throw std::invalid_argument("alphabet larger than 255 symbols");
    to_symbol_[uc] = static_cast<Symbol>(chars_.size());
    chars_.push_back(c);
  }
  if (chars_.empty()) throw std::invalid_argument("empty alphabet");
}

const Alphabet& Alphabet::amino() {
  static const Alphabet a("ACDEFGHIKLMNPQRSTVWY");
  return a;
}

const Alphabet& Alphabet::dna() {
  static const Alphabet a("ACGT");
  return a;
}

const Alphabet& Alphabet::ascii_printable() {
  static const Alphabet a = [] {
    std::string s;
    for (char c = ' '; c <= '~'; ++c) s.push_back(c);
    return Alphabet(s);
  }();
  return a;
}

std::vector<Symbol> Alphabet::encode(std::string_view text) const {
  std::vector<Symbol> out;
  out.reserve(text.size());
  for (char c : text) {
    const Symbol s = symbol_of(c);
    if (s == kNoSymbol)
      throw std::invalid_argument(std::string("character '") + c +
                                  "' not in alphabet");
    out.push_back(s);
  }
  return out;
}

std::string Alphabet::decode(const std::vector<Symbol>& symbols) const {
  std::string out;
  out.reserve(symbols.size());
  for (Symbol s : symbols) out.push_back(char_of(s));
  return out;
}

}  // namespace sfa
