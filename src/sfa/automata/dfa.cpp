#include "sfa/automata/dfa.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace sfa {

Dfa::StateId Dfa::add_state(bool accepting) {
  const StateId id = static_cast<StateId>(accepting_.size());
  accepting_.push_back(accepting ? 1 : 0);
  table_.resize(table_.size() + num_symbols_, kUnassigned);
  return id;
}

std::size_t Dfa::accepting_count() const {
  return static_cast<std::size_t>(
      std::count(accepting_.begin(), accepting_.end(), std::uint8_t{1}));
}

Dfa::StateId Dfa::run(StateId from, const Symbol* input,
                      std::size_t len) const {
  StateId q = from;
  for (std::size_t i = 0; i < len; ++i)
    q = table_[static_cast<std::size_t>(q) * num_symbols_ + input[i]];
  return q;
}

std::size_t Dfa::count_accepting_prefixes(const Symbol* input,
                                          std::size_t len) const {
  std::size_t count = 0;
  StateId q = start_;
  for (std::size_t i = 0; i < len; ++i) {
    q = table_[static_cast<std::size_t>(q) * num_symbols_ + input[i]];
    count += accepting_[q];
  }
  return count;
}

bool Dfa::complete() const {
  return std::find(table_.begin(), table_.end(), kUnassigned) == table_.end();
}

Dfa::StateId Dfa::find_sink() const {
  for (StateId q = 0; q < size(); ++q) {
    if (accepting_[q]) continue;
    bool all_self = true;
    const StateId* r = row(q);
    for (unsigned s = 0; s < num_symbols_; ++s) {
      if (r[s] != q) {
        all_self = false;
        break;
      }
    }
    if (all_self) return q;
  }
  return size();
}

std::string Dfa::to_grail(const Alphabet& alphabet) const {
  std::ostringstream os;
  os << "(START) |- " << start_ << '\n';
  for (StateId q = 0; q < size(); ++q)
    for (unsigned s = 0; s < num_symbols_; ++s)
      os << q << ' ' << alphabet.char_of(static_cast<Symbol>(s)) << ' '
         << transition(q, static_cast<Symbol>(s)) << '\n';
  for (StateId q = 0; q < size(); ++q)
    if (accepting_[q]) os << q << " -| (FINAL)\n";
  return os.str();
}

Dfa Dfa::from_grail(std::istream& in, const Alphabet& alphabet) {
  struct Edge {
    std::uint64_t from, to;
    char symbol;
  };
  std::vector<Edge> edges;
  std::vector<std::uint64_t> finals;
  std::uint64_t start_state = 0;
  bool saw_start = false;
  std::uint64_t max_state = 0;

  std::string a, b, c;
  while (in >> a >> b >> c) {
    if (a == "(START)") {
      if (b != "|-") throw std::runtime_error("grail: malformed start line");
      start_state = std::stoull(c);
      max_state = std::max(max_state, start_state);
      saw_start = true;
    } else if (b == "-|") {
      if (c != "(FINAL)") throw std::runtime_error("grail: malformed final line");
      finals.push_back(std::stoull(a));
      max_state = std::max(max_state, finals.back());
    } else {
      if (b.size() != 1)
        throw std::runtime_error("grail: multi-character symbol '" + b + "'");
      Edge e{std::stoull(a), std::stoull(c), b[0]};
      if (!alphabet.contains(e.symbol))
        throw std::runtime_error("grail: symbol outside alphabet");
      max_state = std::max({max_state, e.from, e.to});
      edges.push_back(e);
    }
  }
  if (!saw_start) throw std::runtime_error("grail: missing start line");

  Dfa dfa(alphabet.size());
  for (std::uint64_t q = 0; q <= max_state; ++q) dfa.add_state(false);
  dfa.set_start(static_cast<StateId>(start_state));
  for (auto f : finals) dfa.set_accepting(static_cast<StateId>(f), true);
  for (const auto& e : edges) {
    const Symbol s = alphabet.symbol_of(e.symbol);
    const StateId from = static_cast<StateId>(e.from);
    if (dfa.transition(from, s) != kUnassigned &&
        dfa.transition(from, s) != static_cast<StateId>(e.to))
      throw std::runtime_error("grail: nondeterministic transition");
    dfa.set_transition(from, s, static_cast<StateId>(e.to));
  }
  return dfa;
}

Dfa Dfa::from_grail(const std::string& text, const Alphabet& alphabet) {
  std::istringstream is(text);
  return from_grail(is, alphabet);
}

}  // namespace sfa
