// Value-semantic regular-expression syntax tree.
//
// Patterns (textual regexes, PROSITE motifs) compile to this AST, which the
// Thompson construction (nfa.hpp) turns into an NFA.  Bounded repetition
// {n,m} is kept symbolic in the tree and expanded during NFA construction so
// PROSITE's x(2,4)-style counts stay readable when printing a pattern back.
#pragma once

#include <string>
#include <vector>

#include "sfa/automata/charclass.hpp"

namespace sfa {

enum class RegexKind {
  kEpsilon,  // empty string
  kClass,    // one symbol from a CharClass
  kConcat,   // children in sequence
  kAlt,      // any one child
  kStar,     // child*, zero or more
  kRepeat,   // child{min,max}; max = kUnbounded means {min,}
};

inline constexpr int kUnbounded = -1;

struct Regex {
  RegexKind kind = RegexKind::kEpsilon;
  CharClass cls;                 // kClass only
  std::vector<Regex> children;   // kConcat/kAlt: >=1; kStar/kRepeat: ==1
  int min_rep = 0, max_rep = 0;  // kRepeat only

  /// Number of AST nodes (used by tests and pattern-size reporting).
  std::size_t node_count() const {
    std::size_t n = 1;
    for (const auto& c : children) n += c.node_count();
    return n;
  }
};

// ---- Builders (compose patterns programmatically) ---------------------------

namespace rx {

inline Regex epsilon() { return {}; }

inline Regex cls(CharClass c) {
  Regex r;
  r.kind = RegexKind::kClass;
  r.cls = c;
  return r;
}

inline Regex sym(Symbol s) { return cls(CharClass::single(s)); }

/// '.' over a k-symbol alphabet.
inline Regex any(unsigned k) { return cls(CharClass::all(k)); }

inline Regex cat(std::vector<Regex> parts) {
  if (parts.empty()) return epsilon();
  if (parts.size() == 1) return std::move(parts.front());
  Regex r;
  r.kind = RegexKind::kConcat;
  r.children = std::move(parts);
  return r;
}

inline Regex alt(std::vector<Regex> parts) {
  if (parts.size() == 1) return std::move(parts.front());
  Regex r;
  r.kind = RegexKind::kAlt;
  r.children = std::move(parts);
  return r;
}

inline Regex star(Regex inner) {
  Regex r;
  r.kind = RegexKind::kStar;
  r.children.push_back(std::move(inner));
  return r;
}

inline Regex repeat(Regex inner, int min, int max) {
  Regex r;
  r.kind = RegexKind::kRepeat;
  r.children.push_back(std::move(inner));
  r.min_rep = min;
  r.max_rep = max;
  return r;
}

inline Regex plus(Regex inner) { return repeat(std::move(inner), 1, kUnbounded); }
inline Regex opt(Regex inner) { return repeat(std::move(inner), 0, 1); }

/// Literal symbol sequence.
inline Regex literal(const std::vector<Symbol>& symbols) {
  std::vector<Regex> parts;
  parts.reserve(symbols.size());
  for (Symbol s : symbols) parts.push_back(sym(s));
  return cat(std::move(parts));
}

}  // namespace rx

/// Render a regex using an alphabet's characters (for diagnostics/examples).
std::string regex_to_string(const Regex& r, const Alphabet& alphabet);

}  // namespace sfa
