// Textual regular-expression parser.
//
// Grammar (POSIX-flavoured subset, sufficient for the paper's workloads):
//
//   alt    := concat ('|' concat)*
//   concat := repeat+
//   repeat := atom ('*' | '+' | '?' | '{' n (',' m?)? '}')*
//   atom   := literal-char | '.' | '(' alt ')' | class
//   class  := '[' '^'? (char | char '-' char)+ ']'
//
// Literal characters must belong to the alphabet; '\' escapes any
// metacharacter.  Parse errors throw RegexParseError with a position.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "sfa/automata/regex.hpp"

namespace sfa {

class RegexParseError : public std::runtime_error {
 public:
  RegexParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        position(pos) {}
  std::size_t position;
};

/// Parse `pattern` over `alphabet` into a Regex tree.
Regex parse_regex(std::string_view pattern, const Alphabet& alphabet);

}  // namespace sfa
