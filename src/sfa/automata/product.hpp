// Product constructions on complete DFAs: union, intersection, difference,
// complement.
//
// These make multi-pattern scanning practical with ONE SFA: the union DFA of
// a signature set accepts when any signature matches, so a single SFA
// construction + one parallel matching pass replaces per-signature scans —
// the IDS use-case from the paper's introduction (virus-signature sets).
#pragma once

#include "sfa/automata/dfa.hpp"

namespace sfa {

enum class BoolOp { kUnion, kIntersection, kDifference };

/// Lazy product automaton of two complete DFAs over the same alphabet,
/// exploring only reachable pairs; acceptance combined per `op`.  The result
/// is complete but not minimized (callers minimize() when they care).
Dfa product(const Dfa& a, const Dfa& b, BoolOp op);

inline Dfa dfa_union(const Dfa& a, const Dfa& b) {
  return product(a, b, BoolOp::kUnion);
}
inline Dfa dfa_intersection(const Dfa& a, const Dfa& b) {
  return product(a, b, BoolOp::kIntersection);
}
inline Dfa dfa_difference(const Dfa& a, const Dfa& b) {
  return product(a, b, BoolOp::kDifference);
}

/// Complement of a complete DFA (flips acceptance).
Dfa dfa_complement(const Dfa& a);

/// Union of many DFAs (balanced tree of pairwise products, minimizing at
/// each level to keep intermediate sizes down).
Dfa dfa_union_all(std::vector<Dfa> dfas);

/// True when the complete DFA accepts no string (all reachable states
/// non-accepting).
bool dfa_empty(const Dfa& a);

}  // namespace sfa
