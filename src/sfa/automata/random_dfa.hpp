// Seeded random complete DFAs — property-test workloads that are not
// pattern-shaped (arbitrary transition structure, arbitrary acceptance),
// complementing the PROSITE and r-benchmark generators.
#pragma once

#include <cstdint>

#include "sfa/automata/dfa.hpp"

namespace sfa {

struct RandomDfaOptions {
  std::uint32_t num_states = 16;
  unsigned num_symbols = 4;
  double accept_fraction = 0.25;  // expected fraction of accepting states
  std::uint64_t seed = 1;
};

/// Uniform-ish random complete DFA in which every state is reachable from
/// the start state (state q > 0 receives one incoming "spanning" edge from
/// a random state < q before the remaining transitions are filled
/// uniformly).  At least one state accepts.
Dfa random_dfa(const RandomDfaOptions& options);

}  // namespace sfa
