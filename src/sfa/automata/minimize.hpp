// DFA minimization (Hopcroft's partition-refinement algorithm).
#pragma once

#include "sfa/automata/dfa.hpp"

namespace sfa {

/// Returns the minimal complete DFA recognizing the same language as `dfa`
/// (which must be complete).  Unreachable states are removed first, and the
/// result is renumbered in BFS order from the start state, which makes the
/// output canonical: two equivalent inputs minimize to identical tables.
Dfa minimize(const Dfa& dfa);

/// Removes states unreachable from the start state (renumbering the rest in
/// BFS discovery order).  Exposed separately because the synthetic workload
/// generators use it without full minimization.
Dfa trim_unreachable(const Dfa& dfa);

}  // namespace sfa
