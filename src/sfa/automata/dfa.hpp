// Dense-table deterministic finite automaton.
//
// This is the input artifact of SFA construction: a *complete* DFA (every
// state has a transition on every symbol) whose transition function is one
// contiguous row-major table — row q holds delta(q, sigma) for all sigma,
// which is exactly the layout the parameterized-transposition kernels gather
// from (paper §III-A, Fig. 3).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sfa/automata/alphabet.hpp"

namespace sfa {

class Dfa {
 public:
  using StateId = std::uint32_t;

  explicit Dfa(unsigned num_symbols) : num_symbols_(num_symbols) {}

  StateId add_state(bool accepting = false);

  void set_transition(StateId from, Symbol symbol, StateId to) {
    table_[static_cast<std::size_t>(from) * num_symbols_ + symbol] = to;
  }

  StateId transition(StateId from, Symbol symbol) const {
    return table_[static_cast<std::size_t>(from) * num_symbols_ + symbol];
  }

  /// Row q of the transition table (|Sigma| entries, contiguous).
  const StateId* row(StateId q) const {
    return table_.data() + static_cast<std::size_t>(q) * num_symbols_;
  }

  void set_start(StateId s) { start_ = s; }
  StateId start() const { return start_; }

  void set_accepting(StateId s, bool accepting) { accepting_[s] = accepting; }
  bool accepting(StateId s) const { return accepting_[s]; }

  std::uint32_t size() const { return static_cast<std::uint32_t>(accepting_.size()); }
  unsigned num_symbols() const { return num_symbols_; }
  std::size_t accepting_count() const;

  /// Runs the DFA from `from` over `input`, returning the final state
  /// (the sequential matcher of Fig. 1c).
  StateId run(StateId from, const Symbol* input, std::size_t len) const;

  bool accepts(const std::vector<Symbol>& input) const {
    return accepting_[run(start_, input.data(), input.size())];
  }

  /// Count of positions i where the prefix input[0..i] is accepted; with a
  /// match-anywhere DFA this counts match end-positions.
  std::size_t count_accepting_prefixes(const Symbol* input,
                                       std::size_t len) const;

  /// True when every table entry was assigned (no kUnassigned left).
  bool complete() const;

  /// A non-accepting state whose transitions all self-loop, if any
  /// (the "error"/sink state that dominates r500 SFA states); size() if none.
  StateId find_sink() const;

  // --- Grail+-style text serialization ---------------------------------
  // The paper's framework reads DFAs in Grail+ format:
  //   (START) |- q0
  //   q_from symbol q_to          (one line per transition)
  //   q -| (FINAL)
  // Symbols are written as alphabet characters.
  std::string to_grail(const Alphabet& alphabet) const;
  static Dfa from_grail(std::istream& in, const Alphabet& alphabet);
  static Dfa from_grail(const std::string& text, const Alphabet& alphabet);

  static constexpr StateId kUnassigned = 0xFFFFFFFFu;

 private:
  unsigned num_symbols_;
  StateId start_ = 0;
  std::vector<StateId> table_;      // size() * num_symbols_, row-major
  std::vector<std::uint8_t> accepting_;
};

}  // namespace sfa
