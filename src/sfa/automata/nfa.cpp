#include "sfa/automata/nfa.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfa {

std::uint32_t Nfa::add_state() {
  states_.emplace_back();
  return static_cast<std::uint32_t>(states_.size() - 1);
}

Nfa::Frag Nfa::build(const Regex& r) {
  switch (r.kind) {
    case RegexKind::kEpsilon: {
      const auto s = add_state();
      const auto a = add_state();
      states_[s].eps.push_back(a);
      return {s, a};
    }
    case RegexKind::kClass: {
      if (r.cls.empty()) throw std::invalid_argument("empty character class");
      const auto s = add_state();
      const auto a = add_state();
      states_[s].edges.push_back({r.cls, a});
      return {s, a};
    }
    case RegexKind::kConcat: {
      Frag acc = build(r.children.front());
      for (std::size_t i = 1; i < r.children.size(); ++i) {
        const Frag next = build(r.children[i]);
        states_[acc.accept].eps.push_back(next.start);
        acc.accept = next.accept;
      }
      return acc;
    }
    case RegexKind::kAlt: {
      const auto s = add_state();
      const auto a = add_state();
      for (const auto& child : r.children) {
        const Frag f = build(child);
        states_[s].eps.push_back(f.start);
        states_[f.accept].eps.push_back(a);
      }
      return {s, a};
    }
    case RegexKind::kStar: {
      const Frag inner = build(r.children.front());
      const auto s = add_state();
      const auto a = add_state();
      states_[s].eps.push_back(inner.start);
      states_[s].eps.push_back(a);
      states_[inner.accept].eps.push_back(inner.start);
      states_[inner.accept].eps.push_back(a);
      return {s, a};
    }
    case RegexKind::kRepeat: {
      const Regex& child = r.children.front();
      if (r.min_rep < 0) throw std::invalid_argument("negative repeat bound");
      // n mandatory copies ...
      Frag acc;
      bool have = false;
      for (int i = 0; i < r.min_rep; ++i) {
        const Frag f = build(child);
        if (!have) {
          acc = f;
          have = true;
        } else {
          states_[acc.accept].eps.push_back(f.start);
          acc.accept = f.accept;
        }
      }
      if (r.max_rep == kUnbounded) {
        // ... then child*.
        Regex star;
        star.kind = RegexKind::kStar;
        star.children.push_back(child);
        const Frag f = build(star);
        if (!have) return f;
        states_[acc.accept].eps.push_back(f.start);
        acc.accept = f.accept;
        return acc;
      }
      // ... then (m-n) optional copies; each may be skipped to the end.
      const auto end = add_state();
      if (!have) {
        const auto s = add_state();
        acc = {s, s};
        have = true;
      }
      for (int i = r.min_rep; i < r.max_rep; ++i) {
        states_[acc.accept].eps.push_back(end);
        const Frag f = build(child);
        states_[acc.accept].eps.push_back(f.start);
        acc.accept = f.accept;
      }
      states_[acc.accept].eps.push_back(end);
      acc.accept = end;
      return acc;
    }
  }
  throw std::logic_error("unreachable regex kind");
}

Nfa Nfa::from_regex(const Regex& regex, unsigned alphabet_size) {
  Nfa nfa;
  nfa.alphabet_size_ = alphabet_size;
  const Frag f = nfa.build(regex);
  nfa.start_ = f.start;
  nfa.accept_ = f.accept;
  return nfa;
}

std::vector<std::uint32_t> Nfa::eps_closure(
    std::vector<std::uint32_t> set) const {
  std::vector<bool> seen(states_.size(), false);
  std::vector<std::uint32_t> stack;
  for (auto s : set) {
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  set.clear();
  while (!stack.empty()) {
    const auto s = stack.back();
    stack.pop_back();
    set.push_back(s);
    for (auto t : states_[s].eps) {
      if (!seen[t]) {
        seen[t] = true;
        stack.push_back(t);
      }
    }
  }
  std::sort(set.begin(), set.end());
  return set;
}

std::vector<std::uint32_t> Nfa::move(const std::vector<std::uint32_t>& from,
                                     Symbol symbol) const {
  std::vector<std::uint32_t> out;
  for (auto s : from)
    for (const auto& e : states_[s].edges)
      if (e.on.test(symbol)) out.push_back(e.to);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool Nfa::accepts(const std::vector<Symbol>& input) const {
  std::vector<std::uint32_t> cur = eps_closure({start_});
  for (Symbol sym : input) {
    if (cur.empty()) return false;
    cur = eps_closure(move(cur, sym));
  }
  return std::binary_search(cur.begin(), cur.end(), accept_);
}

}  // namespace sfa
