// Thompson NFA construction from a Regex tree.
#pragma once

#include <cstdint>
#include <vector>

#include "sfa/automata/regex.hpp"

namespace sfa {

/// Nondeterministic finite automaton with epsilon transitions and
/// character-class edge labels (one Thompson accept state).
class Nfa {
 public:
  struct Edge {
    CharClass on;
    std::uint32_t to;
  };
  struct State {
    std::vector<Edge> edges;
    std::vector<std::uint32_t> eps;
  };

  /// Thompson construction.  Bounded repeats are expanded structurally:
  /// r{n,m} -> n copies of r followed by (m-n) optional copies;
  /// r{n,}  -> n copies followed by r*.
  static Nfa from_regex(const Regex& regex, unsigned alphabet_size);

  std::uint32_t size() const { return static_cast<std::uint32_t>(states_.size()); }
  std::uint32_t start() const { return start_; }
  std::uint32_t accept() const { return accept_; }
  unsigned alphabet_size() const { return alphabet_size_; }
  const State& state(std::uint32_t i) const { return states_[i]; }

  /// Epsilon closure of a sorted state set, returned sorted and unique
  /// (workhorse of the subset construction).
  std::vector<std::uint32_t> eps_closure(std::vector<std::uint32_t> set) const;

  /// All states reachable from sorted set `from` on `symbol` (not closed).
  std::vector<std::uint32_t> move(const std::vector<std::uint32_t>& from,
                                  Symbol symbol) const;

  /// Direct NFA simulation — the oracle for equivalence tests.
  bool accepts(const std::vector<Symbol>& input) const;

 private:
  struct Frag {
    std::uint32_t start, accept;
  };
  std::uint32_t add_state();
  Frag build(const Regex& r);

  std::vector<State> states_;
  std::uint32_t start_ = 0, accept_ = 0;
  unsigned alphabet_size_ = 0;
};

}  // namespace sfa
