// Fixed 256-bit set of symbol ids — the label type on NFA transitions.
#pragma once

#include <cstdint>

#include "sfa/automata/alphabet.hpp"

namespace sfa {

class CharClass {
 public:
  constexpr CharClass() : bits_{0, 0, 0, 0} {}

  static CharClass single(Symbol s) {
    CharClass c;
    c.add(s);
    return c;
  }

  /// All symbols of a k-symbol alphabet.
  static CharClass all(unsigned k) {
    CharClass c;
    for (unsigned s = 0; s < k; ++s) c.add(static_cast<Symbol>(s));
    return c;
  }

  void add(Symbol s) { bits_[s >> 6] |= 1ull << (s & 63); }
  void remove(Symbol s) { bits_[s >> 6] &= ~(1ull << (s & 63)); }

  bool test(Symbol s) const { return (bits_[s >> 6] >> (s & 63)) & 1u; }

  /// Complement within a k-symbol alphabet (PROSITE's {..} exclusion).
  CharClass negated(unsigned k) const {
    CharClass c = all(k);
    for (int i = 0; i < 4; ++i) c.bits_[i] &= ~bits_[i];
    return c;
  }

  CharClass operator|(const CharClass& o) const {
    CharClass c;
    for (int i = 0; i < 4; ++i) c.bits_[i] = bits_[i] | o.bits_[i];
    return c;
  }

  CharClass operator&(const CharClass& o) const {
    CharClass c;
    for (int i = 0; i < 4; ++i) c.bits_[i] = bits_[i] & o.bits_[i];
    return c;
  }

  bool operator==(const CharClass& o) const {
    for (int i = 0; i < 4; ++i)
      if (bits_[i] != o.bits_[i]) return false;
    return true;
  }

  bool empty() const {
    return (bits_[0] | bits_[1] | bits_[2] | bits_[3]) == 0;
  }

  unsigned count() const {
    unsigned n = 0;
    for (std::uint64_t w : bits_) n += static_cast<unsigned>(__builtin_popcountll(w));
    return n;
  }

 private:
  std::uint64_t bits_[4];
};

}  // namespace sfa
