// Subset construction: NFA -> complete DFA.
#pragma once

#include "sfa/automata/dfa.hpp"
#include "sfa/automata/nfa.hpp"

namespace sfa {

/// Determinize `nfa` into a complete DFA.  The empty subset becomes an
/// explicit non-accepting sink, so every DFA this produces is total — a
/// precondition of SFA construction (every SFA cell must have a successor).
Dfa determinize(const Nfa& nfa);

}  // namespace sfa
