#include "sfa/automata/product.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "sfa/automata/minimize.hpp"

namespace sfa {

Dfa product(const Dfa& a, const Dfa& b, BoolOp op) {
  if (a.num_symbols() != b.num_symbols())
    throw std::invalid_argument("product: alphabet size mismatch");
  if (!a.complete() || !b.complete())
    throw std::invalid_argument("product: requires complete DFAs");
  const unsigned k = a.num_symbols();

  const auto accept = [op](bool in_a, bool in_b) {
    switch (op) {
      case BoolOp::kUnion:
        return in_a || in_b;
      case BoolOp::kIntersection:
        return in_a && in_b;
      case BoolOp::kDifference:
        return in_a && !in_b;
    }
    return false;
  };
  const auto key = [](Dfa::StateId qa, Dfa::StateId qb) {
    return (static_cast<std::uint64_t>(qa) << 32) | qb;
  };

  Dfa out(k);
  std::unordered_map<std::uint64_t, Dfa::StateId> ids;
  std::deque<std::pair<Dfa::StateId, Dfa::StateId>> worklist;

  const auto intern = [&](Dfa::StateId qa, Dfa::StateId qb) {
    const auto [it, inserted] = ids.emplace(key(qa, qb), 0);
    if (inserted) {
      it->second = out.add_state(accept(a.accepting(qa), b.accepting(qb)));
      worklist.emplace_back(qa, qb);
    }
    return it->second;
  };

  out.set_start(intern(a.start(), b.start()));
  while (!worklist.empty()) {
    const auto [qa, qb] = worklist.front();
    worklist.pop_front();
    const Dfa::StateId from = ids.at(key(qa, qb));
    for (unsigned s = 0; s < k; ++s) {
      const Symbol sym = static_cast<Symbol>(s);
      out.set_transition(from, sym,
                         intern(a.transition(qa, sym), b.transition(qb, sym)));
    }
  }
  return out;
}

Dfa dfa_complement(const Dfa& a) {
  if (!a.complete())
    throw std::invalid_argument("complement: requires a complete DFA");
  Dfa out(a.num_symbols());
  for (Dfa::StateId q = 0; q < a.size(); ++q) out.add_state(!a.accepting(q));
  out.set_start(a.start());
  for (Dfa::StateId q = 0; q < a.size(); ++q)
    for (unsigned s = 0; s < a.num_symbols(); ++s)
      out.set_transition(q, static_cast<Symbol>(s),
                         a.transition(q, static_cast<Symbol>(s)));
  return out;
}

Dfa dfa_union_all(std::vector<Dfa> dfas) {
  if (dfas.empty()) throw std::invalid_argument("dfa_union_all: empty input");
  // Balanced pairwise reduction; minimize per level to bound growth.
  while (dfas.size() > 1) {
    std::vector<Dfa> next;
    next.reserve(dfas.size() / 2 + 1);
    for (std::size_t i = 0; i + 1 < dfas.size(); i += 2)
      next.push_back(minimize(dfa_union(dfas[i], dfas[i + 1])));
    if (dfas.size() % 2 != 0) next.push_back(std::move(dfas.back()));
    dfas = std::move(next);
  }
  return std::move(dfas.front());
}

bool dfa_empty(const Dfa& a) {
  if (!a.complete())
    throw std::invalid_argument("dfa_empty: requires a complete DFA");
  std::vector<bool> seen(a.size(), false);
  std::deque<Dfa::StateId> queue{a.start()};
  seen[a.start()] = true;
  while (!queue.empty()) {
    const Dfa::StateId q = queue.front();
    queue.pop_front();
    if (a.accepting(q)) return false;
    for (unsigned s = 0; s < a.num_symbols(); ++s) {
      const Dfa::StateId t = a.transition(q, static_cast<Symbol>(s));
      if (!seen[t]) {
        seen[t] = true;
        queue.push_back(t);
      }
    }
  }
  return true;
}

}  // namespace sfa
