// Automata-level operations: the match-anywhere closure, the full
// regex -> minimal-DFA compilation pipeline, and equivalence checking.
#pragma once

#include <string_view>

#include "sfa/automata/dfa.hpp"
#include "sfa/automata/regex.hpp"

namespace sfa {

/// Wraps a pattern so it matches at any position: Sigma* r Sigma*.
/// This is the catenation the paper applies to all PROSITE FAs (§I); it is
/// the step with exponential state complexity that makes the resulting DFAs
/// (and their SFAs) large.
Regex match_anywhere(Regex r, unsigned alphabet_size);

/// Options for compile_to_dfa.
struct CompileOptions {
  bool anywhere = true;   // apply the Sigma* r Sigma* catenation
  bool minimize = true;   // Hopcroft-minimize the determinized DFA
};

/// Full pipeline: Regex -> Thompson NFA -> subset construction -> (minimal)
/// complete DFA.  This replaces the Grail+ toolchain the paper used.
Dfa compile_to_dfa(const Regex& r, unsigned alphabet_size,
                   const CompileOptions& options = {});

/// Convenience: parse a textual regex and compile it.
Dfa compile_pattern(std::string_view pattern, const Alphabet& alphabet,
                    const CompileOptions& options = {});

/// Language equivalence of two complete DFAs over the same alphabet
/// (BFS over the product automaton, comparing acceptance).
bool dfa_equivalent(const Dfa& a, const Dfa& b);

/// Parse a (possibly nondeterministic) automaton in Grail+ text format —
/// multiple start lines, multiple transitions per (state, symbol) — and
/// determinize + minimize it into a complete DFA.  This covers the full
/// Grail toolchain interchange the paper's framework reads, not just the
/// deterministic subset Dfa::from_grail accepts.
Dfa dfa_from_grail_nfa(std::istream& in, const Alphabet& alphabet);
Dfa dfa_from_grail_nfa(const std::string& text, const Alphabet& alphabet);

}  // namespace sfa
