#include "sfa/automata/random_dfa.hpp"

#include <stdexcept>
#include <vector>

#include "sfa/support/rng.hpp"

namespace sfa {

Dfa random_dfa(const RandomDfaOptions& opt) {
  if (opt.num_states == 0 || opt.num_symbols == 0)
    throw std::invalid_argument("random_dfa: degenerate dimensions");
  Xoshiro256 rng(opt.seed);
  Dfa dfa(opt.num_symbols);

  bool any_accepting = false;
  for (std::uint32_t q = 0; q < opt.num_states; ++q) {
    const bool accepting = rng.chance(opt.accept_fraction);
    any_accepting |= accepting;
    dfa.add_state(accepting);
  }
  if (!any_accepting)
    dfa.set_accepting(
        static_cast<Dfa::StateId>(rng.below(opt.num_states)), true);
  dfa.set_start(0);

  // Fill every transition uniformly...
  for (std::uint32_t q = 0; q < opt.num_states; ++q)
    for (unsigned s = 0; s < opt.num_symbols; ++s)
      dfa.set_transition(q, static_cast<Symbol>(s),
                         static_cast<Dfa::StateId>(rng.below(opt.num_states)));
  // ...then guarantee reachability with one spanning edge into each q > 0.
  // Spanning slots must not clobber each other, so each (from, symbol) pair
  // is used at most once; the fallback slot (q-1, *) is always free because
  // earlier rounds only ever picked sources < q-1.
  std::vector<bool> used(static_cast<std::size_t>(opt.num_states) *
                             opt.num_symbols,
                         false);
  for (std::uint32_t q = 1; q < opt.num_states; ++q) {
    Dfa::StateId from = static_cast<Dfa::StateId>(rng.below(q));
    Symbol sym = static_cast<Symbol>(rng.below(opt.num_symbols));
    for (int tries = 0;
         used[static_cast<std::size_t>(from) * opt.num_symbols + sym] &&
         tries < 8;
         ++tries) {
      from = static_cast<Dfa::StateId>(rng.below(q));
      sym = static_cast<Symbol>(rng.below(opt.num_symbols));
    }
    if (used[static_cast<std::size_t>(from) * opt.num_symbols + sym]) {
      from = q - 1;
      sym = 0;
      while (used[static_cast<std::size_t>(from) * opt.num_symbols + sym])
        ++sym;  // cannot run off: (q-1, *) has a free slot by construction
    }
    used[static_cast<std::size_t>(from) * opt.num_symbols + sym] = true;
    dfa.set_transition(from, sym, q);
  }
  return dfa;
}

}  // namespace sfa
