#include "sfa/automata/determinize.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "sfa/hash/city64.hpp"

namespace sfa {

namespace {

struct SubsetHash {
  std::size_t operator()(const std::vector<std::uint32_t>& v) const {
    return static_cast<std::size_t>(
        city_hash64(v.data(), v.size() * sizeof(std::uint32_t)));
  }
};

}  // namespace

Dfa determinize(const Nfa& nfa) {
  const unsigned k = nfa.alphabet_size();
  Dfa dfa(k);

  std::unordered_map<std::vector<std::uint32_t>, Dfa::StateId, SubsetHash>
      ids;
  std::deque<std::vector<std::uint32_t>> worklist;

  const auto accepts = [&](const std::vector<std::uint32_t>& set) {
    return std::binary_search(set.begin(), set.end(), nfa.accept());
  };

  const auto intern = [&](std::vector<std::uint32_t> set) {
    const auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    const Dfa::StateId id = dfa.add_state(accepts(set));
    ids.emplace(set, id);
    worklist.push_back(std::move(set));
    return id;
  };

  const Dfa::StateId start = intern(nfa.eps_closure({nfa.start()}));
  dfa.set_start(start);

  while (!worklist.empty()) {
    std::vector<std::uint32_t> set = std::move(worklist.front());
    worklist.pop_front();
    const Dfa::StateId from = ids.at(set);
    for (unsigned s = 0; s < k; ++s) {
      const Symbol sym = static_cast<Symbol>(s);
      // The empty subset interns as a regular state; its successors are all
      // empty again, so it naturally becomes the complete DFA's sink.
      const Dfa::StateId to = intern(nfa.eps_closure(nfa.move(set, sym)));
      dfa.set_transition(from, sym, to);
    }
  }
  return dfa;
}

}  // namespace sfa
