#include "sfa/automata/minimize.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace sfa {

Dfa trim_unreachable(const Dfa& dfa) {
  const unsigned k = dfa.num_symbols();
  std::vector<Dfa::StateId> remap(dfa.size(), Dfa::kUnassigned);
  std::vector<Dfa::StateId> order;
  std::deque<Dfa::StateId> queue;

  remap[dfa.start()] = 0;
  order.push_back(dfa.start());
  queue.push_back(dfa.start());
  while (!queue.empty()) {
    const Dfa::StateId q = queue.front();
    queue.pop_front();
    for (unsigned s = 0; s < k; ++s) {
      const Dfa::StateId t = dfa.transition(q, static_cast<Symbol>(s));
      if (remap[t] == Dfa::kUnassigned) {
        remap[t] = static_cast<Dfa::StateId>(order.size());
        order.push_back(t);
        queue.push_back(t);
      }
    }
  }

  Dfa out(k);
  for (Dfa::StateId old : order) out.add_state(dfa.accepting(old));
  out.set_start(0);
  for (std::size_t i = 0; i < order.size(); ++i)
    for (unsigned s = 0; s < k; ++s)
      out.set_transition(static_cast<Dfa::StateId>(i), static_cast<Symbol>(s),
                         remap[dfa.transition(order[i], static_cast<Symbol>(s))]);
  return out;
}

Dfa minimize(const Dfa& input) {
  if (!input.complete())
    throw std::invalid_argument("minimize() requires a complete DFA");
  const Dfa dfa = trim_unreachable(input);
  const unsigned k = dfa.num_symbols();
  const std::uint32_t n = dfa.size();

  // Inverse transition lists: for each (state, symbol), who maps into it.
  std::vector<std::vector<std::uint32_t>> inverse(
      static_cast<std::size_t>(n) * k);
  for (std::uint32_t q = 0; q < n; ++q)
    for (unsigned s = 0; s < k; ++s)
      inverse[static_cast<std::size_t>(dfa.transition(q, static_cast<Symbol>(s))) * k + s]
          .push_back(q);

  // Partition as: block id per state + member list per block.
  std::vector<std::uint32_t> block_of(n);
  std::vector<std::vector<std::uint32_t>> blocks;
  {
    std::vector<std::uint32_t> accepting, rejecting;
    for (std::uint32_t q = 0; q < n; ++q)
      (dfa.accepting(q) ? accepting : rejecting).push_back(q);
    if (!accepting.empty()) blocks.push_back(std::move(accepting));
    if (!rejecting.empty()) blocks.push_back(std::move(rejecting));
    for (std::uint32_t b = 0; b < blocks.size(); ++b)
      for (auto q : blocks[b]) block_of[q] = b;
  }

  // Hopcroft worklist of (block, symbol) splitters.
  std::set<std::pair<std::uint32_t, unsigned>> worklist;
  {
    // Seed with the smaller of the two initial blocks on every symbol.
    const std::uint32_t seed =
        blocks.size() == 2 && blocks[1].size() < blocks[0].size() ? 1 : 0;
    for (unsigned s = 0; s < k; ++s) worklist.insert({seed, s});
  }

  std::vector<std::uint32_t> involved_blocks;
  std::vector<std::uint32_t> hit_count(blocks.size() + n, 0);
  std::vector<std::vector<std::uint32_t>> movers(blocks.size() + n);

  while (!worklist.empty()) {
    const auto [splitter, s] = *worklist.begin();
    worklist.erase(worklist.begin());

    // X = all states with a transition on s into the splitter block.
    involved_blocks.clear();
    for (std::uint32_t target : blocks[splitter]) {
      for (std::uint32_t q :
           inverse[static_cast<std::size_t>(target) * k + s]) {
        const std::uint32_t b = block_of[q];
        if (hit_count[b] == 0) involved_blocks.push_back(b);
        if (hit_count[b] == 1 && movers[b].empty())
          movers[b].reserve(4);
        ++hit_count[b];
        movers[b].push_back(q);
      }
    }

    for (std::uint32_t b : involved_blocks) {
      if (hit_count[b] == blocks[b].size()) {
        // Entire block maps into the splitter: no split.
        hit_count[b] = 0;
        movers[b].clear();
        continue;
      }
      // Split block b into (movers) and (rest).
      const std::uint32_t nb = static_cast<std::uint32_t>(blocks.size());
      blocks.emplace_back();
      hit_count.push_back(0);
      movers.emplace_back();
      auto& moved = blocks.back();
      moved = std::move(movers[b]);
      movers[b].clear();
      hit_count[b] = 0;

      std::vector<std::uint32_t> rest;
      rest.reserve(blocks[b].size() - moved.size());
      for (std::uint32_t q : moved) block_of[q] = nb;
      for (std::uint32_t q : blocks[b])
        if (block_of[q] == b) rest.push_back(q);
      blocks[b] = std::move(rest);

      // Update the worklist per Hopcroft: if (b, sym) pending, add (nb, sym)
      // too; otherwise add the smaller half.
      for (unsigned sym = 0; sym < k; ++sym) {
        if (worklist.count({b, sym})) {
          worklist.insert({nb, sym});
        } else {
          worklist.insert(blocks[b].size() <= blocks[nb].size()
                              ? std::make_pair(b, sym)
                              : std::make_pair(nb, sym));
        }
      }
    }
    for (std::uint32_t b : involved_blocks) {
      hit_count[b] = 0;
      movers[b].clear();
    }
  }

  // Build the quotient automaton, renumbered BFS from the start block.
  const std::uint32_t nblocks = static_cast<std::uint32_t>(blocks.size());
  Dfa quotient(k);
  std::vector<Dfa::StateId> block_id(nblocks, Dfa::kUnassigned);
  std::vector<std::uint32_t> bfs;
  std::deque<std::uint32_t> queue;
  const std::uint32_t start_block = block_of[dfa.start()];
  block_id[start_block] = 0;
  bfs.push_back(start_block);
  queue.push_back(start_block);
  while (!queue.empty()) {
    const std::uint32_t b = queue.front();
    queue.pop_front();
    const std::uint32_t repr = blocks[b].front();
    for (unsigned s = 0; s < k; ++s) {
      const std::uint32_t tb =
          block_of[dfa.transition(repr, static_cast<Symbol>(s))];
      if (block_id[tb] == Dfa::kUnassigned) {
        block_id[tb] = static_cast<Dfa::StateId>(bfs.size());
        bfs.push_back(tb);
        queue.push_back(tb);
      }
    }
  }
  for (std::uint32_t b : bfs)
    quotient.add_state(dfa.accepting(blocks[b].front()));
  quotient.set_start(0);
  for (std::size_t i = 0; i < bfs.size(); ++i) {
    const std::uint32_t repr = blocks[bfs[i]].front();
    for (unsigned s = 0; s < k; ++s)
      quotient.set_transition(
          static_cast<Dfa::StateId>(i), static_cast<Symbol>(s),
          block_id[block_of[dfa.transition(repr, static_cast<Symbol>(s))]]);
  }
  return quotient;
}

}  // namespace sfa
