#include "sfa/classic/boyer_moore.hpp"

#include <algorithm>
#include <stdexcept>

namespace sfa {

namespace {

/// suff[i] = length of the longest substring ending at i that is also a
/// suffix of the whole pattern (the classic suffixes() preprocessing).
std::vector<std::ptrdiff_t> compute_suffixes(const std::vector<Symbol>& p) {
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(p.size());
  std::vector<std::ptrdiff_t> suff(p.size());
  suff[m - 1] = m;
  std::ptrdiff_t g = m - 1, f = m - 1;
  for (std::ptrdiff_t i = m - 2; i >= 0; --i) {
    if (i > g && suff[i + m - 1 - f] < i - g) {
      suff[i] = suff[i + m - 1 - f];
    } else {
      if (i < g) g = i;
      f = i;
      while (g >= 0 && p[g] == p[g + m - 1 - f]) --g;
      suff[i] = f - g;
    }
  }
  return suff;
}

}  // namespace

BoyerMoore::BoyerMoore(std::vector<Symbol> pattern, unsigned num_symbols)
    : pattern_(std::move(pattern)) {
  if (pattern_.empty())
    throw std::invalid_argument("boyer-moore: empty pattern");
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(pattern_.size());

  // Bad character: rightmost index of each symbol (-1 if absent).
  bad_char_.assign(num_symbols, -1);
  for (std::ptrdiff_t i = 0; i < m; ++i) {
    if (pattern_[i] >= num_symbols)
      throw std::invalid_argument("boyer-moore: symbol out of range");
    bad_char_[pattern_[i]] = i;
  }

  // Good suffix.
  const auto suff = compute_suffixes(pattern_);
  good_suffix_.assign(pattern_.size(), static_cast<std::size_t>(m));
  std::ptrdiff_t j = 0;
  for (std::ptrdiff_t i = m - 1; i >= 0; --i) {
    if (suff[i] == i + 1) {
      for (; j < m - 1 - i; ++j) {
        if (good_suffix_[j] == static_cast<std::size_t>(m))
          good_suffix_[j] = static_cast<std::size_t>(m - 1 - i);
      }
    }
  }
  for (std::ptrdiff_t i = 0; i <= m - 2; ++i)
    good_suffix_[m - 1 - suff[i]] = static_cast<std::size_t>(m - 1 - i);
}

BoyerMoore BoyerMoore::from_string(const std::string& pattern,
                                   const Alphabet& alphabet) {
  return BoyerMoore(alphabet.encode(pattern), alphabet.size());
}

std::size_t BoyerMoore::find(const Symbol* input, std::size_t len) const {
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(pattern_.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(len);
  std::ptrdiff_t j = 0;
  while (j <= n - m) {
    std::ptrdiff_t i = m - 1;
    while (i >= 0 && pattern_[i] == input[i + j]) --i;
    if (i < 0) return static_cast<std::size_t>(j);
    j += std::max<std::ptrdiff_t>(
        static_cast<std::ptrdiff_t>(good_suffix_[i]),
        i - bad_char_[input[i + j]]);
  }
  return npos;
}

std::vector<std::size_t> BoyerMoore::find_all(const Symbol* input,
                                              std::size_t len) const {
  std::vector<std::size_t> out;
  const std::ptrdiff_t m = static_cast<std::ptrdiff_t>(pattern_.size());
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(len);
  std::ptrdiff_t j = 0;
  while (j <= n - m) {
    std::ptrdiff_t i = m - 1;
    while (i >= 0 && pattern_[i] == input[i + j]) --i;
    if (i < 0) {
      out.push_back(static_cast<std::size_t>(j));
      j += static_cast<std::ptrdiff_t>(good_suffix_[0]);
    } else {
      j += std::max<std::ptrdiff_t>(
          static_cast<std::ptrdiff_t>(good_suffix_[i]),
          i - bad_char_[input[i + j]]);
    }
  }
  return out;
}

}  // namespace sfa
