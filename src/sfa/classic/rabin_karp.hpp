// Rabin–Karp rolling-hash search (related work, paper §V).
//
// Single- and multi-literal variants over symbol-encoded text, using a
// rolling polynomial hash modulo 2^61-1.  Candidate windows are verified
// exactly, so results are never probabilistic — the hash only filters.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sfa/automata/alphabet.hpp"

namespace sfa {

class RabinKarp {
 public:
  /// All patterns must share one length `m` (the classic multi-pattern
  /// Rabin–Karp restriction); for mixed lengths build one matcher per
  /// length.
  RabinKarp(std::vector<std::vector<Symbol>> patterns, unsigned num_symbols);

  static RabinKarp from_strings(const std::vector<std::string>& patterns,
                                const Alphabet& alphabet);

  struct Match {
    std::size_t position;   // start index
    std::uint32_t pattern;  // index into the pattern set
  };

  std::vector<Match> find_all(const Symbol* input, std::size_t len) const;
  bool contains_any(const Symbol* input, std::size_t len) const;

  std::size_t pattern_length() const { return m_; }

 private:
  std::uint64_t hash_window(const Symbol* s) const;

  std::size_t m_ = 0;
  std::vector<std::vector<Symbol>> patterns_;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> by_hash_;
  std::uint64_t pow_m_ = 1;  // base^(m-1) mod p, for rolling removal
};

}  // namespace sfa
