// Boyer–Moore single-string search (related work, paper §V).
//
// Bad-character + good-suffix heuristics over symbol-encoded text: the
// classic sublinear-on-average baseline for single-literal workloads in the
// classic-matchers benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfa/automata/alphabet.hpp"

namespace sfa {

class BoyerMoore {
 public:
  BoyerMoore(std::vector<Symbol> pattern, unsigned num_symbols);

  static BoyerMoore from_string(const std::string& pattern,
                                const Alphabet& alphabet);

  /// Position of the first occurrence, or npos.
  std::size_t find(const Symbol* input, std::size_t len) const;

  /// Start positions of all (possibly overlapping) occurrences.
  std::vector<std::size_t> find_all(const Symbol* input,
                                    std::size_t len) const;

  std::size_t pattern_length() const { return pattern_.size(); }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<Symbol> pattern_;
  std::vector<std::ptrdiff_t> bad_char_;     // k entries: last index of symbol
  std::vector<std::size_t> good_suffix_;     // m+1 shift table
};

}  // namespace sfa
