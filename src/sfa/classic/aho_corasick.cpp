#include "sfa/classic/aho_corasick.hpp"

#include <deque>
#include <stdexcept>

namespace sfa {

AhoCorasick::AhoCorasick(std::vector<std::vector<Symbol>> patterns,
                         unsigned num_symbols)
    : num_symbols_(num_symbols) {
  if (num_symbols_ == 0) throw std::invalid_argument("aho-corasick: k == 0");

  // 1. Trie construction with explicit nodes.
  struct TrieNode {
    std::vector<std::uint32_t> child;  // k entries, 0 = absent (root is 0)
    std::vector<std::uint32_t> outputs;
  };
  std::vector<TrieNode> trie(1);
  trie[0].child.assign(num_symbols_, 0);
  for (std::uint32_t p = 0; p < patterns.size(); ++p) {
    if (patterns[p].empty())
      throw std::invalid_argument("aho-corasick: empty pattern");
    std::uint32_t node = 0;
    for (Symbol s : patterns[p]) {
      if (s >= num_symbols_)
        throw std::invalid_argument("aho-corasick: symbol out of range");
      if (trie[node].child[s] == 0) {
        trie[node].child[s] = static_cast<std::uint32_t>(trie.size());
        trie.emplace_back();
        trie.back().child.assign(num_symbols_, 0);
        node = static_cast<std::uint32_t>(trie.size() - 1);
      } else {
        node = trie[node].child[s];
      }
    }
    trie[node].outputs.push_back(p);
  }

  // 2. BFS failure links, flattened directly into the dense goto table:
  //    next[node][s] = child if present, else next[fail(node)][s].
  const std::uint32_t n = static_cast<std::uint32_t>(trie.size());
  next_.assign(static_cast<std::size_t>(n) * num_symbols_, 0);
  outputs_.resize(n);
  any_output_.assign(n, 0);
  std::vector<std::uint32_t> fail(n, 0);

  std::deque<std::uint32_t> queue;
  for (unsigned s = 0; s < num_symbols_; ++s) {
    const std::uint32_t c = trie[0].child[s];
    next_[s] = c;  // root row: missing edges self-loop to root (0)
    if (c != 0) {
      fail[c] = 0;
      queue.push_back(c);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t node = queue.front();
    queue.pop_front();
    // Inherit outputs along the failure chain (suffix matches).
    outputs_[node] = trie[node].outputs;
    const auto& suffix_outputs = outputs_[fail[node]];
    outputs_[node].insert(outputs_[node].end(), suffix_outputs.begin(),
                          suffix_outputs.end());
    any_output_[node] = !outputs_[node].empty();

    for (unsigned s = 0; s < num_symbols_; ++s) {
      const std::uint32_t c = trie[node].child[s];
      const std::size_t row = static_cast<std::size_t>(node) * num_symbols_;
      if (c != 0) {
        fail[c] = next_[static_cast<std::size_t>(fail[node]) * num_symbols_ + s];
        next_[row + s] = c;
        queue.push_back(c);
      } else {
        next_[row + s] =
            next_[static_cast<std::size_t>(fail[node]) * num_symbols_ + s];
      }
    }
  }
}

AhoCorasick AhoCorasick::from_strings(const std::vector<std::string>& patterns,
                                      const Alphabet& alphabet) {
  std::vector<std::vector<Symbol>> encoded;
  encoded.reserve(patterns.size());
  for (const auto& p : patterns) encoded.push_back(alphabet.encode(p));
  return AhoCorasick(std::move(encoded), alphabet.size());
}

std::vector<AcMatch> AhoCorasick::find_all(const Symbol* input,
                                           std::size_t len) const {
  std::vector<AcMatch> out;
  std::uint32_t node = 0;
  for (std::size_t i = 0; i < len; ++i) {
    node = next_[static_cast<std::size_t>(node) * num_symbols_ + input[i]];
    if (any_output_[node])
      for (std::uint32_t p : outputs_[node]) out.push_back({i + 1, p});
  }
  return out;
}

bool AhoCorasick::contains_any(const Symbol* input, std::size_t len) const {
  std::uint32_t node = 0;
  for (std::size_t i = 0; i < len; ++i) {
    node = next_[static_cast<std::size_t>(node) * num_symbols_ + input[i]];
    if (any_output_[node]) return true;
  }
  return false;
}

std::size_t AhoCorasick::count_matches(const Symbol* input,
                                       std::size_t len) const {
  std::size_t count = 0;
  std::uint32_t node = 0;
  for (std::size_t i = 0; i < len; ++i) {
    node = next_[static_cast<std::size_t>(node) * num_symbols_ + input[i]];
    if (any_output_[node]) count += outputs_[node].size();
  }
  return count;
}

Dfa AhoCorasick::to_dfa() const {
  Dfa dfa(num_symbols_);
  const std::uint32_t n = num_nodes();
  // Match-anywhere absorbing semantics: add one absorbing accept state so
  // acceptance is "a match occurred somewhere", matching compile_prosite's
  // catenation convention.
  for (std::uint32_t q = 0; q < n; ++q) dfa.add_state(false);
  const Dfa::StateId absorb = dfa.add_state(true);
  for (unsigned s = 0; s < num_symbols_; ++s)
    dfa.set_transition(absorb, static_cast<Symbol>(s), absorb);
  for (std::uint32_t q = 0; q < n; ++q) {
    for (unsigned s = 0; s < num_symbols_; ++s) {
      const std::uint32_t t =
          next_[static_cast<std::size_t>(q) * num_symbols_ + s];
      dfa.set_transition(q, static_cast<Symbol>(s),
                         any_output_[t] ? absorb : t);
    }
  }
  dfa.set_start(0);
  return dfa;
}

}  // namespace sfa
