#include "sfa/classic/rabin_karp.hpp"

#include <cstring>
#include <stdexcept>

namespace sfa {

namespace {

// Mersenne prime 2^61 - 1: fast modular reduction without division.
constexpr std::uint64_t kMod = (1ull << 61) - 1;
constexpr std::uint64_t kBase = 257;

inline std::uint64_t mod_reduce(unsigned __int128 x) {
  std::uint64_t lo = static_cast<std::uint64_t>(x & kMod);
  std::uint64_t hi = static_cast<std::uint64_t>(x >> 61);
  std::uint64_t r = lo + hi;
  if (r >= kMod) r -= kMod;
  return r;
}

inline std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) {
  return mod_reduce(static_cast<unsigned __int128>(a) * b);
}

inline std::uint64_t add_mod(std::uint64_t a, std::uint64_t b) {
  std::uint64_t r = a + b;
  if (r >= kMod) r -= kMod;
  return r;
}

inline std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kMod - b;
}

}  // namespace

RabinKarp::RabinKarp(std::vector<std::vector<Symbol>> patterns,
                     unsigned num_symbols)
    : patterns_(std::move(patterns)) {
  if (patterns_.empty())
    throw std::invalid_argument("rabin-karp: no patterns");
  m_ = patterns_.front().size();
  if (m_ == 0) throw std::invalid_argument("rabin-karp: empty pattern");
  for (const auto& p : patterns_) {
    if (p.size() != m_)
      throw std::invalid_argument(
          "rabin-karp: all patterns must share one length");
    for (Symbol s : p)
      if (s >= num_symbols)
        throw std::invalid_argument("rabin-karp: symbol out of range");
  }
  for (std::size_t i = 1; i < m_; ++i) pow_m_ = mul_mod(pow_m_, kBase);
  for (std::uint32_t i = 0; i < patterns_.size(); ++i)
    by_hash_[hash_window(patterns_[i].data())].push_back(i);
}

RabinKarp RabinKarp::from_strings(const std::vector<std::string>& patterns,
                                  const Alphabet& alphabet) {
  std::vector<std::vector<Symbol>> encoded;
  encoded.reserve(patterns.size());
  for (const auto& p : patterns) encoded.push_back(alphabet.encode(p));
  return RabinKarp(std::move(encoded), alphabet.size());
}

std::uint64_t RabinKarp::hash_window(const Symbol* s) const {
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < m_; ++i)
    h = add_mod(mul_mod(h, kBase), s[i] + 1u);  // +1: avoid the 0 fixpoint
  return h;
}

std::vector<RabinKarp::Match> RabinKarp::find_all(const Symbol* input,
                                                  std::size_t len) const {
  std::vector<Match> out;
  if (len < m_) return out;
  std::uint64_t h = hash_window(input);
  for (std::size_t pos = 0;; ++pos) {
    const auto it = by_hash_.find(h);
    if (it != by_hash_.end()) {
      for (std::uint32_t p : it->second) {
        // Exact verification: the hash is only a filter.
        if (std::memcmp(patterns_[p].data(), input + pos,
                        m_ * sizeof(Symbol)) == 0)
          out.push_back({pos, p});
      }
    }
    if (pos + m_ >= len) break;
    // Roll: drop input[pos], append input[pos + m].
    h = sub_mod(h, mul_mod(input[pos] + 1u, pow_m_));
    h = add_mod(mul_mod(h, kBase), input[pos + m_] + 1u);
  }
  return out;
}

bool RabinKarp::contains_any(const Symbol* input, std::size_t len) const {
  if (len < m_) return false;
  std::uint64_t h = hash_window(input);
  for (std::size_t pos = 0;; ++pos) {
    const auto it = by_hash_.find(h);
    if (it != by_hash_.end()) {
      for (std::uint32_t p : it->second)
        if (std::memcmp(patterns_[p].data(), input + pos,
                        m_ * sizeof(Symbol)) == 0)
          return true;
    }
    if (pos + m_ >= len) break;
    h = sub_mod(h, mul_mod(input[pos] + 1u, pow_m_));
    h = add_mod(mul_mod(h, kBase), input[pos + m_] + 1u);
  }
  return false;
}

}  // namespace sfa
