// Aho–Corasick multi-string matching automaton (related work, paper §V).
//
// The classic comparator for multi-literal workloads: a trie over the
// pattern set with failure links, flattened here into a dense complete DFA
// table (goto + failure precomputed), so matching is the same
// one-transition-per-symbol loop as the library's DFA matcher — an
// apples-to-apples baseline for the classic-matchers benchmark.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfa/automata/alphabet.hpp"
#include "sfa/automata/dfa.hpp"

namespace sfa {

struct AcMatch {
  std::size_t end_position;  // index one past the match's last symbol
  std::uint32_t pattern;     // index into the pattern set
};

class AhoCorasick {
 public:
  /// Build from symbol-encoded patterns (each non-empty) over a k-symbol
  /// alphabet.
  AhoCorasick(std::vector<std::vector<Symbol>> patterns, unsigned num_symbols);

  /// Convenience: encode `patterns` with `alphabet` first.
  static AhoCorasick from_strings(const std::vector<std::string>& patterns,
                                  const Alphabet& alphabet);

  /// All matches (end position + pattern id), in scan order.
  std::vector<AcMatch> find_all(const Symbol* input, std::size_t len) const;

  /// First match test only (early exit).
  bool contains_any(const Symbol* input, std::size_t len) const;

  /// Count all matches without materializing them.
  std::size_t count_matches(const Symbol* input, std::size_t len) const;

  std::uint32_t num_nodes() const {
    return static_cast<std::uint32_t>(outputs_.size());
  }
  unsigned num_symbols() const { return num_symbols_; }

  /// Export as a complete match-anywhere DFA (accepting = any pattern ends
  /// here or at a suffix) — lets the SFA machinery run on an AC automaton.
  Dfa to_dfa() const;

 private:
  unsigned num_symbols_;
  std::vector<std::uint32_t> next_;              // nodes x k, dense goto
  std::vector<std::vector<std::uint32_t>> outputs_;  // pattern ids per node
  std::vector<std::uint8_t> any_output_;         // fast acceptance flag
};

}  // namespace sfa
