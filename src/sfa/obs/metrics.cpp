#include "sfa/obs/metrics.hpp"

#include <bit>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include "sfa/obs/json.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::obs {

// ---- Histogram -------------------------------------------------------------

std::uint64_t HistogramSnapshot::bucket_upper_bound(int i) {
  if (i <= 0) return 1;
  if (i >= kBuckets - 1) return ~0ull;
  return 1ull << i;
}

double HistogramSnapshot::quantile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double target = p * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (int i = 0; i < kBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= target && buckets[i] != 0) {
      // Geometric midpoint of the bucket range approximates the value.
      const double lo = i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
      const double hi = static_cast<double>(bucket_upper_bound(i));
      return (lo + hi) / 2.0;
    }
  }
  return static_cast<double>(max);
}

int Histogram::bucket_index(std::uint64_t v) {
  if (v == 0) return 0;
  const int idx = std::bit_width(v);  // 1 + floor(log2 v)
  return idx >= kBuckets ? kBuckets - 1 : idx;
}

void Histogram::record(std::uint64_t v) {
  buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void Histogram::merge_buckets(const std::uint64_t* counts_by_bucket,
                              int num_buckets, std::uint64_t sum) {
  std::uint64_t total = 0;
  for (int i = 0; i < num_buckets && i < kBuckets; ++i) {
    const std::uint64_t c = counts_by_bucket[i];
    if (c == 0) continue;
    buckets_[static_cast<std::size_t>(i)].fetch_add(c,
                                                    std::memory_order_relaxed);
    total += c;
    // Approximate min/max from occupied bucket bounds.
    const std::uint64_t lo = i == 0 ? 0 : 1ull << (i - 1);
    const std::uint64_t hi = HistogramSnapshot::bucket_upper_bound(i) - 1;
    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (lo < cur &&
           !min_.compare_exchange_weak(cur, lo, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (hi > cur &&
           !max_.compare_exchange_weak(cur, hi, std::memory_order_relaxed)) {
    }
  }
  count_.fetch_add(total, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (int i = 0; i < kBuckets; ++i)
    s.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = s.count == 0 || mn == ~0ull ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ull, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- Registry --------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // Deques: stable addresses under growth, so returned references never move.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_by_name;
  std::map<std::string, Gauge*> gauge_by_name;
  std::map<std::string, Histogram*> histogram_by_name;

  bool name_taken(const std::string& name) const {
    return counter_by_name.count(name) != 0 ||
           gauge_by_name.count(name) != 0 ||
           histogram_by_name.count(name) != 0;
  }
};

Registry& Registry::instance() {
  static Registry* r = new Registry();  // leaked: usable during static dtors
  return *r;
}

Registry::Impl& Registry::impl() const {
  static Impl* impl = new Impl();
  return *impl;
}

Counter& Registry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.counter_by_name.find(name);
  if (it != i.counter_by_name.end()) return *it->second;
  if (i.name_taken(name))
    throw std::logic_error("metric '" + name + "' exists with another kind");
  i.counters.emplace_back();
  i.counter_by_name[name] = &i.counters.back();
  return i.counters.back();
}

Gauge& Registry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.gauge_by_name.find(name);
  if (it != i.gauge_by_name.end()) return *it->second;
  if (i.name_taken(name))
    throw std::logic_error("metric '" + name + "' exists with another kind");
  i.gauges.emplace_back();
  i.gauge_by_name[name] = &i.gauges.back();
  return i.gauges.back();
}

Histogram& Registry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.histogram_by_name.find(name);
  if (it != i.histogram_by_name.end()) return *it->second;
  if (i.name_taken(name))
    throw std::logic_error("metric '" + name + "' exists with another kind");
  i.histograms.emplace_back();
  i.histogram_by_name[name] = &i.histograms.back();
  return i.histograms.back();
}

MetricsSnapshot Registry::snapshot() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  MetricsSnapshot s;
  for (const auto& [name, c] : i.counter_by_name)
    s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : i.gauge_by_name)
    s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : i.histogram_by_name)
    s.histograms.emplace_back(name, h->snapshot());
  return s;
}

void Registry::reset() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (auto& c : i.counters) c.reset();
  for (auto& g : i.gauges) g.reset();
  for (auto& h : i.histograms) h.reset();
}

namespace {

/// Histograms recorded in raw TSC cycles (name suffix "_cycles") are also
/// exported in nanoseconds, using the steady_clock calibration of tsc_hz()
/// (cached after the first call).  Returns 0 when the platform has no TSC —
/// the JSON exporter then falls back to raw cycles with an explicit
/// "calibrated": false flag, and the Prometheus ns series is omitted.
double g_ns_factor_override = -1.0;  // test hook; < 0 means "use tsc_hz()"

double cycles_to_ns_factor() {
  if (g_ns_factor_override >= 0.0) return g_ns_factor_override;
  const double hz = ::sfa::tsc_hz();
  return hz > 0.0 ? 1e9 / hz : 0.0;
}

bool is_cycles_histogram(const std::string& name) {
  constexpr const char suffix[] = "_cycles";
  constexpr std::size_t len = sizeof(suffix) - 1;
  return name.size() >= len &&
         name.compare(name.size() - len, len, suffix) == 0;
}

void write_histogram_json(JsonWriter& w, const HistogramSnapshot& h,
                          bool cycles_valued, double ns_factor) {
  w.begin_object();
  w.kv("count", h.count);
  w.kv("sum", h.sum);
  w.kv("min", h.min);
  w.kv("max", h.max);
  w.kv("mean", h.mean());
  w.kv("p50", h.quantile(0.50));
  w.kv("p90", h.quantile(0.90));
  w.kv("p99", h.quantile(0.99));
  // Sparse bucket encoding: [bucket_index, count] for occupied buckets.
  w.key("buckets").begin_array();
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    if (h.buckets[static_cast<std::size_t>(i)] == 0) continue;
    w.begin_array();
    w.value(std::uint64_t(static_cast<unsigned>(i)));
    w.value(h.buckets[static_cast<std::size_t>(i)]);
    w.end_array();
  }
  w.end_array();
  if (cycles_valued) {
    // Cycle-valued histograms always carry the derived block.  When the TSC
    // calibration is unavailable (tsc_hz() == 0) the values fall back to
    // raw cycles with an explicit calibrated=false rather than disappearing
    // — consumers can still diff runs, they just cannot compare hosts.
    const bool calibrated = ns_factor > 0.0;
    const double f = calibrated ? ns_factor : 1.0;
    w.key("ns").begin_object();
    w.kv("calibrated", calibrated);
    w.kv("unit", calibrated ? "ns" : "cycles");
    w.kv("mean", h.mean() * f);
    w.kv("p50", h.quantile(0.50) * f);
    w.kv("p90", h.quantile(0.90) * f);
    w.kv("p99", h.quantile(0.99) * f);
    w.kv("sum", static_cast<double>(h.sum) * f);
    w.end_object();
  }
  w.end_object();
}

std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void set_cycles_ns_factor_override_for_test(double factor) {
  g_ns_factor_override = factor;
}

void write_metrics_json(JsonWriter& w, const MetricsSnapshot& s) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : s.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : s.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : s.histograms) {
    w.key(name);
    const bool cycles_valued = is_cycles_histogram(name);
    write_histogram_json(w, h, cycles_valued,
                         cycles_valued ? cycles_to_ns_factor() : 0.0);
  }
  w.end_object();
  w.end_object();
}

std::string Registry::to_json() const {
  std::ostringstream os;
  JsonWriter w(os);
  write_metrics_json(w, snapshot());
  return os.str();
}

std::string Registry::to_prometheus() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  for (const auto& [name, v] : s.counters) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    const std::string p = prometheus_name(name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      cumulative += h.buckets[static_cast<std::size_t>(i)];
      if (h.buckets[static_cast<std::size_t>(i)] == 0 &&
          i != HistogramSnapshot::kBuckets - 1)
        continue;  // keep output compact; cumulative stays correct
      if (i == HistogramSnapshot::kBuckets - 1) {
        os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
      } else {
        os << p << "_bucket{le=\"" << HistogramSnapshot::bucket_upper_bound(i)
           << "\"} " << cumulative << "\n";
      }
    }
    os << p << "_sum " << h.sum << "\n";
    os << p << "_count " << h.count << "\n";
    // Calibrated nanosecond view of cycle-valued histograms, as a summary
    // series (quantiles are estimates from the log2 buckets, not exact).
    const double ns_factor =
        is_cycles_histogram(name) ? cycles_to_ns_factor() : 0.0;
    if (ns_factor > 0.0) {
      os << "# TYPE " << p << "_ns summary\n";
      os << p << "_ns{quantile=\"0.5\"} " << h.quantile(0.50) * ns_factor
         << "\n";
      os << p << "_ns{quantile=\"0.9\"} " << h.quantile(0.90) * ns_factor
         << "\n";
      os << p << "_ns{quantile=\"0.99\"} " << h.quantile(0.99) * ns_factor
         << "\n";
      os << p << "_ns_sum " << static_cast<double>(h.sum) * ns_factor << "\n";
      os << p << "_ns_count " << h.count << "\n";
    }
  }
  return os.str();
}

}  // namespace sfa::obs
