// Chrome-tracing / Perfetto JSON exporter for TraceCollector.
//
// Output is the "JSON Array Format" with an object wrapper:
//   {"displayTimeUnit":"ms","traceEvents":[ ... ]}
// Spans are "X" (complete) events, instants are "i", thread names ride on
// "M" metadata events.  Timestamps are microseconds (double) as the format
// requires; nanosecond precision is kept in the fraction.
#include <fstream>
#include <ostream>

#include "sfa/obs/json.hpp"
#include "sfa/obs/trace.hpp"

namespace sfa::obs {

namespace {

constexpr int kPid = 1;  // single-process traces

double to_us(std::uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

void write_args(JsonWriter& w, const TraceEvent& ev) {
  if (ev.num_args == 0) return;
  w.key("args").begin_object();
  for (std::uint8_t i = 0; i < ev.num_args; ++i)
    if (ev.args[i].name != nullptr) w.kv(ev.args[i].name, ev.args[i].value);
  w.end_object();
}

}  // namespace

void TraceCollector::write_chrome_json(std::ostream& os) const {
  const std::vector<ThreadTrace> threads = snapshot();
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  for (const ThreadTrace& t : threads) {
    if (!t.name.empty()) {
      w.begin_object();
      w.kv("ph", "M");
      w.kv("pid", std::uint64_t{kPid});
      w.kv("tid", std::uint64_t{t.tid});
      w.kv("name", "thread_name");
      w.key("args").begin_object();
      w.kv("name", t.name);
      w.end_object();
      w.end_object();
    }
    for (const TraceEvent& ev : t.events) {
      w.begin_object();
      w.kv("ph", ev.type == EventType::kSpan ? "X" : "i");
      w.kv("pid", std::uint64_t{kPid});
      w.kv("tid", std::uint64_t{t.tid});
      w.kv("cat", ev.category != nullptr ? ev.category : "default");
      w.kv("name", ev.name != nullptr ? ev.name : "?");
      w.kv("ts", to_us(ev.ts_ns));
      if (ev.type == EventType::kSpan) {
        w.kv("dur", to_us(ev.dur_ns));
      } else {
        w.kv("s", "t");  // instant scope: thread
      }
      write_args(w, ev);
      w.end_object();
    }
    if (t.dropped != 0) {
      // Make truncation visible in the trace itself rather than silent.
      // Timestamped at the last completion time so per-thread monotonicity
      // (what the validator checks) is preserved.
      std::uint64_t last_done_ns = 0;
      for (const TraceEvent& ev : t.events) {
        const std::uint64_t done = ev.ts_ns + ev.dur_ns;
        if (done > last_done_ns) last_done_ns = done;
      }
      w.begin_object();
      w.kv("ph", "i");
      w.kv("pid", std::uint64_t{kPid});
      w.kv("tid", std::uint64_t{t.tid});
      w.kv("cat", "obs");
      w.kv("name", "events-dropped");
      w.kv("ts", to_us(last_done_ns));
      w.kv("s", "t");
      w.key("args").begin_object();
      w.kv("dropped", t.dropped);
      w.end_object();
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  os << '\n';
}

bool TraceCollector::write_chrome_json_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_chrome_json(os);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace sfa::obs
