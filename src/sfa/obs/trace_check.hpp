// Validator for the Chrome-tracing JSON the exporter emits (and, by
// construction, any spec-conforming producer of the same subset).  Used by
// the test suite, the `sfa_trace_check` CLI tool, and the CI trace job.
//
// Checks:
//   - the document is well-formed JSON with a traceEvents array of flat
//     event objects;
//   - every event carries ph/pid/tid/name, spans (ph "X") carry numeric
//     ts/dur >= 0;
//   - per thread, event completion times (ts + dur for spans, ts for
//     instants) are monotone non-decreasing in file order — the recording
//     order of the per-thread buffers;
//   - per thread, spans are balanced: properly nested (any two either
//     disjoint or one containing the other), never partially overlapping;
//   - match-chunk spans ("match"-category, name "chunk-*") carry a numeric
//     `engine` arg naming the ScanEngine that produced them (the scan
//     substrate's EngineId: 0 direct, 1 eager, 2 lazy, 3 speculative,
//     4 narrowed);
//   - when a match-chunk span carries the (optional, PR 10) `scheduler` arg
//     it must be a valid sched::Policy id (0 static-stripe, 1 work-stealing,
//     2 guided);
//   - match-chunk spans that carry `task` and `stride` args are checked
//     for stripe congruence: within one (tid, stride) group all task
//     indices must share the same residue mod stride (under static-stripe
//     dispatch worker w only ever runs tasks congruent to its id).
//     Violations are counted, not fatal — work-stealing and guided traces
//     legitimately break the invariant, and `sfa_trace_check
//     --expect-scheduler` decides whether that is acceptable for the run
//     under test.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sfa::obs {

struct TraceCheckResult {
  bool ok = false;
  std::string error;          // first violation, empty when ok
  std::size_t events = 0;     // total events (including metadata)
  std::size_t spans = 0;      // "X" events
  std::size_t threads = 0;    // distinct tids with at least one event
  /// Distinct tids that carry at least one span in the "build" category —
  /// the builder's worker tracks (thread names are cosmetic; the category
  /// is what identifies builder work).
  std::size_t worker_tracks = 0;
  /// "match"-category chunk spans (name "chunk-*"); each was required to
  /// carry a valid numeric `engine` arg.
  std::size_t match_chunk_spans = 0;
  /// Number of valid EngineId values (exclusive upper bound of the
  /// `engine` arg accepted on match-chunk spans).
  static constexpr std::size_t kEngineIds = 5;
  /// Match-chunk spans per EngineId — lets consumers (and the CLI's
  /// --expect-engine) assert that a trace actually exercised a given
  /// chunk policy.
  std::array<std::size_t, kEngineIds> match_chunk_spans_by_engine{};
  /// Number of valid sched::Policy values (exclusive upper bound of the
  /// optional `scheduler` arg on match-chunk and lazy-chunk spans).
  static constexpr std::size_t kSchedulerIds = 3;
  /// Pooled chunk spans (match-chunk and build-category lazy-chunk) per
  /// scheduler id — consumers (and the CLI's --expect-scheduler) assert
  /// that a trace exercised a given dispatch policy.  Spans without the
  /// arg (pre-PR 10 traces) count nowhere.
  std::array<std::size_t, kSchedulerIds> match_chunk_spans_by_scheduler{};
  /// Pooled chunk spans whose task index broke the per-(tid, stride)
  /// residue invariant.  Under static-stripe dispatch this means the
  /// binding is broken; under work-stealing/guided it is the expected
  /// effect of dynamic dispatch.  Never flips `ok` by itself.
  std::size_t stripe_violations = 0;
  /// First stripe violation, for diagnostics (empty when none).
  std::string stripe_error;
};

/// Validate a trace document given as a string.
TraceCheckResult check_trace_json(const std::string& json);

/// Validate a trace file.  I/O errors are reported via `ok`/`error`.
TraceCheckResult check_trace_file(const std::string& path);

}  // namespace sfa::obs
