// Low-overhead span tracing (observability subsystem, half 1 of 2).
//
// Model: per-thread fixed-capacity event buffers written without locks
// (single writer: the owning thread), a process-global collector that owns
// every buffer, and a Chrome-tracing/Perfetto-compatible JSON exporter.
// Spans are recorded as "complete" events (begin timestamp + duration) when
// they close, so a buffer never holds half a span; instants are points.
//
// Two layers:
//   1. The API below (TraceCollector, ScopedSpanImpl, emit_instant, ...) is
//      ALWAYS compiled — tests and tools drive it directly in any build.
//   2. The SFA_TRACE_* instrumentation macros used in hot paths compile to
//      true no-ops unless the build sets -DSFA_TRACE_ENABLED=1 (CMake option
//      SFA_TRACE=ON).  In the default build the hot layers therefore carry
//      zero tracing cost — not even a branch.
//
// Event name/category strings must be string literals (pointers are stored,
// not copied); thread names are copied.  Timestamps come from
// steady_clock relative to TraceCollector::start().
//
// Thread-safety contract: emission is safe from any thread while the
// collector is active; snapshot()/export must only run after every traced
// thread has been joined or is quiescent (the builders join their workers
// before returning, so tracing a build trivially satisfies this).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sfa::obs {

#if defined(SFA_TRACE_ENABLED) && SFA_TRACE_ENABLED
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

enum class EventType : std::uint8_t {
  kSpan,     // begin + duration ("X" in Chrome tracing)
  kInstant,  // point in time ("i")
};

/// One integer key/value attached to an event (name must be a literal).
struct TraceArg {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

/// One recorded event.  Fixed-size POD so per-thread buffers are flat
/// arrays; up to kMaxArgs integer args ride along (steal victim ids, state
/// counts, chunk boundaries, dispatch attribution).
struct TraceEvent {
  /// Chunk spans carry engine + scheduler/task/stride + symbols (+ one
  /// spare), which sets the bound.
  static constexpr std::size_t kMaxArgs = 6;
  const char* category = nullptr;
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   // begin time, relative to collector start
  std::uint64_t dur_ns = 0;  // kSpan only
  TraceArg args[kMaxArgs]{};
  std::uint8_t num_args = 0;
  EventType type = EventType::kInstant;
};

/// Per-thread view of the recorded stream (snapshot form).
struct ThreadTrace {
  std::uint32_t tid = 0;
  std::string name;                 // from set_thread_name(), may be empty
  std::uint64_t dropped = 0;        // events lost to a full buffer
  std::vector<TraceEvent> events;   // in recording order
};

/// Session configuration for TraceCollector::start().
struct TraceConfig {
  /// Bounds per-thread memory; interpretation depends on `ring`.
  std::size_t events_per_thread = 1u << 16;
  /// false: a full buffer drops NEW events (the recorded prefix stays
  /// coherent) — right for bounded runs like a build.
  /// true: the buffer wraps, keeping the NEWEST events_per_thread events —
  /// right for long-running matcher services where the interesting window
  /// is "just before now".  Overwritten events are reported as dropped.
  bool ring = false;
};

class TraceCollector {
 public:
  static TraceCollector& instance();

  /// Begin a recording session.  Clears previous events.  `events_per_thread`
  /// bounds memory: once a thread's buffer fills, further events from that
  /// thread are counted as dropped (the recorded prefix stays coherent).
  void start(std::size_t events_per_thread = 1u << 16);

  /// As above, with ring-mode control (TraceConfig::ring keeps the newest
  /// events instead of the oldest).
  void start(const TraceConfig& config);

  /// End the session.  Events remain available for snapshot()/export.
  void stop();

  bool active() const;

  /// Copy out everything recorded (threads with zero events are omitted).
  std::vector<ThreadTrace> snapshot() const;

  /// Chrome-tracing JSON (load in Perfetto / chrome://tracing).  Includes
  /// thread_name metadata events.  Implemented in trace_export.cpp.
  void write_chrome_json(std::ostream& os) const;
  /// Convenience: write to a file; returns false on I/O failure.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  TraceCollector() = default;
};

/// Nanoseconds since the active session started (0 when inactive).
std::uint64_t now_ns();

/// Name the calling thread's track in the exported trace (copied).
void set_thread_name(const std::string& name);

/// Record a point event on the calling thread.
void emit_instant(const char* category, const char* name,
                  const char* arg1_name = nullptr, std::uint64_t arg1 = 0,
                  const char* arg2_name = nullptr, std::uint64_t arg2 = 0);

/// Record a complete span [begin_ns, begin_ns + dur_ns) on the calling
/// thread.  ScopedSpanImpl is the usual front end.
void emit_span(const char* category, const char* name, std::uint64_t begin_ns,
               std::uint64_t dur_ns, const char* arg1_name = nullptr,
               std::uint64_t arg1 = 0, const char* arg2_name = nullptr,
               std::uint64_t arg2 = 0);

/// As above with an explicit arg list (at most TraceEvent::kMaxArgs are
/// recorded).
void emit_span(const char* category, const char* name, std::uint64_t begin_ns,
               std::uint64_t dur_ns, const TraceArg* args,
               std::size_t num_args);

/// RAII span: captures the begin timestamp at construction (or open()) and
/// emits a complete event at finish()/destruction.  Does nothing when no
/// session is active.
class ScopedSpanImpl {
 public:
  ScopedSpanImpl(const char* category, const char* name) { open(category, name); }
  ScopedSpanImpl() = default;
  ~ScopedSpanImpl() { finish(); }
  ScopedSpanImpl(const ScopedSpanImpl&) = delete;
  ScopedSpanImpl& operator=(const ScopedSpanImpl&) = delete;

  /// (Re)arm: begin a new span now.  Finishes a still-open previous one.
  void open(const char* category, const char* name);

  /// Attach up to TraceEvent::kMaxArgs integer args.  A repeated name
  /// (same literal) overwrites its slot; past capacity the LAST slot is
  /// overwritten.
  void arg(const char* name, std::uint64_t value);

  /// Emit the span ending now.  Idempotent.
  void finish();

 private:
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t begin_ns_ = 0;
  TraceArg args_[TraceEvent::kMaxArgs]{};
  std::uint8_t num_args_ = 0;
  bool open_ = false;
};

/// Disabled-build stand-in: an empty type whose methods are no-ops, so
/// instrumented code compiles identically with tracing off.  The test suite
/// static_asserts that this type stays empty.
struct ScopedSpanNoop {
  ScopedSpanNoop(const char*, const char*) {}
  ScopedSpanNoop() = default;
  void open(const char*, const char*) {}
  void arg(const char*, std::uint64_t) {}
  void finish() {}
};

#if defined(SFA_TRACE_ENABLED) && SFA_TRACE_ENABLED
using ScopedSpan = ScopedSpanImpl;
#else
using ScopedSpan = ScopedSpanNoop;
#endif

}  // namespace sfa::obs

// ---- instrumentation macros -----------------------------------------------
//
// These are what the hot layers use.  With SFA_TRACE=OFF every macro expands
// to nothing (argument expressions are NOT evaluated), so instrumentation
// sites cost literally zero in the default build.

#define SFA_OBS_CONCAT_INNER(a, b) a##b
#define SFA_OBS_CONCAT(a, b) SFA_OBS_CONCAT_INNER(a, b)

#if defined(SFA_TRACE_ENABLED) && SFA_TRACE_ENABLED

/// Anonymous RAII span covering the enclosing scope.
#define SFA_TRACE_SCOPE(cat, name) \
  ::sfa::obs::ScopedSpanImpl SFA_OBS_CONCAT(sfa_trace_scope_, __LINE__){cat, name}

/// Named RAII span — call var.arg(...) / var.finish() / var.open(...) on it.
#define SFA_TRACE_SPAN(var, cat, name) ::sfa::obs::ScopedSpanImpl var{cat, name}

/// Named span declared unarmed; arm later with var.open(cat, name).
#define SFA_TRACE_SPAN_IDLE(var) ::sfa::obs::ScopedSpanImpl var

#define SFA_TRACE_INSTANT(cat, name) ::sfa::obs::emit_instant(cat, name)
#define SFA_TRACE_INSTANT1(cat, name, k1, v1) \
  ::sfa::obs::emit_instant(cat, name, k1, static_cast<std::uint64_t>(v1))
#define SFA_TRACE_INSTANT2(cat, name, k1, v1, k2, v2)                        \
  ::sfa::obs::emit_instant(cat, name, k1, static_cast<std::uint64_t>(v1), k2, \
                           static_cast<std::uint64_t>(v2))

/// Evaluate `expr` (a std::string) and name the calling thread's track.
#define SFA_TRACE_THREAD_NAME(expr) ::sfa::obs::set_thread_name(expr)

#else  // tracing compiled out

#define SFA_TRACE_SCOPE(cat, name) \
  ::sfa::obs::ScopedSpanNoop SFA_OBS_CONCAT(sfa_trace_scope_, __LINE__){cat, name}
#define SFA_TRACE_SPAN(var, cat, name) ::sfa::obs::ScopedSpanNoop var{cat, name}
#define SFA_TRACE_SPAN_IDLE(var) ::sfa::obs::ScopedSpanNoop var
#define SFA_TRACE_INSTANT(cat, name) ((void)0)
#define SFA_TRACE_INSTANT1(cat, name, k1, v1) ((void)0)
#define SFA_TRACE_INSTANT2(cat, name, k1, v1, k2, v2) ((void)0)
#define SFA_TRACE_THREAD_NAME(expr) ((void)0)

#endif
