// Process-wide metrics registry (observability subsystem, half 2 of 2).
//
// Named counters, gauges, and log2-bucketed histograms, all lock-free on the
// update path (plain relaxed atomics); the registry itself takes a mutex
// only at registration, and handles returned by counter()/gauge()/
// histogram() stay valid for the life of the process — hot code looks a
// metric up once and keeps the reference.
//
// Histograms use power-of-two buckets: bucket 0 counts zeros, bucket i
// (1..63) counts values v with 2^(i-1) <= v < 2^i.  That matches the
// Log2Histogram the concurrent substrates maintain in their counter blocks
// (sfa/concurrent/counters.hpp), so the builders can merge those into the
// registry without translation.
//
// Exporters: snapshot() for programmatic use, to_json() for the CLI's
// --stats-json, to_prometheus() for scrape-style consumption.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sfa::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

struct HistogramSnapshot {
  static constexpr int kBuckets = 64;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Exclusive upper bound of bucket i (0 -> 1, i -> 2^i).
  static std::uint64_t bucket_upper_bound(int i);
  /// Estimated p-quantile (0 < p < 1) from the bucket midpoints.
  double quantile(double p) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

class Histogram {
 public:
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket for value v: 0 for v == 0, else 1 + floor(log2 v), clamped.
  static int bucket_index(std::uint64_t v);

  void record(std::uint64_t v);

  /// Bulk merge: `counts_by_bucket[i]` observations in bucket i with a known
  /// total `sum` (how the concurrent substrates' Log2Histograms fold in).
  void merge_buckets(const std::uint64_t* counts_by_bucket, int num_buckets,
                     std::uint64_t sum);

  HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class JsonWriter;

/// Write a snapshot as the {"counters":…,"gauges":…,"histograms":…} object
/// embedded in the CLI's --stats-json output.
void write_metrics_json(JsonWriter& w, const MetricsSnapshot& s);

/// Test hook: force the cycles→ns factor used by the JSON exporter for
/// cycle-valued histograms (0 simulates an uncalibrated host, where the
/// export falls back to raw cycles with "calibrated": false).  Any negative
/// value restores the tsc_hz()-derived default.  Not thread-safe; call only
/// from single-threaded test setup.
void set_cycles_ns_factor_override_for_test(double factor);

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create.  Returned references are stable forever; a name maps
  /// to one metric kind (requesting the same name as a different kind
  /// throws std::logic_error).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Zero every registered metric (metrics stay registered).  Test/bench
  /// hook — the registry is process-global and otherwise accumulates.
  void reset();

  std::string to_json() const;
  /// Prometheus text exposition format; '.' in names becomes '_', and
  /// histograms expand to _bucket{le=...}/_sum/_count series.
  std::string to_prometheus() const;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace sfa::obs
