// Machine-readable exports of the library's statistics structures.
//
// Schemas (documented in docs/OBSERVABILITY.md):
//   sfa-build-stats/1 — one construction run (BuildStats + method + the
//                       process metrics registry snapshot)
//   sfa-match-stats/1 — one matching run
#pragma once

#include <iosfwd>
#include <string>

#include "sfa/core/sfa.hpp"
#include "sfa/obs/profile/perf_counters.hpp"

namespace sfa::obs {

class JsonWriter;

struct MatchRunInfo {
  std::string command;     // "match"
  /// How the input was consumed: "match" (one-shot acceptance), "count"
  /// (occurrence counting), or "stream" (StreamMatcher session fed in
  /// blocks).  Additive sfa-match-stats/1 field.
  std::string mode = "match";
  std::uint64_t input_symbols = 0;
  unsigned threads = 1;
  double seconds = 0;
  bool accepted = false;
  std::uint64_t match_count = 0;  // only when counting was requested
  bool counted = false;
  /// Lazy-matcher runs (`sfa match --lazy`): additive sfa-match-stats/1
  /// fields, emitted only when `lazy` is set.
  bool lazy = false;
  std::uint64_t lazy_interned_states = 0;
  std::uint64_t lazy_cache_hits = 0;
  /// Narrowed-matching runs (`sfa match --narrowed`): additive
  /// sfa-match-stats/1 fields, emitted only when `narrowed` is set.
  bool narrowed = false;
  std::uint64_t narrowed_entry_states = 0;
  std::uint64_t narrowed_fallback_chunks = 0;
  /// Persistent-executor counters for this run (deltas of the process-wide
  /// scan::default_executor() around the timed section, except
  /// pool_workers which is the team size).  Additive sfa-match-stats/1
  /// fields; all zero when the run never left the sequential path.
  unsigned pool_workers = 0;
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_wakeups = 0;
  /// Dispatch policy of the run (sched::policy_name spelling) and the
  /// steal delta over the timed section — additive sfa-match-stats/1
  /// fields; `scheduler` is emitted whenever non-empty, `pool_steals`
  /// alongside the other pool_* counters.
  std::string scheduler;
  std::uint64_t pool_steals = 0;
  /// Adaptive chunk sizing (`--adaptive-chunks`): chunk byte sizes the
  /// planner produced during the run.  Additive fields, emitted only when
  /// `adaptive` is set.
  bool adaptive = false;
  std::uint64_t chunk_size_min = 0;
  std::uint64_t chunk_size_max = 0;
  std::uint64_t chunk_size_final = 0;
  /// δ-table layout of the SFA this run matched with (`--table-layout` /
  /// layout-tagged .sfa files): additive sfa-match-stats/1 fields
  /// table_layout, table_bytes, table_rows_unique and — for d2fa — the
  /// d2fa_chase_depth histogram, emitted only when `has_table` is set.
  bool has_table = false;
  table::TableStats table;
  /// Emit the ExecutionProfiler's sfa-profile/1 snapshot as the additive
  /// `profile` object (the CLI resets the profiler before the timed run so
  /// the section covers exactly this run).
  bool profile = false;
  /// Hardware counters for the run's phase; emitted as the additive
  /// `perf_counters` object only when `perf.available`.
  PerfCounterValues perf;
};

/// sfa-build-stats/1.  `method` is build_method_name(...); pass
/// include_metrics=false to omit the registry snapshot (stable unit tests).
/// `perf`, when non-null and available, becomes the additive
/// `perf_counters` object.  `table`, when non-null, adds the additive
/// table_layout / table_bytes / table_rows_unique / d2fa_chase_depth
/// fields.
void write_build_stats_json(std::ostream& os, const BuildStats& stats,
                            const std::string& method,
                            bool include_metrics = true,
                            const PerfCounterValues* perf = nullptr,
                            const table::TableStats* table = nullptr);

/// sfa-match-stats/1.
void write_match_stats_json(std::ostream& os, const MatchRunInfo& info,
                            bool include_metrics = true);

/// Host metadata object shared by the bench reports' `host` block and
/// `sfa info`: cpu model, hardware threads, cache line, memory, tsc_hz,
/// compiler, SIMD features, cpufreq governor (when readable).
void write_host_info_json(JsonWriter& w);

/// Write either document to a file; returns false on I/O failure.
bool write_build_stats_json_file(const std::string& path,
                                 const BuildStats& stats,
                                 const std::string& method,
                                 const PerfCounterValues* perf = nullptr,
                                 const table::TableStats* table = nullptr);
bool write_match_stats_json_file(const std::string& path,
                                 const MatchRunInfo& info);

}  // namespace sfa::obs
