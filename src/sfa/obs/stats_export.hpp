// Machine-readable exports of the library's statistics structures.
//
// Schemas (documented in docs/OBSERVABILITY.md):
//   sfa-build-stats/1 — one construction run (BuildStats + method + the
//                       process metrics registry snapshot)
//   sfa-match-stats/1 — one matching run
#pragma once

#include <iosfwd>
#include <string>

#include "sfa/core/sfa.hpp"

namespace sfa::obs {

struct MatchRunInfo {
  std::string command;     // "match"
  /// How the input was consumed: "match" (one-shot acceptance), "count"
  /// (occurrence counting), or "stream" (StreamMatcher session fed in
  /// blocks).  Additive sfa-match-stats/1 field.
  std::string mode = "match";
  std::uint64_t input_symbols = 0;
  unsigned threads = 1;
  double seconds = 0;
  bool accepted = false;
  std::uint64_t match_count = 0;  // only when counting was requested
  bool counted = false;
  /// Lazy-matcher runs (`sfa match --lazy`): additive sfa-match-stats/1
  /// fields, emitted only when `lazy` is set.
  bool lazy = false;
  std::uint64_t lazy_interned_states = 0;
  std::uint64_t lazy_cache_hits = 0;
  /// Narrowed-matching runs (`sfa match --narrowed`): additive
  /// sfa-match-stats/1 fields, emitted only when `narrowed` is set.
  bool narrowed = false;
  std::uint64_t narrowed_entry_states = 0;
  std::uint64_t narrowed_fallback_chunks = 0;
  /// Persistent-executor counters for this run (deltas of the process-wide
  /// scan::default_executor() around the timed section, except
  /// pool_workers which is the team size).  Additive sfa-match-stats/1
  /// fields; all zero when the run never left the sequential path.
  unsigned pool_workers = 0;
  std::uint64_t pool_dispatches = 0;
  std::uint64_t pool_wakeups = 0;
};

/// sfa-build-stats/1.  `method` is build_method_name(...); pass
/// include_metrics=false to omit the registry snapshot (stable unit tests).
void write_build_stats_json(std::ostream& os, const BuildStats& stats,
                            const std::string& method,
                            bool include_metrics = true);

/// sfa-match-stats/1.
void write_match_stats_json(std::ostream& os, const MatchRunInfo& info,
                            bool include_metrics = true);

/// Write either document to a file; returns false on I/O failure.
bool write_build_stats_json_file(const std::string& path,
                                 const BuildStats& stats,
                                 const std::string& method);
bool write_match_stats_json_file(const std::string& path,
                                 const MatchRunInfo& info);

}  // namespace sfa::obs
