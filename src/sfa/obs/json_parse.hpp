// Minimal JSON parser shared by the observability consumers: the trace
// validator (trace_check), the `sfa profile` report builder, and the
// sfa_bench_compare regression gate.
//
// Covers the full JSON grammar minus \uXXXX surrogate pairs (escapes are
// decoded byte-wise; non-ASCII passes through untouched).  Enough for the
// documents this project produces, and kept in-tree so the tools have no
// external dependency.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sfa::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::shared_ptr<Array> arr;
  std::shared_ptr<Object> obj;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup; nullptr when this is not an object or the key is absent.
  const JsonValue* get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }

  /// Number at `key`, or `fallback` when absent / not numeric.
  double number_or(const std::string& key, double fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->is_number() ? v->num : fallback;
  }

  /// String at `key`, or `fallback` when absent / not a string.
  std::string string_or(const std::string& key,
                        const std::string& fallback) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->is_string() ? v->str : fallback;
  }
};

/// Parse a complete JSON document into `out`.  On failure returns false and
/// fills `error` with an offset-bearing message; trailing garbage after the
/// document is an error.
bool parse_json(const std::string& text, JsonValue& out, std::string& error);

}  // namespace sfa::obs
