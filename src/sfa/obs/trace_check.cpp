#include "sfa/obs/trace_check.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "sfa/obs/json_parse.hpp"

namespace sfa::obs {

namespace {

// The JSON grammar lives in json_parse.{hpp,cpp} (shared with `sfa profile`
// and sfa_bench_compare); this file owns only the trace semantics.
using JValue = JsonValue;

// ---- trace semantics -------------------------------------------------------

struct Span {
  double begin;
  double end;
  std::string name;
};

TraceCheckResult fail_result(std::string error) {
  TraceCheckResult r;
  r.error = std::move(error);
  return r;
}

}  // namespace

TraceCheckResult check_trace_json(const std::string& json) {
  JValue root;
  std::string error;
  if (!parse_json(json, root, error)) return fail_result(error);

  // Accept both the object wrapper and the bare-array form of the spec.
  const JValue* events = nullptr;
  if (root.kind == JValue::Kind::kArray) {
    events = &root;
  } else if (root.kind == JValue::Kind::kObject) {
    events = root.get("traceEvents");
    if (events == nullptr || events->kind != JValue::Kind::kArray)
      return fail_result("top-level object has no traceEvents array");
  } else {
    return fail_result("top level must be an object or array");
  }

  TraceCheckResult res;
  std::map<double, std::vector<Span>> spans_by_tid;
  std::map<double, double> last_done_by_tid;
  std::map<double, bool> tid_seen;
  std::map<double, bool> tid_has_build_span;
  // Stripe congruence: first task residue seen per (tid, stride) group.
  std::map<std::pair<double, double>, double> stripe_residue;

  std::size_t index = 0;
  for (const JValue& ev : *events->arr) {
    const std::string at = "event #" + std::to_string(index++);
    if (ev.kind != JValue::Kind::kObject)
      return fail_result(at + ": not an object");
    const JValue* ph = ev.get("ph");
    const JValue* pid = ev.get("pid");
    const JValue* tid = ev.get("tid");
    const JValue* name = ev.get("name");
    if (ph == nullptr || !ph->is_string())
      return fail_result(at + ": missing/non-string ph");
    if (pid == nullptr || !pid->is_number())
      return fail_result(at + ": missing/non-numeric pid");
    if (tid == nullptr || !tid->is_number())
      return fail_result(at + ": missing/non-numeric tid");
    if (name == nullptr || !name->is_string())
      return fail_result(at + ": missing/non-string name");
    ++res.events;
    if (ph->str == "M") continue;  // metadata carries no timestamp
    tid_seen[tid->num] = true;

    const JValue* ts = ev.get("ts");
    if (ts == nullptr || !ts->is_number())
      return fail_result(at + ": missing/non-numeric ts");
    if (ts->num < 0) return fail_result(at + ": negative ts");

    double done = ts->num;
    if (ph->str == "X") {
      const JValue* dur = ev.get("dur");
      if (dur == nullptr || !dur->is_number())
        return fail_result(at + ": span without numeric dur");
      if (dur->num < 0) return fail_result(at + ": negative dur");
      done = ts->num + dur->num;
      ++res.spans;
      spans_by_tid[tid->num].push_back({ts->num, done, name->str});
      const JValue* cat = ev.get("cat");
      if (cat != nullptr && cat->is_string() && cat->str == "build")
        tid_has_build_span[tid->num] = true;
      // Match-chunk spans must identify their ScanEngine: the `engine` arg
      // is how trace consumers tell eager chunk scans from speculative or
      // rescan passes sharing the same span names.
      const bool is_match_chunk = cat != nullptr && cat->is_string() &&
                                  cat->str == "match" &&
                                  name->str.rfind("chunk-", 0) == 0;
      // Lazy chunks are build-category spans (their workers really do
      // construct SFA states) but ride the same pooled dispatch, so their
      // scheduler/task/stride args are audited identically.  They carry no
      // engine arg and do not count as match-chunk spans.
      const bool is_lazy_chunk = cat != nullptr && cat->is_string() &&
                                 cat->str == "build" &&
                                 name->str == "lazy-chunk";
      if (is_match_chunk || is_lazy_chunk) {
        const JValue* args_ev = ev.get("args");
        const JValue* args =
            args_ev != nullptr && args_ev->kind == JValue::Kind::kObject
                ? args_ev
                : nullptr;
        if (is_match_chunk) {
          const JValue* engine = args != nullptr ? args->get("engine")
                                                 : nullptr;
          if (engine == nullptr || !engine->is_number())
            return fail_result(at + ": match-chunk span '" + name->str +
                               "' without numeric engine arg");
          if (engine->num < 0 ||
              engine->num >=
                  static_cast<double>(TraceCheckResult::kEngineIds))
            return fail_result(at + ": match-chunk span '" + name->str +
                               "' with unknown engine id");
          ++res.match_chunk_spans;
          ++res.match_chunk_spans_by_engine[static_cast<std::size_t>(
              engine->num)];
        }
        // The `scheduler` arg is optional (pre-PR 10 traces lack it) but
        // must be a valid sched::Policy id when present.
        const JValue* scheduler =
            args != nullptr ? args->get("scheduler") : nullptr;
        if (scheduler != nullptr) {
          if (!scheduler->is_number() || scheduler->num < 0 ||
              scheduler->num >=
                  static_cast<double>(TraceCheckResult::kSchedulerIds))
            return fail_result(at + ": chunk span '" + name->str +
                               "' with unknown scheduler id");
          ++res.match_chunk_spans_by_scheduler[static_cast<std::size_t>(
              scheduler->num)];
        }
        // Stripe congruence: under static-stripe dispatch a thread only
        // ever runs tasks of one residue class mod the dispatch stride, so
        // two different residues on one (tid, stride) betray dynamic
        // dispatch (or a broken binding).  Counted, not fatal — the CLI's
        // --expect-scheduler decides whether that is acceptable.
        const JValue* task = args != nullptr ? args->get("task") : nullptr;
        const JValue* stride =
            args != nullptr ? args->get("stride") : nullptr;
        if (task != nullptr && task->is_number() && stride != nullptr &&
            stride->is_number() && stride->num >= 1) {
          const double residue =
              static_cast<double>(static_cast<std::uint64_t>(task->num) %
                                  static_cast<std::uint64_t>(stride->num));
          const auto key = std::make_pair(tid->num, stride->num);
          const auto [it_r, inserted] = stripe_residue.emplace(key, residue);
          if (!inserted && it_r->second != residue) {
            ++res.stripe_violations;
            if (res.stripe_error.empty()) {
              std::ostringstream os;
              os << at << ": tid " << tid->num << " ran task " << task->num
                 << " (residue " << residue << " mod " << stride->num
                 << ") after residue " << it_r->second
                 << " — stripe binding broken";
              res.stripe_error = os.str();
            }
          }
        }
      }
    }

    // Per-thread monotonicity of completion times in file order.
    const auto it = last_done_by_tid.find(tid->num);
    if (it != last_done_by_tid.end() && done < it->second) {
      std::ostringstream os;
      os << at << ": completion time went backwards on tid " << tid->num
         << " (" << done << " < " << it->second << ")";
      return fail_result(os.str());
    }
    last_done_by_tid[tid->num] = done;
  }

  // Balanced spans: per thread, sorted by (begin asc, end desc), every span
  // must either start after the enclosing one ends or end within it.
  for (auto& [tid, spans] : spans_by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                       if (a.begin != b.begin) return a.begin < b.begin;
                       return a.end > b.end;
                     });
    std::vector<const Span*> stack;
    for (const Span& s : spans) {
      while (!stack.empty() && stack.back()->end <= s.begin) stack.pop_back();
      if (!stack.empty() && s.end > stack.back()->end) {
        std::ostringstream os;
        os << "unbalanced spans on tid " << tid << ": '" << s.name << "' ["
           << s.begin << ", " << s.end << ") partially overlaps '"
           << stack.back()->name << "' [" << stack.back()->begin << ", "
           << stack.back()->end << ")";
        return fail_result(os.str());
      }
      stack.push_back(&s);
    }
  }

  res.threads = tid_seen.size();
  res.worker_tracks = tid_has_build_span.size();
  res.ok = true;
  return res;
}

TraceCheckResult check_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail_result("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return check_trace_json(os.str());
}

}  // namespace sfa::obs
