#include "sfa/obs/trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

namespace sfa::obs {

namespace {

// ---- minimal JSON parser ---------------------------------------------------
//
// Covers the full JSON grammar minus \uXXXX surrogate pairs (escapes are
// decoded byte-wise; non-ASCII passes through untouched).  Enough for trace
// documents and kept here so the validator has no external dependency.

struct JValue;
using JArray = std::vector<JValue>;
using JObject = std::map<std::string, JValue>;

struct JValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0;
  std::string str;
  std::shared_ptr<JArray> arr;
  std::shared_ptr<JObject> obj;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  const JValue* get(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    const auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out)) {
      std::ostringstream os;
      os << "JSON parse error at offset " << pos_ << ": " << error_;
      error = os.str();
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      error = "trailing garbage after JSON document at offset " +
              std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool parse_value(JValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JValue::Kind::kString;
        return parse_string(out.str);
      case 't':
        if (s_.compare(pos_, 4, "true") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JValue::Kind::kBool;
        out.b = true;
        return true;
      case 'f':
        if (s_.compare(pos_, 5, "false") != 0) return fail("bad literal");
        pos_ += 5;
        out.kind = JValue::Kind::kBool;
        out.b = false;
        return true;
      case 'n':
        if (s_.compare(pos_, 4, "null") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JValue& out) {
    ++pos_;  // '{'
    out.kind = JValue::Kind::kObject;
    out.obj = std::make_shared<JObject>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"')
        return fail("expected string key in object");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':')
        return fail("expected ':' in object");
      ++pos_;
      skip_ws();
      JValue v;
      if (!parse_value(v)) return false;
      (*out.obj)[key] = std::move(v);
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JValue& out) {
    ++pos_;  // '['
    out.kind = JValue::Kind::kArray;
    out.arr = std::make_shared<JArray>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JValue v;
      if (!parse_value(v)) return false;
      out.arr->push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Byte-wise decode (ASCII range only; enough for our producers).
          if (code < 0x80) out.push_back(static_cast<char>(code));
          else out.push_back('?');
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == begin) return fail("expected a value");
    char* end = nullptr;
    const std::string tok = s_.substr(begin, pos_ - begin);
    out.num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out.kind = JValue::Kind::kNumber;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---- trace semantics -------------------------------------------------------

struct Span {
  double begin;
  double end;
  std::string name;
};

TraceCheckResult fail_result(std::string error) {
  TraceCheckResult r;
  r.error = std::move(error);
  return r;
}

}  // namespace

TraceCheckResult check_trace_json(const std::string& json) {
  JValue root;
  std::string error;
  Parser parser(json);
  if (!parser.parse(root, error)) return fail_result(error);

  // Accept both the object wrapper and the bare-array form of the spec.
  const JValue* events = nullptr;
  if (root.kind == JValue::Kind::kArray) {
    events = &root;
  } else if (root.kind == JValue::Kind::kObject) {
    events = root.get("traceEvents");
    if (events == nullptr || events->kind != JValue::Kind::kArray)
      return fail_result("top-level object has no traceEvents array");
  } else {
    return fail_result("top level must be an object or array");
  }

  TraceCheckResult res;
  std::map<double, std::vector<Span>> spans_by_tid;
  std::map<double, double> last_done_by_tid;
  std::map<double, bool> tid_seen;
  std::map<double, bool> tid_has_build_span;

  std::size_t index = 0;
  for (const JValue& ev : *events->arr) {
    const std::string at = "event #" + std::to_string(index++);
    if (ev.kind != JValue::Kind::kObject)
      return fail_result(at + ": not an object");
    const JValue* ph = ev.get("ph");
    const JValue* pid = ev.get("pid");
    const JValue* tid = ev.get("tid");
    const JValue* name = ev.get("name");
    if (ph == nullptr || !ph->is_string())
      return fail_result(at + ": missing/non-string ph");
    if (pid == nullptr || !pid->is_number())
      return fail_result(at + ": missing/non-numeric pid");
    if (tid == nullptr || !tid->is_number())
      return fail_result(at + ": missing/non-numeric tid");
    if (name == nullptr || !name->is_string())
      return fail_result(at + ": missing/non-string name");
    ++res.events;
    if (ph->str == "M") continue;  // metadata carries no timestamp
    tid_seen[tid->num] = true;

    const JValue* ts = ev.get("ts");
    if (ts == nullptr || !ts->is_number())
      return fail_result(at + ": missing/non-numeric ts");
    if (ts->num < 0) return fail_result(at + ": negative ts");

    double done = ts->num;
    if (ph->str == "X") {
      const JValue* dur = ev.get("dur");
      if (dur == nullptr || !dur->is_number())
        return fail_result(at + ": span without numeric dur");
      if (dur->num < 0) return fail_result(at + ": negative dur");
      done = ts->num + dur->num;
      ++res.spans;
      spans_by_tid[tid->num].push_back({ts->num, done, name->str});
      const JValue* cat = ev.get("cat");
      if (cat != nullptr && cat->is_string() && cat->str == "build")
        tid_has_build_span[tid->num] = true;
      // Match-chunk spans must identify their ScanEngine: the `engine` arg
      // is how trace consumers tell eager chunk scans from speculative or
      // rescan passes sharing the same span names.
      if (cat != nullptr && cat->is_string() && cat->str == "match" &&
          name->str.rfind("chunk-", 0) == 0) {
        const JValue* args = ev.get("args");
        const JValue* engine =
            args != nullptr && args->kind == JValue::Kind::kObject
                ? args->get("engine")
                : nullptr;
        if (engine == nullptr || !engine->is_number())
          return fail_result(at + ": match-chunk span '" + name->str +
                             "' without numeric engine arg");
        if (engine->num < 0 ||
            engine->num >= static_cast<double>(TraceCheckResult::kEngineIds))
          return fail_result(at + ": match-chunk span '" + name->str +
                             "' with unknown engine id");
        ++res.match_chunk_spans;
        ++res.match_chunk_spans_by_engine[static_cast<std::size_t>(
            engine->num)];
      }
    }

    // Per-thread monotonicity of completion times in file order.
    const auto it = last_done_by_tid.find(tid->num);
    if (it != last_done_by_tid.end() && done < it->second) {
      std::ostringstream os;
      os << at << ": completion time went backwards on tid " << tid->num
         << " (" << done << " < " << it->second << ")";
      return fail_result(os.str());
    }
    last_done_by_tid[tid->num] = done;
  }

  // Balanced spans: per thread, sorted by (begin asc, end desc), every span
  // must either start after the enclosing one ends or end within it.
  for (auto& [tid, spans] : spans_by_tid) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const Span& a, const Span& b) {
                       if (a.begin != b.begin) return a.begin < b.begin;
                       return a.end > b.end;
                     });
    std::vector<const Span*> stack;
    for (const Span& s : spans) {
      while (!stack.empty() && stack.back()->end <= s.begin) stack.pop_back();
      if (!stack.empty() && s.end > stack.back()->end) {
        std::ostringstream os;
        os << "unbalanced spans on tid " << tid << ": '" << s.name << "' ["
           << s.begin << ", " << s.end << ") partially overlaps '"
           << stack.back()->name << "' [" << stack.back()->begin << ", "
           << stack.back()->end << ")";
        return fail_result(os.str());
      }
      stack.push_back(&s);
    }
  }

  res.threads = tid_seen.size();
  res.worker_tracks = tid_has_build_span.size();
  res.ok = true;
  return res;
}

TraceCheckResult check_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail_result("cannot open: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return check_trace_json(os.str());
}

}  // namespace sfa::obs
