#include "sfa/obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace sfa::obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out, std::string& error) {
    skip_ws();
    if (!parse_value(out)) {
      std::ostringstream os;
      os << "JSON parse error at offset " << pos_ << ": " << error_;
      error = os.str();
      return false;
    }
    skip_ws();
    if (pos_ != s_.size()) {
      error = "trailing garbage after JSON document at offset " +
              std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_.empty()) error_ = msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= s_.size()) return fail("unexpected end of input");
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.str);
      case 't':
        if (s_.compare(pos_, 4, "true") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::kBool;
        out.b = true;
        return true;
      case 'f':
        if (s_.compare(pos_, 5, "false") != 0) return fail("bad literal");
        pos_ += 5;
        out.kind = JsonValue::Kind::kBool;
        out.b = false;
        return true;
      case 'n':
        if (s_.compare(pos_, 4, "null") != 0) return fail("bad literal");
        pos_ += 4;
        out.kind = JsonValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    out.kind = JsonValue::Kind::kObject;
    out.obj = std::make_shared<JsonValue::Object>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"')
        return fail("expected string key in object");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':')
        return fail("expected ':' in object");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      (*out.obj)[key] = std::move(v);
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    out.kind = JsonValue::Kind::kArray;
    out.arr = std::make_shared<JsonValue::Array>();
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr->push_back(std::move(v));
      skip_ws();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Byte-wise decode (ASCII range only; enough for our producers).
          if (code < 0x80) out.push_back(static_cast<char>(code));
          else out.push_back('?');
          break;
        }
        default: return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    const std::size_t begin = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == begin) return fail("expected a value");
    char* end = nullptr;
    const std::string tok = s_.substr(begin, pos_ - begin);
    out.num = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string& error) {
  return Parser(text).parse(out, error);
}

}  // namespace sfa::obs
