#include "sfa/obs/stats_export.hpp"

#include <fstream>
#include <ostream>

#include "sfa/obs/json.hpp"
#include "sfa/obs/metrics.hpp"

namespace sfa::obs {

void write_build_stats_json(std::ostream& os, const BuildStats& stats,
                            const std::string& method, bool include_metrics) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sfa-build-stats/1");
  w.kv("method", method);
  w.kv("sfa_states", stats.sfa_states);
  w.kv("dfa_states", stats.dfa_states);
  w.kv("seconds", stats.seconds);
  w.kv("threads", std::uint64_t{stats.threads});
  w.key("compression").begin_object();
  w.kv("triggered", stats.compression_triggered);
  w.kv("seconds", stats.compression_seconds);
  w.end_object();
  w.key("mapping_bytes").begin_object();
  w.kv("uncompressed", stats.mapping_bytes_uncompressed);
  w.kv("stored", stats.mapping_bytes_stored);
  w.kv("ratio", stats.compression_ratio());
  w.end_object();
  w.key("hash").begin_object();
  w.kv("fingerprint_collisions", stats.fingerprint_collisions);
  w.kv("cas_failures", stats.hash_cas_failures);
  w.kv("chain_traversals", stats.chain_traversals);
  w.end_object();
  w.key("queues").begin_object();
  w.kv("steals", stats.steals);
  w.kv("steal_failures", stats.steal_failures);
  w.kv("cas_failures", stats.queue_cas_failures);
  w.kv("global_queue_states", stats.global_queue_states);
  w.end_object();
  w.kv("peak_frontier_bytes", stats.peak_frontier_bytes);
  w.kv("delta_reallocations", stats.delta_reallocations);
  if (include_metrics) {
    w.key("metrics");
    write_metrics_json(w, Registry::instance().snapshot());
  }
  w.end_object();
  os << '\n';
}

void write_match_stats_json(std::ostream& os, const MatchRunInfo& info,
                            bool include_metrics) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sfa-match-stats/1");
  w.kv("command", info.command);
  w.kv("mode", info.mode);
  w.kv("input_symbols", info.input_symbols);
  w.kv("threads", std::uint64_t{info.threads});
  w.kv("seconds", info.seconds);
  w.kv("accepted", info.accepted);
  if (info.counted) w.kv("match_count", info.match_count);
  if (info.lazy) {
    w.kv("lazy_interned_states", info.lazy_interned_states);
    w.kv("lazy_cache_hits", info.lazy_cache_hits);
  }
  if (info.narrowed) {
    w.kv("narrowed_entry_states", info.narrowed_entry_states);
    w.kv("narrowed_fallback_chunks", info.narrowed_fallback_chunks);
  }
  w.kv("pool_workers", std::uint64_t{info.pool_workers});
  w.kv("pool_dispatches", info.pool_dispatches);
  w.kv("pool_wakeups", info.pool_wakeups);
  if (include_metrics) {
    w.key("metrics");
    write_metrics_json(w, Registry::instance().snapshot());
  }
  w.end_object();
  os << '\n';
}

bool write_build_stats_json_file(const std::string& path,
                                 const BuildStats& stats,
                                 const std::string& method) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_build_stats_json(os, stats, method);
  os.flush();
  return static_cast<bool>(os);
}

bool write_match_stats_json_file(const std::string& path,
                                 const MatchRunInfo& info) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_match_stats_json(os, info);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace sfa::obs
