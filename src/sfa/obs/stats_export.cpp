#include "sfa/obs/stats_export.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "sfa/obs/json.hpp"
#include "sfa/obs/metrics.hpp"
#include "sfa/obs/profile/profile.hpp"
#include "sfa/support/cpu.hpp"
#include "sfa/support/numa.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::obs {

namespace {

/// The additive table_* fields shared by sfa-build-stats/1 and
/// sfa-match-stats/1 (docs/OBSERVABILITY.md, table seam).
void write_table_fields(JsonWriter& w, const table::TableStats& t) {
  w.kv("table_layout", table::layout_name(t.layout));
  w.kv("table_bytes", t.resident_bytes);
  w.kv("table_rows_unique", std::uint64_t{t.rows_unique});
  if (t.layout == table::TableLayout::kD2fa) {
    w.key("d2fa_chase_depth").begin_object();
    w.kv("max", std::uint64_t{t.max_chase_depth});
    w.key("counts").begin_array();
    for (const std::uint64_t c : t.chase_depth_hist) w.value(c);
    w.end_array();
    w.end_object();
  }
}

}  // namespace

void write_build_stats_json(std::ostream& os, const BuildStats& stats,
                            const std::string& method, bool include_metrics,
                            const PerfCounterValues* perf,
                            const table::TableStats* table) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sfa-build-stats/1");
  w.kv("method", method);
  w.kv("sfa_states", stats.sfa_states);
  w.kv("dfa_states", stats.dfa_states);
  w.kv("seconds", stats.seconds);
  w.kv("threads", std::uint64_t{stats.threads});
  w.key("compression").begin_object();
  w.kv("triggered", stats.compression_triggered);
  w.kv("seconds", stats.compression_seconds);
  w.end_object();
  w.key("mapping_bytes").begin_object();
  w.kv("uncompressed", stats.mapping_bytes_uncompressed);
  w.kv("stored", stats.mapping_bytes_stored);
  w.kv("ratio", stats.compression_ratio());
  w.end_object();
  w.key("hash").begin_object();
  w.kv("fingerprint_collisions", stats.fingerprint_collisions);
  w.kv("cas_failures", stats.hash_cas_failures);
  w.kv("chain_traversals", stats.chain_traversals);
  w.end_object();
  w.key("queues").begin_object();
  w.kv("steals", stats.steals);
  w.kv("steal_failures", stats.steal_failures);
  w.kv("cas_failures", stats.queue_cas_failures);
  w.kv("global_queue_states", stats.global_queue_states);
  w.end_object();
  w.kv("peak_frontier_bytes", stats.peak_frontier_bytes);
  w.kv("delta_reallocations", stats.delta_reallocations);
  if (table != nullptr) write_table_fields(w, *table);
  if (perf != nullptr && perf->available) {
    w.key("perf_counters");
    write_perf_counters_json(w, *perf);
  }
  if (include_metrics) {
    w.key("metrics");
    write_metrics_json(w, Registry::instance().snapshot());
  }
  w.end_object();
  os << '\n';
}

void write_match_stats_json(std::ostream& os, const MatchRunInfo& info,
                            bool include_metrics) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema", "sfa-match-stats/1");
  w.kv("command", info.command);
  w.kv("mode", info.mode);
  w.kv("input_symbols", info.input_symbols);
  w.kv("threads", std::uint64_t{info.threads});
  w.kv("seconds", info.seconds);
  w.kv("accepted", info.accepted);
  if (info.counted) w.kv("match_count", info.match_count);
  if (info.lazy) {
    w.kv("lazy_interned_states", info.lazy_interned_states);
    w.kv("lazy_cache_hits", info.lazy_cache_hits);
  }
  if (info.narrowed) {
    w.kv("narrowed_entry_states", info.narrowed_entry_states);
    w.kv("narrowed_fallback_chunks", info.narrowed_fallback_chunks);
  }
  if (info.has_table) write_table_fields(w, info.table);
  w.kv("pool_workers", std::uint64_t{info.pool_workers});
  w.kv("pool_dispatches", info.pool_dispatches);
  w.kv("pool_wakeups", info.pool_wakeups);
  w.kv("pool_steals", info.pool_steals);
  if (!info.scheduler.empty()) w.kv("scheduler", info.scheduler);
  if (info.adaptive) {
    w.kv("chunk_size_min", info.chunk_size_min);
    w.kv("chunk_size_max", info.chunk_size_max);
    w.kv("chunk_size_final", info.chunk_size_final);
  }
  if (info.profile) {
    w.key("profile");
    write_profile_json(w, ExecutionProfiler::instance().snapshot(),
                       info.seconds);
  }
  if (info.perf.available) {
    w.key("perf_counters");
    write_perf_counters_json(w, info.perf);
  }
  if (include_metrics) {
    w.key("metrics");
    write_metrics_json(w, Registry::instance().snapshot());
  }
  w.end_object();
  os << '\n';
}

void write_host_info_json(JsonWriter& w) {
  const CpuFeatures& f = ::sfa::cpu_features();
  std::ostringstream simd;
  if (f.sse2) simd << "sse2 ";
  if (f.sse41) simd << "sse4.1 ";
  if (f.sse42) simd << "sse4.2 ";
  if (f.avx) simd << "avx ";
  if (f.avx2) simd << "avx2 ";
  if (f.pclmulqdq) simd << "pclmulqdq ";
  if (f.bmi2) simd << "bmi2 ";
  std::string simd_str = simd.str();
  if (!simd_str.empty()) simd_str.pop_back();

  w.begin_object();
  w.kv("cpu", ::sfa::cpu_model_name());
  w.kv("hardware_threads", std::uint64_t{::sfa::hardware_threads()});
  w.kv("cache_line_bytes", std::uint64_t{::sfa::cache_line_size()});
  w.kv("memory_bytes", ::sfa::total_memory_bytes());
  w.kv("tsc_hz", ::sfa::tsc_hz());
  w.kv("compiler", ::sfa::compiler_version());
  w.kv("simd", simd_str);
  const std::string governor = ::sfa::cpu_governor();
  if (!governor.empty()) w.kv("governor", governor);
  // NUMA topology (PR 10): lets scaling results be read against the
  // socket layout they ran on.  `available` false means the sysfs probe
  // failed (non-Linux, restricted container) — no further fields then.
  const ::sfa::NumaTopology& numa = ::sfa::numa_topology();
  w.key("numa").begin_object();
  w.kv("available", numa.available);
  if (numa.available) {
    w.kv("nodes", std::uint64_t{numa.nodes.size()});
    w.key("cpus_per_node").begin_array();
    for (const ::sfa::NumaNode& n : numa.nodes)
      w.value(std::uint64_t{n.cpus.size()});
    w.end_array();
    if (!numa.distance.empty()) {
      w.key("distance").begin_array();
      for (const auto& row : numa.distance) {
        w.begin_array();
        for (const unsigned d : row) w.value(std::uint64_t{d});
        w.end_array();
      }
      w.end_array();
    }
  }
  w.end_object();  // numa
  w.end_object();  // host
}

bool write_build_stats_json_file(const std::string& path,
                                 const BuildStats& stats,
                                 const std::string& method,
                                 const PerfCounterValues* perf,
                                 const table::TableStats* table) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_build_stats_json(os, stats, method, true, perf, table);
  os.flush();
  return static_cast<bool>(os);
}

bool write_match_stats_json_file(const std::string& path,
                                 const MatchRunInfo& info) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  write_match_stats_json(os, info);
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace sfa::obs
