#include "sfa/obs/profile/perf_counters.hpp"

#include "sfa/obs/json.hpp"
#include "sfa/obs/metrics.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define SFA_HAVE_PERF_EVENTS 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#else
#define SFA_HAVE_PERF_EVENTS 0
#endif

namespace sfa::obs {

#if SFA_HAVE_PERF_EVENTS

namespace {

// Three independent fds rather than one PERF_FORMAT_GROUP: groups are
// incompatible with inherit=1, and inherit is what folds the pool workers
// spawned inside the scope into the phase totals.
int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.inherit = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this process (plus inherited children), any CPU.
  return static_cast<int>(
      ::syscall(__NR_perf_event_open, &attr, 0, -1, -1, 0ul));
}

bool read_counter(int fd, std::uint64_t& out) {
  std::uint64_t v = 0;
  if (::read(fd, &v, sizeof v) != static_cast<ssize_t>(sizeof v)) return false;
  out = v;
  return true;
}

}  // namespace

PerfCounterScope::PerfCounterScope(std::string phase)
    : phase_(std::move(phase)) {
  fds_[0] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fds_[1] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[2] = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
  for (int fd : fds_) {
    if (fd < 0) continue;  // EPERM/ENOSYS: that counter stays not-ok
    ::ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ::ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfCounterValues PerfCounterScope::stop() {
  if (stopped_) return values_;
  stopped_ = true;
  bool ok[3] = {false, false, false};
  std::uint64_t v[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (fds_[i] < 0) continue;
    ::ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    ok[i] = read_counter(fds_[i], v[i]);
    ::close(fds_[i]);
    fds_[i] = -1;
  }
  values_.cycles_ok = ok[0];
  values_.cycles = v[0];
  values_.instructions_ok = ok[1];
  values_.instructions = v[1];
  values_.cache_misses_ok = ok[2];
  values_.cache_misses = v[2];
  values_.available = ok[0] || ok[1] || ok[2];
  auto& reg = Registry::instance();
  const std::string prefix = "sfa.prof." + phase_ + ".";
  if (ok[0]) reg.counter(prefix + "cycles").inc(v[0]);
  if (ok[1]) reg.counter(prefix + "instructions").inc(v[1]);
  if (ok[2]) reg.counter(prefix + "cache_misses").inc(v[2]);
  return values_;
}

bool PerfCounterScope::compiled_in() { return true; }

#else  // !SFA_HAVE_PERF_EVENTS

PerfCounterScope::PerfCounterScope(std::string phase)
    : phase_(std::move(phase)) {}

PerfCounterValues PerfCounterScope::stop() {
  stopped_ = true;
  return values_;  // all-false defaults: nothing available
}

bool PerfCounterScope::compiled_in() { return false; }

#endif  // SFA_HAVE_PERF_EVENTS

PerfCounterScope::~PerfCounterScope() {
  try {
    stop();
  } catch (...) {
    // Registry::counter can throw on a name/kind clash; never from a dtor.
  }
}

void write_perf_counters_json(JsonWriter& w, const PerfCounterValues& v) {
  w.begin_object();
  w.kv("available", v.available);
  if (v.cycles_ok) w.kv("cycles", v.cycles);
  if (v.instructions_ok) w.kv("instructions", v.instructions);
  if (v.cache_misses_ok) w.kv("cache_misses", v.cache_misses);
  if (v.cycles_ok && v.instructions_ok) w.kv("ipc", v.ipc());
  w.end_object();
}

}  // namespace sfa::obs
