#include "sfa/obs/profile/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "sfa/obs/json_parse.hpp"

namespace sfa::obs {

namespace {

struct Interval {
  double begin;
  double end;
};

/// Measure of the union of intervals (spans nest, so a plain sum would
/// double-count the enclosing span's time).
double union_us(std::vector<Interval>& ivs) {
  std::sort(ivs.begin(), ivs.end(), [](const Interval& a, const Interval& b) {
    return a.begin < b.begin;
  });
  double total = 0.0;
  double cur_begin = 0.0;
  double cur_end = -1.0;
  for (const Interval& iv : ivs) {
    if (iv.begin > cur_end) {
      if (cur_end > cur_begin) total += cur_end - cur_begin;
      cur_begin = iv.begin;
      cur_end = iv.end;
    } else {
      cur_end = std::max(cur_end, iv.end);
    }
  }
  if (cur_end > cur_begin) total += cur_end - cur_begin;
  return total;
}

std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

}  // namespace

double TraceProfileReport::parallel_efficiency() const {
  if (wall_us <= 0.0 || worker_tracks == 0) return 0.0;
  double busy = 0.0;
  for (const WorkerRow& w : workers)
    if (w.worker_track) busy += w.busy_us;
  return busy / (wall_us * static_cast<double>(worker_tracks));
}

TraceProfileReport analyze_trace_json(const std::string& json) {
  TraceProfileReport rep;

  // Validate first: `sfa profile` refuses the traces sfa_trace_check would
  // refuse, so the two tools never disagree about what a good trace is.
  const TraceCheckResult check = check_trace_json(json);
  if (!check.ok) {
    rep.error = check.error;
    return rep;
  }
  rep.events = check.events;
  rep.spans = check.spans;
  rep.threads = check.threads;
  rep.match_chunk_spans = check.match_chunk_spans;
  rep.chunk_spans_by_engine = check.match_chunk_spans_by_engine;

  JsonValue root;
  std::string error;
  if (!parse_json(json, root, error)) {
    rep.error = error;  // unreachable after a passing check, but be safe
    return rep;
  }
  const JsonValue* events =
      root.is_array() ? &root : root.get("traceEvents");

  struct Thread {
    std::string name;
    std::size_t spans = 0;
    bool worker_track = false;
    std::vector<Interval> intervals;
  };
  std::map<double, Thread> threads;
  std::map<std::string, PhaseRow> phases;
  double min_ts = std::numeric_limits<double>::infinity();
  double max_done = -std::numeric_limits<double>::infinity();

  for (const JsonValue& ev : *events->arr) {
    const std::string ph = ev.string_or("ph", "");
    const std::string name = ev.string_or("name", "");
    const double tid = ev.number_or("tid", 0);
    if (ph == "M") {
      const JsonValue* args = ev.get("args");
      if (name == "thread_name" && args != nullptr)
        threads[tid].name = args->string_or("name", "");
      continue;
    }
    if (ph == "i" || ph == "I") {
      if (name.find("steal") != std::string::npos) ++rep.steal_instants;
      continue;
    }
    if (ph != "X") continue;

    const double ts = ev.number_or("ts", 0);
    const double dur = ev.number_or("dur", 0);
    const std::string cat = ev.string_or("cat", "");
    min_ts = std::min(min_ts, ts);
    max_done = std::max(max_done, ts + dur);

    Thread& th = threads[tid];
    ++th.spans;
    th.intervals.push_back({ts, ts + dur});
    if (cat == "build" ||
        (cat == "match" && name.rfind("chunk-", 0) == 0))
      th.worker_track = true;

    PhaseRow& row = phases[cat.empty() ? name : cat + "/" + name];
    ++row.count;
    row.total_us += dur;
  }

  if (max_done > min_ts) rep.wall_us = max_done - min_ts;

  for (auto& [key, row] : phases) {
    row.key = key;
    rep.phases.push_back(std::move(row));
  }
  std::sort(rep.phases.begin(), rep.phases.end(),
            [](const PhaseRow& a, const PhaseRow& b) {
              return a.total_us > b.total_us;
            });

  for (auto& [tid, th] : threads) {
    WorkerRow row;
    row.tid = tid;
    row.name = th.name;
    row.spans = th.spans;
    row.busy_us = union_us(th.intervals);
    row.worker_track = th.worker_track;
    if (row.worker_track) ++rep.worker_tracks;
    rep.workers.push_back(std::move(row));
  }

  rep.ok = true;
  return rep;
}

TraceProfileReport analyze_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    TraceProfileReport rep;
    rep.error = "cannot open: " + path;
    return rep;
  }
  std::ostringstream os;
  os << in.rdbuf();
  return analyze_trace_json(os.str());
}

std::string format_trace_profile(const TraceProfileReport& rep) {
  std::ostringstream os;
  if (!rep.ok) {
    os << "trace profile: INVALID TRACE: " << rep.error << "\n";
    return os.str();
  }
  os << "trace profile: " << rep.events << " events, " << rep.spans
     << " spans, " << rep.threads << " threads, " << rep.worker_tracks
     << " worker tracks\n";
  os << "wall time: " << fmt(rep.wall_us / 1000.0) << " ms\n";

  os << "\nphase breakdown (span time, all threads):\n";
  double phase_total = 0.0;
  for (const PhaseRow& p : rep.phases) phase_total += p.total_us;
  for (const PhaseRow& p : rep.phases) {
    const double share =
        phase_total > 0.0 ? 100.0 * p.total_us / phase_total : 0.0;
    os << "  " << p.key << "  x" << p.count << "  "
       << fmt(p.total_us / 1000.0) << " ms  (" << fmt(share, 1) << "%)\n";
  }

  os << "\nworker timeline:\n";
  for (const WorkerRow& w : rep.workers) {
    const double util =
        rep.wall_us > 0.0 ? 100.0 * w.busy_us / rep.wall_us : 0.0;
    os << "  tid " << fmt(w.tid, 0);
    if (!w.name.empty()) os << " (" << w.name << ")";
    os << ": " << w.spans << " spans, busy " << fmt(w.busy_us / 1000.0)
       << " ms (" << fmt(util, 1) << "% of wall)"
       << (w.worker_track ? " [worker]" : "") << "\n";
  }

  if (rep.match_chunk_spans > 0) {
    os << "\nmatch chunks: " << rep.match_chunk_spans << " spans by engine:";
    for (std::size_t e = 0; e < rep.chunk_spans_by_engine.size(); ++e)
      if (rep.chunk_spans_by_engine[e] != 0)
        os << " engine" << e << "=" << rep.chunk_spans_by_engine[e];
    os << "\n";
  }
  os << "steal instants: " << rep.steal_instants << "\n";
  os << "parallel efficiency (worker tracks): "
     << fmt(rep.parallel_efficiency(), 3) << "\n";
  return os.str();
}

}  // namespace sfa::obs
