// Execution profiler — always-on per-chunk attribution for the matching
// substrate (docs/OBSERVABILITY.md).
//
// Striped per-worker accumulators updated with relaxed atomics on every
// chunk an Executor runs: service time in TSC cycles, bytes scanned, and
// the ScanEngine that produced the chunk.  No trace dependency — this works
// in default (SFA_TRACE=OFF) builds and costs two TSC reads plus a handful
// of relaxed stores per chunk, so it stays on in production.  The snapshot
// derives the imbalance facts the ROADMAP's adaptive-chunking work needs:
// per-worker utilization, imbalance factor (max/mean chunk time), critical
// path vs total work, and the top-k slowest chunks with engine attribution.
// Exported as the additive `profile` section (schema sfa-profile/1) of
// sfa-match-stats/1.
//
// Plumbing: the Executors wrap every chunk body in a ChunkProfileScope
// (which times the chunk and knows the worker slot); the chunk body itself
// calls annotate_profile_chunk() to attach the engine id and byte count the
// executor cannot see.  Layering holds — sfa/concurrent stays obs-free; the
// scope lives in scan/executor.cpp like the rest of the obs glue.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace sfa::obs {

class JsonWriter;

/// Accumulator slots: one per pool worker (workers past the cap fold into
/// the last slot), plus one shared slot for chunks the caller ran inline.
inline constexpr unsigned kProfileMaxWorkers = 128;
inline constexpr unsigned kProfileInlineSlot = kProfileMaxWorkers;
/// Engine attribution slots: EngineId 0..4 plus "other" for unannotated
/// chunk bodies.
inline constexpr unsigned kProfileEngineSlots = 6;
inline constexpr unsigned kProfileOtherEngine = kProfileEngineSlots - 1;
/// Top-k slowest-chunk records kept per profiling window.
inline constexpr unsigned kProfileTopChunks = 8;

/// Human-readable name of an engine slot ("direct", "eager", "lazy",
/// "speculative", "narrowed", "other").
const char* profile_engine_name(unsigned engine_slot);

/// One worker's accumulated chunk attribution (snapshot form).
struct ProfileWorker {
  unsigned slot = 0;
  bool inline_slot = false;  // chunks the caller thread ran inline
  std::uint64_t chunks = 0;
  std::uint64_t cycles = 0;
  std::uint64_t bytes = 0;
  std::uint64_t max_chunk_cycles = 0;
  std::array<std::uint64_t, kProfileEngineSlots> engine_chunks{};
};

/// One of the slowest chunks observed, with full attribution.
struct ProfileChunk {
  std::uint64_t cycles = 0;
  std::uint64_t bytes = 0;
  unsigned chunk = 0;
  unsigned worker = 0;  // slot index; kProfileInlineSlot when inline
  unsigned engine = kProfileOtherEngine;
};

struct ProfileSnapshot {
  std::vector<ProfileWorker> workers;     // slots that ran >= 1 chunk
  std::vector<ProfileChunk> top_chunks;   // slowest first
  std::uint64_t chunks = 0;
  std::uint64_t cycles = 0;               // total work
  std::uint64_t bytes = 0;
  std::uint64_t max_chunk_cycles = 0;
  std::uint64_t critical_path_cycles = 0;  // busiest single worker

  double mean_chunk_cycles() const {
    return chunks == 0 ? 0.0
                       : static_cast<double>(cycles) /
                             static_cast<double>(chunks);
  }
  /// Slowest chunk over the mean chunk: 1.0 is perfectly even service
  /// times; large values mean one chunk dominated the dispatch.
  double imbalance_factor() const {
    const double mean = mean_chunk_cycles();
    return mean <= 0.0 ? 0.0
                       : static_cast<double>(max_chunk_cycles) / mean;
  }
  /// Total work over (critical path x participating workers): 1.0 means
  /// every worker was busy the whole dispatch.
  double parallel_efficiency() const {
    if (critical_path_cycles == 0 || workers.empty()) return 0.0;
    return static_cast<double>(cycles) /
           (static_cast<double>(critical_path_cycles) *
            static_cast<double>(workers.size()));
  }
};

class ExecutionProfiler {
 public:
  static ExecutionProfiler& instance();

  /// Fold one chunk into the accumulators.  `slot` is the worker slot
  /// (kProfileInlineSlot for caller-inline execution); `engine_id` is a
  /// scan::EngineId value, anything out of range counts as "other".
  /// Relaxed atomics only; safe from any thread.
  void record_chunk(unsigned slot, unsigned chunk, std::uint64_t cycles,
                    std::uint64_t bytes, unsigned engine_id);

  /// Zero every accumulator (the CLI resets before a timed run so the
  /// exported snapshot covers exactly that run).
  void reset();

  ProfileSnapshot snapshot() const;

 private:
  ExecutionProfiler() = default;

  struct alignas(64) Slot {
    // Non-inline slots are single-writer (stripe-bound dispatch: worker w
    // only ever writes slot w); the inline slot is shared by caller
    // threads, hence atomics everywhere.
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> max_cycles{0};
    std::array<std::atomic<std::uint64_t>, kProfileEngineSlots> engines{};
  };

  struct TopEntry {
    std::uint64_t cycles = 0;
    std::uint64_t bytes = 0;
    unsigned chunk = 0;
    unsigned worker = 0;
    unsigned engine = kProfileOtherEngine;
  };

  std::array<Slot, kProfileMaxWorkers + 1> slots_{};
  // Top-k under a try-lock: a contended record skips the (approximate)
  // top-k update rather than stall the chunk — the accumulators above stay
  // exact either way.  top_min_ is the fast reject.
  std::array<TopEntry, kProfileTopChunks> top_{};
  std::atomic<std::uint64_t> top_min_{0};
  std::atomic<unsigned> top_filled_{0};
  mutable std::atomic_flag top_lock_ = ATOMIC_FLAG_INIT;
};

/// Called from inside a chunk body to attribute the chunk being timed by
/// the enclosing ChunkProfileScope (thread-local; consumed and cleared by
/// the scope).  Unannotated chunks count as engine "other" with 0 bytes.
void annotate_profile_chunk(unsigned engine_id, std::uint64_t bytes);

/// RAII chunk timer the Executors wrap around every chunk body.  Reads the
/// TSC on entry/exit and folds the chunk plus its thread-local annotation
/// into the ExecutionProfiler on destruction.
class ChunkProfileScope {
 public:
  ChunkProfileScope(unsigned chunk, unsigned worker_slot);
  ~ChunkProfileScope();
  ChunkProfileScope(const ChunkProfileScope&) = delete;
  ChunkProfileScope& operator=(const ChunkProfileScope&) = delete;

 private:
  unsigned chunk_;
  unsigned slot_;
  std::uint64_t start_;
};

/// Write the sfa-profile/1 section: worker utilization (against
/// `wall_seconds`, the run's wall-clock), imbalance factor, critical path
/// vs total work, and the top-k slowest chunks.  Cycle fields are always
/// emitted; seconds-valued fields only when tsc_hz() calibrated.
void write_profile_json(JsonWriter& w, const ProfileSnapshot& s,
                        double wall_seconds);

}  // namespace sfa::obs
