#include "sfa/obs/profile/profile.hpp"

#include <algorithm>

#include "sfa/obs/json.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::obs {

namespace {

struct Annotation {
  unsigned engine = kProfileOtherEngine;
  std::uint64_t bytes = 0;
};
thread_local Annotation t_annotation;

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

const char* profile_engine_name(unsigned engine_slot) {
  switch (engine_slot) {
    case 0: return "direct";
    case 1: return "eager";
    case 2: return "lazy";
    case 3: return "speculative";
    case 4: return "narrowed";
    default: return "other";
  }
}

ExecutionProfiler& ExecutionProfiler::instance() {
  // Leaked, like the metrics Registry: usable during static destructors.
  static ExecutionProfiler* p = new ExecutionProfiler();
  return *p;
}

void ExecutionProfiler::record_chunk(unsigned slot, unsigned chunk,
                                     std::uint64_t cycles, std::uint64_t bytes,
                                     unsigned engine_id) {
  if (slot > kProfileInlineSlot) slot = kProfileMaxWorkers - 1;
  const unsigned engine =
      engine_id < kProfileEngineSlots - 1 ? engine_id : kProfileOtherEngine;
  Slot& s = slots_[slot];
  s.chunks.fetch_add(1, std::memory_order_relaxed);
  s.cycles.fetch_add(cycles, std::memory_order_relaxed);
  s.bytes.fetch_add(bytes, std::memory_order_relaxed);
  atomic_max(s.max_cycles, cycles);
  s.engines[engine].fetch_add(1, std::memory_order_relaxed);

  if (cycles == 0) return;  // no TSC on this platform: nothing to rank
  if (top_filled_.load(std::memory_order_relaxed) == kProfileTopChunks &&
      cycles <= top_min_.load(std::memory_order_relaxed))
    return;  // cannot displace anything — fast path for the common chunk
  if (top_lock_.test_and_set(std::memory_order_acquire)) return;  // contended
  unsigned victim = 0;
  unsigned filled = 0;
  for (unsigned i = 0; i < kProfileTopChunks; ++i) {
    if (top_[i].cycles != 0) ++filled;
    if (top_[i].cycles < top_[victim].cycles) victim = i;
  }
  if (cycles > top_[victim].cycles || top_[victim].cycles == 0) {
    if (top_[victim].cycles == 0) ++filled;
    top_[victim] = TopEntry{cycles, bytes, chunk, slot, engine};
    std::uint64_t new_min = ~0ull;
    for (const TopEntry& e : top_) new_min = std::min(new_min, e.cycles);
    top_min_.store(new_min, std::memory_order_relaxed);
    top_filled_.store(filled, std::memory_order_relaxed);
  }
  top_lock_.clear(std::memory_order_release);
}

void ExecutionProfiler::reset() {
  for (Slot& s : slots_) {
    s.chunks.store(0, std::memory_order_relaxed);
    s.cycles.store(0, std::memory_order_relaxed);
    s.bytes.store(0, std::memory_order_relaxed);
    s.max_cycles.store(0, std::memory_order_relaxed);
    for (auto& e : s.engines) e.store(0, std::memory_order_relaxed);
  }
  while (top_lock_.test_and_set(std::memory_order_acquire)) {
  }
  top_.fill(TopEntry{});
  top_min_.store(0, std::memory_order_relaxed);
  top_filled_.store(0, std::memory_order_relaxed);
  top_lock_.clear(std::memory_order_release);
}

ProfileSnapshot ExecutionProfiler::snapshot() const {
  ProfileSnapshot out;
  for (unsigned i = 0; i <= kProfileMaxWorkers; ++i) {
    const Slot& s = slots_[i];
    const std::uint64_t chunks = s.chunks.load(std::memory_order_relaxed);
    if (chunks == 0) continue;
    ProfileWorker w;
    w.slot = i;
    w.inline_slot = i == kProfileInlineSlot;
    w.chunks = chunks;
    w.cycles = s.cycles.load(std::memory_order_relaxed);
    w.bytes = s.bytes.load(std::memory_order_relaxed);
    w.max_chunk_cycles = s.max_cycles.load(std::memory_order_relaxed);
    for (unsigned e = 0; e < kProfileEngineSlots; ++e)
      w.engine_chunks[e] = s.engines[e].load(std::memory_order_relaxed);
    out.chunks += w.chunks;
    out.cycles += w.cycles;
    out.bytes += w.bytes;
    out.max_chunk_cycles = std::max(out.max_chunk_cycles, w.max_chunk_cycles);
    out.critical_path_cycles = std::max(out.critical_path_cycles, w.cycles);
    out.workers.push_back(std::move(w));
  }
  while (top_lock_.test_and_set(std::memory_order_acquire)) {
  }
  for (const TopEntry& e : top_) {
    if (e.cycles == 0) continue;
    out.top_chunks.push_back(
        ProfileChunk{e.cycles, e.bytes, e.chunk, e.worker, e.engine});
  }
  top_lock_.clear(std::memory_order_release);
  std::sort(out.top_chunks.begin(), out.top_chunks.end(),
            [](const ProfileChunk& a, const ProfileChunk& b) {
              return a.cycles > b.cycles;
            });
  return out;
}

void annotate_profile_chunk(unsigned engine_id, std::uint64_t bytes) {
  t_annotation.engine = engine_id;
  t_annotation.bytes = bytes;
}

ChunkProfileScope::ChunkProfileScope(unsigned chunk, unsigned worker_slot)
    : chunk_(chunk), slot_(worker_slot) {
  t_annotation = Annotation{};  // stale annotations must not leak across chunks
  start_ = ::sfa::read_tsc();
}

ChunkProfileScope::~ChunkProfileScope() {
  const std::uint64_t end = ::sfa::read_tsc();
  const std::uint64_t cycles = end >= start_ ? end - start_ : 0;
  ExecutionProfiler::instance().record_chunk(slot_, chunk_, cycles,
                                             t_annotation.bytes,
                                             t_annotation.engine);
}

void write_profile_json(JsonWriter& w, const ProfileSnapshot& s,
                        double wall_seconds) {
  const double hz = ::sfa::tsc_hz();
  const bool calibrated = hz > 0.0;
  w.begin_object();
  w.kv("schema", "sfa-profile/1");
  w.kv("calibrated", calibrated);
  w.kv("tsc_hz", hz);
  w.kv("wall_seconds", wall_seconds);
  w.kv("chunks", s.chunks);
  w.kv("bytes", s.bytes);
  w.kv("total_work_cycles", s.cycles);
  w.kv("critical_path_cycles", s.critical_path_cycles);
  w.kv("max_chunk_cycles", s.max_chunk_cycles);
  w.kv("mean_chunk_cycles", s.mean_chunk_cycles());
  w.kv("imbalance_factor", s.imbalance_factor());
  w.kv("parallel_efficiency", s.parallel_efficiency());
  if (calibrated) {
    w.kv("total_work_seconds", static_cast<double>(s.cycles) / hz);
    w.kv("critical_path_seconds",
         static_cast<double>(s.critical_path_cycles) / hz);
  }
  w.key("workers").begin_array();
  for (const ProfileWorker& p : s.workers) {
    w.begin_object();
    if (p.inline_slot)
      w.kv("worker", "inline");
    else
      w.kv("worker", p.slot);
    w.kv("chunks", p.chunks);
    w.kv("cycles", p.cycles);
    w.kv("bytes", p.bytes);
    w.kv("max_chunk_cycles", p.max_chunk_cycles);
    if (calibrated) {
      const double busy = static_cast<double>(p.cycles) / hz;
      w.kv("busy_seconds", busy);
      if (wall_seconds > 0.0) w.kv("utilization", busy / wall_seconds);
    }
    w.key("engines").begin_object();
    for (unsigned e = 0; e < kProfileEngineSlots; ++e)
      if (p.engine_chunks[e] != 0)
        w.kv(profile_engine_name(e), p.engine_chunks[e]);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("top_chunks").begin_array();
  for (const ProfileChunk& c : s.top_chunks) {
    w.begin_object();
    w.kv("chunk", c.chunk);
    if (c.worker == kProfileInlineSlot)
      w.kv("worker", "inline");
    else
      w.kv("worker", c.worker);
    w.kv("engine", profile_engine_name(c.engine));
    w.kv("cycles", c.cycles);
    w.kv("bytes", c.bytes);
    if (calibrated) w.kv("seconds", static_cast<double>(c.cycles) / hz);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace sfa::obs
