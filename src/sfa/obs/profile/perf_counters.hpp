// Hardware perf-counter scopes (observability / profiler subsystem).
//
// PerfCounterScope attaches Linux perf_event_open counters — CPU cycles,
// retired instructions, LLC misses — to a named phase ("build", "match").
// The scope opens the counters inherit=1 so work farmed out to pool workers
// spawned inside the scope is folded into the totals, reads them on stop(),
// and publishes the values both as the return struct (for --stats-json) and
// as sfa.prof.<phase>.* registry counters.
//
// Everything degrades gracefully: on non-Linux builds the scope compiles to
// a no-op (compiled_in() == false); on Linux where perf_event_open is
// denied (EPERM under perf_event_paranoid, ENOSYS in minimal containers,
// seccomp in CI sandboxes) each counter independently reports not-ok and
// `available` stays false.  Callers never need to branch on platform.
#pragma once

#include <cstdint>
#include <string>

namespace sfa::obs {

class JsonWriter;

/// Values read from one PerfCounterScope.  Each counter carries its own
/// ok-flag: the kernel may grant cycles but not cache-misses (or nothing at
/// all), and a partially-populated reading is still worth exporting.
struct PerfCounterValues {
  bool available = false;  // at least one counter was read successfully
  bool cycles_ok = false;
  bool instructions_ok = false;
  bool cache_misses_ok = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;

  /// Instructions per cycle; 0 unless both counters were read.
  double ipc() const {
    if (!cycles_ok || !instructions_ok || cycles == 0) return 0.0;
    return static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

/// RAII perf-counter group for one named phase.  Construct before the work,
/// call stop() after it (idempotent — the destructor stops too, so early
/// returns still close the fds); stop() returns the readings and bumps the
/// sfa.prof.<phase>.{cycles,instructions,cache_misses} counters for any
/// counter the kernel granted.
class PerfCounterScope {
 public:
  explicit PerfCounterScope(std::string phase);
  ~PerfCounterScope();
  PerfCounterScope(const PerfCounterScope&) = delete;
  PerfCounterScope& operator=(const PerfCounterScope&) = delete;

  /// Disable + read + close the counters (first call); later calls return
  /// the same values without touching the (already closed) fds.
  PerfCounterValues stop();

  /// True when this build has the perf_event_open path compiled in (Linux
  /// with kernel headers).  Runtime availability is still per-scope: check
  /// PerfCounterValues::available.
  static bool compiled_in();

 private:
  std::string phase_;
  int fds_[3] = {-1, -1, -1};  // cycles, instructions, cache-misses
  bool stopped_ = false;
  PerfCounterValues values_;
};

/// Write the "perf_counters" stats-JSON object: `available`, each granted
/// counter, and `ipc` when both inputs were read.
void write_perf_counters_json(JsonWriter& w, const PerfCounterValues& v);

}  // namespace sfa::obs
