// Trace-profile report builder: the analysis behind the `sfa profile`
// subcommand.  Consumes a Chrome-tracing JSON file produced with --trace,
// validates it through trace_check (same semantics the CI trace job
// enforces), and derives the human-facing breakdown: per-phase wall time,
// a per-worker timeline/utilization table, steal counts, and parallel
// efficiency across the worker tracks.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sfa/obs/trace_check.hpp"

namespace sfa::obs {

/// One aggregated span kind ("<category>/<name>"), summed over all threads.
struct PhaseRow {
  std::string key;
  std::size_t count = 0;
  double total_us = 0.0;
};

/// One thread's timeline summary.  busy_us is the measure of the union of
/// the thread's span intervals (nested spans are not double-counted).
struct WorkerRow {
  double tid = 0.0;
  std::string name;  // from thread_name metadata, may be empty
  std::size_t spans = 0;
  double busy_us = 0.0;
  /// True when the thread did substrate work: a "build"-category span or a
  /// "match"-category chunk span.
  bool worker_track = false;
};

struct TraceProfileReport {
  bool ok = false;
  std::string error;  // validation or I/O failure, empty when ok

  std::size_t events = 0;
  std::size_t spans = 0;
  std::size_t threads = 0;
  std::size_t worker_tracks = 0;  // rows with worker_track == true
  std::size_t steal_instants = 0;
  std::size_t match_chunk_spans = 0;
  std::array<std::size_t, TraceCheckResult::kEngineIds>
      chunk_spans_by_engine{};

  double wall_us = 0.0;  // max(ts+dur) - min(ts) over all spans

  std::vector<PhaseRow> phases;    // sorted by total_us descending
  std::vector<WorkerRow> workers;  // sorted by tid

  /// Sum of worker-track busy time over (wall x worker tracks); 0 when the
  /// trace has no worker tracks or no wall time.
  double parallel_efficiency() const;
};

/// Analyze a trace document.  The document is first validated with
/// check_trace_json; a trace that fails validation yields ok=false and the
/// validator's error, never a partial report.
TraceProfileReport analyze_trace_json(const std::string& json);

/// Analyze a trace file.  I/O errors are reported via ok/error.
TraceProfileReport analyze_trace_file(const std::string& path);

/// Render the report the way `sfa profile` prints it: summary line, phase
/// breakdown, worker timeline, steal/imbalance summary, efficiency.
std::string format_trace_profile(const TraceProfileReport& rep);

}  // namespace sfa::obs
