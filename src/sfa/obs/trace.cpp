#include "sfa/obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

namespace sfa::obs {

namespace {

// A thread's recorder lives for the whole process once created: thread_local
// pointers into the registry stay valid across sessions, and a session
// restart just bumps the epoch, which lazily resets the buffer on the
// thread's next event.  `count` is the publication point — events below it
// are fully written before the release store, so a post-join reader sees
// them with an acquire load.
struct Recorder {
  std::vector<TraceEvent> buffer;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t epoch = 0;
  std::uint32_t tid = 0;
  bool ring = false;  // session mode, copied at epoch reset
  std::mutex name_mutex;
  std::string thread_name;
};

struct Registry {
  std::mutex mutex;                                 // registration + control
  std::vector<std::unique_ptr<Recorder>> recorders; // never shrinks
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<std::size_t> capacity{1u << 16};
  std::atomic<bool> ring{false};
  std::chrono::steady_clock::time_point t0{};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: recorders must outlive TLS
  return *r;
}

thread_local Recorder* tl_recorder = nullptr;

/// The calling thread's recorder for the current epoch, or nullptr when
/// recording is off.  Resets the buffer lazily on the first event of a new
/// session.
Recorder* current_recorder() {
  Registry& reg = registry();
  if (!reg.enabled.load(std::memory_order_acquire)) return nullptr;
  const std::uint64_t epoch = reg.epoch.load(std::memory_order_acquire);
  Recorder* rec = tl_recorder;
  if (rec == nullptr) {
    std::lock_guard<std::mutex> lock(reg.mutex);
    auto owned = std::make_unique<Recorder>();
    rec = owned.get();
    rec->tid = static_cast<std::uint32_t>(reg.recorders.size());
    reg.recorders.push_back(std::move(owned));
    tl_recorder = rec;
  }
  if (rec->epoch != epoch) {
    rec->epoch = epoch;
    rec->buffer.clear();
    rec->buffer.resize(reg.capacity.load(std::memory_order_relaxed));
    rec->ring = reg.ring.load(std::memory_order_relaxed);
    rec->count.store(0, std::memory_order_relaxed);
    rec->dropped.store(0, std::memory_order_relaxed);
  }
  return rec;
}

void record(const TraceEvent& ev) {
  Recorder* rec = current_recorder();
  if (rec == nullptr) return;
  const std::size_t i = rec->count.load(std::memory_order_relaxed);
  if (i >= rec->buffer.size()) {
    if (!rec->ring) {
      rec->dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // Ring mode: overwrite the oldest slot; `count` keeps the TOTAL emitted
    // so snapshot() can both find the ring head and account the
    // overwritten events as dropped.
    rec->buffer[i % rec->buffer.size()] = ev;
    rec->count.store(i + 1, std::memory_order_release);
    return;
  }
  rec->buffer[i] = ev;
  rec->count.store(i + 1, std::memory_order_release);
}

}  // namespace

TraceCollector& TraceCollector::instance() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::start(std::size_t events_per_thread) {
  start(TraceConfig{events_per_thread, false});
}

void TraceCollector::start(const TraceConfig& config) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.capacity.store(config.events_per_thread == 0 ? 1
                                                   : config.events_per_thread,
                     std::memory_order_relaxed);
  reg.ring.store(config.ring, std::memory_order_relaxed);
  reg.t0 = std::chrono::steady_clock::now();
  reg.epoch.fetch_add(1, std::memory_order_release);
  reg.enabled.store(true, std::memory_order_release);
}

void TraceCollector::stop() {
  registry().enabled.store(false, std::memory_order_release);
}

bool TraceCollector::active() const {
  return registry().enabled.load(std::memory_order_acquire);
}

std::vector<ThreadTrace> TraceCollector::snapshot() const {
  Registry& reg = registry();
  const std::uint64_t epoch = reg.epoch.load(std::memory_order_acquire);
  std::vector<ThreadTrace> out;
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& rec : reg.recorders) {
    if (rec->epoch != epoch) continue;  // stale thread, nothing this session
    ThreadTrace t;
    t.tid = rec->tid;
    {
      std::lock_guard<std::mutex> name_lock(rec->name_mutex);
      t.name = rec->thread_name;
    }
    t.dropped = rec->dropped.load(std::memory_order_relaxed);
    const std::size_t n = rec->count.load(std::memory_order_acquire);
    const std::size_t cap = rec->buffer.size();
    if (rec->ring && n > cap) {
      // The ring wrapped: reorder oldest-first starting at the head slot,
      // and account every overwritten event as dropped so
      // dropped + events.size() == total emitted, same as linear mode.
      const std::size_t head = n % cap;
      t.events.assign(rec->buffer.begin() + static_cast<std::ptrdiff_t>(head),
                      rec->buffer.end());
      t.events.insert(t.events.end(), rec->buffer.begin(),
                      rec->buffer.begin() + static_cast<std::ptrdiff_t>(head));
      t.dropped += n - cap;
    } else {
      t.events.assign(rec->buffer.begin(),
                      rec->buffer.begin() + static_cast<std::ptrdiff_t>(n));
    }
    if (!t.events.empty() || !t.name.empty()) out.push_back(std::move(t));
  }
  return out;
}

std::uint64_t now_ns() {
  Registry& reg = registry();
  if (!reg.enabled.load(std::memory_order_acquire)) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - reg.t0)
          .count());
}

void set_thread_name(const std::string& name) {
  Recorder* rec = current_recorder();
  if (rec == nullptr) return;
  std::lock_guard<std::mutex> lock(rec->name_mutex);
  rec->thread_name = name;
}

void emit_instant(const char* category, const char* name,
                  const char* arg1_name, std::uint64_t arg1,
                  const char* arg2_name, std::uint64_t arg2) {
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.ts_ns = now_ns();
  ev.type = EventType::kInstant;
  if (arg1_name != nullptr) ev.args[ev.num_args++] = {arg1_name, arg1};
  if (arg2_name != nullptr) ev.args[ev.num_args++] = {arg2_name, arg2};
  record(ev);
}

void emit_span(const char* category, const char* name, std::uint64_t begin_ns,
               std::uint64_t dur_ns, const char* arg1_name, std::uint64_t arg1,
               const char* arg2_name, std::uint64_t arg2) {
  TraceArg args[2];
  std::size_t n = 0;
  if (arg1_name != nullptr) args[n++] = {arg1_name, arg1};
  if (arg2_name != nullptr) args[n++] = {arg2_name, arg2};
  emit_span(category, name, begin_ns, dur_ns, args, n);
}

void emit_span(const char* category, const char* name, std::uint64_t begin_ns,
               std::uint64_t dur_ns, const TraceArg* args,
               std::size_t num_args) {
  TraceEvent ev;
  ev.category = category;
  ev.name = name;
  ev.ts_ns = begin_ns;
  ev.dur_ns = dur_ns;
  ev.type = EventType::kSpan;
  if (num_args > TraceEvent::kMaxArgs) num_args = TraceEvent::kMaxArgs;
  for (std::size_t i = 0; i < num_args; ++i) ev.args[i] = args[i];
  ev.num_args = static_cast<std::uint8_t>(num_args);
  record(ev);
}

void ScopedSpanImpl::open(const char* category, const char* name) {
  finish();
  if (!TraceCollector::instance().active()) return;
  category_ = category;
  name_ = name;
  begin_ns_ = now_ns();
  num_args_ = 0;
  open_ = true;
}

void ScopedSpanImpl::arg(const char* name, std::uint64_t value) {
  if (!open_) return;
  for (std::uint8_t i = 0; i < num_args_; ++i) {
    if (args_[i].name == name) {  // same literal: overwrite in place
      args_[i].value = value;
      return;
    }
  }
  if (num_args_ < TraceEvent::kMaxArgs) {
    args_[num_args_++] = {name, value};
  } else {
    args_[TraceEvent::kMaxArgs - 1] = {name, value};
  }
}

void ScopedSpanImpl::finish() {
  if (!open_) return;
  open_ = false;
  const std::uint64_t end = now_ns();
  emit_span(category_, name_, begin_ns_, end > begin_ns_ ? end - begin_ns_ : 0,
            args_, num_args_);
}

}  // namespace sfa::obs
