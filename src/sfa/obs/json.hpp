// Minimal streaming JSON writer shared by the observability exporters
// (trace JSON, metrics snapshots, BuildStats, bench results).
//
// Intentionally tiny: objects/arrays with automatic comma placement and
// correct string escaping.  No DOM, no allocation beyond the ostream — the
// trace exporter may emit millions of events and must stream them.
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace sfa::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object() {
    comma();
    os_ << '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    os_ << '}';
    return *this;
  }
  JsonWriter& begin_array() {
    comma();
    os_ << '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    os_ << ']';
    return *this;
  }

  /// Key inside an object; follow with exactly one value/begin_* call.
  JsonWriter& key(std::string_view k) {
    comma();
    write_string(k);
    os_ << ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    comma();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(unsigned v) { return value(std::uint64_t{v}); }
  JsonWriter& value(int v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v) {
    comma();
    // %.17g round-trips doubles; trim to %.6f style only for timestamps at
    // the call site.  NaN/Inf are not valid JSON — clamp to null.
    if (v != v || v > 1.7e308 || v < -1.7e308) {
      os_ << "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v);
      os_ << buf;
    }
    return *this;
  }
  JsonWriter& null() {
    comma();
    os_ << "null";
    return *this;
  }

  /// key + value in one call, for the common flat-object case.
  template <typename V>
  JsonWriter& kv(std::string_view k, V v) {
    key(k);
    return value(v);
  }

 private:
  void comma() {
    if (pending_key_) {
      pending_key_ = false;  // value directly after a key: no comma
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> stack_;  // per level: "an element was already written"
  bool pending_key_ = false;
};

}  // namespace sfa::obs
