// Parameterized transposition of DFA transition tables (paper §III-A, Fig. 3).
//
// Given a source SFA state s0 = <p_0, ..., p_{n-1}> and the row-major DFA
// table delta (n_states rows of |Sigma| entries), the successors of s0 on
// every symbol are obtained by gathering the rows selected by s0's cells and
// transposing them:
//
//     out[sigma][i] = delta[p_i][sigma]          (k rows of n cells)
//
// i.e. one call produces ALL |Sigma| successor SFA states, touching the
// delta table row-by-row (cache-friendly) instead of column-by-column.
// The x*y SIMD kernels transpose x gathered rows of y entries at a time:
//   * 8x8   32-bit  (AVX2)     — the paper's kernel for large DFAs
//   * 8x8   16-bit  (SSE)      — DFAs with <= 65534 states
//   * 8x4   16-bit  (SSE)      — tail kernel for narrow symbol blocks
//   * 16x16 16-bit  (AVX2)     — implemented for the ablation in E9; the
//                                paper found 4 8x8 kernels slightly faster
// plus scalar reference paths used for tails and non-x86 hosts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sfa {

enum class TransposeMethod {
  kScalar,      // pure scalar gather
  kSimd8,       // 8x8 kernels (+ scalar tails)  — the paper's choice
  kSimd16x16,   // 16x16 16-bit kernel (+ 8x8/scalar tails) — ablation
  kAuto,        // best available for this CPU (kSimd8 when possible)
};

/// True when the 8x8 (SSE/AVX2) kernels can run on this host.
bool simd_transpose_available();

/// True when the 16x16 AVX2 16-bit kernel can run on this host.
bool simd16_transpose_available();

// --- Raw block kernels (exposed for tests/benchmarks) ------------------------
// Each transposes x rows of y elements into y rows of x elements; output row
// r starts at out + r * out_stride.

void transpose8x8_u16_scalar(const std::uint16_t* const rows[8],
                             std::uint16_t* out, std::size_t out_stride);
void transpose8x8_u32_scalar(const std::uint32_t* const rows[8],
                             std::uint32_t* out, std::size_t out_stride);
void transpose8x8_u16_sse(const std::uint16_t* const rows[8],
                          std::uint16_t* out, std::size_t out_stride);
void transpose8x4_u16_sse(const std::uint16_t* const rows[8],
                          std::uint16_t* out, std::size_t out_stride);
void transpose8x8_u32_avx2(const std::uint32_t* const rows[8],
                           std::uint32_t* out, std::size_t out_stride);
void transpose16x16_u16_avx2(const std::uint16_t* const rows[16],
                             std::uint16_t* out, std::size_t out_stride);

// --- Parameterized transposition ---------------------------------------------

/// Computes out[sigma * n + i] = delta[src[i] * k + sigma] for all
/// sigma < k, i < n.  `delta` is the row-major Cell-typed DFA table.
/// Cell is uint16_t or uint32_t.
template <typename Cell>
void successors_transposed(const Cell* delta, unsigned k, const Cell* src,
                           unsigned n, Cell* out,
                           TransposeMethod method = TransposeMethod::kAuto);

template <>
void successors_transposed<std::uint16_t>(const std::uint16_t* delta,
                                          unsigned k, const std::uint16_t* src,
                                          unsigned n, std::uint16_t* out,
                                          TransposeMethod method);
template <>
void successors_transposed<std::uint32_t>(const std::uint32_t* delta,
                                          unsigned k, const std::uint32_t* src,
                                          unsigned n, std::uint32_t* out,
                                          TransposeMethod method);

}  // namespace sfa
