#include "sfa/simd/transpose.hpp"

#include "sfa/support/cpu.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define SFA_HAVE_X86_INTRIN 1
#endif

namespace sfa {

bool simd_transpose_available() {
#ifdef SFA_HAVE_X86_INTRIN
  return cpu_features().sse2;
#else
  return false;
#endif
}

bool simd16_transpose_available() {
#ifdef SFA_HAVE_X86_INTRIN
  return cpu_features().avx2;
#else
  return false;
#endif
}

// --- Scalar reference kernels -------------------------------------------------

void transpose8x8_u16_scalar(const std::uint16_t* const rows[8],
                             std::uint16_t* out, std::size_t out_stride) {
  for (int c = 0; c < 8; ++c)
    for (int r = 0; r < 8; ++r) out[c * out_stride + r] = rows[r][c];
}

void transpose8x8_u32_scalar(const std::uint32_t* const rows[8],
                             std::uint32_t* out, std::size_t out_stride) {
  for (int c = 0; c < 8; ++c)
    for (int r = 0; r < 8; ++r) out[c * out_stride + r] = rows[r][c];
}

#ifdef SFA_HAVE_X86_INTRIN

// --- 8x8 16-bit (SSE2) ---------------------------------------------------------

void transpose8x8_u16_sse(const std::uint16_t* const rows[8],
                          std::uint16_t* out, std::size_t out_stride) {
  const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[0]));
  const __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[1]));
  const __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[2]));
  const __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[3]));
  const __m128i r4 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[4]));
  const __m128i r5 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[5]));
  const __m128i r6 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[6]));
  const __m128i r7 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[7]));

  const __m128i a0 = _mm_unpacklo_epi16(r0, r1);
  const __m128i a1 = _mm_unpackhi_epi16(r0, r1);
  const __m128i a2 = _mm_unpacklo_epi16(r2, r3);
  const __m128i a3 = _mm_unpackhi_epi16(r2, r3);
  const __m128i a4 = _mm_unpacklo_epi16(r4, r5);
  const __m128i a5 = _mm_unpackhi_epi16(r4, r5);
  const __m128i a6 = _mm_unpacklo_epi16(r6, r7);
  const __m128i a7 = _mm_unpackhi_epi16(r6, r7);

  const __m128i b0 = _mm_unpacklo_epi32(a0, a2);  // cols 0,1 rows 0-3
  const __m128i b1 = _mm_unpackhi_epi32(a0, a2);  // cols 2,3 rows 0-3
  const __m128i b2 = _mm_unpacklo_epi32(a1, a3);  // cols 4,5 rows 0-3
  const __m128i b3 = _mm_unpackhi_epi32(a1, a3);  // cols 6,7 rows 0-3
  const __m128i b4 = _mm_unpacklo_epi32(a4, a6);  // cols 0,1 rows 4-7
  const __m128i b5 = _mm_unpackhi_epi32(a4, a6);
  const __m128i b6 = _mm_unpacklo_epi32(a5, a7);
  const __m128i b7 = _mm_unpackhi_epi32(a5, a7);

  const auto store = [&](int c, __m128i v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + c * out_stride), v);
  };
  store(0, _mm_unpacklo_epi64(b0, b4));
  store(1, _mm_unpackhi_epi64(b0, b4));
  store(2, _mm_unpacklo_epi64(b1, b5));
  store(3, _mm_unpackhi_epi64(b1, b5));
  store(4, _mm_unpacklo_epi64(b2, b6));
  store(5, _mm_unpackhi_epi64(b2, b6));
  store(6, _mm_unpacklo_epi64(b3, b7));
  store(7, _mm_unpackhi_epi64(b3, b7));
}

// --- 8x4 16-bit (SSE2): 8 rows of 4 -> 4 rows of 8 ------------------------------

void transpose8x4_u16_sse(const std::uint16_t* const rows[8],
                          std::uint16_t* out, std::size_t out_stride) {
  const auto load4 = [](const std::uint16_t* p) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  };
  const __m128i a0 = _mm_unpacklo_epi16(load4(rows[0]), load4(rows[1]));
  const __m128i a1 = _mm_unpacklo_epi16(load4(rows[2]), load4(rows[3]));
  const __m128i a2 = _mm_unpacklo_epi16(load4(rows[4]), load4(rows[5]));
  const __m128i a3 = _mm_unpacklo_epi16(load4(rows[6]), load4(rows[7]));

  const __m128i b0 = _mm_unpacklo_epi32(a0, a1);  // cols 0,1 rows 0-3
  const __m128i b1 = _mm_unpackhi_epi32(a0, a1);  // cols 2,3 rows 0-3
  const __m128i b2 = _mm_unpacklo_epi32(a2, a3);  // cols 0,1 rows 4-7
  const __m128i b3 = _mm_unpackhi_epi32(a2, a3);  // cols 2,3 rows 4-7

  const auto store = [&](int c, __m128i v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + c * out_stride), v);
  };
  store(0, _mm_unpacklo_epi64(b0, b2));
  store(1, _mm_unpackhi_epi64(b0, b2));
  store(2, _mm_unpacklo_epi64(b1, b3));
  store(3, _mm_unpackhi_epi64(b1, b3));
}

// --- 8x8 32-bit (AVX2) -----------------------------------------------------------

void transpose8x8_u32_avx2(const std::uint32_t* const rows[8],
                           std::uint32_t* out, std::size_t out_stride) {
  const __m256i r0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[0]));
  const __m256i r1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[1]));
  const __m256i r2 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[2]));
  const __m256i r3 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[3]));
  const __m256i r4 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[4]));
  const __m256i r5 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[5]));
  const __m256i r6 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[6]));
  const __m256i r7 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[7]));

  const __m256i a0 = _mm256_unpacklo_epi32(r0, r1);
  const __m256i a1 = _mm256_unpackhi_epi32(r0, r1);
  const __m256i a2 = _mm256_unpacklo_epi32(r2, r3);
  const __m256i a3 = _mm256_unpackhi_epi32(r2, r3);
  const __m256i a4 = _mm256_unpacklo_epi32(r4, r5);
  const __m256i a5 = _mm256_unpackhi_epi32(r4, r5);
  const __m256i a6 = _mm256_unpacklo_epi32(r6, r7);
  const __m256i a7 = _mm256_unpackhi_epi32(r6, r7);

  const __m256i b0 = _mm256_unpacklo_epi64(a0, a2);  // cols 0|4, rows 0-3
  const __m256i b1 = _mm256_unpackhi_epi64(a0, a2);  // cols 1|5
  const __m256i b2 = _mm256_unpacklo_epi64(a1, a3);  // cols 2|6
  const __m256i b3 = _mm256_unpackhi_epi64(a1, a3);  // cols 3|7
  const __m256i b4 = _mm256_unpacklo_epi64(a4, a6);  // cols 0|4, rows 4-7
  const __m256i b5 = _mm256_unpackhi_epi64(a4, a6);
  const __m256i b6 = _mm256_unpacklo_epi64(a5, a7);
  const __m256i b7 = _mm256_unpackhi_epi64(a5, a7);

  const auto store = [&](int c, __m256i v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c * out_stride), v);
  };
  store(0, _mm256_permute2x128_si256(b0, b4, 0x20));
  store(1, _mm256_permute2x128_si256(b1, b5, 0x20));
  store(2, _mm256_permute2x128_si256(b2, b6, 0x20));
  store(3, _mm256_permute2x128_si256(b3, b7, 0x20));
  store(4, _mm256_permute2x128_si256(b0, b4, 0x31));
  store(5, _mm256_permute2x128_si256(b1, b5, 0x31));
  store(6, _mm256_permute2x128_si256(b2, b6, 0x31));
  store(7, _mm256_permute2x128_si256(b3, b7, 0x31));
}

// --- 16x16 16-bit (AVX2) ----------------------------------------------------------

void transpose16x16_u16_avx2(const std::uint16_t* const rows[16],
                             std::uint16_t* out, std::size_t out_stride) {
  __m256i r[16];
  for (int i = 0; i < 16; ++i)
    r[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(rows[i]));

  // For each half (rows 0-7, rows 8-15): three unpack stages yield registers
  // whose low lane is column j of the half's 8 rows and whose high lane is
  // column j+8 of the same rows.
  __m256i half[2][8];
  for (int h = 0; h < 2; ++h) {
    const __m256i* q = r + h * 8;
    const __m256i a0 = _mm256_unpacklo_epi16(q[0], q[1]);
    const __m256i a1 = _mm256_unpackhi_epi16(q[0], q[1]);
    const __m256i a2 = _mm256_unpacklo_epi16(q[2], q[3]);
    const __m256i a3 = _mm256_unpackhi_epi16(q[2], q[3]);
    const __m256i a4 = _mm256_unpacklo_epi16(q[4], q[5]);
    const __m256i a5 = _mm256_unpackhi_epi16(q[4], q[5]);
    const __m256i a6 = _mm256_unpacklo_epi16(q[6], q[7]);
    const __m256i a7 = _mm256_unpackhi_epi16(q[6], q[7]);

    const __m256i b0 = _mm256_unpacklo_epi32(a0, a2);  // cols 0,1 | 8,9   rows 0-3
    const __m256i b1 = _mm256_unpackhi_epi32(a0, a2);  // cols 2,3 | 10,11
    const __m256i b2 = _mm256_unpacklo_epi32(a1, a3);  // cols 4,5 | 12,13
    const __m256i b3 = _mm256_unpackhi_epi32(a1, a3);  // cols 6,7 | 14,15
    const __m256i b4 = _mm256_unpacklo_epi32(a4, a6);  // rows 4-7
    const __m256i b5 = _mm256_unpackhi_epi32(a4, a6);
    const __m256i b6 = _mm256_unpacklo_epi32(a5, a7);
    const __m256i b7 = _mm256_unpackhi_epi32(a5, a7);

    half[h][0] = _mm256_unpacklo_epi64(b0, b4);  // col 0 | col 8
    half[h][1] = _mm256_unpackhi_epi64(b0, b4);  // col 1 | col 9
    half[h][2] = _mm256_unpacklo_epi64(b1, b5);  // col 2 | col 10
    half[h][3] = _mm256_unpackhi_epi64(b1, b5);
    half[h][4] = _mm256_unpacklo_epi64(b2, b6);  // col 4 | col 12
    half[h][5] = _mm256_unpackhi_epi64(b2, b6);
    half[h][6] = _mm256_unpacklo_epi64(b3, b7);  // col 6 | col 14
    half[h][7] = _mm256_unpackhi_epi64(b3, b7);
  }

  const auto store = [&](int c, __m256i v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c * out_stride), v);
  };
  for (int j = 0; j < 8; ++j) {
    store(j, _mm256_permute2x128_si256(half[0][j], half[1][j], 0x20));
    store(j + 8, _mm256_permute2x128_si256(half[0][j], half[1][j], 0x31));
  }
}

#else  // !SFA_HAVE_X86_INTRIN — scalar stand-ins keep the API total.

void transpose8x8_u16_sse(const std::uint16_t* const rows[8],
                          std::uint16_t* out, std::size_t out_stride) {
  transpose8x8_u16_scalar(rows, out, out_stride);
}
void transpose8x4_u16_sse(const std::uint16_t* const rows[8],
                          std::uint16_t* out, std::size_t out_stride) {
  for (int c = 0; c < 4; ++c)
    for (int r = 0; r < 8; ++r) out[c * out_stride + r] = rows[r][c];
}
void transpose8x8_u32_avx2(const std::uint32_t* const rows[8],
                           std::uint32_t* out, std::size_t out_stride) {
  transpose8x8_u32_scalar(rows, out, out_stride);
}
void transpose16x16_u16_avx2(const std::uint16_t* const rows[16],
                             std::uint16_t* out, std::size_t out_stride) {
  for (int c = 0; c < 16; ++c)
    for (int r = 0; r < 16; ++r) out[c * out_stride + r] = rows[r][c];
}

#endif  // SFA_HAVE_X86_INTRIN

// --- Parameterized transposition -----------------------------------------------

namespace {

template <typename Cell>
void successors_scalar(const Cell* delta, unsigned k, const Cell* src,
                       unsigned n, Cell* out) {
  // Row-major read of delta (one row per source cell), strided write — the
  // scalar formulation of Fig. 3.
  for (unsigned i = 0; i < n; ++i) {
    const Cell* row = delta + static_cast<std::size_t>(src[i]) * k;
    for (unsigned s = 0; s < k; ++s)
      out[static_cast<std::size_t>(s) * n + i] = row[s];
  }
}

// Transpose an 8-source-cell slab across all k symbols with the widest
// kernels that fit, falling back to scalar for the last (k mod 4) symbols.
inline void slab8_u16(const std::uint16_t* delta, unsigned k,
                      const std::uint16_t* src, unsigned n, unsigned i0,
                      std::uint16_t* out) {
  const std::uint16_t* rows[8];
  for (int j = 0; j < 8; ++j)
    rows[j] = delta + static_cast<std::size_t>(src[i0 + j]) * k;
  unsigned s = 0;
  const std::uint16_t* shifted[8];
  for (; s + 8 <= k; s += 8) {
    for (int j = 0; j < 8; ++j) shifted[j] = rows[j] + s;
    transpose8x8_u16_sse(shifted, out + static_cast<std::size_t>(s) * n + i0, n);
  }
  for (; s + 4 <= k; s += 4) {
    for (int j = 0; j < 8; ++j) shifted[j] = rows[j] + s;
    transpose8x4_u16_sse(shifted, out + static_cast<std::size_t>(s) * n + i0, n);
  }
  for (; s < k; ++s)
    for (int j = 0; j < 8; ++j)
      out[static_cast<std::size_t>(s) * n + i0 + j] = rows[j][s];
}

inline void slab8_u32(const std::uint32_t* delta, unsigned k,
                      const std::uint32_t* src, unsigned n, unsigned i0,
                      std::uint32_t* out) {
  const std::uint32_t* rows[8];
  for (int j = 0; j < 8; ++j)
    rows[j] = delta + static_cast<std::size_t>(src[i0 + j]) * k;
  unsigned s = 0;
  const std::uint32_t* shifted[8];
  for (; s + 8 <= k; s += 8) {
    for (int j = 0; j < 8; ++j) shifted[j] = rows[j] + s;
    transpose8x8_u32_avx2(shifted, out + static_cast<std::size_t>(s) * n + i0, n);
  }
  for (; s < k; ++s)
    for (int j = 0; j < 8; ++j)
      out[static_cast<std::size_t>(s) * n + i0 + j] = rows[j][s];
}

inline void slab16_u16(const std::uint16_t* delta, unsigned k,
                       const std::uint16_t* src, unsigned n, unsigned i0,
                       std::uint16_t* out) {
  const std::uint16_t* rows[16];
  for (int j = 0; j < 16; ++j)
    rows[j] = delta + static_cast<std::size_t>(src[i0 + j]) * k;
  unsigned s = 0;
  const std::uint16_t* shifted[16];
  for (; s + 16 <= k; s += 16) {
    for (int j = 0; j < 16; ++j) shifted[j] = rows[j] + s;
    transpose16x16_u16_avx2(shifted, out + static_cast<std::size_t>(s) * n + i0,
                            n);
  }
  for (; s < k; ++s)
    for (int j = 0; j < 16; ++j)
      out[static_cast<std::size_t>(s) * n + i0 + j] = rows[j][s];
}

template <typename Cell>
void scalar_tail(const Cell* delta, unsigned k, const Cell* src, unsigned n,
                 unsigned i0, Cell* out) {
  for (unsigned i = i0; i < n; ++i) {
    const Cell* row = delta + static_cast<std::size_t>(src[i]) * k;
    for (unsigned s = 0; s < k; ++s)
      out[static_cast<std::size_t>(s) * n + i] = row[s];
  }
}

}  // namespace

template <>
void successors_transposed<std::uint16_t>(const std::uint16_t* delta,
                                          unsigned k, const std::uint16_t* src,
                                          unsigned n, std::uint16_t* out,
                                          TransposeMethod method) {
  if (method == TransposeMethod::kAuto)
    method = simd_transpose_available() ? TransposeMethod::kSimd8
                                        : TransposeMethod::kScalar;
  if (method == TransposeMethod::kSimd16x16 && !simd16_transpose_available())
    method = TransposeMethod::kScalar;
  if (method == TransposeMethod::kScalar) {
    successors_scalar(delta, k, src, n, out);
    return;
  }
  unsigned i = 0;
  if (method == TransposeMethod::kSimd16x16) {
    for (; i + 16 <= n; i += 16) slab16_u16(delta, k, src, n, i, out);
  }
  for (; i + 8 <= n; i += 8) slab8_u16(delta, k, src, n, i, out);
  scalar_tail(delta, k, src, n, i, out);
}

template <>
void successors_transposed<std::uint32_t>(const std::uint32_t* delta,
                                          unsigned k, const std::uint32_t* src,
                                          unsigned n, std::uint32_t* out,
                                          TransposeMethod method) {
  if (method == TransposeMethod::kAuto || method == TransposeMethod::kSimd16x16)
    method = simd16_transpose_available() ? TransposeMethod::kSimd8
                                          : TransposeMethod::kScalar;
  if (method == TransposeMethod::kScalar ||
      (method == TransposeMethod::kSimd8 && !simd16_transpose_available())) {
    successors_scalar(delta, k, src, n, out);
    return;
  }
  unsigned i = 0;
  for (; i + 8 <= n; i += 8) slab8_u32(delta, k, src, n, i, out);
  scalar_tail(delta, k, src, n, i, out);
}

}  // namespace sfa
