#include "sfa/prosite/prosite_parser.hpp"

#include <cctype>

#include "sfa/automata/determinize.hpp"
#include "sfa/automata/minimize.hpp"
#include "sfa/automata/nfa.hpp"
#include "sfa/automata/ops.hpp"

namespace sfa {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view src) : src_(src) {}

  PrositePattern parse() {
    PrositePattern out;
    skip_space();
    if (!at_end() && peek() == '<') {
      take();
      out.anchored_start = true;
    }
    std::vector<Regex> elements;
    elements.push_back(parse_element());
    while (true) {
      skip_space();
      if (!at_end() && peek() == '-') {
        take();
        elements.push_back(parse_element());
        continue;
      }
      break;
    }
    skip_space();
    if (!at_end() && peek() == '>') {
      take();
      out.anchored_end = true;
    }
    skip_space();
    if (!at_end() && peek() == '.') take();
    skip_space();
    if (!at_end()) fail("unexpected trailing input");
    out.regex = rx::cat(std::move(elements));
    return out;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek() const { return src_[pos_]; }
  char take() { return src_[pos_++]; }
  void skip_space() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(peek())))
      ++pos_;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw PrositeParseError(msg, pos_);
  }

  Symbol residue(char c) const {
    const Symbol s = Alphabet::amino().symbol_of(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    if (s == kNoSymbol)
      throw PrositeParseError(std::string("'") + c +
                                  "' is not an amino-acid code",
                              pos_);
    return s;
  }

  Regex parse_element() {
    skip_space();
    if (at_end()) fail("expected pattern element");
    Regex atom;
    const char c = take();
    if (c == 'x' || c == 'X') {
      atom = rx::any(Alphabet::amino().size());
    } else if (c == '[') {
      atom = rx::cls(parse_residues(']', /*negate=*/false));
    } else if (c == '{') {
      atom = rx::cls(parse_residues('}', /*negate=*/true));
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      atom = rx::sym(residue(c));
    } else {
      --pos_;
      fail(std::string("unexpected character '") + c + "'");
    }
    // Optional repetition count.
    skip_space();
    if (!at_end() && peek() == '(') {
      take();
      const int lo = parse_int();
      int hi = lo;
      skip_space();
      if (!at_end() && peek() == ',') {
        take();
        hi = parse_int();
      }
      skip_space();
      if (at_end() || take() != ')') fail("expected ')'");
      if (hi < lo) fail("repetition bounds reversed");
      return rx::repeat(std::move(atom), lo, hi);
    }
    return atom;
  }

  CharClass parse_residues(char closer, bool negate) {
    CharClass cls;
    bool any = false;
    while (!at_end() && peek() != closer) {
      const char c = take();
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == '<' || c == '>')
        fail("anchors inside residue classes are not supported");
      cls.add(residue(c));
      any = true;
    }
    if (at_end() || take() != closer) fail("unterminated residue class");
    if (!any) fail("empty residue class");
    return negate ? cls.negated(Alphabet::amino().size()) : cls;
  }

  int parse_int() {
    skip_space();
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("expected number");
    long v = 0;
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      v = v * 10 + (take() - '0');
      if (v > 10000) fail("repetition count too large");
    }
    return static_cast<int>(v);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

}  // namespace

PrositePattern parse_prosite(std::string_view pattern) {
  return Parser(pattern).parse();
}

Dfa compile_prosite(std::string_view pattern) {
  PrositePattern p = parse_prosite(pattern);
  const unsigned k = Alphabet::amino().size();
  std::vector<Regex> parts;
  if (!p.anchored_start) parts.push_back(rx::star(rx::any(k)));
  parts.push_back(std::move(p.regex));
  if (!p.anchored_end) parts.push_back(rx::star(rx::any(k)));
  const Regex wrapped = rx::cat(std::move(parts));
  const Nfa nfa = Nfa::from_regex(wrapped, k);
  return minimize(determinize(nfa));
}

}  // namespace sfa
