// Reader for the PROSITE flat-file database format (prosite.dat).
//
// The paper draws its 1250 benchmark patterns from a PROSITE release.  This
// loader parses the official flat format so the full database can be used
// directly when available:
//
//   ID   ASN_GLYCOSYLATION; PATTERN.
//   AC   PS00001;
//   DE   N-glycosylation site.
//   PA   N-{P}-[ST]-{P}.
//   //
//
// PA lines may continue over several lines; entries whose type is not
// PATTERN (MATRIX/RULE) have no PA and are skipped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sfa/prosite/patterns.hpp"

namespace sfa {

/// Parse a prosite.dat stream into (accession, pattern) pairs.  Malformed
/// entries are skipped unless `strict`, in which case they throw
/// std::runtime_error with the offending line number.
std::vector<NamedPattern> load_prosite_dat(std::istream& in,
                                           bool strict = false);

std::vector<NamedPattern> load_prosite_dat_file(const std::string& path,
                                                bool strict = false);

}  // namespace sfa
