// Workload patterns: embedded PROSITE motifs, a seeded synthetic
// PROSITE-style generator, and the r500-class synthetic benchmark.
//
// The paper evaluates on 1250 patterns drawn from the PROSITE release plus
// the synthetic r500 pattern of Sin'ya et al.  The database itself is not
// vendored; instead we embed a sample of real motifs (exercising the full
// pattern syntax) and generate additional seeded patterns covering the same
// DFA-size spectrum (5 ... several thousand states) — see DESIGN.md §4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfa/automata/dfa.hpp"

namespace sfa {

struct NamedPattern {
  std::string id;       // e.g. "PS00016"
  std::string pattern;  // PROSITE syntax
};

/// Embedded sample of real PROSITE motifs (transcribed from the public
/// release; a handful are lightly simplified, which does not affect the
/// construction-cost profile).
const std::vector<NamedPattern>& prosite_samples();

/// Parameters for the synthetic PROSITE-style pattern generator.
struct SyntheticPatternOptions {
  unsigned min_elements = 3;
  unsigned max_elements = 12;
  double p_any = 0.30;         // element is 'x'
  double p_class = 0.35;       // element is [..] (otherwise single residue)
  double p_exclusion = 0.15;   // class rendered as {..}
  unsigned max_class_size = 6;
  double p_repeat = 0.35;      // element carries (n) or (n,m)
  unsigned max_repeat = 4;
};

/// Deterministically generate a PROSITE-style pattern string from `seed`.
std::string synthetic_prosite_pattern(std::uint64_t seed,
                                      const SyntheticPatternOptions& options = {});

/// A benchmark suite: `count` patterns — the embedded real motifs first,
/// then synthetic patterns seeded from `seed`.  Mirrors the paper's
/// PROSITE selection (small through large DFAs).
std::vector<NamedPattern> benchmark_patterns(std::size_t count,
                                             std::uint64_t seed = 2017);

/// r500-class benchmark: the DFA of one random exact string of `length`
/// residues (NO Sigma* catenation).  Its transitions are dominated by the
/// error sink, the property the paper leans on (95x RLE-friendly SFA
/// states, §III-C).  length + 2 states: 0..length plus the sink.
Dfa make_r_benchmark_dfa(unsigned length, std::uint64_t seed = 500);

}  // namespace sfa
