#include "sfa/prosite/patterns.hpp"

#include <algorithm>

#include "sfa/support/rng.hpp"

namespace sfa {

const std::vector<NamedPattern>& prosite_samples() {
  static const std::vector<NamedPattern> patterns = {
      {"PS00001", "N-{P}-[ST]-{P}."},                       // N-glycosylation
      {"PS00002", "[ST]-G-x-G."},                           // glycosaminoglycan
      {"PS00004", "[RK](2)-x-[ST]."},                       // cAMP phospho site
      {"PS00005", "[ST]-x-[RK]."},                          // PKC phospho site
      {"PS00006", "[ST]-x(2)-[DE]."},                       // CK2 phospho site
      {"PS00007", "[RK]-x(2,3)-[DE]-x(2,3)-Y."},            // Tyr kinase site
      {"PS00008", "G-{EDRKHPFYW}-x(2)-[STAGCN]-{P}."},      // myristoylation
      {"PS00009", "x-G-[RK]-[RK]."},                        // amidation
      {"PS00016", "R-G-D."},                                // RGD cell attachment
      {"PS00017", "[AG]-x(4)-G-K-[ST]."},                   // P-loop ATP/GTP
      {"PS00018",
       "D-x-[DNS]-{ILVFYW}-[DENSTG]-[DNQGHRK]-{GP}-[LIVMC]-[DENQSTAGC]-x(2)"
       "-[DE]-[LIVMFYW]."},                                 // EF-hand
      {"PS00028", "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H."},  // C2H2 zinc
      {"PS00029", "L-x(6)-L-x(6)-L-x(6)-L."},               // leucine zipper
      {"PS00134", "[LIVM]-[ST]-A-[STAG]-H-C."},             // trypsin His
      {"PS00010", "C-x-[DN]-x(4)-[FY]-x-C-x-C."},           // Asx hydroxylation
      // Larger motifs (bigger DFAs, the paper's mid-range):
      {"PS00190", "C-x-G-x(4)-[FYW]-x(6,12)-C-x-C."},
      {"PS00237", "[GSTALIVMFYWC]-[GSTANCPDE]-{EDPKRH}-x(2)-[LIVMNQGA]-x(2)"
                  "-[LIVMFT]-[GSTANC]-[LIVMFYWSTAC]-[DENH]-R-[FYWCSH]-x(2)"
                  "-[LIVM]."},                              // GPCR rhodopsin
      {"PS00211", "[LIVMFYC]-S-[SG]-G-x(3)-[RKA]-[LIVMYA]-x(3)-[LIVMF]"
                  "-[AG]."},                                // ABC transporter-ish
  };
  return patterns;
}

std::string synthetic_prosite_pattern(std::uint64_t seed,
                                      const SyntheticPatternOptions& opt) {
  static const char* kResidues = "ACDEFGHIKLMNPQRSTVWY";
  Xoshiro256 rng(seed);
  const unsigned elements =
      opt.min_elements +
      static_cast<unsigned>(rng.below(opt.max_elements - opt.min_elements + 1));

  std::string out;
  for (unsigned e = 0; e < elements; ++e) {
    if (e) out.push_back('-');
    const double roll = rng.unit();
    if (roll < opt.p_any) {
      out.push_back('x');
    } else if (roll < opt.p_any + opt.p_class) {
      const bool exclusion = rng.chance(opt.p_exclusion / opt.p_class);
      // 2..max_class_size distinct residues.
      const unsigned size =
          2 + static_cast<unsigned>(rng.below(opt.max_class_size - 1));
      bool used[20] = {};
      out.push_back(exclusion ? '{' : '[');
      unsigned added = 0;
      while (added < size) {
        const unsigned r = static_cast<unsigned>(rng.below(20));
        if (used[r]) continue;
        used[r] = true;
        out.push_back(kResidues[r]);
        ++added;
      }
      out.push_back(exclusion ? '}' : ']');
    } else {
      out.push_back(kResidues[rng.below(20)]);
    }
    if (rng.chance(opt.p_repeat)) {
      const unsigned lo = 1 + static_cast<unsigned>(rng.below(opt.max_repeat));
      out.push_back('(');
      out += std::to_string(lo);
      if (rng.chance(0.5)) {
        const unsigned hi =
            lo + 1 + static_cast<unsigned>(rng.below(opt.max_repeat));
        out.push_back(',');
        out += std::to_string(hi);
      }
      out.push_back(')');
    }
  }
  out.push_back('.');
  return out;
}

std::vector<NamedPattern> benchmark_patterns(std::size_t count,
                                             std::uint64_t seed) {
  std::vector<NamedPattern> out = prosite_samples();
  if (out.size() > count) out.resize(count);
  SplitMix64 seeder(seed);
  while (out.size() < count) {
    const std::uint64_t s = seeder.next();
    out.push_back({"SYN" + std::to_string(out.size()),
                   synthetic_prosite_pattern(s)});
  }
  return out;
}

Dfa make_r_benchmark_dfa(unsigned length, std::uint64_t seed) {
  Xoshiro256 rng(seed ^ (static_cast<std::uint64_t>(length) << 32));
  const unsigned k = 20;  // amino alphabet
  Dfa dfa(k);
  // States 0..length-1 spell the string, `length` accepts, `length+1` sinks.
  for (unsigned i = 0; i <= length + 1; ++i)
    dfa.add_state(/*accepting=*/i == length);
  const Dfa::StateId sink = length + 1;
  for (unsigned i = 0; i < length; ++i) {
    const Symbol expected = static_cast<Symbol>(rng.below(k));
    for (unsigned s = 0; s < k; ++s)
      dfa.set_transition(i, static_cast<Symbol>(s),
                         s == expected ? i + 1 : sink);
  }
  for (unsigned s = 0; s < k; ++s) {
    dfa.set_transition(length, static_cast<Symbol>(s), sink);
    dfa.set_transition(sink, static_cast<Symbol>(s), sink);
  }
  dfa.set_start(0);
  return dfa;
}

}  // namespace sfa
