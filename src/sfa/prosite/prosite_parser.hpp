// PROSITE pattern parser (paper §IV: all workloads are PROSITE motifs).
//
// Grammar per the PROSITE user manual:
//   pattern  := '<'? element ('-' element)* '>'? '.'?
//   element  := atom count?
//   atom     := residue | 'x' | '[' residue+ ']' | '{' residue+ '}'
//   count    := '(' n ')' | '(' n ',' m ')'
// where residues are one-letter amino-acid codes, '[..]' is a choice,
// '{..}' an exclusion, 'x' any residue, '<'/'>' anchor the pattern at the
// N-/C-terminus.  Example (PS00001): N-{P}-[ST]-{P}.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "sfa/automata/dfa.hpp"
#include "sfa/automata/regex.hpp"

namespace sfa {

class PrositeParseError : public std::runtime_error {
 public:
  PrositeParseError(const std::string& what, std::size_t pos)
      : std::runtime_error(what + " (at offset " + std::to_string(pos) + ")"),
        position(pos) {}
  std::size_t position;
};

struct PrositePattern {
  Regex regex;               // over Alphabet::amino()
  bool anchored_start = false;
  bool anchored_end = false;
};

/// Parse a PROSITE pattern string over the amino-acid alphabet.
PrositePattern parse_prosite(std::string_view pattern);

/// Compile a PROSITE pattern to a minimal complete DFA.  Unanchored ends get
/// the Sigma* catenation (the paper's default; '<'/'>' suppress it per side).
Dfa compile_prosite(std::string_view pattern);

}  // namespace sfa
