#include "sfa/prosite/prosite_db.hpp"

#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "sfa/prosite/prosite_parser.hpp"

namespace sfa {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

std::vector<NamedPattern> load_prosite_dat(std::istream& in, bool strict) {
  std::vector<NamedPattern> out;
  std::string line, accession, pattern;
  std::size_t line_number = 0;

  const auto flush_entry = [&] {
    if (accession.empty() && pattern.empty()) return;
    if (!pattern.empty()) {
      if (accession.empty()) {
        if (strict)
          throw std::runtime_error("prosite.dat: PA without AC near line " +
                                   std::to_string(line_number));
      } else {
        // Validate the pattern parses; skip (or throw) otherwise.
        try {
          parse_prosite(pattern);
          out.push_back({accession, pattern});
        } catch (const PrositeParseError& e) {
          if (strict)
            throw std::runtime_error("prosite.dat: bad PA for " + accession +
                                     ": " + e.what());
        }
      }
    }
    accession.clear();
    pattern.clear();
  };

  while (std::getline(in, line)) {
    ++line_number;
    if (line.size() >= 2 && line[0] == '/' && line[1] == '/') {
      flush_entry();
      continue;
    }
    if (line.size() < 5) continue;
    const std::string tag = line.substr(0, 2);
    const std::string value = trim(line.substr(5));
    if (tag == "AC") {
      // "PS00001;" — strip the trailing semicolon.
      std::string acc = value;
      if (!acc.empty() && acc.back() == ';') acc.pop_back();
      accession = trim(acc);
    } else if (tag == "PA") {
      pattern += value;  // continuation lines concatenate
    }
  }
  flush_entry();
  return out;
}

std::vector<NamedPattern> load_prosite_dat_file(const std::string& path,
                                                bool strict) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return load_prosite_dat(in, strict);
}

}  // namespace sfa
