#include "sfa/hash/survey.hpp"

#include <algorithm>

#include "sfa/hash/city64.hpp"
#include "sfa/hash/fnv.hpp"
#include "sfa/hash/rabin.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

std::vector<HashCandidate> standard_hash_candidates() {
  std::vector<HashCandidate> v;
  v.push_back({"city64", [](const void* d, std::size_t n) {
                 return city_hash64(d, n);
               }});
  if (default_rabin().uses_pclmul()) {
    v.push_back({"rabin/pclmul", [](const void* d, std::size_t n) {
                   return default_rabin().hash_pclmul(d, n);
                 }});
  }
  v.push_back({"rabin/portable", [](const void* d, std::size_t n) {
                 return default_rabin().hash_portable(d, n);
               }});
  v.push_back({"fnv1a", [](const void* d, std::size_t n) {
                 return fnv1a64(d, n);
               }});
  return v;
}

HashSurveyResult survey_one(const HashCandidate& candidate,
                            std::size_t message_bytes, std::size_t reps,
                            std::size_t corpus, std::size_t input_bytes,
                            std::uint64_t seed) {
  HashSurveyResult r;
  r.name = candidate.name;

  // Throughput: hash one SFA-state-sized buffer `reps` times.
  Xoshiro256 rng(seed);
  std::vector<std::uint8_t> buf(message_bytes);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());

  std::uint64_t sink = 0;
  // Warm-up pass brings the buffer into cache, as the paper's SFA states
  // are hashed right after being produced.
  sink ^= candidate.fn(buf.data(), buf.size());
  __asm__ volatile("" : "+r"(sink));

  const std::uint64_t c0 = read_tsc();
  const WallTimer t;
  for (std::size_t i = 0; i < reps; ++i) {
    sink ^= candidate.fn(buf.data(), buf.size());
    __asm__ volatile("" : "+r"(sink));
  }
  const double secs = t.seconds();
  const std::uint64_t cycles = read_tsc() - c0;

  const double total_bytes =
      static_cast<double>(message_bytes) * static_cast<double>(reps);
  r.bytes_per_cycle = cycles ? total_bytes / static_cast<double>(cycles) : 0;
  r.gib_per_second = secs > 0 ? total_bytes / secs / (1024.0 * 1024 * 1024) : 0;

  // Collisions: hash `corpus` distinct random inputs, count duplicate values.
  std::vector<std::uint64_t> hashes;
  hashes.reserve(corpus);
  std::vector<std::uint8_t> input(input_bytes);
  for (std::size_t i = 0; i < corpus; ++i) {
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.next());
    hashes.push_back(candidate.fn(input.data(), input.size()));
  }
  std::sort(hashes.begin(), hashes.end());
  for (std::size_t i = 1; i < hashes.size(); ++i)
    if (hashes[i] == hashes[i - 1]) ++r.collisions;
  r.inputs = corpus;
  return r;
}

std::vector<HashSurveyResult> survey_all(std::size_t message_bytes,
                                         std::size_t reps, std::size_t corpus,
                                         std::size_t input_bytes,
                                         std::uint64_t seed) {
  std::vector<HashSurveyResult> out;
  for (const auto& c : standard_hash_candidates())
    out.push_back(
        survey_one(c, message_bytes, reps, corpus, input_bytes, seed));
  return out;
}

}  // namespace sfa
