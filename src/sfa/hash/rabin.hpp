// Rabin fingerprints over GF(2)[x] (from-scratch implementation).
//
// A Rabin fingerprint interprets a byte string as a polynomial M(x) over
// GF(2) (MSB-first bit order) and computes M(x) mod P(x) for a fixed
// irreducible polynomial P of degree 64.  Distinct strings collide with
// probability <= n/2^63 for n-bit inputs, and the collision rate can be
// tuned by choosing the degree of P — the property the paper highlights for
// a probabilistic (fingerprint-only) SFA variant.
//
// Two code paths, verified against each other by the tests:
//   * portable  — byte-at-a-time with a 256-entry remainder table
//                 (the classic CRC-style formulation of Rabin's scheme);
//   * pclmul    — 128-bit-block folding with the PCLMULQDQ carry-less
//                 multiply and a final Barrett reduction, the construction
//                 the paper built for its fingerprint survey (§III-A).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sfa {

/// Fingerprinter for one modulus polynomial.  Construction precomputes the
/// byte-remainder table and the folding/Barrett constants.
class RabinFingerprinter {
 public:
  /// Low 64 bits of the degree-64 modulus polynomial P (the x^64 term is
  /// implicit).  The default is a DENSE randomly-chosen irreducible
  /// polynomial (verified with the Ben-Or test in the unit tests).
  ///
  /// Density matters, not just irreducibility: Rabin's scheme requires P to
  /// be drawn at random.  A low-weight modulus such as x^64+x^4+x^3+x+1 has
  /// low-weight multiples — e.g. P itself is the byte pattern {0x01, 0, ...,
  /// 0, 0x1B} — so two inputs whose XOR matches that sparse pattern collide
  /// *deterministically*.  SFA state vectors of r-benchmark DFAs differ in
  /// exactly such sparse low-valued patterns and exposed this in practice
  /// (see RabinRegression tests).
  static constexpr std::uint64_t kDefaultPoly = 0x0551D705F105A63Full;

  explicit RabinFingerprinter(std::uint64_t poly_low = kDefaultPoly);

  /// M(x) mod P via the best available code path.
  std::uint64_t hash(const void* data, std::size_t len) const;

  /// Reference byte-at-a-time path (always available).
  std::uint64_t hash_portable(const void* data, std::size_t len) const;

  /// PCLMULQDQ folding path.  Preconditions: cpu_features().pclmulqdq.
  /// Falls back to the portable path for inputs shorter than 32 bytes.
  std::uint64_t hash_pclmul(const void* data, std::size_t len) const;

  /// True when hash() will use the PCLMULQDQ path for long inputs.
  bool uses_pclmul() const { return have_pclmul_; }

  std::uint64_t poly_low() const { return poly_low_; }

 private:
  std::uint64_t poly_low_;      // P without its x^64 bit
  std::uint64_t table_[256];    // T[b] = b(x)*x^64 mod P
  std::uint64_t fold_k128_;     // x^128 mod P
  std::uint64_t fold_k192_;     // x^192 mod P
  std::uint64_t barrett_mu_lo_; // low 64 bits of floor(x^128 / P)
  bool have_pclmul_;
};

/// Process-wide fingerprinter over the default polynomial.
const RabinFingerprinter& default_rabin();

/// Convenience wrapper over default_rabin().hash().
std::uint64_t rabin_fingerprint(const void* data, std::size_t len);

// --- GF(2)[x] helper arithmetic (exposed for tests) -------------------------

namespace gf2 {

/// Carry-less 64x64 -> 128-bit multiply, portable reference.
void clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
             std::uint64_t& lo);

/// (hi*x^64 + lo) mod P where P = x^64 + poly_low; bitwise long division.
std::uint64_t mod128(std::uint64_t hi, std::uint64_t lo,
                     std::uint64_t poly_low);

/// floor(x^128 / P); returns the low 64 bits (bit 64 of the quotient is
/// always 1 and handled by the caller).
std::uint64_t barrett_mu_low(std::uint64_t poly_low);

}  // namespace gf2

}  // namespace sfa
