// Fingerprint-function survey harness (paper §III-A, experiment E8).
//
// The paper chose its fingerprint function by measuring (1) throughput in
// bytes per CPU cycle on SFA-state-sized inputs and (2) the collision count
// over the states generated during construction.  This harness reproduces
// both measurements for any set of candidate functions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace sfa {

/// A candidate fingerprint function: name + callable.
struct HashCandidate {
  std::string name;
  std::function<std::uint64_t(const void*, std::size_t)> fn;
};

struct HashSurveyResult {
  std::string name;
  double bytes_per_cycle = 0;   // measured with the calibrated TSC
  double gib_per_second = 0;
  std::uint64_t collisions = 0; // distinct inputs mapping to equal hashes
  std::uint64_t inputs = 0;
};

/// Candidates the paper surveyed (CityHash-class, Rabin/PCLMUL,
/// Rabin/portable) plus FNV-1a as a scalar baseline.
std::vector<HashCandidate> standard_hash_candidates();

/// Measure throughput on `reps` passes over a buffer of `message_bytes`
/// (sized like an SFA state) and collisions across `corpus` distinct inputs
/// of `input_bytes` each, generated deterministically from `seed`.
HashSurveyResult survey_one(const HashCandidate& candidate,
                            std::size_t message_bytes, std::size_t reps,
                            std::size_t corpus, std::size_t input_bytes,
                            std::uint64_t seed);

std::vector<HashSurveyResult> survey_all(std::size_t message_bytes,
                                         std::size_t reps, std::size_t corpus,
                                         std::size_t input_bytes,
                                         std::uint64_t seed);

}  // namespace sfa
