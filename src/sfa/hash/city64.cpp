#include "sfa/hash/city64.hpp"

#include <cstring>

namespace sfa {
namespace {

// Mixing constants from the CityHash construction.
constexpr std::uint64_t k0 = 0xc3a5c85c97cb3127ull;
constexpr std::uint64_t k1 = 0xb492b66fbe98f273ull;
constexpr std::uint64_t k2 = 0x9ae16a3b2f90404full;

inline std::uint64_t load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint32_t load32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline std::uint64_t rotr(std::uint64_t v, int shift) {
  return shift == 0 ? v : (v >> shift) | (v << (64 - shift));
}

inline std::uint64_t shift_mix(std::uint64_t v) { return v ^ (v >> 47); }

// The 128-to-64-bit Murmur-inspired reduction CityHash builds everything on.
inline std::uint64_t hash128to64(std::uint64_t lo, std::uint64_t hi) {
  constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ull;
  std::uint64_t a = (lo ^ hi) * kMul;
  a ^= (a >> 47);
  std::uint64_t b = (hi ^ a) * kMul;
  b ^= (b >> 47);
  b *= kMul;
  return b;
}

inline std::uint64_t hash_len16(std::uint64_t u, std::uint64_t v,
                                std::uint64_t mul) {
  std::uint64_t a = (u ^ v) * mul;
  a ^= (a >> 47);
  std::uint64_t b = (v ^ a) * mul;
  b ^= (b >> 47);
  b *= mul;
  return b;
}

std::uint64_t hash_len0to16(const char* s, std::size_t len) {
  if (len >= 8) {
    const std::uint64_t mul = k2 + len * 2;
    const std::uint64_t a = load64(s) + k2;
    const std::uint64_t b = load64(s + len - 8);
    const std::uint64_t c = rotr(b, 37) * mul + a;
    const std::uint64_t d = (rotr(a, 25) + b) * mul;
    return hash_len16(c, d, mul);
  }
  if (len >= 4) {
    const std::uint64_t mul = k2 + len * 2;
    const std::uint64_t a = load32(s);
    return hash_len16(len + (a << 3), load32(s + len - 4), mul);
  }
  if (len > 0) {
    const std::uint8_t a = static_cast<std::uint8_t>(s[0]);
    const std::uint8_t b = static_cast<std::uint8_t>(s[len >> 1]);
    const std::uint8_t c = static_cast<std::uint8_t>(s[len - 1]);
    const std::uint32_t y = a + (static_cast<std::uint32_t>(b) << 8);
    const std::uint32_t z =
        static_cast<std::uint32_t>(len) + (static_cast<std::uint32_t>(c) << 2);
    return shift_mix(y * k2 ^ z * k0) * k2;
  }
  return k2;
}

std::uint64_t hash_len17to32(const char* s, std::size_t len) {
  const std::uint64_t mul = k2 + len * 2;
  const std::uint64_t a = load64(s) * k1;
  const std::uint64_t b = load64(s + 8);
  const std::uint64_t c = load64(s + len - 8) * mul;
  const std::uint64_t d = load64(s + len - 16) * k2;
  return hash_len16(rotr(a + b, 43) + rotr(c, 30) + d,
                    a + rotr(b + k2, 18) + c, mul);
}

std::uint64_t hash_len33to64(const char* s, std::size_t len) {
  // Hash the first and last 32 bytes as two 17-32-style halves, then
  // combine; every input byte feeds exactly one multiplicative mix, so
  // single-bit changes always propagate.
  const std::uint64_t mul = k2 + len * 2;
  const std::uint64_t a0 = load64(s) * k1;
  const std::uint64_t b0 = load64(s + 8);
  const std::uint64_t c0 = load64(s + 16) * mul;
  const std::uint64_t d0 = load64(s + 24) * k2;
  const std::uint64_t h0 =
      hash_len16(rotr(a0 + b0, 43) + rotr(c0, 30) + d0,
                 a0 + rotr(b0 + k2, 18) + c0, mul);

  const std::uint64_t a1 = load64(s + len - 32) * k1;
  const std::uint64_t b1 = load64(s + len - 24);
  const std::uint64_t c1 = load64(s + len - 16) * mul;
  const std::uint64_t d1 = load64(s + len - 8) * k2;
  const std::uint64_t h1 =
      hash_len16(rotr(a1 + b1, 43) + rotr(c1, 30) + d1,
                 a1 + rotr(b1 + k2, 18) + c1, mul);

  return hash128to64(h0 + len, h1 ^ k0);
}

struct U128 {
  std::uint64_t first, second;
};

// 56-byte rolling state update used by the >64-byte main loop.
U128 weak_hash_len32_with_seeds(std::uint64_t w, std::uint64_t x,
                                std::uint64_t y, std::uint64_t z,
                                std::uint64_t a, std::uint64_t b) {
  a += w;
  b = rotr(b + a + z, 21);
  const std::uint64_t c = a;
  a += x;
  a += y;
  b += rotr(a, 44);
  return {a + z, b + c};
}

U128 weak_hash_len32_with_seeds(const char* s, std::uint64_t a,
                                std::uint64_t b) {
  return weak_hash_len32_with_seeds(load64(s), load64(s + 8), load64(s + 16),
                                    load64(s + 24), a, b);
}

}  // namespace

std::uint64_t city_hash64(const void* data, std::size_t len) {
  const char* s = static_cast<const char*>(data);
  if (len <= 16) return hash_len0to16(s, len);
  if (len <= 32) return hash_len17to32(s, len);
  if (len <= 64) return hash_len33to64(s, len);

  // >64 bytes: 64-byte chunks with 56 bytes of rolling state.
  std::uint64_t x = load64(s + len - 40);
  std::uint64_t y = load64(s + len - 16) + load64(s + len - 56);
  std::uint64_t z =
      hash128to64(load64(s + len - 48) + len, load64(s + len - 24));
  U128 v = weak_hash_len32_with_seeds(s + len - 64, len, z);
  U128 w = weak_hash_len32_with_seeds(s + len - 32, y + k1, x);
  x = x * k1 + load64(s);

  // Round len down to a positive multiple of 64.
  std::size_t n = (len - 1) & ~static_cast<std::size_t>(63);
  do {
    x = rotr(x + y + v.first + load64(s + 8), 37) * k1;
    y = rotr(y + v.second + load64(s + 48), 42) * k1;
    x ^= w.second;
    y += v.first + load64(s + 40);
    z = rotr(z + w.first, 33) * k1;
    v = weak_hash_len32_with_seeds(s, v.second * k1, x + w.first);
    w = weak_hash_len32_with_seeds(s + 32, z + w.second, y + load64(s + 16));
    std::uint64_t t = z;
    z = x;
    x = t;
    s += 64;
    n -= 64;
  } while (n != 0);

  return hash128to64(hash128to64(v.first, w.first) + shift_mix(y) * k1 + z,
                     hash128to64(v.second, w.second) + x);
}

std::uint64_t city_hash64_seeded(const void* data, std::size_t len,
                                 std::uint64_t seed) {
  return hash128to64(city_hash64(data, len) - k2, seed);
}

}  // namespace sfa
