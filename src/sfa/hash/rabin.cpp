#include "sfa/hash/rabin.hpp"

#include <cstring>

#include "sfa/support/cpu.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#include <wmmintrin.h>
#define SFA_HAVE_PCLMUL_INTRIN 1
#endif

namespace sfa {

namespace gf2 {

void clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t& hi,
             std::uint64_t& lo) {
  hi = 0;
  lo = 0;
  // Shift-and-xor schoolbook multiply; only used for init-time constants and
  // as the reference in tests, so clarity beats speed here.
  for (int i = 0; i < 64; ++i) {
    if ((b >> i) & 1u) {
      lo ^= a << i;
      if (i != 0) hi ^= a >> (64 - i);
    }
  }
}

std::uint64_t mod128(std::uint64_t hi, std::uint64_t lo,
                     std::uint64_t poly_low) {
  // Reduce bit-by-bit from the top: x^64 == poly_low (mod P).
  for (int bit = 63; bit >= 0; --bit) {
    if ((hi >> bit) & 1u) {
      hi ^= 1ull << bit;
      // Subtract (x^64 + poly_low) * x^bit: the x^64+bit term was just
      // cleared; poly_low * x^bit straddles the hi/lo boundary.
      lo ^= poly_low << bit;
      if (bit != 0) hi ^= poly_low >> (64 - bit);
    }
  }
  return lo;
}

std::uint64_t barrett_mu_low(std::uint64_t poly_low) {
  // Long division of x^128 by P = x^64 + poly_low.  Remainder register r
  // tracks the current 64-bit window; quotient bit i (for x^i) is set when
  // the running remainder has its top bit set.
  //
  // Divide x^128: quotient has degree 64.  Bit 64 of the quotient is always
  // 1 (leading term), so we start from r = x^64 mod-step = poly_low and emit
  // the remaining 64 quotient bits.
  std::uint64_t r = poly_low;  // remainder after consuming the leading term
  std::uint64_t q = 0;
  for (int i = 63; i >= 0; --i) {
    const bool top = (r >> 63) & 1u;
    r <<= 1;
    if (top) {
      r ^= poly_low;
      q |= 1ull << i;
    }
  }
  return q;
}

}  // namespace gf2

RabinFingerprinter::RabinFingerprinter(std::uint64_t poly_low)
    : poly_low_(poly_low), have_pclmul_(cpu_features().pclmulqdq) {
  // T[b] = b(x) * x^64 mod P, computed as (b * x^56) advanced 8 steps.
  for (unsigned b = 0; b < 256; ++b) {
    std::uint64_t v = static_cast<std::uint64_t>(b) << 56;
    for (int step = 0; step < 8; ++step) {
      const bool top = (v >> 63) & 1u;
      v <<= 1;
      if (top) v ^= poly_low_;
    }
    table_[b] = v;
  }
  // x^128 mod P = (x^64 mod P)^2 mod P; x^64 mod P is poly_low itself.
  std::uint64_t hi, lo;
  gf2::clmul64(poly_low_, poly_low_, hi, lo);
  fold_k128_ = gf2::mod128(hi, lo, poly_low_);
  gf2::clmul64(fold_k128_, poly_low_, hi, lo);
  fold_k192_ = gf2::mod128(hi, lo, poly_low_);
  barrett_mu_lo_ = gf2::barrett_mu_low(poly_low_);
}

std::uint64_t RabinFingerprinter::hash_portable(const void* data,
                                                std::size_t len) const {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t f = 0;
  for (std::size_t i = 0; i < len; ++i)
    f = (f << 8) ^ p[i] ^ table_[f >> 56];
  return f;
}

#ifdef SFA_HAVE_PCLMUL_INTRIN
namespace {
inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return __builtin_bswap64(v);
}
}  // namespace

__attribute__((target("pclmul,sse4.1"))) std::uint64_t
RabinFingerprinter::hash_pclmul(const void* data, std::size_t len) const {
  if (len < 32) return hash_portable(data, len);
  const auto* p = static_cast<const std::uint8_t*>(data);
  const std::uint8_t* const end = p + len;

  // 128-bit accumulator A = A_hi*x^64 + A_lo, congruent to the message
  // prefix mod P.  Lane 0 = lo, lane 1 = hi.
  __m128i acc = _mm_set_epi64x(static_cast<long long>(load_be64(p)),
                               static_cast<long long>(load_be64(p + 8)));
  p += 16;

  const __m128i fold = _mm_set_epi64x(static_cast<long long>(fold_k192_),
                                      static_cast<long long>(fold_k128_));
  while (end - p >= 16) {
    // A' = A_hi*K192 ^ A_lo*K128 ^ B  (each product has degree <= 126).
    const __m128i hi_prod = _mm_clmulepi64_si128(acc, fold, 0x11);  // hi*K192
    const __m128i lo_prod = _mm_clmulepi64_si128(acc, fold, 0x00);  // lo*K128
    const __m128i block =
        _mm_set_epi64x(static_cast<long long>(load_be64(p)),
                       static_cast<long long>(load_be64(p + 8)));
    acc = _mm_xor_si128(_mm_xor_si128(hi_prod, lo_prod), block);
    p += 16;
  }

  // Barrett reduction of the 128-bit accumulator to A mod P.
  const std::uint64_t a_lo =
      static_cast<std::uint64_t>(_mm_cvtsi128_si64(acc));
  const std::uint64_t a_hi =
      static_cast<std::uint64_t>(_mm_extract_epi64(acc, 1));
  // q = hi64(A_hi * mu), with mu's implicit x^64 bit contributing A_hi.
  std::uint64_t c_hi, c_lo;
  {
    const __m128i prod = _mm_clmulepi64_si128(
        _mm_cvtsi64_si128(static_cast<long long>(a_hi)),
        _mm_cvtsi64_si128(static_cast<long long>(barrett_mu_lo_)), 0x00);
    c_lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(prod));
    c_hi = static_cast<std::uint64_t>(_mm_extract_epi64(prod, 1));
  }
  (void)c_lo;
  const std::uint64_t q = c_hi ^ a_hi;
  // r = low64(A ^ q*P); q*P's low half is low64(q * P_lo).
  std::uint64_t d_lo;
  {
    const __m128i prod = _mm_clmulepi64_si128(
        _mm_cvtsi64_si128(static_cast<long long>(q)),
        _mm_cvtsi64_si128(static_cast<long long>(poly_low_)), 0x00);
    d_lo = static_cast<std::uint64_t>(_mm_cvtsi128_si64(prod));
  }
  std::uint64_t f = a_lo ^ d_lo;

  // Tail bytes continue with the scalar recurrence.
  while (p != end) f = (f << 8) ^ *p++ ^ table_[f >> 56];
  return f;
}
#else
std::uint64_t RabinFingerprinter::hash_pclmul(const void* data,
                                              std::size_t len) const {
  return hash_portable(data, len);
}
#endif

std::uint64_t RabinFingerprinter::hash(const void* data,
                                       std::size_t len) const {
  return (have_pclmul_ && len >= 32) ? hash_pclmul(data, len)
                                     : hash_portable(data, len);
}

const RabinFingerprinter& default_rabin() {
  static const RabinFingerprinter fp;
  return fp;
}

std::uint64_t rabin_fingerprint(const void* data, std::size_t len) {
  return default_rabin().hash(data, len);
}

}  // namespace sfa
