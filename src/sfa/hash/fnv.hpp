// FNV-1a — the simple baseline hash in the fingerprint survey (E8).
#pragma once

#include <cstddef>
#include <cstdint>

namespace sfa {

/// 64-bit FNV-1a.  Slow (byte-serial) but trivially correct; it anchors the
/// low end of the throughput survey the way the paper's slowest codecs do.
inline std::uint64_t fnv1a64(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace sfa
