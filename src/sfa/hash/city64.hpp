// CityHash64-class 64-bit hash (from-scratch implementation).
//
// The paper selects CityHash as the fingerprint function for SFA states
// because it was the fastest hash in their survey (5.1 bytes/cycle) with a
// collision rate indistinguishable from Rabin fingerprints.  This is a
// faithful re-implementation of the CityHash64 construction (Pike & Alakuijala,
// Google, 2011): 8-byte little-endian lanes, 128-to-64-bit multiply mixing,
// a 64-byte chunked main loop with two 56-byte rolling states, and dedicated
// short-input paths.  Golden values are not guaranteed to match upstream
// CityHash; the library's tests assert distribution and collision properties
// instead, which is all SFA construction relies on.
#pragma once

#include <cstddef>
#include <cstdint>

namespace sfa {

/// Hash `len` bytes starting at `data`.
std::uint64_t city_hash64(const void* data, std::size_t len);

/// Seeded variant (used by the hash table tests to build independent hashes).
std::uint64_t city_hash64_seeded(const void* data, std::size_t len,
                                 std::uint64_t seed);

}  // namespace sfa
