#include "sfa/compress/registry.hpp"

#include "sfa/compress/deflate_like.hpp"
#include "sfa/compress/huffman.hpp"
#include "sfa/compress/lz77.hpp"
#include "sfa/compress/rle.hpp"
#include "sfa/support/timer.hpp"

namespace sfa {

namespace {

/// Identity codec: the plain-memory-copy baseline.
class StoreCodec final : public Codec {
 public:
  std::string_view name() const override { return "store"; }
  Bytes compress(ByteView input) const override {
    return Bytes(input.begin(), input.end());
  }
  Bytes decompress(ByteView input, std::size_t expected_size) const override {
    if (input.size() != expected_size)
      throw std::runtime_error("store: size mismatch");
    return Bytes(input.begin(), input.end());
  }
};

}  // namespace

const std::vector<const Codec*>& all_codecs() {
  static const StoreCodec store;
  static const RleCodec rle;
  static const Rle16Codec rle16;
  static const Lz77Codec lz77;
  static const HuffmanCodec huffman;
  static const DeflateLikeCodec deflate_like;
  static const std::vector<const Codec*> codecs = {
      &store, &rle, &rle16, &lz77, &huffman, &deflate_like};
  return codecs;
}

const Codec* find_codec(std::string_view name) {
  for (const Codec* c : all_codecs())
    if (c->name() == name) return c;
  return nullptr;
}

CodecEvaluation evaluate_codec(const Codec& codec,
                               const std::vector<Bytes>& samples) {
  CodecEvaluation ev;
  ev.name = std::string(codec.name());
  ev.roundtrip_ok = true;

  std::vector<Bytes> compressed;
  compressed.reserve(samples.size());

  WallTimer timer;
  for (const Bytes& s : samples) {
    ev.input_bytes += s.size();
    compressed.push_back(codec.compress(ByteView(s.data(), s.size())));
    ev.output_bytes += compressed.back().size();
  }
  const double comp_secs = timer.seconds();

  timer.reset();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Bytes round = codec.decompress(
        ByteView(compressed[i].data(), compressed[i].size()),
        samples[i].size());
    if (round != samples[i]) ev.roundtrip_ok = false;
  }
  const double decomp_secs = timer.seconds();

  ev.ratio = ev.output_bytes
                 ? static_cast<double>(ev.input_bytes) /
                       static_cast<double>(ev.output_bytes)
                 : 0.0;
  const double mib = static_cast<double>(ev.input_bytes) / (1024.0 * 1024.0);
  ev.compress_mb_s = comp_secs > 0 ? mib / comp_secs : 0;
  ev.decompress_mb_s = decomp_secs > 0 ? mib / decomp_secs : 0;
  return ev;
}

std::vector<CodecEvaluation> evaluate_all(const std::vector<Bytes>& samples) {
  std::vector<CodecEvaluation> out;
  for (const Codec* c : all_codecs()) out.push_back(evaluate_codec(*c, samples));
  return out;
}

}  // namespace sfa
