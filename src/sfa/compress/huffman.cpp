#include "sfa/compress/huffman.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "sfa/compress/lz77.hpp"  // varint helpers

namespace sfa {

namespace detail {

void huffman_code_lengths(const std::uint64_t freq[256],
                          std::uint8_t lengths[256], unsigned max_length) {
  std::fill(lengths, lengths + 256, 0);

  // Leaves present, sorted by ascending frequency (ties by symbol).
  std::vector<int> leaves;
  for (int s = 0; s < 256; ++s)
    if (freq[s] != 0) leaves.push_back(s);
  if (leaves.empty()) return;
  if (leaves.size() == 1) {
    lengths[leaves[0]] = 1;
    return;
  }
  std::sort(leaves.begin(), leaves.end(), [&](int a, int b) {
    return freq[a] != freq[b] ? freq[a] < freq[b] : a < b;
  });

  // Two-queue Huffman tree construction.
  struct Node {
    std::uint64_t weight;
    int left, right;  // -1/-1 for leaves
    int symbol;
  };
  std::vector<Node> nodes;
  nodes.reserve(leaves.size() * 2);
  for (int s : leaves) nodes.push_back({freq[s], -1, -1, s});

  std::size_t leaf_next = 0;                 // next unconsumed leaf
  std::vector<int> internal;                 // queue of internal node ids
  std::size_t internal_next = 0;
  const auto take_min = [&]() -> int {
    const bool have_leaf = leaf_next < leaves.size();
    const bool have_internal = internal_next < internal.size();
    if (have_leaf && (!have_internal ||
                      nodes[leaf_next].weight <=
                          nodes[internal[internal_next]].weight))
      return static_cast<int>(leaf_next++);
    return internal[internal_next++];
  };
  while ((leaves.size() - leaf_next) + (internal.size() - internal_next) > 1) {
    const int a = take_min();
    const int b = take_min();
    nodes.push_back({nodes[a].weight + nodes[b].weight, a, b, -1});
    internal.push_back(static_cast<int>(nodes.size() - 1));
  }
  const int root = internal.back();

  // Depth-first traversal assigns raw depths.
  std::vector<std::pair<int, unsigned>> stack{{root, 0}};
  std::vector<unsigned> raw(256, 0);
  unsigned deepest = 0;
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    if (nodes[id].left < 0) {
      raw[nodes[id].symbol] = std::max(1u, depth);
      deepest = std::max(deepest, std::max(1u, depth));
    } else {
      stack.push_back({nodes[id].left, depth + 1});
      stack.push_back({nodes[id].right, depth + 1});
    }
  }

  if (deepest <= max_length) {
    for (int s : leaves) lengths[s] = static_cast<std::uint8_t>(raw[s]);
    return;
  }

  // Length-limit: clamp, then restore the Kraft inequality by demoting
  // leaves (zlib-style), then hand lengths back out by frequency rank.
  std::vector<unsigned> bl_count(max_length + 2, 0);
  for (int s : leaves) ++bl_count[std::min(raw[s], max_length)];
  std::uint64_t kraft = 0;
  for (unsigned l = 1; l <= max_length; ++l)
    kraft += static_cast<std::uint64_t>(bl_count[l]) << (max_length - l);
  const std::uint64_t limit = 1ull << max_length;
  while (kraft > limit) {
    for (unsigned l = max_length - 1; l >= 1; --l) {
      if (bl_count[l] > 0) {
        --bl_count[l];
        ++bl_count[l + 1];
        kraft -= 1ull << (max_length - l - 1);
        break;
      }
    }
  }
  // Most frequent symbols get the shortest lengths.
  std::vector<int> by_freq = leaves;
  std::sort(by_freq.begin(), by_freq.end(), [&](int a, int b) {
    return freq[a] != freq[b] ? freq[a] > freq[b] : a < b;
  });
  std::size_t idx = 0;
  for (unsigned l = 1; l <= max_length; ++l)
    for (unsigned c = 0; c < bl_count[l]; ++c)
      lengths[by_freq[idx++]] = static_cast<std::uint8_t>(l);
}

void canonical_codes(const std::uint8_t lengths[256], std::uint16_t codes[256]) {
  unsigned bl_count[HuffmanCodec::kMaxCodeLength + 1] = {};
  for (int s = 0; s < 256; ++s) ++bl_count[lengths[s]];
  bl_count[0] = 0;
  std::uint16_t next_code[HuffmanCodec::kMaxCodeLength + 2] = {};
  std::uint16_t code = 0;
  for (unsigned l = 1; l <= HuffmanCodec::kMaxCodeLength; ++l) {
    code = static_cast<std::uint16_t>((code + bl_count[l - 1]) << 1);
    next_code[l] = code;
  }
  for (int s = 0; s < 256; ++s)
    codes[s] = lengths[s] ? next_code[lengths[s]]++ : 0;
}

namespace {

/// MSB-first bit writer (canonical codes append naturally).
class BitWriter {
 public:
  explicit BitWriter(Bytes& out) : out_(out) {}
  void write(std::uint32_t code, unsigned len) {
    acc_ = (acc_ << len) | code;
    bits_ += len;
    while (bits_ >= 8) {
      bits_ -= 8;
      out_.push_back(static_cast<std::uint8_t>(acc_ >> bits_));
    }
    total_ += len;
  }
  void flush() {
    if (bits_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_ << (8 - bits_)));
      bits_ = 0;
      acc_ = 0;
    }
  }
  std::uint64_t total_bits() const { return total_; }

 private:
  Bytes& out_;
  std::uint64_t acc_ = 0;
  unsigned bits_ = 0;
  std::uint64_t total_ = 0;
};

class BitReader {
 public:
  BitReader(ByteView in, std::size_t start, std::uint64_t nbits)
      : in_(in), pos_(start), remaining_(nbits) {}
  int next() {
    if (remaining_ == 0) return -1;
    if (bits_ == 0) {
      if (pos_ >= in_.size())
        throw std::runtime_error("huffman: truncated payload");
      acc_ = in_[pos_++];
      bits_ = 8;
    }
    --remaining_;
    --bits_;
    return (acc_ >> bits_) & 1;
  }

 private:
  ByteView in_;
  std::size_t pos_;
  std::uint64_t remaining_;
  std::uint8_t acc_ = 0;
  unsigned bits_ = 0;
};

}  // namespace
}  // namespace detail

Bytes HuffmanCodec::compress(ByteView input) const {
  std::uint64_t freq[256] = {};
  for (std::uint8_t b : input) ++freq[b];
  std::uint8_t lengths[256];
  std::uint16_t codes[256];
  detail::huffman_code_lengths(freq, lengths, kMaxCodeLength);
  detail::canonical_codes(lengths, codes);

  Bytes out;
  out.reserve(input.size() / 2 + 160);
  // Header: the 256 code lengths, either as raw nibbles (128 B) or
  // run-length coded (value, run) byte pairs — SFA states use few distinct
  // byte values, so the RLE form is typically a few dozen bytes and matters
  // for the paper's small-state compression ratios.
  Bytes rle_header;
  for (int s = 0; s < 256;) {
    const std::uint8_t v = lengths[s];
    int run = 1;
    while (s + run < 256 && run < 255 && lengths[s + run] == v) ++run;
    rle_header.push_back(v);
    rle_header.push_back(static_cast<std::uint8_t>(run));
    s += run;
  }
  if (rle_header.size() < 128) {
    out.push_back(1);  // RLE header marker
    detail::put_varint(out, rle_header.size());
    out.insert(out.end(), rle_header.begin(), rle_header.end());
  } else {
    out.push_back(0);  // raw nibble header
    for (int s = 0; s < 256; s += 2)
      out.push_back(
          static_cast<std::uint8_t>(lengths[s] | (lengths[s + 1] << 4)));
  }

  // Count payload bits, then emit.
  std::uint64_t payload_bits = 0;
  for (std::uint8_t b : input) payload_bits += lengths[b];
  detail::put_varint(out, payload_bits);

  detail::BitWriter writer(out);
  for (std::uint8_t b : input) writer.write(codes[b], lengths[b]);
  writer.flush();
  return out;
}

Bytes HuffmanCodec::decompress(ByteView input, std::size_t expected_size) const {
  if (input.empty()) throw std::runtime_error("huffman: empty stream");
  std::uint8_t lengths[256];
  std::size_t pos = 1;
  if (input[0] == 1) {
    const std::uint64_t rle_bytes = detail::get_varint(input, pos);
    if (rle_bytes % 2 != 0 || pos + rle_bytes > input.size())
      throw std::runtime_error("huffman: bad RLE header");
    int s = 0;
    for (std::uint64_t i = 0; i < rle_bytes; i += 2) {
      const std::uint8_t v = input[pos + i];
      const int run = input[pos + i + 1];
      if (v > kMaxCodeLength || run == 0 || s + run > 256)
        throw std::runtime_error("huffman: bad RLE header entry");
      for (int j = 0; j < run; ++j) lengths[s++] = v;
    }
    if (s != 256) throw std::runtime_error("huffman: short RLE header");
    pos += rle_bytes;
  } else if (input[0] == 0) {
    if (input.size() < 129)
      throw std::runtime_error("huffman: truncated header");
    for (int s = 0; s < 256; s += 2) {
      lengths[s] = input[1 + s / 2] & 0x0F;
      lengths[s + 1] = input[1 + s / 2] >> 4;
    }
    pos = 129;
  } else {
    throw std::runtime_error("huffman: bad header marker");
  }
  const std::uint64_t payload_bits = detail::get_varint(input, pos);

  // Canonical per-length decode tables.
  unsigned bl_count[kMaxCodeLength + 1] = {};
  for (int s = 0; s < 256; ++s) ++bl_count[lengths[s]];
  bl_count[0] = 0;
  std::uint16_t first_code[kMaxCodeLength + 1] = {};
  std::uint16_t base_index[kMaxCodeLength + 1] = {};
  {
    std::uint16_t code = 0, index = 0;
    for (unsigned l = 1; l <= kMaxCodeLength; ++l) {
      code = static_cast<std::uint16_t>((code + bl_count[l - 1]) << 1);
      first_code[l] = code;
      base_index[l] = index;
      index = static_cast<std::uint16_t>(index + bl_count[l]);
    }
  }
  // Symbols in canonical order: sorted by (length, symbol).
  std::vector<std::uint8_t> canonical_symbols;
  canonical_symbols.reserve(256);
  for (unsigned l = 1; l <= kMaxCodeLength; ++l)
    for (int s = 0; s < 256; ++s)
      if (lengths[s] == l)
        canonical_symbols.push_back(static_cast<std::uint8_t>(s));

  detail::BitReader reader(input, pos, payload_bits);
  Bytes out;
  out.reserve(expected_size);
  std::uint32_t code = 0;
  unsigned len = 0;
  for (;;) {
    const int bit = reader.next();
    if (bit < 0) break;
    code = (code << 1) | static_cast<std::uint32_t>(bit);
    ++len;
    if (len > kMaxCodeLength) throw std::runtime_error("huffman: bad code");
    const std::uint32_t offset = code - first_code[len];
    if (bl_count[len] != 0 && code >= first_code[len] &&
        offset < bl_count[len]) {
      out.push_back(canonical_symbols[base_index[len] + offset]);
      code = 0;
      len = 0;
    }
  }
  if (len != 0) throw std::runtime_error("huffman: dangling bits");
  if (out.size() != expected_size)
    throw std::runtime_error("huffman: size mismatch");
  return out;
}

}  // namespace sfa
