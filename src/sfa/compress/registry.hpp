// Codec registry + Squash-style evaluation harness (paper §III-C, E7).
//
// The paper ran the Squash benchmark's 43 codecs over sampled SFA states to
// pick a compressor.  This registry plays the same role for the from-scratch
// codecs in this library: it evaluates ratio and throughput per codec on a
// sample set and reports the paper-style table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sfa/compress/codec.hpp"

namespace sfa {

/// All registered codecs, including the "store" baseline (plain copy — the
/// yardstick the paper compares deflate's cost against).
const std::vector<const Codec*>& all_codecs();

/// Find a codec by name (nullptr if unknown).
const Codec* find_codec(std::string_view name);

struct CodecEvaluation {
  std::string name;
  double ratio = 0;            // uncompressed / compressed
  double compress_mb_s = 0;    // MiB/s over all samples
  double decompress_mb_s = 0;
  std::size_t input_bytes = 0;
  std::size_t output_bytes = 0;
  bool roundtrip_ok = false;
};

/// Compress + decompress every sample with `codec`, verifying the roundtrip.
CodecEvaluation evaluate_codec(const Codec& codec,
                               const std::vector<Bytes>& samples);

std::vector<CodecEvaluation> evaluate_all(const std::vector<Bytes>& samples);

}  // namespace sfa
