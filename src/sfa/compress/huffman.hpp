// Canonical Huffman coding over bytes.
//
// The entropy stage of the deflate-class pipeline.  The container format is
// self-describing:
//   [256 code lengths, 4-bit nibbles, 128 bytes]
//   [payload bit count : varint]
//   [payload bits, LSB-first]
// Code lengths are capped at 15 bits (zlib's limit), enforced with a
// Kraft-sum fix-up after tree construction.
#pragma once

#include "sfa/compress/codec.hpp"

namespace sfa {

class HuffmanCodec final : public Codec {
 public:
  static constexpr unsigned kMaxCodeLength = 15;

  std::string_view name() const override { return "huffman"; }
  Bytes compress(ByteView input) const override;
  Bytes decompress(ByteView input, std::size_t expected_size) const override;
};

namespace detail {

/// Compute length-capped canonical code lengths for the given frequency
/// table (exposed for tests).  Symbols with zero frequency get length 0.
void huffman_code_lengths(const std::uint64_t freq[256],
                          std::uint8_t lengths[256], unsigned max_length);

/// Assign canonical codes (LSB-first convention handled by the bit writer).
void canonical_codes(const std::uint8_t lengths[256], std::uint16_t codes[256]);

}  // namespace detail

}  // namespace sfa
