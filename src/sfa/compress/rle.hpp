// Byte-level run-length encoding.
//
// The paper observes that r500-style SFA states (dominated by the error
// sink) would compress well under plain RLE (§III-C); this codec exists to
// demonstrate exactly that in experiment E7.
#pragma once

#include "sfa/compress/codec.hpp"

namespace sfa {

/// Output is a sequence of (count, byte) pairs, count in 1..255.
class RleCodec final : public Codec {
 public:
  std::string_view name() const override { return "rle"; }
  Bytes compress(ByteView input) const override;
  Bytes decompress(ByteView input, std::size_t expected_size) const override;
};

/// 16-bit-word run-length encoding: (count:u8, word:u16le) triples, with a
/// trailing odd byte passed through verbatim.  SFA state cells are 16-bit
/// DFA-state ids, so sink-dominated states (the r500 case) are runs of one
/// *word*, invisible to byte-RLE but trivial here — this codec demonstrates
/// the paper's remark that RLE "will be able to produce similar results"
/// on r-pattern states.
class Rle16Codec final : public Codec {
 public:
  std::string_view name() const override { return "rle16"; }
  Bytes compress(ByteView input) const override;
  Bytes decompress(ByteView input, std::size_t expected_size) const override;
};

}  // namespace sfa
