#include "sfa/compress/deflate_like.hpp"

#include <stdexcept>

#include "sfa/compress/huffman.hpp"
#include "sfa/compress/lz77.hpp"

namespace sfa {

namespace {
constexpr std::uint8_t kStored = 0x00;
constexpr std::uint8_t kLzHuff = 0x01;
constexpr std::uint8_t kLzOnly = 0x02;  // entropy stage skipped (tiny input)

const Lz77Codec& lz77() {
  static const Lz77Codec codec;
  return codec;
}
const HuffmanCodec& huffman() {
  static const HuffmanCodec codec;
  return codec;
}
}  // namespace

Bytes DeflateLikeCodec::compress(ByteView input) const {
  const Bytes tokens = lz77().compress(input);
  const Bytes entropy = huffman().compress(tokens);

  // Pick the smallest of {LZ77+Huffman, LZ77-only, stored}.  On SFA-state-
  // sized inputs the Huffman table header sometimes outweighs its savings;
  // real deflate solves this with per-block stored/fixed modes, we solve it
  // with whole-message mode selection.
  Bytes packed;
  packed.push_back(kLzHuff);
  detail::put_varint(packed, tokens.size());
  packed.insert(packed.end(), entropy.begin(), entropy.end());

  if (tokens.size() + 1 < packed.size()) {
    packed.clear();
    packed.push_back(kLzOnly);
    packed.insert(packed.end(), tokens.begin(), tokens.end());
  }
  if (packed.size() >= input.size() + 1) {
    Bytes stored;
    stored.reserve(input.size() + 1);
    stored.push_back(kStored);
    stored.insert(stored.end(), input.begin(), input.end());
    return stored;
  }
  return packed;
}

Bytes DeflateLikeCodec::decompress(ByteView input,
                                   std::size_t expected_size) const {
  if (input.empty()) {
    if (expected_size == 0) return {};
    throw std::runtime_error("deflate-like: empty stream");
  }
  const std::uint8_t mode = input[0];
  if (mode == kStored) {
    if (input.size() - 1 != expected_size)
      throw std::runtime_error("deflate-like: stored size mismatch");
    return Bytes(input.begin() + 1, input.end());
  }
  if (mode == kLzOnly) {
    return lz77().decompress(ByteView(input.data() + 1, input.size() - 1),
                             expected_size);
  }
  if (mode != kLzHuff) throw std::runtime_error("deflate-like: bad header");
  std::size_t pos = 1;
  const std::uint64_t token_bytes = detail::get_varint(input, pos);
  const Bytes tokens = huffman().decompress(
      ByteView(input.data() + pos, input.size() - pos), token_bytes);
  return lz77().decompress(ByteView(tokens.data(), tokens.size()),
                           expected_size);
}

}  // namespace sfa
