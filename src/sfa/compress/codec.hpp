// Codec interface for in-memory compression of SFA states (paper §III-C).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace sfa {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// A lossless byte codec.  Implementations must be thread-safe for
/// concurrent calls (workers compress states in parallel).
class Codec {
 public:
  virtual ~Codec() = default;

  virtual std::string_view name() const = 0;

  virtual Bytes compress(ByteView input) const = 0;

  /// `expected_size` is the exact decompressed size (SFA states have a
  /// known, constant size, so the paper's scheme never needs to store it).
  /// Throws std::runtime_error on corrupt input or size mismatch.
  virtual Bytes decompress(ByteView input, std::size_t expected_size) const = 0;
};

}  // namespace sfa
