// LZ77 with hash-chain match finding.
//
// The dictionary stage of the deflate-class pipeline (paper §III-C found
// LZ77-based codecs, deflate in particular, to compress SFA states best —
// 17x–30x on PROSITE, 95x on r500).  This codec emits an un-entropy-coded
// token stream; DeflateLikeCodec wraps it in a Huffman layer.
//
// Token stream format (all varints are LEB128):
//   0x00 <len:varint> <len literal bytes>      literal run
//   0x01 <len:varint> <dist:varint>            match (len >= kMinMatch)
#pragma once

#include "sfa/compress/codec.hpp"

namespace sfa {

class Lz77Codec final : public Codec {
 public:
  static constexpr std::size_t kMinMatch = 4;
  static constexpr std::size_t kMaxMatch = 1 << 16;
  static constexpr std::size_t kWindow = 1 << 16;
  static constexpr unsigned kMaxChainLength = 64;

  std::string_view name() const override { return "lz77"; }
  Bytes compress(ByteView input) const override;
  Bytes decompress(ByteView input, std::size_t expected_size) const override;
};

namespace detail {
void put_varint(Bytes& out, std::uint64_t v);
std::uint64_t get_varint(ByteView in, std::size_t& pos);
}  // namespace detail

}  // namespace sfa
