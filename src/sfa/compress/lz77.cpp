#include "sfa/compress/lz77.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace sfa {

namespace detail {

void put_varint(Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(ByteView in, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (pos >= in.size()) throw std::runtime_error("varint: truncated");
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
    if (shift > 63) throw std::runtime_error("varint: overflow");
  }
}

}  // namespace detail

namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

inline std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline std::size_t match_length(const std::uint8_t* a, const std::uint8_t* b,
                                std::size_t limit) {
  std::size_t n = 0;
  while (n + 8 <= limit) {
    std::uint64_t wa, wb;
    std::memcpy(&wa, a + n, 8);
    std::memcpy(&wb, b + n, 8);
    const std::uint64_t diff = wa ^ wb;
    if (diff != 0)
      return n + static_cast<std::size_t>(__builtin_ctzll(diff) >> 3);
    n += 8;
  }
  while (n < limit && a[n] == b[n]) ++n;
  return n;
}

}  // namespace

Bytes Lz77Codec::compress(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  const std::size_t n = input.size();
  const std::uint8_t* data = input.data();

  // Hash chains: head[h] = most recent position with hash h; prev[i] = the
  // position before i in its chain.  kNoPos terminates chains.
  constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
  std::vector<std::uint32_t> head(kHashSize, kNoPos);
  std::vector<std::uint32_t> prev(n >= kMinMatch ? n : 0);

  std::size_t lit_start = 0;  // start of the pending literal run
  const auto flush_literals = [&](std::size_t end) {
    if (end == lit_start) return;
    out.push_back(0x00);
    detail::put_varint(out, end - lit_start);
    out.insert(out.end(), data + lit_start, data + end);
  };

  std::size_t i = 0;
  while (i + kMinMatch <= n) {
    const std::uint32_t h = hash4(data + i);
    std::uint32_t cand = head[h];

    std::size_t best_len = 0, best_dist = 0;
    const std::size_t limit = std::min(n - i, kMaxMatch);
    unsigned chain = kMaxChainLength;
    while (cand != kNoPos && chain-- != 0) {
      const std::size_t dist = i - cand;
      if (dist > kWindow) break;  // chain only gets older
      const std::size_t len = match_length(data + cand, data + i, limit);
      if (len > best_len) {
        best_len = len;
        best_dist = dist;
        if (len == limit) break;
      }
      cand = prev[cand];
    }

    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(0x01);
      detail::put_varint(out, best_len);
      detail::put_varint(out, best_dist);
      // Insert the matched positions into the chains so later matches can
      // reference the inside of this match; positions too close to the end
      // to form a 4-byte hash are skipped.
      const std::size_t match_end = i + best_len;
      const std::size_t hashable_end = std::min(match_end, n - kMinMatch + 1);
      while (i < hashable_end) {
        const std::uint32_t hh = hash4(data + i);
        prev[i] = head[hh];
        head[hh] = static_cast<std::uint32_t>(i);
        ++i;
      }
      i = match_end;
      lit_start = i;
      continue;
    }

    prev[i] = head[h];
    head[h] = static_cast<std::uint32_t>(i);
    ++i;
  }
  flush_literals(n);
  return out;
}

Bytes Lz77Codec::decompress(ByteView input, std::size_t expected_size) const {
  Bytes out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint8_t tag = input[pos++];
    if (tag == 0x00) {
      const std::uint64_t len = detail::get_varint(input, pos);
      if (pos + len > input.size())
        throw std::runtime_error("lz77: literal run past end");
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + len));
      pos += len;
    } else if (tag == 0x01) {
      const std::uint64_t len = detail::get_varint(input, pos);
      const std::uint64_t dist = detail::get_varint(input, pos);
      if (dist == 0 || dist > out.size())
        throw std::runtime_error("lz77: invalid match distance");
      // Byte-by-byte copy: overlapping matches (dist < len) are the RLE
      // case and must self-extend.
      std::size_t src = out.size() - dist;
      for (std::uint64_t j = 0; j < len; ++j) out.push_back(out[src + j]);
    } else {
      throw std::runtime_error("lz77: bad token tag");
    }
  }
  if (out.size() != expected_size)
    throw std::runtime_error("lz77: size mismatch");
  return out;
}

}  // namespace sfa
