// Deflate-class codec: LZ77 dictionary stage + canonical-Huffman entropy
// stage.  This is the codec class the paper's Squash survey found best for
// SFA states (17x–30x on PROSITE, 95x on r500) and the one its three-phase
// construction uses for in-memory compression (§III-C).
#pragma once

#include "sfa/compress/codec.hpp"

namespace sfa {

class DeflateLikeCodec final : public Codec {
 public:
  std::string_view name() const override { return "deflate-like"; }

  /// LZ77-tokenize, then Huffman-code the token stream.  A one-byte header
  /// selects between the huffman-wrapped form and a stored fallback for
  /// inputs the pipeline cannot shrink.
  Bytes compress(ByteView input) const override;
  Bytes decompress(ByteView input, std::size_t expected_size) const override;
};

}  // namespace sfa
