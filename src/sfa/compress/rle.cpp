#include "sfa/compress/rle.hpp"

#include <stdexcept>

namespace sfa {

Bytes RleCodec::compress(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 4 + 16);
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t b = input[i];
    std::size_t run = 1;
    while (run < 255 && i + run < input.size() && input[i + run] == b) ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(b);
    i += run;
  }
  return out;
}

Bytes RleCodec::decompress(ByteView input, std::size_t expected_size) const {
  if (input.size() % 2 != 0)
    throw std::runtime_error("rle: truncated stream");
  Bytes out;
  out.reserve(expected_size);
  for (std::size_t i = 0; i < input.size(); i += 2) {
    const std::size_t run = input[i];
    if (run == 0) throw std::runtime_error("rle: zero-length run");
    out.insert(out.end(), run, input[i + 1]);
  }
  if (out.size() != expected_size)
    throw std::runtime_error("rle: size mismatch");
  return out;
}

Bytes Rle16Codec::compress(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 8 + 16);
  const std::size_t words = input.size() / 2;
  std::size_t w = 0;
  while (w < words) {
    const std::uint8_t lo = input[w * 2], hi = input[w * 2 + 1];
    std::size_t run = 1;
    while (run < 255 && w + run < words && input[(w + run) * 2] == lo &&
           input[(w + run) * 2 + 1] == hi)
      ++run;
    out.push_back(static_cast<std::uint8_t>(run));
    out.push_back(lo);
    out.push_back(hi);
    w += run;
  }
  if (input.size() % 2 != 0) out.push_back(input.back());
  return out;
}

Bytes Rle16Codec::decompress(ByteView input, std::size_t expected_size) const {
  Bytes out;
  out.reserve(expected_size);
  const bool has_tail = expected_size % 2 != 0;
  if (has_tail && input.empty())
    throw std::runtime_error("rle16: missing tail byte");
  const std::size_t triples_end = has_tail ? input.size() - 1 : input.size();
  if (triples_end % 3 != 0) throw std::runtime_error("rle16: truncated");
  for (std::size_t i = 0; i < triples_end; i += 3) {
    const std::size_t run = input[i];
    if (run == 0) throw std::runtime_error("rle16: zero-length run");
    for (std::size_t j = 0; j < run; ++j) {
      out.push_back(input[i + 1]);
      out.push_back(input[i + 2]);
    }
  }
  if (has_tail) {
    if (input.empty()) throw std::runtime_error("rle16: missing tail byte");
    out.push_back(input.back());
  }
  if (out.size() != expected_size)
    throw std::runtime_error("rle16: size mismatch");
  return out;
}

}  // namespace sfa
