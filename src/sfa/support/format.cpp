#include "sfa/support/format.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

namespace sfa {

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string human_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), unit == 0 ? "%.0f %s" : "%.2f %s", v,
                kUnits[unit]);
  return buf;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != ',' &&
        c != '-' && c != '+' && c != 'x' && c != '%' && c != 'e' && c != ' ')
      return false;
  }
  return std::isdigit(static_cast<unsigned char>(s.front())) ||
         s.front() == '-' || s.front() == '+';
}
}  // namespace

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  std::ostringstream os;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < r.size() ? r[c] : "";
      const bool right = i > 0 && looks_numeric(cell);
      if (right)
        os << std::string(width[c] - cell.size(), ' ') << cell;
      else
        os << cell << std::string(width[c] - cell.size(), ' ');
      if (c + 1 != cols) os << "  ";
    }
    os << '\n';
    if (i == 0) {
      for (std::size_t c = 0; c < cols; ++c) {
        os << std::string(width[c], '-');
        if (c + 1 != cols) os << "  ";
      }
      os << '\n';
    }
  }
  return os.str();
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace sfa
