// Cache-line / SIMD-aligned storage helpers.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace sfa {

/// Destination alignment for SIMD loads/stores used by the transpose kernels.
inline constexpr std::size_t kSimdAlign = 64;

/// std::allocator drop-in that over-aligns every allocation; lets vectors of
/// transition-table cells be used directly by aligned SIMD loads.
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;

  // The non-type Align parameter defeats allocator_traits' automatic
  // rebinding; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// Pads a value to its own cache line to prevent false sharing between
/// per-thread counters (used by the contention instrumentation, E5).
template <typename T>
struct alignas(64) CachePadded {
  T value{};
};

}  // namespace sfa
