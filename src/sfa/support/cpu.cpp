#include "sfa/support/cpu.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define SFA_HAVE_CPUID 1
#endif

#if defined(__linux__)
#include <unistd.h>
#endif

namespace sfa {

namespace {

CpuFeatures probe_features() {
  CpuFeatures f;
#ifdef SFA_HAVE_CPUID
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.sse2 = (edx >> 26) & 1u;
    f.sse41 = (ecx >> 19) & 1u;
    f.sse42 = (ecx >> 20) & 1u;
    f.avx = (ecx >> 28) & 1u;
    f.pclmulqdq = (ecx >> 1) & 1u;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1u;
    f.bmi2 = (ebx >> 8) & 1u;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = probe_features();
  return f;
}

unsigned hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

std::string cpu_model_name() {
#ifdef SFA_HAVE_CPUID
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000000u, &eax, &ebx, &ecx, &edx) && eax >= 0x80000004u) {
    std::array<unsigned, 12> words{};
    for (unsigned leaf = 0; leaf < 3; ++leaf) {
      __get_cpuid(0x80000002u + leaf, &words[leaf * 4 + 0], &words[leaf * 4 + 1],
                  &words[leaf * 4 + 2], &words[leaf * 4 + 3]);
    }
    char name[49] = {};
    std::memcpy(name, words.data(), 48);
    std::string s(name);
    // Trim leading/trailing blanks that some vendors pad with.
    const auto b = s.find_first_not_of(' ');
    const auto e = s.find_last_not_of(' ');
    if (b == std::string::npos) return "unknown";
    return s.substr(b, e - b + 1);
  }
#endif
  return "unknown";
}

std::uint64_t total_memory_bytes() {
#if defined(__linux__)
  const long pages = sysconf(_SC_PHYS_PAGES);
  const long page = sysconf(_SC_PAGE_SIZE);
  if (pages > 0 && page > 0)
    return static_cast<std::uint64_t>(pages) * static_cast<std::uint64_t>(page);
#endif
  return 0;
}

std::size_t cache_line_size() {
#if defined(__linux__)
  const long sz = sysconf(_SC_LEVEL1_DCACHE_LINESIZE);
  if (sz > 0) return static_cast<std::size_t>(sz);
#endif
  return 64;
}

std::string compiler_version() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string cpu_governor() {
#if defined(__linux__)
  std::ifstream in("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (in) {
    std::string g;
    std::getline(in, g);
    return g;
  }
#endif
  return {};
}

std::string platform_summary() {
  const CpuFeatures& f = cpu_features();
  std::ostringstream os;
  os << "CPU:              " << cpu_model_name() << '\n'
     << "Hardware threads: " << hardware_threads() << '\n'
     << "Cache line:       " << cache_line_size() << " B\n"
     << "Memory:           " << (total_memory_bytes() >> 20) << " MiB\n"
     << "ISA:              "
     << (f.sse2 ? "sse2 " : "") << (f.sse41 ? "sse4.1 " : "")
     << (f.sse42 ? "sse4.2 " : "") << (f.avx ? "avx " : "")
     << (f.avx2 ? "avx2 " : "") << (f.pclmulqdq ? "pclmulqdq " : "")
     << (f.bmi2 ? "bmi2" : "");
  return os.str();
}

}  // namespace sfa
