#include "sfa/support/numa.hpp"

#include <atomic>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__linux__)
#include <sched.h>
#include <unistd.h>
#define SFA_HAVE_AFFINITY 1
#endif

namespace sfa {

namespace {

#if defined(__linux__)
/// Parse a sysfs cpulist ("0-3,8-11") into cpu numbers.
std::vector<unsigned> parse_cpulist(const std::string& list) {
  std::vector<unsigned> cpus;
  std::istringstream is(list);
  std::string range;
  while (std::getline(is, range, ',')) {
    if (range.empty()) continue;
    const auto dash = range.find('-');
    const unsigned lo =
        static_cast<unsigned>(std::strtoul(range.c_str(), nullptr, 10));
    const unsigned hi =
        dash == std::string::npos
            ? lo
            : static_cast<unsigned>(
                  std::strtoul(range.c_str() + dash + 1, nullptr, 10));
    for (unsigned c = lo; c <= hi && c - lo < 4096; ++c) cpus.push_back(c);
  }
  return cpus;
}
#endif

NumaTopology probe_topology() {
  NumaTopology t;
#if defined(__linux__)
  std::ifstream online("/sys/devices/system/node/online");
  if (!online) return t;
  std::string list;
  std::getline(online, list);
  const std::vector<unsigned> ids = parse_cpulist(list);
  if (ids.empty()) return t;
  for (const unsigned id : ids) {
    const std::string base =
        "/sys/devices/system/node/node" + std::to_string(id);
    std::ifstream cpulist(base + "/cpulist");
    if (!cpulist) continue;
    std::string cpus;
    std::getline(cpulist, cpus);
    NumaNode node;
    node.id = id;
    node.cpus = parse_cpulist(cpus);
    if (!node.cpus.empty()) t.nodes.push_back(std::move(node));
  }
  if (t.nodes.empty()) return t;
  t.available = true;
  // Distance matrix: one whitespace-separated row per node.  All-or-nothing
  // so consumers never see a ragged matrix.
  for (const NumaNode& node : t.nodes) {
    std::ifstream dist("/sys/devices/system/node/node" +
                       std::to_string(node.id) + "/distance");
    if (!dist) {
      t.distance.clear();
      break;
    }
    std::vector<unsigned> row;
    unsigned d = 0;
    while (dist >> d) row.push_back(d);
    if (row.size() != t.nodes.size()) {
      t.distance.clear();
      break;
    }
    t.distance.push_back(std::move(row));
  }
#endif
  return t;
}

std::atomic<int> g_process_pin_mode{static_cast<int>(PinMode::kNone)};

}  // namespace

const char* pin_mode_name(PinMode m) {
  switch (m) {
    case PinMode::kNone: return "none";
    case PinMode::kSocket: return "socket";
  }
  return "?";
}

bool parse_pin_mode(const std::string& name, PinMode& out) {
  if (name == "none") {
    out = PinMode::kNone;
    return true;
  }
  if (name == "socket") {
    out = PinMode::kSocket;
    return true;
  }
  return false;
}

const NumaTopology& numa_topology() {
  static const NumaTopology t = probe_topology();
  return t;
}

bool pin_current_thread_to_node(unsigned node) {
#ifdef SFA_HAVE_AFFINITY
  const NumaTopology& t = numa_topology();
  if (!t.available || node >= t.nodes.size()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const unsigned cpu : t.nodes[node].cpus)
    if (cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)node;
  return false;
#endif
}

bool unpin_current_thread() {
#ifdef SFA_HAVE_AFFINITY
  cpu_set_t set;
  CPU_ZERO(&set);
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  for (long cpu = 0; cpu < n && cpu < CPU_SETSIZE; ++cpu)
    CPU_SET(static_cast<int>(cpu), &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  return false;
#endif
}

bool apply_pin(PinMode mode, unsigned worker_index) {
  if (mode == PinMode::kNone) {
    unpin_current_thread();
    return false;
  }
  const NumaTopology& t = numa_topology();
  if (!t.available || t.nodes.empty()) return false;
  const unsigned node =
      worker_index % static_cast<unsigned>(t.nodes.size());
  if (!pin_current_thread_to_node(node)) return false;
  // First-touch arena warm-up: with the thread now bound to its socket,
  // touching fresh pages makes the kernel back them node-local, so the
  // worker's scratch (and anything it allocates next) stays on-socket.
  static thread_local std::vector<char> scratch;
  if (scratch.empty()) {
    scratch.resize(256 * 1024);
    for (std::size_t i = 0; i < scratch.size(); i += 4096) scratch[i] = 1;
  }
  return true;
}

void set_process_pin_mode(PinMode mode) {
  g_process_pin_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

PinMode process_pin_mode() {
  return static_cast<PinMode>(
      g_process_pin_mode.load(std::memory_order_relaxed));
}

}  // namespace sfa
