// Small text-formatting helpers shared by the benchmark harnesses so every
// experiment prints consistent, paper-style tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sfa {

/// "12,345,678" — thousands separators, as in the paper's Table II.
std::string with_commas(std::uint64_t v);

/// "1.23 GiB" / "512 MiB" style human-readable byte counts.
std::string human_bytes(std::uint64_t bytes);

/// Fixed-point formatting with the given number of decimals.
std::string fixed(double v, int decimals);

/// Minimal monospace table printer: pads each column to its widest cell,
/// right-aligning numeric-looking cells.  rows[0] is the header.
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Median of a vector (copies + sorts; fine for bench-sized data).
double median_of(std::vector<double> v);

}  // namespace sfa
