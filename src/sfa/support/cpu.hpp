// CPU feature detection and host characterization.
//
// The SIMD kernels (sfa/simd) and the PCLMUL Rabin-fingerprint path
// (sfa/hash) dispatch at runtime on the features reported here, so the
// library runs correctly on hosts without AVX2/PCLMUL.
#pragma once

#include <cstdint>
#include <string>

namespace sfa {

/// Instruction-set features relevant to this library, probed via CPUID.
struct CpuFeatures {
  bool sse2 = false;
  bool sse41 = false;
  bool sse42 = false;
  bool avx = false;
  bool avx2 = false;
  bool pclmulqdq = false;
  bool bmi2 = false;
};

/// Probe the executing CPU once; subsequent calls return the cached result.
const CpuFeatures& cpu_features();

/// Number of hardware threads the OS exposes to this process (>= 1).
unsigned hardware_threads();

/// Best-effort model-name string from CPUID brand leaves (e.g. "AMD EPYC ...").
std::string cpu_model_name();

/// Total physical memory in bytes (0 if unknown).
std::uint64_t total_memory_bytes();

/// Cache line size in bytes (64 if it cannot be determined).
std::size_t cache_line_size();

/// Compiler name + version this binary was built with ("clang 17.0.6",
/// "gcc 13.2.0", or "unknown").
std::string compiler_version();

/// Current cpufreq governor of cpu0 ("performance", "powersave", ...);
/// empty when sysfs is not readable (non-Linux, containers, VMs).  Bench
/// results recorded under a non-performance governor are suspect, so the
/// bench host metadata records it.
std::string cpu_governor();

/// Multi-line human-readable platform description (used by bench_table1).
std::string platform_summary();

}  // namespace sfa
