// NUMA topology probing and worker pinning.
//
// The paper's platform is a 4-socket Westmere-EX — exactly the kind of host
// where a chunk scanned by a worker on the wrong socket pays remote-memory
// latency on every delta-table lookup.  This header exposes:
//
//   - the host's NUMA topology (nodes, cpus per node, distance matrix),
//     parsed once from /sys/devices/system/node and cached — also exported
//     into the bench host-metadata block so scaling results are
//     interpretable across machines;
//   - thread pinning primitives over sched_setaffinity, compiled to no-ops
//     where unavailable (non-Linux);
//   - the process-wide PinMode policy (`--pin {none,socket}`) consumed by
//     the WorkerPool and the parallel builder's thread team.
//
// Pinning is deliberately coarse: kSocket binds worker w to ALL cpus of
// node (w mod nodes), letting the OS schedule within the socket while
// keeping the worker's first-touch allocations node-local.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sfa {

enum class PinMode : std::uint8_t {
  kNone = 0,
  kSocket = 1,
};

const char* pin_mode_name(PinMode m);

/// Parse a CLI spelling ("none", "socket").  Returns false on an unknown
/// name, leaving `out` untouched.
bool parse_pin_mode(const std::string& name, PinMode& out);

struct NumaNode {
  unsigned id = 0;
  std::vector<unsigned> cpus;
};

struct NumaTopology {
  /// False when /sys/devices/system/node is unreadable (non-Linux,
  /// restricted containers) — every pinning call is then a no-op.
  bool available = false;
  std::vector<NumaNode> nodes;
  /// distance[i][j] = ACPI SLIT distance from nodes[i] to nodes[j]
  /// (10 = local).  Empty when the per-node distance files are unreadable.
  std::vector<std::vector<unsigned>> distance;
};

/// Probe once; subsequent calls return the cached result.
const NumaTopology& numa_topology();

/// Bind the calling thread to every cpu of `node` (an index into
/// numa_topology().nodes).  Returns false when topology or affinity calls
/// are unavailable, or the index is out of range.
bool pin_current_thread_to_node(unsigned node);

/// Clear the calling thread's affinity mask (back to all cpus).
bool unpin_current_thread();

/// Apply `mode` to the calling thread given its worker index: kSocket pins
/// to node (worker mod nodes) and touches a small per-thread scratch so the
/// first-touch pages land node-local; kNone restores the full mask.
/// Returns true when the thread ended up pinned.
bool apply_pin(PinMode mode, unsigned worker_index);

/// Process-wide pin policy for subsystems that spawn their own teams (the
/// parallel SFA builder).  The scan-side WorkerPool carries its own copy so
/// tests can differ; the CLI sets both from `--pin`.
void set_process_pin_mode(PinMode mode);
PinMode process_pin_mode();

}  // namespace sfa
