// Wall-clock and cycle-accurate timing.
//
// The paper reports hash throughput in bytes per CPU cycle (measured with
// PAPI).  PAPI is not a dependency here; we read the TSC directly and
// calibrate it against CLOCK_MONOTONIC once, which is accurate on all
// constant-TSC x86 parts (every CPU the paper targets).
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define SFA_HAVE_RDTSC 1
#endif

namespace sfa {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Serializing timestamp-counter read (0 when the ISA has no TSC).
inline std::uint64_t read_tsc() {
#ifdef SFA_HAVE_RDTSC
  unsigned aux;
  return __rdtscp(&aux);
#else
  return 0;
#endif
}

/// Measured TSC frequency in Hz (cached after the first call; 0 if no TSC).
inline double tsc_hz() {
  static const double hz = [] {
#ifdef SFA_HAVE_RDTSC
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t c0 = read_tsc();
    // 20 ms calibration window: plenty for ~0.1% accuracy.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(20)) {
    }
    const std::uint64_t c1 = read_tsc();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return static_cast<double>(c1 - c0) / dt;
#else
    return 0.0;
#endif
  }();
  return hz;
}

}  // namespace sfa
