// Deterministic, seedable PRNGs used throughout the library.
//
// All workload generators (synthetic PROSITE patterns, r500 strings, random
// inputs for property tests) draw from these generators so every experiment
// is reproducible from its seed.
#pragma once

#include <cstdint>

namespace sfa {

/// SplitMix64 — used to expand a single seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    // 128-bit multiply keeps the bias negligible for our bounds (< 2^32).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return unit() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace sfa
