#include "sfa/serve/sfa_cache.hpp"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <utility>

#include "sfa/core/serialize.hpp"
#include "sfa/obs/metrics.hpp"

namespace sfa::serve {

namespace {

std::uint64_t dfa_bytes(const Dfa& dfa) {
  return static_cast<std::uint64_t>(dfa.size()) * dfa.num_symbols() *
             sizeof(Dfa::StateId) +
         dfa.size();
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

SfaCache::Entry::Entry(std::uint64_t fp, Dfa d, std::optional<Sfa> s)
    : fingerprint(fp), dfa(std::move(d)), sfa(std::move(s)) {
  bytes = dfa_bytes(dfa);
  if (sfa) bytes += sfa->table_bytes() + sfa->mapping_store_bytes();
}

const ReachTable& SfaCache::Entry::reach_table() const {
  std::call_once(reach_once_, [this] { reach_ = compute_reach_table(dfa); });
  return reach_;
}

SfaCache::SfaCache(SfaCacheOptions options) : options_(std::move(options)) {
  if (!options_.disk_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.disk_dir, ec);
  }
}

std::string SfaCache::disk_path(std::uint64_t fingerprint) const {
  if (options_.disk_dir.empty()) return {};
  return options_.disk_dir + "/" + fingerprint_hex(fingerprint) + ".sfa";
}

SfaCache::EntryPtr SfaCache::find(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(fingerprint);
  if (it == map_.end()) return nullptr;
  touch_locked(it->second, fingerprint);
  ++stats_.hits;
  obs::Registry::instance().counter("sfa.serve.cache_hits").inc();
  return it->second.entry;
}

SfaCache::EntryPtr SfaCache::get_or_build(
    std::uint64_t fingerprint, const std::function<Dfa()>& compile_dfa,
    const std::function<std::optional<Sfa>(const Dfa&)>& build_sfa) {
  if (EntryPtr hit = find(fingerprint)) return hit;

  // Memory miss.  Builds run unlocked: concurrent requests for the same
  // fingerprint may both build, but insert_locked keeps the first publish
  // and the loser's copy is dropped — correctness over build dedup.
  std::optional<Sfa> from_disk;
  const std::string path = disk_path(fingerprint);
  if (!path.empty()) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      try {
        from_disk = load_sfa_file(path);
      } catch (const std::exception&) {
        from_disk.reset();  // stale or truncated image: rebuild below
      }
    }
  }

  Dfa dfa = compile_dfa();
  if (from_disk && (from_disk->num_symbols() != dfa.num_symbols() ||
                    from_disk->dfa_states() != dfa.size()))
    from_disk.reset();  // image does not fit this pattern set: rebuild

  const bool disk_hit = from_disk.has_value();
  std::optional<Sfa> sfa =
      disk_hit ? std::move(from_disk) : build_sfa(dfa);
  if (sfa && sfa->table_layout() != options_.table_layout)
    sfa->convert_table_layout(options_.table_layout);

  if (sfa && !disk_hit && !path.empty()) {
    try {
      save_sfa_file(*sfa, path);
    } catch (const std::exception&) {
      // Persistence is best-effort; the in-memory entry still serves.
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (disk_hit)
    ++stats_.disk_hits;
  else
    ++stats_.misses;
  return insert_locked(fingerprint, std::move(dfa), std::move(sfa));
}

SfaCache::EntryPtr SfaCache::insert_locked(std::uint64_t fingerprint, Dfa dfa,
                                           std::optional<Sfa> sfa) {
  auto it = map_.find(fingerprint);
  if (it != map_.end()) {  // lost a build race: keep the published entry
    touch_locked(it->second, fingerprint);
    return it->second.entry;
  }
  auto entry =
      std::make_shared<Entry>(fingerprint, std::move(dfa), std::move(sfa));
  if (options_.memory_budget_bytes != 0 &&
      entry->bytes > options_.memory_budget_bytes) {
    // Larger than the whole budget: serve it, never cache it — the
    // resident total must not exceed the cap even transiently.
    ++stats_.oversize_rejects;
    return entry;
  }
  evict_until_fits_locked(entry->bytes);
  lru_.push_front(fingerprint);
  stats_.resident_bytes += entry->bytes;
  ++stats_.insertions;
  map_.emplace(fingerprint, Slot{entry, lru_.begin()});
  return entry;
}

void SfaCache::touch_locked(Slot& slot, std::uint64_t fingerprint) {
  lru_.erase(slot.lru_pos);
  lru_.push_front(fingerprint);
  slot.lru_pos = lru_.begin();
}

void SfaCache::evict_until_fits_locked(std::uint64_t incoming_bytes) {
  if (options_.memory_budget_bytes == 0) return;
  while (!lru_.empty() && stats_.resident_bytes + incoming_bytes >
                              options_.memory_budget_bytes) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim);
    stats_.resident_bytes -= it->second.entry->bytes;
    map_.erase(it);
    ++stats_.evictions;
    obs::Registry::instance().counter("sfa.serve.cache_evictions").inc();
  }
}

SfaCacheStats SfaCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  SfaCacheStats out = stats_;
  out.entries = map_.size();
  return out;
}

void SfaCache::corrupt_entry_for_test(std::uint64_t victim_fingerprint,
                                      std::uint64_t donor_fingerprint) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto victim = map_.find(victim_fingerprint);
  auto donor = map_.find(donor_fingerprint);
  if (victim == map_.end() || donor == map_.end())
    throw std::invalid_argument("corrupt_entry_for_test: both entries must be resident");
  stats_.resident_bytes -= victim->second.entry->bytes;
  stats_.resident_bytes += donor->second.entry->bytes;
  victim->second.entry = donor->second.entry;
}

}  // namespace sfa::serve
