#include "sfa/serve/serve_stats.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "sfa/core/scan/executor.hpp"
#include "sfa/obs/json.hpp"
#include "sfa/obs/stats_export.hpp"

namespace sfa::serve {

double LatencyRecorder::percentile_ms(double q) const {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::min(1.0, std::max(0.0, q));
  const std::size_t rank = std::min(
      samples_.size() - 1,
      static_cast<std::size_t>(std::ceil(clamped * samples_.size())) == 0
          ? 0
          : static_cast<std::size_t>(std::ceil(clamped * samples_.size())) - 1);
  return samples_[rank];
}

double LatencyRecorder::mean_ms() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

void write_serve_stats_json(obs::JsonWriter& w, const ServiceStats& stats,
                            const ServeRunInfo& run) {
  w.begin_object();
  w.kv("schema", "sfa-serve-stats/1");
  w.key("host");
  obs::write_host_info_json(w);
  w.kv("requests", stats.requests);
  w.kv("batches", stats.batches);
  w.kv("failed_requests", stats.failed_requests);
  w.kv("registered_sets", stats.registered_sets);
  w.kv("cache_hits", stats.cache.hits);
  w.kv("cache_disk_hits", stats.cache.disk_hits);
  w.kv("cache_misses", stats.cache.misses);
  w.kv("cache_insertions", stats.cache.insertions);
  w.kv("cache_evictions", stats.cache.evictions);
  w.kv("cache_oversize_rejects", stats.cache.oversize_rejects);
  w.kv("cache_resident_bytes", stats.cache.resident_bytes);
  w.kv("cache_entries", stats.cache.entries);
  w.kv("pool_workers", std::uint64_t{stats.pool.pool_workers});
  w.kv("pool_dispatches", stats.pool.pool_dispatches);
  w.kv("pool_wakeups", stats.pool.pool_wakeups);
  w.kv("pool_steals", stats.pool.pool_steals);
  w.kv("scheduler", sched::policy_name(scan::default_scheduler()));
  if (run.has_latency) {
    w.kv("p50_latency_ms", run.p50_ms);
    w.kv("p99_latency_ms", run.p99_ms);
    w.kv("mean_latency_ms", run.mean_ms);
    w.kv("requests_per_sec", run.requests_per_sec);
    w.kv("matches_per_sec", run.matches_per_sec);
    w.kv("symbols_per_sec", run.symbols_per_sec);
    w.kv("elapsed_seconds", run.elapsed_seconds);
    w.kv("total_matches", run.total_matches);
    w.kv("total_symbols", run.total_symbols);
  }
  w.end_object();
}

void write_serve_stats_json_file(const std::string& path,
                                 const ServiceStats& stats,
                                 const ServeRunInfo& run) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("cannot write " + path);
  obs::JsonWriter w(os);
  write_serve_stats_json(w, stats, run);
  os << '\n';
  if (!os.good()) throw std::runtime_error("short write: " + path);
}

}  // namespace sfa::serve
