// PatternRegistry — the compilation front end of the matching service
// (docs/ARCHITECTURE.md, service layer).
//
// The paper's headline workload is 1250 PROSITE patterns over protein
// corpora; a service answering "which of my patterns hit this input"
// compiles a whole pattern SET into one automaton and matches it once.
// The registry owns that front end:
//
//   * each member pattern compiles to a minimal match-anywhere DFA
//     (PROSITE via the prosite parser, regex via compile_pattern, literals
//     via a KMP-style single-word Aho–Corasick export),
//   * a set compiles to the minimized union of its members
//     (automata/product.cpp balanced pairwise composition), so the union
//     DFA accepts at position p iff some member accepts at p,
//   * literal-only sets additionally get a classic Aho–Corasick automaton
//     — the multi-literal baseline the fuzz suite differentials against,
//   * every set has a canonical Rabin fingerprint (order-independent,
//     syntax-aware) — the SfaCache key, after Jung/Burgstaller/Blieberger's
//     fingerprint-keyed SDFA caching.
//
// The registry is stateless apart from its alphabet: compilation results
// are owned by the caller (the SfaCache holds the long-lived ones).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfa/automata/alphabet.hpp"
#include "sfa/automata/dfa.hpp"
#include "sfa/classic/aho_corasick.hpp"

namespace sfa::serve {

enum class PatternSyntax {
  kProsite,  // PROSITE motif, amino-acid alphabet semantics
  kRegex,    // library regex syntax over the registry alphabet
  kLiteral,  // exact substring (no metacharacters)
};

const char* pattern_syntax_name(PatternSyntax s);

/// One member of a pattern set.  `id` is caller-chosen (PROSITE accession,
/// rule name, ...) and is not part of the fingerprint — two sets with the
/// same patterns under different ids share one cache entry.
struct PatternSpec {
  std::string id;
  PatternSyntax syntax = PatternSyntax::kLiteral;
  std::string text;
};

class PatternRegistry {
 public:
  explicit PatternRegistry(const Alphabet& alphabet = Alphabet::amino())
      : alphabet_(&alphabet) {}

  const Alphabet& alphabet() const { return *alphabet_; }

  /// Canonical fingerprint of a pattern set: members are sorted by
  /// (syntax, text) and hashed with the Rabin fingerprinter, so the key is
  /// independent of member order and duplicate members collapse.
  std::uint64_t fingerprint(const std::vector<PatternSpec>& set) const;

  /// Minimal complete match-anywhere DFA of one member.
  Dfa compile_member(const PatternSpec& spec) const;

  /// Minimized union DFA of the whole set: accepts at a position iff some
  /// member accepts there.  Throws std::invalid_argument on an empty set.
  Dfa compile_union(const std::vector<PatternSpec>& set) const;

  /// True when every member is a kLiteral — the sets eligible for the
  /// Aho–Corasick baseline path.
  static bool all_literal(const std::vector<PatternSpec>& set);

  /// Classic Aho–Corasick automaton over a literal-only set (throws
  /// std::invalid_argument when a member is not a literal).
  AhoCorasick build_aho_corasick(const std::vector<PatternSpec>& set) const;

 private:
  const Alphabet* alphabet_;
};

}  // namespace sfa::serve
