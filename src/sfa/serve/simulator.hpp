// Heavy-traffic simulator core (bench_serve and `sfa serve` share it).
//
// Open-loop load generation: request arrival times are drawn up front from
// a seeded exponential inter-arrival process (rate λ), so the generator
// does NOT slow down when the service lags — queueing delay shows up in
// the measured latency exactly as it would for real users.  The service is
// driven in batches: all arrived-but-unserved requests (up to max_batch)
// go into one submit_batch call, and a request's latency is
// (batch completion − its arrival).  rate 0 degenerates to closed-loop
// back-to-back batches (latency = pure service time).
//
// The simulator owns timing and accounting only; the caller supplies the
// request stream via make_request(i) — that is where pattern-set churn and
// input-class choice live (bench_serve plugs in the harness input-class
// generators; the CLI uses seeded random text).
#pragma once

#include <cstdint>
#include <functional>

#include "sfa/serve/match_service.hpp"
#include "sfa/serve/serve_stats.hpp"

namespace sfa::serve {

struct SimOptions {
  std::uint64_t seed = 2017;
  std::size_t requests = 256;
  std::size_t max_batch = 16;
  /// Mean arrivals per second of the open-loop process; 0 = closed loop.
  double arrival_rate_per_sec = 0;
};

struct SimResult {
  ServeRunInfo run;
  std::uint64_t accepted = 0;  // responses that reported a match
  std::uint64_t failed = 0;    // responses with !ok
};

/// Drive `service` with options.requests requests from make_request(i).
/// Inputs referenced by returned requests must stay alive until the call
/// returns.
SimResult run_simulation(
    MatchService& service, const SimOptions& options,
    const std::function<MatchRequest(std::size_t)>& make_request);

}  // namespace sfa::serve
