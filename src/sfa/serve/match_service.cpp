#include "sfa/serve/match_service.hpp"

#include <algorithm>
#include <exception>
#include <unordered_set>
#include <utility>

#include "sfa/core/lazy_matcher.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/engine.hpp"
#include "sfa/core/scan/tasks.hpp"
#include "sfa/obs/metrics.hpp"
#include "sfa/obs/trace.hpp"
#include "sfa/support/cpu.hpp"

namespace sfa::serve {

const char* engine_choice_name(EngineChoice e) {
  switch (e) {
    case EngineChoice::kEager: return "eager";
    case EngineChoice::kLazy: return "lazy";
    case EngineChoice::kSpeculative: return "speculative";
    case EngineChoice::kNarrowed: return "narrowed";
  }
  return "?";
}

const char* task_kind_name(TaskKind t) {
  switch (t) {
    case TaskKind::kAccept: return "accept";
    case TaskKind::kCount: return "count";
    case TaskKind::kFindFirst: return "find_first";
    case TaskKind::kFindAll: return "find_all";
  }
  return "?";
}

namespace {

scan::EngineId engine_id_of(EngineChoice e) {
  switch (e) {
    case EngineChoice::kEager: return scan::EngineId::kEager;
    case EngineChoice::kLazy: return scan::EngineId::kLazy;
    case EngineChoice::kSpeculative: return scan::EngineId::kSpeculative;
    case EngineChoice::kNarrowed: return scan::EngineId::kNarrowed;
  }
  return scan::EngineId::kEager;
}

/// Run one scan-substrate engine through the request's task.  Chunk scans
/// go through the DEFAULT executor: inside a batch the request already
/// sits on a pool worker and the pool's nested-inline guard runs them
/// inline for free, while a width-1 submit (single request, or a
/// single-core host) still gets real chunk parallelism — one dispatch per
/// request, which is exactly the cost batching amortizes away.
void run_task(scan::ScanEngine& engine, const MatchRequest& request,
              unsigned chunks, MatchResponse& response) {
  scan::Executor& exec = scan::default_executor();
  switch (request.task) {
    case TaskKind::kAccept:
      response.accepted =
          scan::run_accept(engine, exec, request.data, request.len, chunks)
              .accepted;
      break;
    case TaskKind::kCount:
      response.count =
          scan::run_count(engine, exec, request.data, request.len, chunks);
      break;
    case TaskKind::kFindFirst:
      response.first = scan::run_find_first(engine, exec, request.data,
                                            request.len, chunks);
      break;
    case TaskKind::kFindAll:
      response.positions = scan::run_find_all(engine, exec, request.data,
                                              request.len, chunks);
      break;
  }
}

}  // namespace

MatchService::MatchService(ServiceOptions options)
    : options_(std::move(options)),
      registry_(options_.alphabet != nullptr ? *options_.alphabet
                                             : Alphabet::amino()),
      cache_(options_.cache) {
  if (options_.max_batch_workers == 0)
    options_.max_batch_workers = hardware_threads();
  if (options_.default_chunks == 0) options_.default_chunks = 1;
  if (options_.build_threads == 0) options_.build_threads = hardware_threads();
}

std::uint64_t MatchService::register_set(std::vector<PatternSpec> patterns) {
  const std::uint64_t fp = registry_.fingerprint(patterns);
  std::lock_guard<std::mutex> lock(sets_mutex_);
  sets_[fp] = std::move(patterns);
  return fp;
}

std::vector<PatternSpec> MatchService::set_patterns(
    std::uint64_t handle) const {
  std::lock_guard<std::mutex> lock(sets_mutex_);
  auto it = sets_.find(handle);
  return it == sets_.end() ? std::vector<PatternSpec>{} : it->second;
}

SfaCache::EntryPtr MatchService::resolve(std::uint64_t handle) {
  const std::vector<PatternSpec> specs = set_patterns(handle);
  if (specs.empty()) return nullptr;
  SFA_TRACE_SPAN(span, "serve", "resolve-set");
  span.arg("fingerprint", handle);
  return cache_.get_or_build(
      handle, [&] { return registry_.compile_union(specs); },
      [&](const Dfa& dfa) -> std::optional<Sfa> {
        if (dfa.size() > options_.max_eager_dfa_states)
          return std::nullopt;  // DFA-only entry: over the eager budget
        BuildOptions build;
        build.num_threads = options_.build_threads;
        build.keep_mappings = true;  // narrowed fallback + eager need f_s
        build.max_states = options_.max_sfa_states;
        try {
          return build_sfa(dfa, options_.build_method, build);
        } catch (const std::exception&) {
          return std::nullopt;  // SFA blow-up past max_sfa_states
        }
      });
}

MatchResponse MatchService::submit(const MatchRequest& request) {
  return submit_batch({request}).front();
}

std::vector<MatchResponse> MatchService::submit_batch(
    const std::vector<MatchRequest>& batch) {
  std::vector<MatchResponse> responses(batch.size());
  if (batch.empty()) return responses;

  SFA_TRACE_SPAN(span, "serve", "batch");
  span.arg("requests", batch.size());
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(batch.size(), std::memory_order_relaxed);
  obs::Registry::instance().counter("sfa.serve.batches").inc();
  obs::Registry::instance().counter("sfa.serve.requests").inc(batch.size());

  // Resolve phase: every distinct pattern set in the batch, on the caller
  // thread.  Under churn this is where union compilation, SFA construction
  // and cache eviction happen — deliberately off the pool so the execute
  // phase dispatches exactly once.
  std::unordered_map<std::uint64_t, SfaCache::EntryPtr> entries;
  std::unordered_map<std::uint64_t, std::string> resolve_errors;
  for (const MatchRequest& r : batch) {
    if (entries.find(r.set) != entries.end()) continue;
    SfaCache::EntryPtr entry;
    try {
      entry = resolve(r.set);
    } catch (const std::exception& e) {
      resolve_errors.emplace(r.set, e.what());  // e.g. a malformed pattern
    }
    entries.emplace(r.set, std::move(entry));
  }

  // Execute phase: one pool dispatch for the whole batch, tasks striped
  // over requests.  Each request scans with the inline executor on its
  // worker — N requests cost 1 dispatch, not N (see the pool_dispatches
  // regression test in test_serve).
  const unsigned width = static_cast<unsigned>(
      std::min<std::size_t>(batch.size(), options_.max_batch_workers));
  auto body = [&](unsigned t) {
    for (std::size_t i = t; i < batch.size(); i += width) {
      const MatchRequest& request = batch[i];
      MatchResponse& response = responses[i];
      const auto entry_it = entries.find(request.set);
      try {
        if (entry_it->second == nullptr) {
          const auto err_it = resolve_errors.find(request.set);
          throw std::invalid_argument(err_it != resolve_errors.end()
                                          ? err_it->second
                                          : "unknown pattern set handle");
        }
        serve_one(request, *entry_it->second, response);
        response.fingerprint = entry_it->second->fingerprint;
        response.ok = true;
      } catch (const std::exception& e) {
        response.ok = false;
        response.error = e.what();
      }
    }
  };
  scan::default_executor().for_chunks(width, body);

  std::uint64_t failed = 0;
  for (const MatchResponse& r : responses)
    if (!r.ok) ++failed;
  failed_requests_.fetch_add(failed, std::memory_order_relaxed);
  return responses;
}

void MatchService::serve_one(const MatchRequest& request,
                             const SfaCache::Entry& entry,
                             MatchResponse& response) const {
  // Category "build": lazy construction and per-request engine setup
  // happen under this span, and — like the builder/lazy-chunk spans — it
  // marks the thread as a worker track for sfa_trace_check
  // --expect-workers.
  SFA_TRACE_SPAN(span, "build", "serve-request");
  span.arg("engine", static_cast<std::uint64_t>(engine_id_of(request.engine)));
  span.arg("task", static_cast<std::uint64_t>(request.task));

  unsigned chunks = request.chunks != 0 ? request.chunks : options_.default_chunks;
  if (chunks == 0) chunks = 1;

  switch (request.engine) {
    case EngineChoice::kEager: {
      if (!entry.sfa)
        throw std::runtime_error(
            "pattern set exceeds the eager SFA budget; use lazy, "
            "speculative, or narrowed");
      scan::EagerEngine engine(*entry.sfa, &entry.dfa);
      run_task(engine, request, chunks, response);
      return;
    }
    case EngineChoice::kSpeculative: {
      const std::vector<Symbol> sample(
          request.data, request.data + std::min<std::size_t>(request.len, 4096));
      scan::SpeculativeEngine engine(entry.dfa,
                                     pick_speculation_state(entry.dfa, sample));
      run_task(engine, request, chunks, response);
      return;
    }
    case EngineChoice::kNarrowed: {
      scan::NarrowedOptions narrowed;
      narrowed.peek_k = options_.narrowed_peek_k;
      scan::NarrowedEngine engine(entry.dfa, narrowed,
                                  entry.sfa ? &*entry.sfa : nullptr,
                                  &entry.reach_table());
      run_task(engine, request, chunks, response);
      return;
    }
    case EngineChoice::kLazy: {
      // One LazyMatcher per request: concurrent calls on one instance are
      // unsupported by contract, and the intern table is per-scan state.
      // Its chunk workers route through the default executor; inside a
      // batch worker the pool's nested-inline guard runs them inline.
      if (request.task == TaskKind::kFindAll) {
        // LazyMatcher has no find-all; serve it as a pure DFA rescan (the
        // no-prebuilt-SFA policy the lazy path degrades to anyway).
        scan::DirectEngine engine(entry.dfa);
        run_task(engine, request, chunks, response);
        return;
      }
      LazyMatchOptions lazy;
      lazy.num_threads = chunks;
      LazyMatcher matcher(entry.dfa, lazy);
      const std::vector<Symbol> input(request.data, request.data + request.len);
      switch (request.task) {
        case TaskKind::kAccept:
          response.accepted = matcher.match(input).accepted;
          break;
        case TaskKind::kCount:
          response.count = matcher.count(input);
          break;
        case TaskKind::kFindFirst:
          response.first = matcher.find_first(input);
          break;
        case TaskKind::kFindAll:
          break;  // handled above
      }
      return;
    }
  }
  throw std::invalid_argument("unknown engine choice");
}

ServiceStats MatchService::stats() const {
  ServiceStats out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.failed_requests = failed_requests_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sets_mutex_);
    out.registered_sets = sets_.size();
  }
  out.cache = cache_.stats();
  out.pool = scan::default_executor().stats();
  return out;
}

}  // namespace sfa::serve
