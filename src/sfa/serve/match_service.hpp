// MatchService — the long-lived, many-pattern, many-request front door
// (docs/ARCHITECTURE.md, service layer).
//
// The ROADMAP north star is serving heavy traffic: many concurrent match
// requests against registered pattern sets, each request picking its
// question (accept / count / find-first / find-all) and its engine (eager /
// lazy / speculative / narrowed).  The service composes the PR 5 matching
// substrate with the registry + cache:
//
//   submit_batch(requests)
//     resolve:  distinct pattern sets -> SfaCache::get_or_build (lazy
//               construction under churn happens here, off the pool)
//     execute:  ONE PooledExecutor dispatch for the whole batch — tasks
//               are striped over requests (task t serves requests t,
//               t+width, ...).  Per-request chunk scans go through the
//               default executor too, but on a pool worker the
//               WorkerPool's nested-inline guard runs them inline: a batch
//               of N requests costs one pool dispatch, not N (pinned by
//               the pool_dispatches regression test), while a width-1
//               submit keeps per-request chunk parallelism.
//
// Engines are constructed per request (they are stateful per scan); the
// heavy shared state — union DFA, SFA, reach table — comes from the cache
// entry and is immutable, so any number of workers and caller threads can
// serve one set concurrently.  Requests never throw out of submit_batch:
// per-request failures come back in MatchResponse::error.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sfa/core/build.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/serve/pattern_registry.hpp"
#include "sfa/serve/sfa_cache.hpp"

namespace sfa::serve {

enum class EngineChoice { kEager, kLazy, kSpeculative, kNarrowed };
enum class TaskKind { kAccept, kCount, kFindFirst, kFindAll };

const char* engine_choice_name(EngineChoice e);
const char* task_kind_name(TaskKind t);

struct MatchRequest {
  /// Pattern-set handle from register_set() (its fingerprint).
  std::uint64_t set = 0;
  TaskKind task = TaskKind::kAccept;
  EngineChoice engine = EngineChoice::kEager;
  /// Caller-owned input; must outlive submit_batch().
  const Symbol* data = nullptr;
  std::size_t len = 0;
  /// Chunk count for this request's scan; 0 takes the service default.
  unsigned chunks = 0;
};

struct MatchResponse {
  bool ok = false;
  std::string error;               // set when !ok; other fields undefined
  std::uint64_t fingerprint = 0;   // pattern set that answered
  bool accepted = false;           // kAccept
  std::size_t count = 0;           // kCount
  std::size_t first = 0;           // kFindFirst (kNoMatch when none)
  std::vector<std::size_t> positions;  // kFindAll, ascending
};

struct ServiceOptions {
  /// Upper bound on the batch fan-out width (pool workers used by one
  /// batch).  0 means hardware_threads().  The pool is shared with every
  /// other matcher in the process and sized by the widest dispatch, so the
  /// cap keeps a 1000-request batch from inflating the team to 1000.
  unsigned max_batch_workers = 0;
  /// Default per-request chunk count when MatchRequest::chunks == 0.
  unsigned default_chunks = 4;
  /// Peek depth for narrowed-engine requests.
  unsigned narrowed_peek_k = 2;
  /// SFA construction for cache misses.
  BuildMethod build_method = BuildMethod::kParallel;
  unsigned build_threads = 0;  // 0 = hardware_threads()
  /// Eager-SFA build budgets.  Pattern-set unions can explode (a handful
  /// of PROSITE motifs can determinize to 100k+ DFA states, whose eager
  /// SFA is astronomically large) — a service must degrade, not hang.
  /// Sets whose union DFA exceeds max_eager_dfa_states, or whose SFA build
  /// aborts on max_sfa_states, are cached DFA-only: lazy / speculative /
  /// direct requests still serve them, eager requests fail fast.
  std::uint32_t max_eager_dfa_states = 2048;
  std::uint64_t max_sfa_states = 1u << 16;
  SfaCacheOptions cache;
  /// Alphabet every registered pattern set compiles over.
  const Alphabet* alphabet = nullptr;  // null = Alphabet::amino()
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t failed_requests = 0;
  std::uint64_t registered_sets = 0;
  SfaCacheStats cache;
  scan::ExecutorStats pool;  // process-wide pooled-executor counters
};

class MatchService {
 public:
  explicit MatchService(ServiceOptions options = {});

  /// Register (or re-register — idempotent) a pattern set; returns the
  /// handle requests name it by.  Registration only records the specs:
  /// compilation and SFA construction happen on first use, so churny
  /// workloads exercise lazy construction + cache eviction.
  std::uint64_t register_set(std::vector<PatternSpec> patterns);

  /// Specs behind a handle (empty when unknown) — the oracle's reference
  /// side recompiles members from these.
  std::vector<PatternSpec> set_patterns(std::uint64_t handle) const;

  /// Serve a whole batch through one pool dispatch.  Responses are
  /// positional (responses[i] answers batch[i]).
  std::vector<MatchResponse> submit_batch(
      const std::vector<MatchRequest>& batch);

  /// Convenience: a batch of one.
  MatchResponse submit(const MatchRequest& request);

  /// Force-resolve a handle's cache entry (compile + build now).  Returns
  /// null on unknown handles.  Tests use it to warm the cache.
  SfaCache::EntryPtr resolve(std::uint64_t handle);

  ServiceStats stats() const;
  const PatternRegistry& registry() const { return registry_; }
  SfaCache& cache() { return cache_; }
  const ServiceOptions& options() const { return options_; }

 private:
  void serve_one(const MatchRequest& request, const SfaCache::Entry& entry,
                 MatchResponse& response) const;

  ServiceOptions options_;
  PatternRegistry registry_;
  SfaCache cache_;
  mutable std::mutex sets_mutex_;
  std::unordered_map<std::uint64_t, std::vector<PatternSpec>> sets_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> failed_requests_{0};
};

}  // namespace sfa::serve
