#include "sfa/serve/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "sfa/core/match.hpp"
#include "sfa/support/rng.hpp"
#include "sfa/support/timer.hpp"

namespace sfa::serve {

SimResult run_simulation(
    MatchService& service, const SimOptions& options,
    const std::function<MatchRequest(std::size_t)>& make_request) {
  SimResult result;
  if (options.requests == 0) return result;

  // Arrival schedule, drawn up front (open loop): exponential
  // inter-arrivals at the configured rate.  Closed loop = everything
  // arrives at t=0 and arrival is re-stamped at batch formation.
  std::vector<double> arrival(options.requests, 0.0);
  if (options.arrival_rate_per_sec > 0) {
    Xoshiro256 rng(options.seed ^ 0xA221CAFEull);
    double t = 0;
    for (std::size_t i = 0; i < options.requests; ++i) {
      // Inverse-CDF exponential; clamp unit() away from 0 for finite logs.
      const double u = std::max(1e-12, rng.unit());
      t += -std::log(u) / options.arrival_rate_per_sec;
      arrival[i] = t;
    }
  }

  std::vector<MatchRequest> requests;
  requests.reserve(options.requests);
  for (std::size_t i = 0; i < options.requests; ++i)
    requests.push_back(make_request(i));

  LatencyRecorder latency;
  WallTimer clock;
  const std::size_t max_batch = std::max<std::size_t>(1, options.max_batch);
  std::size_t next = 0;
  while (next < options.requests) {
    if (options.arrival_rate_per_sec > 0) {
      const double wait = arrival[next] - clock.seconds();
      if (wait > 0)
        std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    } else {
      arrival[next] = clock.seconds();  // closed loop: arrives now
    }
    const double now = clock.seconds();
    std::size_t end = next + 1;
    if (options.arrival_rate_per_sec > 0) {
      while (end < options.requests && end - next < max_batch &&
             arrival[end] <= now)
        ++end;
    } else {
      while (end < options.requests && end - next < max_batch)
        arrival[end++] = now;
    }

    const std::vector<MatchRequest> batch(requests.begin() + next,
                                          requests.begin() + end);
    const std::vector<MatchResponse> responses = service.submit_batch(batch);
    const double done = clock.seconds();

    for (std::size_t i = next; i < end; ++i) {
      latency.record_ms((done - arrival[i]) * 1e3);
      result.run.total_symbols += requests[i].len;
      const MatchResponse& r = responses[i - next];
      if (!r.ok) {
        ++result.failed;
        continue;
      }
      switch (requests[i].task) {
        case TaskKind::kAccept:
          if (r.accepted) { ++result.accepted; ++result.run.total_matches; }
          break;
        case TaskKind::kCount:
          if (r.count > 0) ++result.accepted;
          result.run.total_matches += r.count;
          break;
        case TaskKind::kFindFirst:
          if (r.first != kNoMatch) { ++result.accepted; ++result.run.total_matches; }
          break;
        case TaskKind::kFindAll:
          if (!r.positions.empty()) ++result.accepted;
          result.run.total_matches += r.positions.size();
          break;
      }
    }
    next = end;
  }

  const double elapsed = std::max(clock.seconds(), 1e-9);
  result.run.has_latency = true;
  result.run.p50_ms = latency.percentile_ms(0.50);
  result.run.p99_ms = latency.percentile_ms(0.99);
  result.run.mean_ms = latency.mean_ms();
  result.run.elapsed_seconds = elapsed;
  result.run.requests_per_sec =
      static_cast<double>(options.requests) / elapsed;
  result.run.matches_per_sec =
      static_cast<double>(result.run.total_matches) / elapsed;
  result.run.symbols_per_sec =
      static_cast<double>(result.run.total_symbols) / elapsed;
  return result;
}

}  // namespace sfa::serve
