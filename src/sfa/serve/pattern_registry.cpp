#include "sfa/serve/pattern_registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sfa/automata/minimize.hpp"
#include "sfa/automata/ops.hpp"
#include "sfa/automata/product.hpp"
#include "sfa/hash/rabin.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace sfa::serve {

const char* pattern_syntax_name(PatternSyntax s) {
  switch (s) {
    case PatternSyntax::kProsite: return "prosite";
    case PatternSyntax::kRegex: return "regex";
    case PatternSyntax::kLiteral: return "literal";
  }
  return "?";
}

std::uint64_t PatternRegistry::fingerprint(
    const std::vector<PatternSpec>& set) const {
  // Canonical form: (syntax, text) pairs sorted and deduplicated, joined
  // with unit/record separators that cannot appear in pattern text, plus
  // the alphabet size (the same text means different automata over
  // different alphabets).
  std::vector<std::pair<int, std::string>> members;
  members.reserve(set.size());
  for (const PatternSpec& p : set)
    members.emplace_back(static_cast<int>(p.syntax), p.text);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  std::string canon = "sfa-serve-set/1\x1e";
  canon += std::to_string(alphabet_->size());
  canon += '\x1e';
  for (const auto& [syntax, text] : members) {
    canon += static_cast<char>('0' + syntax);
    canon += '\x1f';
    canon += text;
    canon += '\x1e';
  }
  return rabin_fingerprint(canon.data(), canon.size());
}

Dfa PatternRegistry::compile_member(const PatternSpec& spec) const {
  switch (spec.syntax) {
    case PatternSyntax::kProsite: {
      Dfa dfa = compile_prosite(spec.text);
      if (dfa.num_symbols() != alphabet_->size())
        throw std::invalid_argument(
            "PatternRegistry: PROSITE member '" + spec.id +
            "' needs the amino alphabet");
      return dfa;
    }
    case PatternSyntax::kRegex:
      return compile_pattern(spec.text, *alphabet_);
    case PatternSyntax::kLiteral: {
      if (spec.text.empty())
        throw std::invalid_argument("PatternRegistry: empty literal '" +
                                    spec.id + "'");
      // A one-word Aho–Corasick trie is exactly the KMP match-anywhere
      // automaton of the literal; minimize to keep union products small.
      AhoCorasick ac({alphabet_->encode(spec.text)}, alphabet_->size());
      return minimize(ac.to_dfa());
    }
  }
  throw std::invalid_argument("PatternRegistry: unknown syntax");
}

Dfa PatternRegistry::compile_union(const std::vector<PatternSpec>& set) const {
  if (set.empty())
    throw std::invalid_argument("PatternRegistry: empty pattern set");
  std::vector<Dfa> members;
  members.reserve(set.size());
  for (const PatternSpec& p : set) members.push_back(compile_member(p));
  return dfa_union_all(std::move(members));
}

bool PatternRegistry::all_literal(const std::vector<PatternSpec>& set) {
  return std::all_of(set.begin(), set.end(), [](const PatternSpec& p) {
    return p.syntax == PatternSyntax::kLiteral;
  });
}

AhoCorasick PatternRegistry::build_aho_corasick(
    const std::vector<PatternSpec>& set) const {
  std::vector<std::vector<Symbol>> words;
  words.reserve(set.size());
  for (const PatternSpec& p : set) {
    if (p.syntax != PatternSyntax::kLiteral)
      throw std::invalid_argument(
          "PatternRegistry: Aho-Corasick baseline needs literal-only sets");
    words.push_back(alphabet_->encode(p.text));
  }
  return AhoCorasick(std::move(words), alphabet_->size());
}

}  // namespace sfa::serve
