// Service-layer observability exports (docs/OBSERVABILITY.md).
//
// `sfa serve --stats-json` and the traffic simulator both emit the
// sfa-serve-stats/1 schema: service counters (requests, batches, failures),
// the cache block (hits / disk_hits / misses / evictions / resident bytes),
// the process-wide pool counters, and — when a simulation ran — the latency
// distribution (p50/p99/mean milliseconds) and throughput side
// (requests/sec, matches/sec, symbols/sec).  All fields are additive like
// the sfa-match-stats/1 ones: consumers must tolerate new keys.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfa/serve/match_service.hpp"

namespace sfa::obs {
class JsonWriter;
}

namespace sfa::serve {

/// Latency sample sink: record per-request milliseconds, read percentiles.
class LatencyRecorder {
 public:
  void record_ms(double ms) { samples_.push_back(ms); }
  std::size_t count() const { return samples_.size(); }
  /// Nearest-rank percentile (q in [0,1]); 0 when no samples.
  double percentile_ms(double q) const;
  double mean_ms() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Simulation-side aggregates that ride along with the service counters.
struct ServeRunInfo {
  bool has_latency = false;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;
  double requests_per_sec = 0;
  double matches_per_sec = 0;
  double symbols_per_sec = 0;
  double elapsed_seconds = 0;
  std::uint64_t total_matches = 0;
  std::uint64_t total_symbols = 0;
};

void write_serve_stats_json(obs::JsonWriter& w, const ServiceStats& stats,
                            const ServeRunInfo& run);
void write_serve_stats_json_file(const std::string& path,
                                 const ServiceStats& stats,
                                 const ServeRunInfo& run);

}  // namespace sfa::serve
