// SfaCache — fingerprint-keyed cache of compiled pattern-set automata
// (docs/ARCHITECTURE.md, service layer).
//
// Jung/Burgstaller/Blieberger key compiled SDFAs by Rabin fingerprint so a
// construction is paid once per distinct automaton; the service applies the
// same idea at pattern-set granularity.  An entry bundles the minimized
// union DFA with its pre-built SFA (mappings kept, so every engine — eager,
// speculative rescan, narrowed fallback — can run from it) plus a lazily
// computed ReachTable shared by all narrowed requests on the set.
//
// Residency policy: strict LRU under a byte budget accounting the SFA
// δ-table, the mapping store, and the DFA table.  The budget is a hard cap
// — eviction runs before an insert is published, and an entry that alone
// exceeds the budget is returned to the caller WITHOUT being cached (the
// resident total never exceeds the cap; test_serve pins this).
//
// Persistence: with a `disk_dir`, every built SFA is saved as
// `<fingerprint-hex>.sfa` through core/serialize (SFA1 for dense tables,
// SFA2 for dedup/d2fa), and a memory miss tries the disk image before
// rebuilding — a disk hit pays DFA compilation but skips SFA construction,
// which is the expensive side.  All three --table-layout encodings round
// trip (the serialization matrix of test_serve).
//
// Thread safety: all public methods are safe to call concurrently; entries
// are immutable once published and handed out as shared_ptr<const Entry>,
// so an evicted entry stays valid for requests already holding it.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sfa/automata/dfa.hpp"
#include "sfa/core/build/reachable.hpp"
#include "sfa/core/sfa.hpp"
#include "sfa/core/table/transition_table.hpp"

namespace sfa::serve {

struct SfaCacheOptions {
  /// Hard cap on resident entry bytes; 0 means unlimited.
  std::uint64_t memory_budget_bytes = 256ull << 20;
  /// Directory for `<fingerprint-hex>.sfa` persistence; empty disables it.
  std::string disk_dir;
  /// δ-table layout entries are converted to after construction (and the
  /// layout persisted images decode back into).
  table::TableLayout table_layout = table::TableLayout::kDense;
};

struct SfaCacheStats {
  std::uint64_t hits = 0;        // served from memory
  std::uint64_t disk_hits = 0;   // rebuilt from a persisted image
  std::uint64_t misses = 0;      // full compile + SFA build
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t oversize_rejects = 0;  // entries too big to ever cache
  std::uint64_t resident_bytes = 0;
  std::uint64_t entries = 0;
};

class SfaCache {
 public:
  struct Entry {
    std::uint64_t fingerprint = 0;
    Dfa dfa;
    /// Absent when the set exceeded the service's eager-SFA budget — the
    /// entry then serves the engines that run from the DFA alone (lazy,
    /// speculative, direct rescans); eager requests fail fast.
    std::optional<Sfa> sfa;
    std::uint64_t bytes = 0;

    Entry(std::uint64_t fp, Dfa d, std::optional<Sfa> s);

    /// Reach table for narrowed requests, computed on first use and shared
    /// by every engine/thread matching this set.
    const ReachTable& reach_table() const;

   private:
    mutable std::once_flag reach_once_;
    mutable ReachTable reach_;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  explicit SfaCache(SfaCacheOptions options = {});

  /// Look up `fingerprint`; on a memory miss, rebuild from the persisted
  /// image (if any) or compile + build via the callbacks, then insert under
  /// the LRU policy.  `compile_dfa` runs on every non-memory path (the DFA
  /// is not persisted); `build_sfa` only on a full miss, and may return
  /// nullopt to publish a DFA-only entry (eager budget exceeded).
  EntryPtr get_or_build(
      std::uint64_t fingerprint, const std::function<Dfa()>& compile_dfa,
      const std::function<std::optional<Sfa>(const Dfa&)>& build_sfa);

  /// Memory-only probe (no build, no disk); refreshes LRU order on hit.
  EntryPtr find(std::uint64_t fingerprint);

  SfaCacheStats stats() const;
  const SfaCacheOptions& options() const { return options_; }

  /// Fault-injection teeth hook (tests only): rebind victim's fingerprint
  /// to donor's automaton — the wrong fingerprint→SFA binding the service
  /// oracle must catch.  Both entries must be resident.
  void corrupt_entry_for_test(std::uint64_t victim_fingerprint,
                              std::uint64_t donor_fingerprint);

  /// Path a fingerprint persists under (empty when persistence is off).
  std::string disk_path(std::uint64_t fingerprint) const;

 private:
  struct Slot {
    EntryPtr entry;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  EntryPtr insert_locked(std::uint64_t fingerprint, Dfa dfa,
                         std::optional<Sfa> sfa);
  void touch_locked(Slot& slot, std::uint64_t fingerprint);
  void evict_until_fits_locked(std::uint64_t incoming_bytes);

  SfaCacheOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Slot> map_;
  std::list<std::uint64_t> lru_;  // front = most recently used
  SfaCacheStats stats_;
};

}  // namespace sfa::serve
