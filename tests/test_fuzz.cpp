// Seeded fuzz sweeps: hostile inputs to every parser and codec decoder must
// be rejected with exceptions — never crash, hang, or silently misparse.
//
// Corpus sizes scale with the SFA_FUZZ_ITERS environment variable
// (docs/TESTING.md): its value replaces the 3000-iteration baseline and all
// other sweeps scale proportionally, so sanitizer CI jobs can run a lighter
// sweep while nightly runs can crank it up.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sfa/automata/regex_parser.hpp"
#include "sfa/compress/registry.hpp"
#include "sfa/core/serialize.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

#include <sstream>

namespace sfa {
namespace {

/// `dflt` scaled by SFA_FUZZ_ITERS / 3000 (the largest default sweep), with
/// a floor so rejection+acceptance paths still both trigger.  Unset, empty,
/// or unparsable env keeps the defaults.
int fuzz_iters(int dflt) {
  static const long iters = [] {
    const char* env = std::getenv("SFA_FUZZ_ITERS");
    return env && *env ? std::strtol(env, nullptr, 10) : -1L;
  }();
  if (iters <= 0) return dflt;
  return static_cast<int>(std::max(static_cast<long>(dflt) * iters / 3000, 20L));
}

std::string random_string(Xoshiro256& rng, std::size_t max_len,
                          const char* charset) {
  const std::size_t n = std::strlen(charset);
  std::string s(rng.below(max_len), ' ');
  for (auto& c : s) c = charset[rng.below(n)];
  return s;
}

TEST(FuzzProsite, GarbageNeverCrashes) {
  Xoshiro256 rng(1);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < fuzz_iters(3000); ++i) {
    const std::string s =
        random_string(rng, 24, "ACDEFGHIKLMNPQRSTVWYx-[](){}<>,.0123456789 ");
    try {
      parse_prosite(s);
      ++parsed;
    } catch (const PrositeParseError&) {
      ++rejected;
    }
  }
  // Both outcomes must occur (the generator produces valid patterns too).
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzRegex, GarbageNeverCrashes) {
  Xoshiro256 rng(2);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < fuzz_iters(3000); ++i) {
    const std::string s =
        random_string(rng, 24, "ACGT|*+?.(){}[]^-\\0123456789");
    try {
      parse_regex(s, Alphabet::dna());
      ++parsed;
    } catch (const RegexParseError&) {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzRegex, ValidPatternsReparseStably) {
  // parse -> print -> parse must fixpoint on the printed form.
  Xoshiro256 rng(3);
  const int budget = fuzz_iters(2000);
  const int enough = std::max(budget / 10, 10);
  int checked = 0;
  for (int i = 0; i < budget && checked < enough; ++i) {
    const std::string s = random_string(rng, 12, "ACGT|*+?.()[]");
    Regex r;
    try {
      r = parse_regex(s, Alphabet::dna());
    } catch (const RegexParseError&) {
      continue;
    }
    const std::string printed = regex_to_string(r, Alphabet::dna());
    Regex r2;
    ASSERT_NO_THROW(r2 = parse_regex(printed, Alphabet::dna())) << printed;
    EXPECT_EQ(regex_to_string(r2, Alphabet::dna()), printed) << s;
    ++checked;
  }
  EXPECT_GE(checked, std::max(enough / 4, 5));
}

class CodecFuzz : public ::testing::TestWithParam<const Codec*> {};

TEST_P(CodecFuzz, RandomStreamsRejectedOrRoundtrip) {
  const Codec& codec = *GetParam();
  Xoshiro256 rng(4);
  for (int i = 0, n = fuzz_iters(2000); i < n; ++i) {
    Bytes garbage(rng.below(200));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next());
    const std::size_t claimed = rng.below(400);
    try {
      const Bytes out =
          codec.decompress(ByteView(garbage.data(), garbage.size()), claimed);
      // If the decoder accepted it, the size contract must hold.
      EXPECT_EQ(out.size(), claimed);
    } catch (const std::exception&) {
      // rejection is the expected path
    }
  }
}

TEST_P(CodecFuzz, BitflippedValidStreamsHandled) {
  const Codec& codec = *GetParam();
  Xoshiro256 rng(5);
  Bytes input(500);
  for (auto& b : input) b = static_cast<std::uint8_t>(rng.below(8));
  const Bytes good = codec.compress(ByteView(input.data(), input.size()));
  for (int i = 0, n = fuzz_iters(500); i < n; ++i) {
    Bytes bad = good;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    try {
      const Bytes out =
          codec.decompress(ByteView(bad.data(), bad.size()), input.size());
      EXPECT_EQ(out.size(), input.size());  // contract if accepted
    } catch (const std::exception&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecFuzz, ::testing::ValuesIn(all_codecs()),
                         [](const auto& info) {
                           std::string n(info.param->name());
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(FuzzSerialize, RandomBlobsRejected) {
  Xoshiro256 rng(6);
  for (int i = 0, n = fuzz_iters(1000); i < n; ++i) {
    std::string blob(rng.below(300), '\0');
    for (auto& c : blob) c = static_cast<char>(rng.next());
    // Valid magic sometimes, to reach deeper validation paths.
    if (rng.chance(0.3) && blob.size() >= 4) {
      blob[0] = 'S';
      blob[1] = 'F';
      blob[2] = 'A';
      blob[3] = '1';
    }
    std::istringstream in(blob);
    EXPECT_THROW(load_sfa(in), std::exception) << i;
  }
}

}  // namespace
}  // namespace sfa
