// Parallel-builder tests: thread sweeps, determinism of the discovered
// state set, queue/stealing behaviour, and abort handling under concurrency.
#include <gtest/gtest.h>

#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace sfa {
namespace {

class ThreadSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ThreadSweep, VerifiesAgainstDfa) {
  const unsigned threads = GetParam();
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C-x-C.");
  BuildOptions opt;
  opt.num_threads = threads;
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, opt, &stats);
  EXPECT_EQ(stats.threads, threads);
  const VerifyReport report =
      verify_sfa(sfa, dfa, {.random_inputs = 50, .structural_samples = 100});
  EXPECT_TRUE(report.ok) << report.first_failure;
}

TEST_P(ThreadSweep, SameStateCountAsSequential) {
  const unsigned threads = GetParam();
  const Dfa dfa = compile_prosite("[RK]-x(2,3)-[DE]-x(2,3)-Y.");
  const Sfa seq = build_sfa_transposed(dfa);
  BuildOptions opt;
  opt.num_threads = threads;
  const Sfa par = build_sfa_parallel(dfa, opt);
  EXPECT_EQ(par.num_states(), seq.num_states());
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ParallelBuild, RepeatedRunsAgree) {
  // The state set (and hence the count) must be deterministic even though
  // discovery order and id assignment race.
  const Dfa dfa = compile_prosite("[AG]-x(4)-G-K-[ST].");
  BuildOptions opt;
  opt.num_threads = 4;
  std::uint32_t count = 0;
  for (int run = 0; run < 5; ++run) {
    const Sfa sfa = build_sfa_parallel(dfa, opt);
    if (run == 0)
      count = sfa.num_states();
    else
      EXPECT_EQ(sfa.num_states(), count) << "run " << run;
  }
}

TEST(ParallelBuild, SmallGlobalQueueForcesStealingPath) {
  const Dfa dfa = compile_prosite("C-x(2,4)-C-x(3)-H.");
  BuildOptions opt;
  opt.num_threads = 4;
  opt.global_queue_capacity = 2;  // close the global queue almost at once
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, opt, &stats);
  EXPECT_TRUE(verify_sfa(sfa, dfa, {.random_inputs = 30}).ok);
  // Nearly everything must have flowed through the local queues.
  EXPECT_LE(stats.global_queue_states, 2u);
}

TEST(ParallelBuild, LargeGlobalQueueServesEverything) {
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");  // 33 SFA states
  BuildOptions opt;
  opt.num_threads = 2;
  opt.global_queue_capacity = 4096;
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, opt, &stats);
  EXPECT_EQ(stats.global_queue_states, sfa.num_states());
  EXPECT_EQ(stats.steals, 0u);  // no local-queue work to steal
}

TEST(ParallelBuild, StatsAccounting) {
  const Dfa dfa = compile_prosite("[ST]-x(2)-[DE].");
  BuildOptions opt;
  opt.num_threads = 3;
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, opt, &stats);
  EXPECT_EQ(stats.sfa_states, sfa.num_states());
  EXPECT_EQ(stats.mapping_bytes_uncompressed,
            static_cast<std::uint64_t>(sfa.num_states()) * dfa.size() * 2);
  EXPECT_FALSE(stats.compression_triggered);
  EXPECT_GT(stats.seconds, 0.0);
}

TEST(ParallelBuild, MaxStatesAbortsCleanly) {
  const Dfa dfa = compile_prosite("C-x(2,4)-C-x(3)-H.");  // 2085 states
  BuildOptions opt;
  opt.num_threads = 4;
  opt.max_states = 100;
  EXPECT_THROW(build_sfa_parallel(dfa, opt), std::runtime_error);
}

TEST(ParallelBuild, MatchesBaselineOnRBenchmark) {
  const Dfa dfa = make_r_benchmark_dfa(80, 500);
  const Sfa seq = build_sfa_baseline(dfa);
  BuildOptions opt;
  opt.num_threads = 4;
  const Sfa par = build_sfa_parallel(dfa, opt);
  EXPECT_EQ(par.num_states(), seq.num_states());
  EXPECT_TRUE(verify_sfa(par, dfa, {.random_inputs = 40}).ok);
}

TEST(ParallelBuild, ZeroThreadsCoercedToOne) {
  const Dfa dfa = compile_prosite("R-G-D.");
  BuildOptions opt;
  opt.num_threads = 0;
  BuildStats stats;
  const Sfa sfa = build_sfa_parallel(dfa, opt, &stats);
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_TRUE(verify_sfa(sfa, dfa).ok);
}

TEST(ParallelBuild, KeepMappingsFalse) {
  const Dfa dfa = compile_prosite("[ST]-G-x-G.");
  BuildOptions opt;
  opt.num_threads = 2;
  opt.keep_mappings = false;
  const Sfa sfa = build_sfa_parallel(dfa, opt);
  EXPECT_FALSE(sfa.has_mappings());
  EXPECT_TRUE(verify_sfa(sfa, dfa).ok);  // behavioural check still works
}

TEST(ParallelBuild, ManyThreadsOnTinyProblem) {
  // More threads than work: most workers find nothing and must terminate
  // without deadlock.
  const Dfa dfa = compile_prosite("R-G-D.");  // 12 SFA states
  BuildOptions opt;
  opt.num_threads = 16;
  const Sfa sfa = build_sfa_parallel(dfa, opt);
  EXPECT_EQ(sfa.num_states(), 12u);
}

}  // namespace
}  // namespace sfa
