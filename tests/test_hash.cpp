// Hash substrate tests: CityHash-class distribution properties, Rabin
// fingerprint algebra, and PCLMUL/portable path agreement.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sfa/hash/city64.hpp"
#include "sfa/hash/fnv.hpp"
#include "sfa/hash/rabin.hpp"
#include "sfa/hash/survey.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

TEST(City64, DeterministicAndLengthSensitive) {
  const char data[] = "simultaneous finite automata";
  EXPECT_EQ(city_hash64(data, 10), city_hash64(data, 10));
  EXPECT_NE(city_hash64(data, 10), city_hash64(data, 11));
}

TEST(City64, EmptyAndSingleByte) {
  EXPECT_EQ(city_hash64(nullptr, 0), city_hash64(nullptr, 0));
  const std::uint8_t a = 1, b = 2;
  EXPECT_NE(city_hash64(&a, 1), city_hash64(&b, 1));
}

TEST(City64, AllSizeBucketsCovered) {
  // Exercise every internal path: 0-16, 17-32, 33-64, >64, multi-chunk.
  Xoshiro256 rng(1);
  std::vector<std::uint8_t> buf(4096);
  for (auto& v : buf) v = static_cast<std::uint8_t>(rng.next());
  std::set<std::uint64_t> seen;
  for (std::size_t len : {0u, 1u, 7u, 8u, 15u, 16u, 17u, 31u, 32u, 33u, 63u,
                          64u, 65u, 127u, 128u, 1000u, 4096u})
    seen.insert(city_hash64(buf.data(), len));
  EXPECT_EQ(seen.size(), 17u);  // all distinct
}

TEST(City64, SingleBitFlipsChangeHash) {
  // Avalanche sanity: flipping any single bit of a 64-byte input changes
  // the hash (would only fail with probability ~2^-64 per bit).
  std::vector<std::uint8_t> buf(64, 0xA5);
  const std::uint64_t base = city_hash64(buf.data(), buf.size());
  for (std::size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= 1u << bit;
      EXPECT_NE(city_hash64(buf.data(), buf.size()), base)
          << "byte " << byte << " bit " << bit;
      buf[byte] ^= 1u << bit;
    }
  }
}

TEST(City64, NoCollisionsOnSmallCorpus) {
  // 100k random 40-byte inputs: expected collisions ~= 3e-10; zero expected.
  Xoshiro256 rng(99);
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint8_t> input(40);
  for (int i = 0; i < 100000; ++i) {
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.next());
    hashes.push_back(city_hash64(input.data(), input.size()));
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

TEST(City64, SeededVariantDiffers) {
  const char data[] = "seed test";
  EXPECT_NE(city_hash64_seeded(data, sizeof(data), 1),
            city_hash64_seeded(data, sizeof(data), 2));
}

// ---- GF(2) arithmetic --------------------------------------------------------

TEST(Gf2, ClmulMatchesSmallCases) {
  std::uint64_t hi, lo;
  gf2::clmul64(0, 0xFFFF, hi, lo);
  EXPECT_EQ(hi, 0u);
  EXPECT_EQ(lo, 0u);
  gf2::clmul64(1, 0xABCDEF, hi, lo);
  EXPECT_EQ(hi, 0u);
  EXPECT_EQ(lo, 0xABCDEFull);
  // x^63 * x = x^64 -> hi bit 0.
  gf2::clmul64(1ull << 63, 2, hi, lo);
  EXPECT_EQ(hi, 1u);
  EXPECT_EQ(lo, 0u);
  // (x+1)*(x+1) = x^2+1 over GF(2).
  gf2::clmul64(3, 3, hi, lo);
  EXPECT_EQ(hi, 0u);
  EXPECT_EQ(lo, 5u);
}

TEST(Gf2, ClmulCommutes) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = rng.next(), b = rng.next();
    std::uint64_t h1, l1, h2, l2;
    gf2::clmul64(a, b, h1, l1);
    gf2::clmul64(b, a, h2, l2);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(l1, l2);
  }
}

TEST(Gf2, Mod128ReducesDegree) {
  // Anything of degree < 64 is its own remainder.
  EXPECT_EQ(gf2::mod128(0, 0x1234, 0x1B), 0x1234u);
  // x^64 == poly_low (mod P).
  EXPECT_EQ(gf2::mod128(1, 0, 0x1B), 0x1Bu);
}

TEST(Gf2, BarrettQuotientIdentity) {
  // mu = floor(x^128 / P) must satisfy x^128 = mu*P + r with deg(r) < 64.
  const std::uint64_t poly_low = RabinFingerprinter::kDefaultPoly;
  const std::uint64_t mu_lo = gf2::barrett_mu_low(poly_low);
  // Compute mu*P over GF(2): mu = x^64 + mu_lo, P = x^64 + poly_low.
  // mu*P = x^128 + (mu_lo + poly_low)*x^64 + mu_lo*poly_low.
  std::uint64_t hi, lo;
  gf2::clmul64(mu_lo, poly_low, hi, lo);
  // Middle term must cancel the x^64.. bits so that mu*P + x^128 has
  // degree < 64:  hi128 part = (mu_lo ^ poly_low) ^ hi  must be zero.
  EXPECT_EQ((mu_lo ^ poly_low) ^ hi, 0u);
  (void)lo;  // low 64 bits are the remainder r
}

// ---- Rabin fingerprints --------------------------------------------------------

TEST(Rabin, PortableRecurrenceBasics) {
  const RabinFingerprinter& fp = default_rabin();
  // Empty string -> 0; single zero byte -> 0 (0 polynomial).
  EXPECT_EQ(fp.hash_portable(nullptr, 0), 0u);
  const std::uint8_t zero = 0;
  EXPECT_EQ(fp.hash_portable(&zero, 1), 0u);
  // Single byte b (degree <= 7): remainder is b itself.
  for (unsigned b = 1; b < 256; ++b) {
    const std::uint8_t byte = static_cast<std::uint8_t>(b);
    EXPECT_EQ(fp.hash_portable(&byte, 1), b);
  }
}

TEST(Rabin, LinearityOverXor) {
  // Rabin fingerprints are linear: f(a ^ b) == f(a) ^ f(b) for equal-length
  // strings (polynomial addition over GF(2)).
  const RabinFingerprinter& fp = default_rabin();
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> a(100), b(100), x(100);
    for (int i = 0; i < 100; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.next());
      b[i] = static_cast<std::uint8_t>(rng.next());
      x[i] = a[i] ^ b[i];
    }
    EXPECT_EQ(fp.hash_portable(x.data(), x.size()),
              fp.hash_portable(a.data(), a.size()) ^
                  fp.hash_portable(b.data(), b.size()));
  }
}

TEST(Rabin, PclmulMatchesPortable) {
  const RabinFingerprinter& fp = default_rabin();
  if (!fp.uses_pclmul()) GTEST_SKIP() << "no PCLMULQDQ on this host";
  Xoshiro256 rng(13);
  std::vector<std::uint8_t> buf(5000);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
  for (std::size_t len : {0u, 1u, 15u, 16u, 31u, 32u, 33u, 47u, 48u, 63u, 64u,
                          100u, 255u, 256u, 1000u, 4999u, 5000u}) {
    EXPECT_EQ(fp.hash_pclmul(buf.data(), len),
              fp.hash_portable(buf.data(), len))
        << "length " << len;
  }
}

TEST(Rabin, PclmulMatchesPortableRandomLengths) {
  const RabinFingerprinter& fp = default_rabin();
  if (!fp.uses_pclmul()) GTEST_SKIP();
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 32 + rng.below(2000);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next());
    ASSERT_EQ(fp.hash_pclmul(buf.data(), len),
              fp.hash_portable(buf.data(), len))
        << "trial " << trial << " length " << len;
  }
}

TEST(Rabin, CustomPolynomialChangesFingerprints) {
  const RabinFingerprinter a(0x1B);
  const RabinFingerprinter b(0x8D);  // a different low part
  const char data[] = "polynomial degree tunes the collision rate";
  EXPECT_NE(a.hash(data, sizeof(data)), b.hash(data, sizeof(data)));
  // Both paths still agree per instance.
  if (b.uses_pclmul())
    EXPECT_EQ(b.hash_pclmul(data, sizeof(data)),
              b.hash_portable(data, sizeof(data)));
}

TEST(Rabin, NoCollisionsOnCorpus) {
  Xoshiro256 rng(19);
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint8_t> input(64);
  for (int i = 0; i < 50000; ++i) {
    for (auto& b : input) b = static_cast<std::uint8_t>(rng.next());
    hashes.push_back(rabin_fingerprint(input.data(), input.size()));
  }
  std::sort(hashes.begin(), hashes.end());
  EXPECT_EQ(std::adjacent_find(hashes.begin(), hashes.end()), hashes.end());
}

// ---- Modulus-polynomial regression ----------------------------------------------

namespace gf2ex {
int deg(std::uint64_t v) { return v ? 63 - __builtin_clzll(v) : -1; }
std::uint64_t polymod64(std::uint64_t a, std::uint64_t b) {
  while (b && deg(a) >= deg(b)) a ^= b << (deg(a) - deg(b));
  return a;
}
std::uint64_t polygcd(std::uint64_t a, std::uint64_t b) {
  while (b) {
    const std::uint64_t r = polymod64(a, b);
    a = b;
    b = r;
  }
  return a;
}
std::uint64_t sqmod(std::uint64_t a, std::uint64_t plow) {
  std::uint64_t hi, lo;
  gf2::clmul64(a, a, hi, lo);
  return gf2::mod128(hi, lo, plow);
}
}  // namespace gf2ex

TEST(RabinRegression, DefaultModulusIsIrreducible) {
  // Ben-Or / Rabin irreducibility test for degree 64 = 2^6:
  // x^(2^64) == x (mod P) and gcd(x^(2^32) - x, P) == 1.
  const std::uint64_t plow = RabinFingerprinter::kDefaultPoly;
  std::uint64_t t = 2, t32 = 0;
  for (int i = 0; i < 64; ++i) {
    if (i == 32) t32 = t;
    t = gf2ex::sqmod(t, plow);
  }
  EXPECT_EQ(t, 2u) << "x^(2^64) != x";
  const std::uint64_t g = t32 ^ 2;
  ASSERT_NE(g, 0u);
  // P mod g, with P = x^64 + plow.
  std::uint64_t x64 = 1;
  for (int i = 0; i < 64; ++i) {
    x64 <<= 1;
    if (gf2ex::deg(x64) >= gf2ex::deg(g)) x64 ^= g << (gf2ex::deg(x64) - gf2ex::deg(g));
  }
  const std::uint64_t pmodg =
      gf2ex::polymod64(x64 ^ gf2ex::polymod64(plow, g), g);
  EXPECT_EQ(gf2ex::deg(gf2ex::polygcd(g, pmodg)), 0);
}

TEST(RabinRegression, DefaultModulusIsDense) {
  // A sparse modulus has sparse multiples and collides deterministically on
  // sparse input differences (the r-benchmark SFA-state bug).
  EXPECT_GE(__builtin_popcountll(RabinFingerprinter::kDefaultPoly), 20);
}

TEST(RabinRegression, SparseLowWeightDiffsDoNotCollide) {
  // With the old modulus x^64+x^4+x^3+x+1, flipping byte j by 0x01 and byte
  // j+8 by 0x1B XORed the message with the byte pattern of P itself — a
  // guaranteed collision.  The dense default must not collide on ANY pair
  // of 2-sparse byte diffs (d1 at j, d2 at j+8) with small values.
  std::vector<std::uint8_t> base(304, 0);
  const std::uint64_t f0 = rabin_fingerprint(base.data(), base.size());
  for (unsigned d1 = 1; d1 < 8; ++d1) {
    for (unsigned d2 = 1; d2 < 64; ++d2) {
      auto v = base;
      v[100] ^= static_cast<std::uint8_t>(d1);
      v[108] ^= static_cast<std::uint8_t>(d2);
      ASSERT_NE(rabin_fingerprint(v.data(), v.size()), f0)
          << "d1=" << d1 << " d2=" << d2;
    }
  }
  // And the historical killer pattern specifically:
  auto v = base;
  v[100] ^= 0x01;
  v[108] ^= 0x1B;
  EXPECT_NE(rabin_fingerprint(v.data(), v.size()), f0);
  // Under the OLD sparse modulus it does collide (documenting the trap):
  const RabinFingerprinter sparse(0x1B);
  EXPECT_EQ(sparse.hash(v.data(), v.size()),
            sparse.hash(base.data(), base.size()));
}

// ---- FNV + survey ---------------------------------------------------------------

TEST(Fnv, KnownVector) {
  // FNV-1a("a") = 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
}

TEST(Survey, RunsAllCandidates) {
  const auto results = survey_all(/*message_bytes=*/4096, /*reps=*/64,
                                  /*corpus=*/2000, /*input_bytes=*/64,
                                  /*seed=*/3);
  ASSERT_GE(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_GT(r.gib_per_second, 0.0) << r.name;
    EXPECT_EQ(r.collisions, 0u) << r.name;
    EXPECT_EQ(r.inputs, 2000u);
  }
}

TEST(Survey, CityFasterThanPortableRabin) {
  // The paper's throughput ordering (§III-A): CityHash >> byte-serial Rabin.
  const auto candidates = standard_hash_candidates();
  const HashCandidate* city = nullptr;
  const HashCandidate* rabin_portable = nullptr;
  for (const auto& c : candidates) {
    if (c.name == "city64") city = &c;
    if (c.name == "rabin/portable") rabin_portable = &c;
  }
  ASSERT_NE(city, nullptr);
  ASSERT_NE(rabin_portable, nullptr);
  const auto rc = survey_one(*city, 1 << 16, 200, 10, 16, 1);
  const auto rr = survey_one(*rabin_portable, 1 << 16, 200, 10, 16, 1);
  EXPECT_GT(rc.gib_per_second, rr.gib_per_second);
}

}  // namespace
}  // namespace sfa
