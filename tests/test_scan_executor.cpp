// Persistent worker pool + scan executor seam: correctness of stripe-bound
// dispatch, inline fallbacks, exception propagation, and the stress shapes
// the CI executor-stress step runs under all three sanitizer lanes —
// concurrent caller sessions on one pool and shutdown-while-dispatching
// churn.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sfa/concurrent/scheduler.hpp"
#include "sfa/concurrent/worker_pool.hpp"
#include "sfa/core/scan/chunk_planner.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/support/numa.hpp"

namespace sfa {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  const auto fn = [&](unsigned task, unsigned) { hits[task].fetch_add(1); };
  pool.run(64, fn);
  for (unsigned t = 0; t < 64; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(WorkerPool, StripeBindingLandsTasksOnDistinctThreads) {
  // Task t of a job runs on worker (t % team): with tasks <= team size every
  // task must execute on a different pool thread, even on one core.  The
  // trace validator's worker-track count relies on exactly this.
  WorkerPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> tids;
  std::set<unsigned> workers;
  const auto fn = [&](unsigned, unsigned worker) {
    std::lock_guard<std::mutex> lock(mu);
    tids.insert(std::this_thread::get_id());
    workers.insert(worker);
  };
  pool.run(4, fn);
  EXPECT_EQ(tids.size(), 4u);
  EXPECT_EQ(workers.size(), 4u);
  EXPECT_EQ(tids.count(std::this_thread::get_id()), 0u)
      << "caller executed a task of a fully-staffed multi-task job";
}

TEST(WorkerPool, SingleTaskRunsInlineOnCaller) {
  WorkerPool pool(4);
  std::thread::id ran_on;
  unsigned worker_arg = 0;
  const auto fn = [&](unsigned, unsigned worker) {
    ran_on = std::this_thread::get_id();
    worker_arg = worker;
  };
  const auto before = pool.stats().dispatches;
  pool.run(1, fn);
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(worker_arg, ChunkFn::kInlineWorker);
  EXPECT_EQ(pool.stats().dispatches, before) << "inline run counted as dispatch";
}

TEST(WorkerPool, EmptyTeamRunsInline) {
  WorkerPool pool;  // no workers
  std::vector<int> hits(8, 0);
  const auto fn = [&](unsigned task, unsigned worker) {
    EXPECT_EQ(worker, ChunkFn::kInlineWorker);
    ++hits[task];
  };
  pool.run(8, fn);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPool, NestedRunFromWorkerExecutesInline) {
  // A run() from inside a pool worker must not park on its own team.
  WorkerPool pool(2);
  std::atomic<int> inner_hits{0};
  const auto inner = [&](unsigned, unsigned worker) {
    EXPECT_EQ(worker, ChunkFn::kInlineWorker);
    inner_hits.fetch_add(1);
  };
  const auto outer = [&](unsigned, unsigned) { pool.run(4, inner); };
  pool.run(2, outer);
  EXPECT_EQ(inner_hits.load(), 8);
}

TEST(WorkerPool, EnsureWorkersGrowsAndNeverShrinks) {
  WorkerPool pool;
  EXPECT_EQ(pool.num_workers(), 0u);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.ensure_workers(1);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.ensure_workers(6);
  EXPECT_EQ(pool.num_workers(), 6u);
  EXPECT_EQ(pool.stats().workers, 6u);
}

TEST(WorkerPool, FirstExceptionPropagatesAndPoolStaysUsable) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  const auto fn = [&](unsigned task, unsigned) {
    ran.fetch_add(1);
    if (task == 5) throw std::runtime_error("task 5 failed");
  };
  EXPECT_THROW(pool.run(16, fn), std::runtime_error);
  EXPECT_EQ(ran.load(), 16) << "remaining tasks must still run";

  std::atomic<int> again{0};
  const auto ok = [&](unsigned, unsigned) { again.fetch_add(1); };
  pool.run(8, ok);
  EXPECT_EQ(again.load(), 8);
}

TEST(WorkerPool, CountsDispatchesAndWakeups) {
  WorkerPool pool(4);
  const auto fn = [](unsigned, unsigned) {};
  const auto before = pool.stats();
  for (int i = 0; i < 10; ++i) pool.run(4, fn);
  const auto after = pool.stats();
  EXPECT_EQ(after.dispatches - before.dispatches, 10u);
  EXPECT_GT(after.wakeups, before.wakeups)
      << "parked workers claimed work without a recorded wakeup";
}

// ---- scheduler policies (sched::Policy seam) -------------------------------

TEST(SchedulerPolicy, DefaultIsStaticStripe) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.policy(), sched::Policy::kStaticStripe);
  EXPECT_EQ(pool.pin_mode(), PinMode::kNone);
}

TEST(SchedulerPolicy, NamesRoundTripThroughParse) {
  for (unsigned i = 0; i < sched::kNumPolicies; ++i) {
    const auto p = static_cast<sched::Policy>(i);
    sched::Policy parsed = sched::Policy::kStaticStripe;
    ASSERT_TRUE(sched::parse_policy(sched::policy_name(p), parsed))
        << sched::policy_name(p);
    EXPECT_EQ(parsed, p);
  }
  sched::Policy out = sched::Policy::kGuided;
  EXPECT_FALSE(sched::parse_policy("round-robin", out));
  EXPECT_EQ(out, sched::Policy::kGuided) << "failed parse clobbered out";
}

TEST(SchedulerPolicy, WorkStealingRunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  pool.set_policy(sched::Policy::kWorkStealing);
  std::vector<std::atomic<int>> hits(64);
  const auto fn = [&](unsigned task, unsigned) { hits[task].fetch_add(1); };
  pool.run(64, fn);
  for (unsigned t = 0; t < 64; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(SchedulerPolicy, GuidedRunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  pool.set_policy(sched::Policy::kGuided);
  std::vector<std::atomic<int>> hits(64);
  const auto fn = [&](unsigned task, unsigned) { hits[task].fetch_add(1); };
  pool.run(64, fn);
  for (unsigned t = 0; t < 64; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(SchedulerPolicy, StealingBalancesSkewedTasks) {
  // Worker 0's deque holds every task with t % 4 == 0; make exactly those
  // slow and the rest free.  The other workers drain their own deques
  // immediately and must steal from worker 0 to finish — the steals counter
  // has to move.
  WorkerPool pool(4);
  pool.set_policy(sched::Policy::kWorkStealing);
  const auto before = pool.stats().steals;
  std::atomic<int> ran{0};
  const auto fn = [&](unsigned task, unsigned) {
    if (task % 4 == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ran.fetch_add(1);
  };
  pool.run(32, fn);
  EXPECT_EQ(ran.load(), 32);
  EXPECT_GT(pool.stats().steals, before)
      << "no steals despite an 8-task-deep slow deque";
}

TEST(SchedulerPolicy, DispatchContextVisibleInsideTasks) {
  WorkerPool pool(4);
  for (unsigned i = 0; i < sched::kNumPolicies; ++i) {
    const auto p = static_cast<sched::Policy>(i);
    pool.set_policy(p);
    std::atomic<int> wrong{0};
    const auto fn = [&](unsigned, unsigned) {
      const DispatchContext& dc = current_dispatch_context();
      if (dc.policy != p || dc.stride != 4) wrong.fetch_add(1);
    };
    pool.run(8, fn);
    EXPECT_EQ(wrong.load(), 0) << sched::policy_name(p);
  }
  // Outside any task body the context is the inline default.
  const DispatchContext& dc = current_dispatch_context();
  EXPECT_EQ(dc.policy, sched::Policy::kStaticStripe);
  EXPECT_EQ(dc.stride, 1u);
}

TEST(SchedulerPolicy, InlineRunUsesStrideOne) {
  WorkerPool pool(4);
  pool.set_policy(sched::Policy::kGuided);
  DispatchContext seen;
  const auto fn = [&](unsigned, unsigned worker) {
    EXPECT_EQ(worker, ChunkFn::kInlineWorker);
    seen = current_dispatch_context();
  };
  pool.run(1, fn);  // single task → inline on the caller
  EXPECT_EQ(seen.stride, 1u);
}

TEST(SchedulerPolicy, NestedRunExecutesInlineUnderEveryPolicy) {
  // A run() from inside a pool worker must not park on its own team — also
  // when the outer task was stolen or claimed off the guided cursor.
  for (unsigned i = 0; i < sched::kNumPolicies; ++i) {
    const auto p = static_cast<sched::Policy>(i);
    WorkerPool pool(2);
    pool.set_policy(p);
    std::atomic<int> inner_hits{0};
    const auto inner = [&](unsigned, unsigned worker) {
      EXPECT_EQ(worker, ChunkFn::kInlineWorker);
      inner_hits.fetch_add(1);
    };
    const auto outer = [&](unsigned, unsigned) { pool.run(4, inner); };
    pool.run(2, outer);
    EXPECT_EQ(inner_hits.load(), 8) << sched::policy_name(p);
  }
}

TEST(SchedulerPolicy, NestedRunRestoresOuterDispatchContext) {
  // The inline inner run must not clobber the outer job's thread-local
  // context: after the nested run returns, the worker is still inside the
  // outer stealing job and its spans must stamp that policy/stride.
  WorkerPool pool(2);
  pool.set_policy(sched::Policy::kWorkStealing);
  std::atomic<int> wrong{0};
  const auto inner = [&](unsigned, unsigned) {
    const DispatchContext& dc = current_dispatch_context();
    if (dc.stride != 1) wrong.fetch_add(1);
  };
  const auto outer = [&](unsigned, unsigned) {
    pool.run(4, inner);
    const DispatchContext& dc = current_dispatch_context();
    if (dc.policy != sched::Policy::kWorkStealing || dc.stride != 2)
      wrong.fetch_add(1);
  };
  pool.run(2, outer);
  EXPECT_EQ(wrong.load(), 0);
}

TEST(SchedulerPolicy, ExceptionPropagatesUnderEveryPolicy) {
  for (unsigned i = 0; i < sched::kNumPolicies; ++i) {
    const auto p = static_cast<sched::Policy>(i);
    WorkerPool pool(4);
    pool.set_policy(p);
    std::atomic<int> ran{0};
    const auto fn = [&](unsigned task, unsigned) {
      ran.fetch_add(1);
      if (task == 5) throw std::runtime_error("task 5 failed");
    };
    EXPECT_THROW(pool.run(16, fn), std::runtime_error) << sched::policy_name(p);
    EXPECT_EQ(ran.load(), 16) << sched::policy_name(p);

    std::atomic<int> again{0};
    const auto ok = [&](unsigned, unsigned) { again.fetch_add(1); };
    pool.run(8, ok);
    EXPECT_EQ(again.load(), 8) << sched::policy_name(p);
  }
}

TEST(SchedulerPolicy, SetPinModeIsSafeWithOrWithoutNuma) {
  // Pinning is best-effort: on a machine without a NUMA sysfs tree (or a
  // non-Linux host) apply_pin is a no-op and pinned_workers stays 0.  Either
  // way the pool keeps dispatching correctly after the mode flips.
  WorkerPool pool(4);
  pool.set_pin_mode(PinMode::kSocket);
  EXPECT_EQ(pool.pin_mode(), PinMode::kSocket);
  std::atomic<int> ran{0};
  const auto fn = [&](unsigned, unsigned) { ran.fetch_add(1); };
  pool.run(16, fn);
  EXPECT_EQ(ran.load(), 16);
  EXPECT_LE(pool.stats().pinned_workers, pool.num_workers());
  pool.set_pin_mode(PinMode::kNone);
  ran.store(0);
  pool.run(16, fn);
  EXPECT_EQ(ran.load(), 16);
}

// ---- adaptive chunk planner ------------------------------------------------

/// Restores the process-wide planner to its pristine disabled state.
struct PlannerGuard {
  ~PlannerGuard() {
    scan::ChunkPlanner::instance().set_enabled(false);
    scan::ChunkPlanner::instance().reset();
  }
};

TEST(ChunkPlanner, DisabledPlansExactlyThreads) {
  PlannerGuard guard;
  auto& planner = scan::ChunkPlanner::instance();
  planner.set_enabled(false);
  EXPECT_EQ(planner.plan(100u << 20, 8), 8u);
  EXPECT_EQ(planner.plan(1, 4), 4u);
  EXPECT_EQ(planner.plan(1u << 20, 1), 1u);
}

TEST(ChunkPlanner, EnabledClampsToThreadBounds) {
  PlannerGuard guard;
  auto& planner = scan::ChunkPlanner::instance();
  planner.set_enabled(true);
  planner.reset();  // target back to 256 KiB
  // Tiny input: bytes/target rounds to 0 → floor of one chunk per thread.
  EXPECT_EQ(planner.plan(1024, 4), 4u);
  // Huge input: capped at kMaxChunksPerThread per thread.
  EXPECT_EQ(planner.plan(1u << 30, 4),
            4u * scan::ChunkPlanner::kMaxChunksPerThread);
  // In between: bytes / 256 KiB.
  EXPECT_EQ(planner.plan(8u * 256 * 1024, 4), 8u);
  // Single-threaded runs never split.
  EXPECT_EQ(planner.plan(1u << 30, 1), 1u);
}

TEST(ChunkPlanner, ObserveAdaptsTargetAndCountsReplans) {
  PlannerGuard guard;
  auto& planner = scan::ChunkPlanner::instance();
  planner.set_enabled(true);
  planner.reset();
  const std::size_t initial = planner.snapshot().target_bytes;
  // One chunk 4x slower than the mean → imbalance 4.0 → halve.
  planner.observe(4, 4000, 4000);
  auto snap = planner.snapshot();
  EXPECT_EQ(snap.target_bytes, initial / 2);
  EXPECT_EQ(snap.replans, 1u);
  // Perfect balance → double back.
  planner.observe(4, 4000, 1000);
  snap = planner.snapshot();
  EXPECT_EQ(snap.target_bytes, initial);
  EXPECT_EQ(snap.replans, 2u);
  // reset() restores the default target and clears counters.
  planner.observe(4, 4000, 4000);
  planner.reset();
  snap = planner.snapshot();
  EXPECT_EQ(snap.target_bytes, scan::ChunkPlanner::kDefaultTargetBytes);
  EXPECT_EQ(snap.replans, 0u);
  EXPECT_TRUE(snap.enabled) << "reset must keep the enabled flag";
}

TEST(ChunkPlanner, TargetStaysWithinFloorAndCap) {
  PlannerGuard guard;
  auto& planner = scan::ChunkPlanner::instance();
  planner.set_enabled(true);
  planner.reset();
  // Hammer the shrink path far past the floor.
  for (int i = 0; i < 32; ++i) planner.observe(4, 4000, 4000);
  EXPECT_GE(planner.snapshot().target_bytes,
            scan::ChunkPlanner::kMinTargetBytes);
  // Hammer the grow path far past the cap.
  for (int i = 0; i < 64; ++i) planner.observe(4, 4000, 1000);
  EXPECT_LE(planner.snapshot().target_bytes,
            scan::ChunkPlanner::kMaxTargetBytes);
}

// ---- stress shapes (CI executor-stress step, all sanitizer lanes) ----------

TEST(ExecutorStress, ConcurrentSessionsOnOneEightThreadPool) {
  // Several caller threads dispatch batches into one 8-thread pool at once,
  // like concurrent StreamMatcher sessions sharing default_executor().
  WorkerPool pool(8);
  constexpr int kSessions = 6;
  constexpr int kBatches = 50;
  std::vector<std::atomic<std::uint64_t>> sums(kSessions);
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      for (int b = 0; b < kBatches; ++b) {
        const auto fn = [&](unsigned task, unsigned) {
          sums[s].fetch_add(task + 1);
        };
        pool.run(8, fn);
      }
    });
  }
  for (auto& th : sessions) th.join();
  // Each batch adds 1+2+...+8 = 36.
  for (int s = 0; s < kSessions; ++s)
    EXPECT_EQ(sums[s].load(), static_cast<std::uint64_t>(kBatches) * 36u) << s;
}

TEST(ExecutorStress, ShutdownWhileDispatchingChurn) {
  // Construct, dispatch from several threads, destroy — repeatedly.  The
  // destructor must drain queued jobs before the team exits so no caller is
  // left parked on done_cv_ forever.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> total{0};
    {
      WorkerPool pool(4);
      std::vector<std::thread> callers;
      for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&] {
          const auto fn = [&](unsigned, unsigned) { total.fetch_add(1); };
          for (int i = 0; i < 10; ++i) pool.run(4, fn);
        });
      }
      for (auto& th : callers) th.join();
      // Pool destroyed immediately after the last dispatch returns.
    }
    EXPECT_EQ(total.load(), 4u * 10u * 4u) << round;
  }
}

TEST(ExecutorStress, StealChurnEightThreads) {
  // Several caller threads race batches into one 8-thread work-stealing
  // pool with skewed task costs, so the deques see constant cross-worker
  // steal traffic — the tsan-lane shape for the Chase-Lev integration.
  WorkerPool pool(8);
  pool.set_policy(sched::Policy::kWorkStealing);
  constexpr int kSessions = 4;
  constexpr int kBatches = 25;
  std::vector<std::atomic<std::uint64_t>> sums(kSessions);
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      for (int b = 0; b < kBatches; ++b) {
        const auto fn = [&](unsigned task, unsigned) {
          if (task % 8 == 0) {
            // Make one worker's deque the hot steal target.
            volatile std::uint64_t spin = 0;
            for (int i = 0; i < 20000; ++i) spin = spin + i;
          }
          sums[s].fetch_add(task + 1);
        };
        pool.run(16, fn);
      }
    });
  }
  for (auto& th : sessions) th.join();
  // Each batch adds 1+2+...+16 = 136.
  for (int s = 0; s < kSessions; ++s)
    EXPECT_EQ(sums[s].load(), static_cast<std::uint64_t>(kBatches) * 136u) << s;
}

TEST(ExecutorStress, GuidedChurnWithConcurrentSessions) {
  WorkerPool pool(8);
  pool.set_policy(sched::Policy::kGuided);
  constexpr int kSessions = 4;
  constexpr int kBatches = 25;
  std::vector<std::atomic<std::uint64_t>> sums(kSessions);
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      for (int b = 0; b < kBatches; ++b) {
        const auto fn = [&](unsigned task, unsigned) {
          sums[s].fetch_add(task + 1);
        };
        pool.run(32, fn);
      }
    });
  }
  for (auto& th : sessions) th.join();
  // Each batch adds 1+2+...+32 = 528.
  for (int s = 0; s < kSessions; ++s)
    EXPECT_EQ(sums[s].load(), static_cast<std::uint64_t>(kBatches) * 528u) << s;
}

TEST(ExecutorStress, PolicyFlipsWhileDispatching) {
  // set_policy is documented to affect only jobs enqueued after the call;
  // flipping it concurrently with dispatch must never lose or duplicate a
  // task under any interleaving.
  WorkerPool pool(4);
  std::atomic<bool> stop{false};
  std::thread flipper([&] {
    unsigned i = 0;
    while (!stop.load()) {
      pool.set_policy(static_cast<sched::Policy>(i++ % sched::kNumPolicies));
      std::this_thread::yield();
    }
  });
  for (int b = 0; b < 200; ++b) {
    std::atomic<int> ran{0};
    const auto fn = [&](unsigned, unsigned) { ran.fetch_add(1); };
    pool.run(8, fn);
    ASSERT_EQ(ran.load(), 8) << "batch " << b;
  }
  stop.store(true);
  flipper.join();
}

// ---- scan::Executor seam ---------------------------------------------------

TEST(ScanExecutor, InlineExecutorRunsOnCaller) {
  scan::Executor& exec = scan::inline_executor();
  std::set<std::thread::id> tids;
  const auto body = [&](unsigned) { tids.insert(std::this_thread::get_id()); };
  exec.for_chunks(7, body);
  EXPECT_EQ(tids.size(), 1u);
  EXPECT_EQ(tids.count(std::this_thread::get_id()), 1u);
  EXPECT_EQ(exec.stats().pool_dispatches, 0u);
}

TEST(ScanExecutor, DefaultExecutorDispatchesMultiChunkCalls) {
  scan::Executor& exec = scan::default_executor();
  const scan::ExecutorStats before = exec.stats();
  std::atomic<int> ran{0};
  const auto body = [&](unsigned) { ran.fetch_add(1); };
  exec.for_chunks(4, body);
  EXPECT_EQ(ran.load(), 4);
  const scan::ExecutorStats after = exec.stats();
  EXPECT_EQ(after.pool_dispatches - before.pool_dispatches, 1u);
  EXPECT_GE(after.pool_workers, 4u);

  // Single-chunk calls stay on the caller and are not dispatches.
  ran.store(0);
  exec.for_chunks(1, body);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(exec.stats().pool_dispatches, after.pool_dispatches);
}

}  // namespace
}  // namespace sfa
