// Persistent worker pool + scan executor seam: correctness of stripe-bound
// dispatch, inline fallbacks, exception propagation, and the stress shapes
// the CI executor-stress step runs under all three sanitizer lanes —
// concurrent caller sessions on one pool and shutdown-while-dispatching
// churn.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sfa/concurrent/worker_pool.hpp"
#include "sfa/core/scan/executor.hpp"

namespace sfa {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  const auto fn = [&](unsigned task, unsigned) { hits[task].fetch_add(1); };
  pool.run(64, fn);
  for (unsigned t = 0; t < 64; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(WorkerPool, StripeBindingLandsTasksOnDistinctThreads) {
  // Task t of a job runs on worker (t % team): with tasks <= team size every
  // task must execute on a different pool thread, even on one core.  The
  // trace validator's worker-track count relies on exactly this.
  WorkerPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> tids;
  std::set<unsigned> workers;
  const auto fn = [&](unsigned, unsigned worker) {
    std::lock_guard<std::mutex> lock(mu);
    tids.insert(std::this_thread::get_id());
    workers.insert(worker);
  };
  pool.run(4, fn);
  EXPECT_EQ(tids.size(), 4u);
  EXPECT_EQ(workers.size(), 4u);
  EXPECT_EQ(tids.count(std::this_thread::get_id()), 0u)
      << "caller executed a task of a fully-staffed multi-task job";
}

TEST(WorkerPool, SingleTaskRunsInlineOnCaller) {
  WorkerPool pool(4);
  std::thread::id ran_on;
  unsigned worker_arg = 0;
  const auto fn = [&](unsigned, unsigned worker) {
    ran_on = std::this_thread::get_id();
    worker_arg = worker;
  };
  const auto before = pool.stats().dispatches;
  pool.run(1, fn);
  EXPECT_EQ(ran_on, std::this_thread::get_id());
  EXPECT_EQ(worker_arg, ChunkFn::kInlineWorker);
  EXPECT_EQ(pool.stats().dispatches, before) << "inline run counted as dispatch";
}

TEST(WorkerPool, EmptyTeamRunsInline) {
  WorkerPool pool;  // no workers
  std::vector<int> hits(8, 0);
  const auto fn = [&](unsigned task, unsigned worker) {
    EXPECT_EQ(worker, ChunkFn::kInlineWorker);
    ++hits[task];
  };
  pool.run(8, fn);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPool, NestedRunFromWorkerExecutesInline) {
  // A run() from inside a pool worker must not park on its own team.
  WorkerPool pool(2);
  std::atomic<int> inner_hits{0};
  const auto inner = [&](unsigned, unsigned worker) {
    EXPECT_EQ(worker, ChunkFn::kInlineWorker);
    inner_hits.fetch_add(1);
  };
  const auto outer = [&](unsigned, unsigned) { pool.run(4, inner); };
  pool.run(2, outer);
  EXPECT_EQ(inner_hits.load(), 8);
}

TEST(WorkerPool, EnsureWorkersGrowsAndNeverShrinks) {
  WorkerPool pool;
  EXPECT_EQ(pool.num_workers(), 0u);
  pool.ensure_workers(3);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.ensure_workers(1);
  EXPECT_EQ(pool.num_workers(), 3u);
  pool.ensure_workers(6);
  EXPECT_EQ(pool.num_workers(), 6u);
  EXPECT_EQ(pool.stats().workers, 6u);
}

TEST(WorkerPool, FirstExceptionPropagatesAndPoolStaysUsable) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  const auto fn = [&](unsigned task, unsigned) {
    ran.fetch_add(1);
    if (task == 5) throw std::runtime_error("task 5 failed");
  };
  EXPECT_THROW(pool.run(16, fn), std::runtime_error);
  EXPECT_EQ(ran.load(), 16) << "remaining tasks must still run";

  std::atomic<int> again{0};
  const auto ok = [&](unsigned, unsigned) { again.fetch_add(1); };
  pool.run(8, ok);
  EXPECT_EQ(again.load(), 8);
}

TEST(WorkerPool, CountsDispatchesAndWakeups) {
  WorkerPool pool(4);
  const auto fn = [](unsigned, unsigned) {};
  const auto before = pool.stats();
  for (int i = 0; i < 10; ++i) pool.run(4, fn);
  const auto after = pool.stats();
  EXPECT_EQ(after.dispatches - before.dispatches, 10u);
  EXPECT_GT(after.wakeups, before.wakeups)
      << "parked workers claimed work without a recorded wakeup";
}

// ---- stress shapes (CI executor-stress step, all sanitizer lanes) ----------

TEST(ExecutorStress, ConcurrentSessionsOnOneEightThreadPool) {
  // Several caller threads dispatch batches into one 8-thread pool at once,
  // like concurrent StreamMatcher sessions sharing default_executor().
  WorkerPool pool(8);
  constexpr int kSessions = 6;
  constexpr int kBatches = 50;
  std::vector<std::atomic<std::uint64_t>> sums(kSessions);
  std::vector<std::thread> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      for (int b = 0; b < kBatches; ++b) {
        const auto fn = [&](unsigned task, unsigned) {
          sums[s].fetch_add(task + 1);
        };
        pool.run(8, fn);
      }
    });
  }
  for (auto& th : sessions) th.join();
  // Each batch adds 1+2+...+8 = 36.
  for (int s = 0; s < kSessions; ++s)
    EXPECT_EQ(sums[s].load(), static_cast<std::uint64_t>(kBatches) * 36u) << s;
}

TEST(ExecutorStress, ShutdownWhileDispatchingChurn) {
  // Construct, dispatch from several threads, destroy — repeatedly.  The
  // destructor must drain queued jobs before the team exits so no caller is
  // left parked on done_cv_ forever.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint64_t> total{0};
    {
      WorkerPool pool(4);
      std::vector<std::thread> callers;
      for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&] {
          const auto fn = [&](unsigned, unsigned) { total.fetch_add(1); };
          for (int i = 0; i < 10; ++i) pool.run(4, fn);
        });
      }
      for (auto& th : callers) th.join();
      // Pool destroyed immediately after the last dispatch returns.
    }
    EXPECT_EQ(total.load(), 4u * 10u * 4u) << round;
  }
}

// ---- scan::Executor seam ---------------------------------------------------

TEST(ScanExecutor, InlineExecutorRunsOnCaller) {
  scan::Executor& exec = scan::inline_executor();
  std::set<std::thread::id> tids;
  const auto body = [&](unsigned) { tids.insert(std::this_thread::get_id()); };
  exec.for_chunks(7, body);
  EXPECT_EQ(tids.size(), 1u);
  EXPECT_EQ(tids.count(std::this_thread::get_id()), 1u);
  EXPECT_EQ(exec.stats().pool_dispatches, 0u);
}

TEST(ScanExecutor, DefaultExecutorDispatchesMultiChunkCalls) {
  scan::Executor& exec = scan::default_executor();
  const scan::ExecutorStats before = exec.stats();
  std::atomic<int> ran{0};
  const auto body = [&](unsigned) { ran.fetch_add(1); };
  exec.for_chunks(4, body);
  EXPECT_EQ(ran.load(), 4);
  const scan::ExecutorStats after = exec.stats();
  EXPECT_EQ(after.pool_dispatches - before.pool_dispatches, 1u);
  EXPECT_GE(after.pool_workers, 4u);

  // Single-chunk calls stay on the caller and are not dispatches.
  ran.store(0);
  exec.for_chunks(1, body);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(exec.stats().pool_dispatches, after.pool_dispatches);
}

}  // namespace
}  // namespace sfa
