// Speculative parallel DFA matching (related-work baseline) tests: always
// correct, and failure-free exactly when the speculation heuristic applies
// (match-anywhere FAs parked in their hot state) — the contrast that
// motivates SFAs.
#include <gtest/gtest.h>

#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/prosite/patterns.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

std::vector<Symbol> random_protein(std::size_t len, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Symbol> v(len);
  for (auto& s : v) s = static_cast<Symbol>(rng.below(20));
  return v;
}

class SpeculativeSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpeculativeSweep, AlwaysAgreesWithSequential) {
  const unsigned threads = GetParam();
  const Dfa dfa = compile_prosite("N-{P}-[ST]-{P}.");
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto text = random_protein(4096 + 31 * seed, seed);
    const MatchResult seq = match_sequential(dfa, text);
    const SpeculativeResult spec = match_speculative(dfa, text, threads);
    EXPECT_EQ(spec.result.accepted, seq.accepted) << seed;
    EXPECT_EQ(spec.result.final_dfa_state, seq.final_dfa_state) << seed;
  }
}

TEST_P(SpeculativeSweep, CorrectEvenWithAdversarialSpeculation) {
  // Force the worst guess: a state the run never parks in.
  const unsigned threads = GetParam();
  const Dfa dfa = compile_prosite("R-G-D.");
  const auto text = random_protein(8192, 3);
  const MatchResult seq = match_sequential(dfa, text);
  for (Dfa::StateId guess = 0; guess < dfa.size(); ++guess) {
    const SpeculativeResult spec =
        match_speculative(dfa, text, threads, guess);
    EXPECT_EQ(spec.result.accepted, seq.accepted) << "guess " << guess;
    EXPECT_EQ(spec.result.final_dfa_state, seq.final_dfa_state);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SpeculativeSweep,
                         ::testing::Values(1u, 2u, 4u, 8u),
                         [](const auto& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Speculative, HotStateGuessSucceedsOnSparseMatches) {
  // Match-anywhere FA over text with NO matches: the DFA sits in its start
  // state almost always; speculation from the sampled hot state must not
  // fail on any chunk.
  const Dfa dfa = compile_prosite("W-W-W-W.");  // improbable motif
  std::vector<Symbol> text(1 << 15, Alphabet::amino().symbol_of('A'));
  const SpeculativeResult spec = match_speculative(dfa, text, 8);
  EXPECT_EQ(spec.rematched_chunks, 0u);
  EXPECT_FALSE(spec.result.accepted);
}

TEST(Speculative, RPatternDefeatsSpeculation) {
  // The r-benchmark DFA (exact string, no catenation) walks into the sink
  // and STAYS there... which actually makes the sink a perfect guess.  The
  // interesting case is a text that keeps re-entering prefixes: build input
  // as repeated first-symbols so the automaton oscillates.  What the test
  // pins down: an adversarial wrong guess forces every chunk to re-match.
  const Dfa dfa = make_r_benchmark_dfa(50, 7);
  const auto text = random_protein(1 << 14, 11);
  // Guess state 25 (mid-prefix): the run is almost surely in the sink.
  const SpeculativeResult spec = match_speculative(dfa, text, 8, 25);
  EXPECT_EQ(spec.rematched_chunks, spec.chunks - 1);
  EXPECT_EQ(spec.result.accepted, match_sequential(dfa, text).accepted);
}

TEST(Speculative, PickSpeculationStateFindsHotState) {
  const Dfa dfa = compile_prosite("W-W-W-W.");
  std::vector<Symbol> text(8192, Alphabet::amino().symbol_of('A'));
  // All-'A' text keeps the match-anywhere FA in its start state.
  EXPECT_EQ(pick_speculation_state(dfa, text), dfa.start());
}

TEST(Speculative, ShortInputSingleChunk) {
  const Dfa dfa = compile_prosite("R-G-D.");
  const auto text = Alphabet::amino().encode("AARGDAA");
  const SpeculativeResult spec = match_speculative(dfa, text, 8);
  EXPECT_EQ(spec.chunks, 1u);
  EXPECT_EQ(spec.rematched_chunks, 0u);
  EXPECT_TRUE(spec.result.accepted);
}

}  // namespace
}  // namespace sfa
