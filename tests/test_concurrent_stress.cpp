// Deterministic concurrency stress for the lock-free substrate, built on the
// tests/harness stress driver and sized to run meaningfully under the `tsan`
// preset (8+ threads, barrier-aligned phases, seeded operation streams).
// These tests are about *interleavings*: correctness assertions are made in
// the quiescent windows between phases, where they cannot race the
// structures they inspect.
#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <optional>
#include <vector>

#include "harness/stress.hpp"
#include "sfa/concurrent/global_queue.hpp"
#include "sfa/concurrent/lockfree_hash_set.hpp"
#include "sfa/concurrent/mpmc_queue.hpp"
#include "sfa/concurrent/ws_queue.hpp"

namespace sfa {
namespace {

using testing::StressOptions;
using testing::run_stress;
using testing::scaled_ops;

constexpr unsigned kThreads = 8;

// ---- LockFreeHashSet --------------------------------------------------------

struct StressNode {
  std::atomic<StressNode*> next{nullptr};
  std::uint64_t fp = 0;
  std::uint64_t value = 0;
};
struct StressTraits {
  static std::atomic<StressNode*>& next(StressNode& n) { return n.next; }
  static std::uint64_t fingerprint(const StressNode& n) { return n.fp; }
  static bool same_state(const StressNode& a, const StressNode& b) {
    return a.value == b.value;
  }
};

TEST(LockFreeHashSetStress, EightThreadInsertStorm) {
  // All threads race to insert values from one overlapping range per phase;
  // exactly one node per value may win, every value must be findable, and
  // fingerprint collisions (fp = value % small) must never merge distinct
  // values.
  StressOptions opt;
  opt.threads = kThreads;
  opt.seed = 0x5717E55;
  opt.ops_per_thread = scaled_ops(4000);
  opt.phases = 3;

  const std::uint64_t values_per_phase = opt.ops_per_thread / 2;
  const std::uint64_t total_values = values_per_phase * opt.phases;

  LockFreeHashSet<StressNode, StressTraits> set(128);  // deliberately small
  std::vector<std::deque<StressNode>> pool(kThreads);
  for (auto& p : pool) p.resize(opt.ops_per_thread * opt.phases);
  std::vector<std::atomic<std::uint32_t>> win_count(total_values);
  std::vector<std::atomic<std::uint32_t>> attempts(total_values);
  for (auto& c : win_count) c.store(0);
  for (auto& c : attempts) c.store(0);

  run_stress(
      opt,
      [&](unsigned tid, unsigned phase, Xoshiro256& rng) {
        std::size_t next_node = phase * opt.ops_per_thread;
        for (std::uint64_t i = 0; i < opt.ops_per_thread; ++i) {
          const std::uint64_t value =
              phase * values_per_phase + rng.below(values_per_phase);
          StressNode& node = pool[tid][next_node++];
          node.value = value;
          // Weak fingerprint on purpose: forces chains and the exhaustive
          // same_state fallback on fingerprint collisions.
          node.fp = value % 251;
          attempts[value].fetch_add(1, std::memory_order_relaxed);
          if (set.insert_if_absent(&node).inserted)
            win_count[value].fetch_add(1, std::memory_order_relaxed);
        }
      },
      [&](unsigned phase) {
        // Quiescent invariants over everything inserted so far.
        for (std::uint64_t v = 0; v <= phase; ++v) {
          for (std::uint64_t value = v * values_per_phase;
               value < (v + 1) * values_per_phase; ++value) {
            const std::uint32_t wins = win_count[value].load();
            const std::uint32_t tried = attempts[value].load();
            ASSERT_LE(wins, 1u) << "value " << value << " inserted twice";
            ASSERT_EQ(wins, tried > 0 ? 1u : 0u) << "value " << value;
            if (tried > 0) {
              StressNode probe;
              probe.value = value;
              probe.fp = value % 251;
              ASSERT_NE(set.find(probe.fp, probe), nullptr)
                  << "value " << value << " vanished";
            }
          }
        }
      });
  EXPECT_GT(set.counters.fp_collisions.load(), 0u);
  EXPECT_GT(set.counters.duplicates.load(), 0u);
}

// ---- WorkStealingQueue ------------------------------------------------------

TEST(WsQueueStress, EightThreadNearestVictimMesh) {
  // The builder's topology: every thread owns a deque, pushes and pops its
  // own work, and — when empty — steals from the nearest victim first,
  // exactly the loop in build_parallel.cpp.  Every pushed item must be
  // consumed exactly once across all threads.
  StressOptions opt;
  opt.threads = kThreads;
  opt.seed = 0xD0DECA;
  opt.ops_per_thread = scaled_ops(6000);
  opt.phases = 3;

  std::vector<WorkStealingQueue> queues(kThreads);
  std::atomic<std::uint64_t> pushed_sum{0}, pushed_count{0};
  std::atomic<std::uint64_t> consumed_sum{0}, consumed_count{0};

  run_stress(
      opt,
      [&](unsigned tid, unsigned phase, Xoshiro256& rng) {
        std::uint64_t seq = 0;
        for (std::uint64_t i = 0; i < opt.ops_per_thread; ++i) {
          const std::uint64_t dice = rng.below(10);
          if (dice < 5) {
            // Globally unique non-zero payload.
            const std::uint64_t item =
                (static_cast<std::uint64_t>(phase) << 40) |
                (static_cast<std::uint64_t>(tid) << 32) | ++seq;
            queues[tid].push(item);
            pushed_sum.fetch_add(item, std::memory_order_relaxed);
            pushed_count.fetch_add(1, std::memory_order_relaxed);
          } else if (dice < 8) {
            if (const auto v = queues[tid].pop()) {
              consumed_sum.fetch_add(*v, std::memory_order_relaxed);
              consumed_count.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            // Nearest victim first, as in ParallelBuilder::get_work.
            for (unsigned d = 1; d < kThreads; ++d) {
              if (const auto v = queues[(tid + d) % kThreads].steal()) {
                consumed_sum.fetch_add(*v, std::memory_order_relaxed);
                consumed_count.fetch_add(1, std::memory_order_relaxed);
                break;
              }
            }
          }
        }
      },
      [&](unsigned) {
        // Drain whatever is left while the world is stopped, then the books
        // must balance exactly.
        for (auto& q : queues) {
          while (const auto v = q.pop()) {
            consumed_sum.fetch_add(*v, std::memory_order_relaxed);
            consumed_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ASSERT_EQ(pushed_count.load(), consumed_count.load());
        ASSERT_EQ(pushed_sum.load(), consumed_sum.load());
      });
}

// ---- MpmcQueue --------------------------------------------------------------

TEST(MpmcQueueStress, EightThreadMixedProduceConsume) {
  StressOptions opt;
  opt.threads = kThreads;
  opt.seed = 0x3A11AD;
  opt.ops_per_thread = scaled_ops(4000);
  opt.phases = 3;

  MpmcQueue q;
  std::atomic<std::uint64_t> pushed_sum{0}, pushed_count{0};
  std::atomic<std::uint64_t> popped_sum{0}, popped_count{0};

  run_stress(
      opt,
      [&](unsigned tid, unsigned phase, Xoshiro256& rng) {
        std::uint64_t seq = 0;
        for (std::uint64_t i = 0; i < opt.ops_per_thread; ++i) {
          if (rng.below(2) == 0) {
            const std::uint64_t item =
                (static_cast<std::uint64_t>(phase) << 40) |
                (static_cast<std::uint64_t>(tid) << 32) | ++seq;
            q.enqueue(item);
            pushed_sum.fetch_add(item, std::memory_order_relaxed);
            pushed_count.fetch_add(1, std::memory_order_relaxed);
          } else if (const auto v = q.dequeue()) {
            popped_sum.fetch_add(*v, std::memory_order_relaxed);
            popped_count.fetch_add(1, std::memory_order_relaxed);
          }
        }
      },
      [&](unsigned) {
        while (const auto v = q.dequeue()) {
          popped_sum.fetch_add(*v, std::memory_order_relaxed);
          popped_count.fetch_add(1, std::memory_order_relaxed);
        }
        ASSERT_EQ(pushed_count.load(), popped_count.load());
        ASSERT_EQ(pushed_sum.load(), popped_sum.load());
      });
}

// ---- GlobalQueue ------------------------------------------------------------

TEST(GlobalQueueStress, EightThreadEnqueueThenPartitionedDrain) {
  // Phase 0: all threads race CAS enqueues into one global queue.
  // Phase 1: every thread drains its static partition; the union must be
  // exactly the set of published items, each taken once.
  StressOptions opt;
  opt.threads = kThreads;
  opt.seed = 0x61084;
  opt.ops_per_thread = scaled_ops(2000);
  opt.phases = 2;

  const std::size_t capacity = kThreads * opt.ops_per_thread;
  GlobalQueue q(capacity);
  std::atomic<std::uint64_t> enqueued_sum{0}, enqueued_count{0};
  std::atomic<std::uint64_t> taken_sum{0}, taken_count{0};

  run_stress(
      opt,
      [&](unsigned tid, unsigned phase, Xoshiro256& rng) {
        if (phase == 0) {
          for (std::uint64_t i = 0; i < opt.ops_per_thread; ++i) {
            // Some threads stop early (rng) so the partition is ragged.
            if (rng.below(100) == 0) break;
            const std::uint64_t item =
                (static_cast<std::uint64_t>(tid) << 32) | (i + 1);
            if (!q.try_enqueue(item)) break;
            enqueued_sum.fetch_add(item, std::memory_order_relaxed);
            enqueued_count.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          GlobalQueue::Cursor cursor(tid, kThreads);
          bool exhausted = false;
          for (;;) {
            if (const auto v = cursor.take(q, exhausted)) {
              taken_sum.fetch_add(*v, std::memory_order_relaxed);
              taken_count.fetch_add(1, std::memory_order_relaxed);
            } else if (exhausted) {
              break;
            }
          }
        }
      },
      [&](unsigned phase) {
        if (phase == 0) {
          ASSERT_EQ(q.size(), enqueued_count.load());
          q.close();
        } else {
          ASSERT_EQ(taken_count.load(), enqueued_count.load());
          ASSERT_EQ(taken_sum.load(), enqueued_sum.load());
        }
      });
}

}  // namespace
}  // namespace sfa
