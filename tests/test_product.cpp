// Product-construction tests: boolean DFA algebra and multi-pattern unions.
#include <gtest/gtest.h>

#include "sfa/automata/minimize.hpp"
#include "sfa/automata/ops.hpp"
#include "sfa/automata/product.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/equivalence.hpp"
#include "sfa/prosite/prosite_parser.hpp"
#include "sfa/support/rng.hpp"

namespace sfa {
namespace {

const Alphabet& kDna = Alphabet::dna();

Dfa exact(const char* pattern) {
  CompileOptions opt;
  opt.anywhere = false;
  return compile_pattern(pattern, kDna, opt);
}

TEST(ProductTest, UnionAcceptsEither) {
  const Dfa u = dfa_union(exact("AC"), exact("GT"));
  EXPECT_TRUE(u.accepts(kDna.encode("AC")));
  EXPECT_TRUE(u.accepts(kDna.encode("GT")));
  EXPECT_FALSE(u.accepts(kDna.encode("AG")));
  EXPECT_TRUE(dfa_equivalent(minimize(u), exact("AC|GT")));
}

TEST(ProductTest, IntersectionNeedsBoth) {
  // Strings with at least one A AND at least one T.
  const Dfa has_a = compile_pattern("A", kDna);
  const Dfa has_t = compile_pattern("T", kDna);
  const Dfa both = dfa_intersection(has_a, has_t);
  EXPECT_TRUE(both.accepts(kDna.encode("CATC")));
  EXPECT_FALSE(both.accepts(kDna.encode("CAC")));
  EXPECT_FALSE(both.accepts(kDna.encode("TTT")));
}

TEST(ProductTest, DifferenceAndComplementLaws) {
  const Dfa a = compile_pattern("AC", kDna);
  const Dfa b = compile_pattern("CA", kDna);
  // a \ b == a ∩ complement(b)
  const Dfa diff = dfa_difference(a, b);
  const Dfa via_complement = dfa_intersection(a, dfa_complement(b));
  EXPECT_TRUE(dfa_equivalent(diff, via_complement));
  // De Morgan: complement(a ∪ b) == complement(a) ∩ complement(b)
  EXPECT_TRUE(dfa_equivalent(
      dfa_complement(dfa_union(a, b)),
      dfa_intersection(dfa_complement(a), dfa_complement(b))));
}

TEST(ProductTest, EmptinessDetection) {
  const Dfa a = exact("ACGT");
  EXPECT_FALSE(dfa_empty(a));
  EXPECT_TRUE(dfa_empty(dfa_difference(a, a)));
  // a ∩ complement(a) == empty
  EXPECT_TRUE(dfa_empty(dfa_intersection(a, dfa_complement(a))));
}

TEST(ProductTest, EquivalenceViaEmptiness) {
  // Classic: L(a) == L(b) iff (a\b) ∪ (b\a) empty — cross-check the BFS
  // equivalence checker against the algebraic route.
  const Dfa a = exact("(AC)*");
  const Dfa b = exact("(AC)*()");
  EXPECT_TRUE(dfa_empty(dfa_union(dfa_difference(a, b), dfa_difference(b, a))));
  const Dfa c = exact("(AC)+");
  EXPECT_FALSE(
      dfa_empty(dfa_union(dfa_difference(a, c), dfa_difference(c, a))));
}

TEST(ProductTest, UnionAllManyPatterns) {
  std::vector<Dfa> dfas;
  for (const char* p : {"AAC", "GGT", "CGC", "TAT", "ACCA"})
    dfas.push_back(compile_pattern(p, kDna));
  const Dfa all = dfa_union_all(std::move(dfas));
  EXPECT_TRUE(all.accepts(kDna.encode("TTGGTTT")));
  EXPECT_TRUE(all.accepts(kDna.encode("TATT")));
  EXPECT_TRUE(all.accepts(kDna.encode("CACCAC")));
  EXPECT_FALSE(all.accepts(kDna.encode("CCCCCC")));
}

TEST(ProductTest, UnionSfaStillVerifies) {
  // The multi-pattern flow: union DFA -> SFA -> verify.
  const Dfa u = minimize(
      dfa_union(compile_prosite("R-G-D."), compile_prosite("[ST]-x-[RK].")));
  const Sfa sfa = build_sfa_parallel(u, {.num_threads = 2});
  EXPECT_TRUE(verify_sfa(sfa, u, {.random_inputs = 40}).ok);
}

TEST(ProductTest, MismatchedAlphabetsThrow) {
  EXPECT_THROW(dfa_union(exact("AC"), compile_prosite("R-G-D.")),
               std::invalid_argument);
}

TEST(ProductTest, RandomizedAlgebraProperties) {
  // Property sweep: for random regex pairs, |L(a ∪ b)| membership on random
  // strings equals OR of individual memberships (and ∩ the AND).
  const char* patterns[] = {"A(C|G)T", "(AT)*", "[ACG]{2,3}", "T+A?"};
  Xoshiro256 rng(99);
  for (const char* pa : patterns) {
    for (const char* pb : patterns) {
      const Dfa a = exact(pa), b = exact(pb);
      const Dfa u = dfa_union(a, b), i = dfa_intersection(a, b);
      for (int trial = 0; trial < 40; ++trial) {
        std::vector<Symbol> s(rng.below(8));
        for (auto& c : s) c = static_cast<Symbol>(rng.below(4));
        const bool in_a = a.accepts(s), in_b = b.accepts(s);
        EXPECT_EQ(u.accepts(s), in_a || in_b) << pa << " | " << pb;
        EXPECT_EQ(i.accepts(s), in_a && in_b) << pa << " & " << pb;
      }
    }
  }
}

}  // namespace
}  // namespace sfa
