// Differential-oracle tests: every builder variant (baseline, hashed,
// transposed, parallel x {1,4} threads, hashed/transposed/parallel with
// forced compression, probabilistic) must agree with the plain-DFA reference
// and the classic matchers on a ≥50-entry seeded corpus, including the |Σ|
// edge cases and the degenerate languages.  A method × {compression on,off}
// matrix additionally asserts SFA isomorphism against the baseline builder.
// Fault-injection tests prove the oracle actually has teeth: a single flipped
// transition or corrupted mapping cell must be reported with a minimized
// reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "harness/corpus.hpp"
#include "harness/oracle.hpp"
#include "sfa/concurrent/scheduler.hpp"
#include "sfa/core/build.hpp"
#include "sfa/core/match.hpp"
#include "sfa/core/scan/executor.hpp"
#include "sfa/prosite/prosite_parser.hpp"

namespace sfa {
namespace {

using testing::BuilderVariant;
using testing::CorpusEntry;
using testing::CorpusOptions;
using testing::Divergence;
using testing::Oracle;
using testing::OracleOptions;
using testing::LazyVariant;
using testing::default_lazy_variants;
using testing::default_variants;
using testing::make_corpus;

CorpusOptions scaled_corpus_options() {
  CorpusOptions opt;
#if defined(SFA_SANITIZE_THREAD) || defined(SFA_SANITIZE_ADDRESS)
  // Sanitized runs keep the shapes but shrink the sweep (CI time budget);
  // the unsanitized run covers the full ≥50-entry corpus.
  opt.random_dfa_entries = 8;
  opt.regex_entries = 3;
  opt.prosite_entries = 2;
  opt.literal_entries = 4;
  opt.max_input_length = 48;
#endif
  return opt;
}

TEST(OracleCorpus, CoversRequiredShapes) {
  const auto corpus = make_corpus();  // full corpus: cheap, no SFA builds
  EXPECT_GE(corpus.size(), 50u);

  const auto has = [&](const std::string& needle) {
    return std::any_of(corpus.begin(), corpus.end(), [&](const CorpusEntry& e) {
      return e.name.find(needle) != std::string::npos;
    });
  };
  EXPECT_TRUE(has("k=1"));                  // 1-symbol alphabet
  EXPECT_TRUE(has("k=256"));                // full uint8 alphabet
  EXPECT_TRUE(has("empty-language"));
  EXPECT_TRUE(has("empty-string-only"));
  EXPECT_TRUE(has("universal"));
  EXPECT_TRUE(has("literal/"));
  EXPECT_TRUE(has("regex/"));
  EXPECT_TRUE(has("prosite/"));
  EXPECT_TRUE(has("r-benchmark"));

  for (const CorpusEntry& e : corpus) {
    EXPECT_TRUE(e.dfa.complete()) << e.name;
    ASSERT_FALSE(e.inputs.empty()) << e.name;
    EXPECT_TRUE(e.inputs.front().empty()) << e.name << ": first input must be ε";
  }
}

TEST(OracleCorpus, DeterministicFromSeed) {
  const auto a = make_corpus();
  const auto b = make_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].inputs, b[i].inputs);
  }
}

TEST(OracleDifferential, AllVariantsAgreeOnSeededCorpus) {
  const auto corpus = make_corpus(scaled_corpus_options());
  const Oracle oracle;
  ASSERT_GE(oracle.variants().size(), 5u);  // all five builders represented
  for (const CorpusEntry& entry : corpus) {
    const auto d = oracle.check(entry);
    EXPECT_FALSE(d.has_value()) << d->reproducer();
  }
}

TEST(OracleDifferential, DefaultVariantsCoverSequentialCompression) {
  const auto variants = default_variants();
  const auto has = [&](const std::string& name) {
    return std::any_of(variants.begin(), variants.end(),
                       [&](const BuilderVariant& v) { return v.name == name; });
  };
  EXPECT_TRUE(has("hashed-compress"));
  EXPECT_TRUE(has("transposed-compress"));
  EXPECT_TRUE(has("parallel-compress"));
}

TEST(OracleDifferential, MethodCompressionMatrixIsomorphicToBaseline) {
  // Every BuildMethod × {compression off, on} must yield an SFA isomorphic
  // to the baseline builder's (identical automaton up to state renumbering)
  // AND pass the full oracle.  This covers the newly-legal sequential
  // compressed configurations alongside the paper's parallel one.
  const std::vector<CorpusEntry> entries = {
      testing::random_dfa_entry(211, 9, 4, {}),
      testing::random_dfa_entry(223, 6, 3, {}),
  };
  const Oracle oracle;
  for (const CorpusEntry& entry : entries) {
    const Sfa reference = build_sfa_baseline(entry.dfa);
    for (const BuildMethod m :
         {BuildMethod::kBaseline, BuildMethod::kHashed, BuildMethod::kTransposed,
          BuildMethod::kParallel, BuildMethod::kProbabilistic}) {
      for (const bool compress : {false, true}) {
        const std::string label = std::string(build_method_name(m)) +
                                  (compress ? "+compress" : "");
        SCOPED_TRACE(entry.name + " / " + label);
        BuildOptions opt;
        if (m == BuildMethod::kParallel) opt.num_threads = 3;
        // A tiny threshold forces the store through recompression and into
        // compress-on-create mode.  kBaseline/kProbabilistic accept and
        // ignore it — included to pin that contract.
        if (compress) opt.memory_threshold_bytes = 256;
        const Sfa sfa = build_sfa(entry.dfa, m, opt);
        const auto iso = testing::check_isomorphic(reference, sfa);
        EXPECT_FALSE(iso.has_value()) << *iso;
        const auto d = oracle.check_sfa(entry, sfa, label);
        EXPECT_FALSE(d.has_value()) << d->reproducer();
      }
    }
  }
}

TEST(OracleDifferential, SequentialCompressedMatchesUncompressedBaseline) {
  // Acceptance criterion for the compression store seam: a compressed
  // sequential build stores the mappings compressed (fewer bytes, flag set)
  // yet decodes to the exact same mapping cells as the uncompressed build.
  // A PROSITE automaton keeps the mappings sink-dominated, so the deflate-
  // like codec genuinely shrinks them.
  const Dfa dfa = compile_prosite("C-x-[DN]-x(4)-[FY]-x-C.");
  for (const BuildMethod m : {BuildMethod::kHashed, BuildMethod::kTransposed}) {
    SCOPED_TRACE(build_method_name(m));
    const Sfa plain = build_sfa(dfa, m);
    BuildOptions opt;
    opt.memory_threshold_bytes = 1u << 12;
    BuildStats stats;
    const Sfa packed = build_sfa(dfa, m, opt, &stats);
    EXPECT_TRUE(stats.compression_triggered);
    EXPECT_GT(stats.compression_seconds, 0.0);
    EXPECT_LT(stats.mapping_bytes_stored, stats.mapping_bytes_uncompressed);
    ASSERT_EQ(plain.num_states(), packed.num_states());
    ASSERT_TRUE(packed.has_mappings());
    std::vector<std::uint32_t> a, b;
    for (Sfa::StateId s = 0; s < plain.num_states(); ++s) {
      plain.mapping(s, a);
      packed.mapping(s, b);
      ASSERT_EQ(a, b) << "mapping of state " << s << " decodes differently";
      for (unsigned sym = 0; sym < plain.num_symbols(); ++sym)
        ASSERT_EQ(plain.transition(s, static_cast<Symbol>(sym)),
                  packed.transition(s, static_cast<Symbol>(sym)));
    }
  }
}

TEST(OracleDifferential, EdgeCaseAlphabets) {
  const Oracle oracle;
  for (const CorpusEntry& entry :
       {testing::random_dfa_entry(11, 7, 1, {}),
        testing::random_dfa_entry(12, 5, 2, {}),
        testing::random_dfa_entry(13, 3, 256, {})}) {
    const auto d = oracle.check(entry);
    EXPECT_FALSE(d.has_value()) << d->reproducer();
  }
}

TEST(OracleDifferential, DegenerateLanguages) {
  const Oracle oracle;
  for (const CorpusEntry& entry :
       {testing::empty_language_entry(2), testing::empty_language_entry(1),
        testing::universal_language_entry(3),
        testing::empty_string_only_entry(2),
        testing::empty_string_only_entry(1)}) {
    const auto d = oracle.check(entry);
    EXPECT_FALSE(d.has_value()) << d->reproducer();
  }
}

// --- fault injection: the oracle must catch a deliberately broken SFA -------

/// Rebuild an Sfa from public accessors, with a caller-supplied edit applied
/// to the transition table / accepting flags / raw mappings.
Sfa tampered_copy(const Sfa& sfa,
                  const std::function<void(std::vector<Sfa::StateId>&,
                                           std::vector<std::uint8_t>&,
                                           std::vector<std::uint8_t>&)>& edit) {
  const std::uint32_t states = sfa.num_states();
  const unsigned k = sfa.num_symbols();
  const std::uint32_t n = sfa.dfa_states();

  std::vector<Sfa::StateId> delta(static_cast<std::size_t>(states) * k);
  std::vector<std::uint8_t> accepting(states);
  for (Sfa::StateId s = 0; s < states; ++s) {
    accepting[s] = sfa.accepting(s) ? 1 : 0;
    for (unsigned sym = 0; sym < k; ++sym)
      delta[static_cast<std::size_t>(s) * k + sym] =
          sfa.transition(s, static_cast<Symbol>(sym));
  }
  std::vector<std::uint8_t> dfa_accepting(n);
  for (std::uint32_t q = 0; q < n; ++q)
    dfa_accepting[q] = sfa.dfa_accepting(q) ? 1 : 0;
  const ByteView raw = sfa.raw_mapping_store();
  std::vector<std::uint8_t> mappings(raw.data(), raw.data() + raw.size());

  edit(delta, accepting, mappings);

  Sfa out;
  out.init(n, k, sfa.cell_width(), sfa.dfa_start(), std::move(dfa_accepting));
  out.set_start(sfa.start());
  out.set_table(std::move(delta), std::move(accepting));
  out.set_mappings_raw(std::move(mappings));
  return out;
}

TEST(OracleFaultInjection, FlippedTransitionYieldsMinimizedReproducer) {
  const CorpusEntry entry = testing::random_dfa_entry(97, 8, 3, {});
  const Sfa sfa = build_sfa_transposed(entry.dfa);
  ASSERT_GT(sfa.num_states(), 1u);

  // Find a reachable (state, symbol) whose target can be redirected to a
  // state with the OPPOSITE acceptance — guaranteed observable.
  Sfa::StateId flip_s = 0;
  unsigned flip_sym = 0;
  Sfa::StateId flip_to = 0;
  bool found = false;
  std::vector<bool> reachable(sfa.num_states(), false);
  std::deque<Sfa::StateId> bfs{sfa.start()};
  reachable[sfa.start()] = true;
  while (!bfs.empty() && !found) {
    const Sfa::StateId s = bfs.front();
    bfs.pop_front();
    for (unsigned sym = 0; sym < sfa.num_symbols() && !found; ++sym) {
      const Sfa::StateId t = sfa.transition(s, static_cast<Symbol>(sym));
      if (!reachable[t]) {
        reachable[t] = true;
        bfs.push_back(t);
      }
      for (Sfa::StateId cand = 0; cand < sfa.num_states(); ++cand) {
        if (sfa.accepting(cand) != sfa.accepting(t)) {
          flip_s = s;
          flip_sym = sym;
          flip_to = cand;
          found = true;
          break;
        }
      }
    }
  }
  ASSERT_TRUE(found) << "SFA has no acceptance-distinguishable states";

  const unsigned k = sfa.num_symbols();
  const Sfa tampered = tampered_copy(
      sfa, [&](std::vector<Sfa::StateId>& delta, std::vector<std::uint8_t>&,
               std::vector<std::uint8_t>&) {
        delta[static_cast<std::size_t>(flip_s) * k + flip_sym] = flip_to;
      });

  const Oracle oracle;
  // Sanity: the untampered SFA is clean.
  EXPECT_FALSE(oracle.check_sfa(entry, sfa, "intact").has_value());

  const auto d = oracle.check_sfa(entry, tampered, "tampered");
  ASSERT_TRUE(d.has_value()) << "oracle missed a flipped transition";
  EXPECT_FALSE(d->reproducer().empty());
  // The product walk reports the SHORTEST diverging word, so the reproducer
  // is already minimal; it must actually reproduce the divergence.
  if (d->kind == "acceptance") {
    const auto& w = d->input;
    const Sfa::StateId s_final = tampered.run(tampered.start(), w.data(), w.size());
    EXPECT_NE(tampered.accepting(s_final), entry.dfa.accepts(w))
        << "reproducer does not reproduce: " << d->reproducer();
    EXPECT_LE(w.size(), static_cast<std::size_t>(sfa.num_states()) *
                            entry.dfa.size())
        << "not minimal: " << d->reproducer();
  }
}

TEST(OracleFaultInjection, FlippedAcceptingFlagIsCaught) {
  const CorpusEntry entry = testing::random_dfa_entry(101, 6, 4, {});
  const Sfa sfa = build_sfa_hashed(entry.dfa);
  ASSERT_GT(sfa.num_states(), 1u);

  const Sfa tampered = tampered_copy(
      sfa, [&](std::vector<Sfa::StateId>&, std::vector<std::uint8_t>& accepting,
               std::vector<std::uint8_t>&) {
        accepting[sfa.num_states() - 1] ^= 1;  // last created state
      });

  const auto d = Oracle().check_sfa(entry, tampered, "tampered");
  ASSERT_TRUE(d.has_value()) << "oracle missed a flipped accepting flag";
}

TEST(OracleFaultInjection, CorruptedMappingShrinksToOneSymbol) {
  // Corrupt the q0 cell of every state's mapping: acceptance stays coherent
  // (the product walk passes), but every input now reports the wrong final
  // DFA state — the matcher differential must catch it and the shrink loop
  // must minimize the reproducer.  The engine matrix reads f_start even on
  // the empty input (chunk_exit is a mapping lookup), so the minimum is 0
  // symbols, not the 1 the legacy sequential matcher bottomed out at.
  const CorpusEntry entry = testing::random_dfa_entry(131, 6, 3, {});
  const Sfa sfa = build_sfa_transposed(entry.dfa);
  const std::uint32_t n = sfa.dfa_states();
  const unsigned width = sfa.cell_width();
  const std::uint32_t q0 = sfa.dfa_start();

  const Sfa tampered = tampered_copy(
      sfa, [&](std::vector<Sfa::StateId>&, std::vector<std::uint8_t>&,
               std::vector<std::uint8_t>& mappings) {
        for (std::uint32_t s = 0; s < sfa.num_states(); ++s) {
          std::uint8_t* cell =
              mappings.data() + (static_cast<std::size_t>(s) * n + q0) * width;
          std::uint32_t v = 0;
          std::memcpy(&v, cell, width);
          v = (v + 1) % n;
          std::memcpy(cell, &v, width);
        }
      });

  OracleOptions opt;
  opt.structural_audit = false;  // leave detection to the matcher layer
  const auto d = Oracle(opt).check_sfa(entry, tampered, "tampered");
  ASSERT_TRUE(d.has_value()) << "oracle missed corrupted mappings";
  EXPECT_EQ(d->kind, "matcher");
  EXPECT_GT(d->shrink_steps, 0u) << "shrink loop did not run";
  EXPECT_LE(d->input.size(), 1u)
      << "not minimized: " << d->reproducer();
  EXPECT_LE(d->input.size(), d->original_input_length);

  // With the structural audit on, the same corruption is caught statically.
  const auto ds = Oracle().check_sfa(entry, tampered, "tampered");
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->kind, "structural");
}

TEST(OracleLazy, DefaultLazyVariantsCoverTheMatrix) {
  const auto variants = default_lazy_variants();
  const auto has = [&](const std::string& name) {
    return std::any_of(variants.begin(), variants.end(),
                       [&](const LazyVariant& v) { return v.name == name; });
  };
  EXPECT_TRUE(has("lazy-scalar"));
  EXPECT_TRUE(has("lazy-transposed"));
  EXPECT_TRUE(has("lazy-scalar-cap"));
  EXPECT_TRUE(has("lazy-transposed-cap"));
  EXPECT_TRUE(has("lazy-compress"));
}

TEST(OracleLazy, AgreesWithDfaAndEagerOnSeededCorpus) {
  // The lazy matrix against both oracles on every corpus entry: the
  // sequential DFA walk (always) and the eager SFA matchers (when the eager
  // transposed build fits max_sfa_states — corpus entries are regenerated to
  // fit, so it always does here).
  const auto corpus = make_corpus(scaled_corpus_options());
  const Oracle oracle;
  for (const CorpusEntry& entry : corpus) {
    const auto d = oracle.check_lazy(entry);
    EXPECT_FALSE(d.has_value()) << d->reproducer();
  }
}

TEST(OracleLazy, CatchesSeededInternCorruption) {
  // Teeth: inject_corrupt_state flips the start cell of the node interned
  // with that id mid-match.  The lazy differential must notice on at least
  // one seed — and shrink the reproducer input below the probe length.
  std::size_t caught = 0;
  for (const std::uint64_t seed : {311u, 331u, 347u}) {
    const CorpusEntry entry = testing::random_dfa_entry(seed, 8, 4, {});
    LazyVariant bad;
    bad.name = "lazy-corrupt";
    bad.options.num_threads = 3;
    bad.options.inject_corrupt_state = 1;  // first state after the seed
    const auto d = Oracle().check_lazy_variant(entry, bad);
    if (!d.has_value()) continue;
    ++caught;
    EXPECT_EQ(d->kind, "lazy");
    EXPECT_LE(d->input.size(), d->original_input_length);
  }
  EXPECT_GE(caught, 1u) << "lazy oracle missed an injected intern corruption";
}

TEST(OracleNarrowed, CatchesCorruptFeasibleSet) {
  // Teeth for the narrowed column of the engine×task matrix:
  // inject_corrupt_feasible_set rotates every per-symbol reachable set by
  // one state and disables the narrowed engines' fallback so the corruption
  // cannot be masked behind a full simulation.  A chunk whose true entry
  // state falls outside its corrupted feasible set then resolves through
  // the wrong partial-vector cell, and the matcher differential must report
  // it on at least one seed — with a shrunk reproducer.
  std::size_t caught = 0;
  for (const std::uint64_t seed : {17u, 29u, 41u}) {
    const CorpusEntry entry = testing::literal_entry(seed, 6, 3, 5, false);
    const Sfa sfa = build_sfa(entry.dfa, BuildMethod::kTransposed);

    // Sanity: the same matrix with intact reach sets is clean.
    ASSERT_FALSE(Oracle().check_sfa(entry, sfa, "narrowed-intact").has_value());

    OracleOptions opt;
    opt.inject_corrupt_feasible_set = true;
    const auto d = Oracle(opt).check_sfa(entry, sfa, "narrowed-corrupt");
    if (!d.has_value()) continue;
    ++caught;
    EXPECT_EQ(d->kind, "matcher");
    EXPECT_NE(d->detail.find("narrowed"), std::string::npos) << d->detail;
    EXPECT_LE(d->input.size(), d->original_input_length);
  }
  EXPECT_GE(caught, 1u) << "oracle missed the corrupted feasible sets";
}

TEST(OracleTableLayout, CatchesCorruptDefaultTransition) {
  // Teeth for the δ-table layout columns of the engine×task matrix:
  // inject_corrupt_default_transition redirects one default pointer in the
  // d2fa-converted copy WITHOUT repairing its exception list, so every
  // lookup that chases through the corrupted state resolves against the
  // wrong row.  The matrix (eager-d2fa column plus its raw sequential walk)
  // must report the broken chase on at least one seed — with a shrunk
  // reproducer, like every other divergence.
  std::size_t caught = 0;
  for (const std::uint64_t seed : {17u, 29u, 151u, 311u}) {
    const CorpusEntry entry = testing::random_dfa_entry(seed, 8, 4, {});
    const Sfa sfa = build_sfa(entry.dfa, BuildMethod::kTransposed);

    // Sanity: the same matrix with intact default chains is clean.
    ASSERT_FALSE(Oracle().check_sfa(entry, sfa, "layout-intact").has_value());

    OracleOptions opt;
    opt.inject_corrupt_default_transition = true;
    const auto d = Oracle(opt).check_sfa(entry, sfa, "layout-corrupt");
    if (!d.has_value()) continue;
    ++caught;
    EXPECT_EQ(d->kind, "matcher");
    EXPECT_NE(d->detail.find("d2fa"), std::string::npos) << d->detail;
    EXPECT_LE(d->input.size(), d->original_input_length);
  }
  EXPECT_GE(caught, 1u) << "oracle missed the corrupted default transition";
}

TEST(OracleFaultInjection, IntactSfaPassesAllLayers) {
  const CorpusEntry entry = testing::random_dfa_entry(151, 5, 4, {});
  for (const BuilderVariant& v : default_variants()) {
    const Sfa sfa = build_sfa(entry.dfa, v.method, v.options);
    EXPECT_FALSE(Oracle().check_sfa(entry, sfa, v.name).has_value()) << v.name;
  }
}

// --- scheduler x engine coverage (PR 10 dispatch seam) ----------------------

/// Flips the process-wide dispatch policy for one test and restores it, so
/// a failure cannot leak work-stealing into unrelated oracle tests.
class SchedulerGuard {
 public:
  explicit SchedulerGuard(sched::Policy policy)
      : saved_(scan::default_scheduler()) {
    scan::set_default_scheduler(policy);
  }
  ~SchedulerGuard() { scan::set_default_scheduler(saved_); }

 private:
  sched::Policy saved_;
};

TEST(OracleScheduler, AllEnginesAgreeUnderEveryDispatchPolicy) {
  // The oracle's matcher layer drives every scan engine through
  // scan::default_executor(); re-running a corpus slice under each policy
  // proves stolen/guided chunk claims feed the combine step in the same
  // order-insensitive way the stripe binding does.
  const std::vector<CorpusEntry> entries = {
      testing::random_dfa_entry(211, 9, 4, {}),
      testing::random_dfa_entry(223, 6, 3, {}),
      testing::random_dfa_entry(13, 3, 256, {}),
  };
  const Oracle oracle;
  for (unsigned p = 0; p < sched::kNumPolicies; ++p) {
    const auto policy = static_cast<sched::Policy>(p);
    SchedulerGuard guard(policy);
    for (const CorpusEntry& entry : entries) {
      const auto d = oracle.check(entry);
      EXPECT_FALSE(d.has_value())
          << sched::policy_name(policy) << ": " << d->reproducer();
    }
  }
}

TEST(OracleScheduler, GuardRestoresPolicyOnExit) {
  const sched::Policy original = scan::default_scheduler();
  {
    SchedulerGuard guard(sched::Policy::kGuided);
    EXPECT_EQ(scan::default_scheduler(), sched::Policy::kGuided);
  }
  EXPECT_EQ(scan::default_scheduler(), original);
}

}  // namespace
}  // namespace sfa
